/**
 * @file
 * GPT training with the M-Shape placement (the paper's Sec. VI-D
 * headline scenario): lower GPT-11B onto 4 simulated V100s with the
 * embedding tensor-parallel across all devices, search a schedule,
 * compare against the 1F1B+ manual adaptation, and report simulated
 * throughput.
 */

#include <iostream>

#include "baselines/schedules.h"
#include "core/search.h"
#include "models/lower.h"
#include "sim/runner.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    const int gpus = 4;
    const int n = 32; // Micro-batches per iteration.

    const GptConfig cfg = gptConfigForGpus(gpus);
    std::cout << "Model: " << cfg.name << " (" << cfg.layers
              << " layers, hidden " << cfg.hidden << ", vocab "
              << cfg.vocab << ", ~" << cfg.params() / 1e9
              << "B params)\n";

    const LoweredModel model = lowerGptMShape(cfg, gpus, 1, hw);
    std::cout << "Placement: " << model.placement.name() << " with "
              << model.placement.numBlocks() << " blocks on " << gpus
              << " GPUs; parameters use " << model.initialMemMB[0]
              << " MB of " << model.memCapacityMB
              << " MB per device.\n\n";

    // Tessel search under the real memory budget.
    TesselOptions opts;
    opts.memLimit = model.memCapacityMB;
    opts.initialMem = model.initialMemMB;
    opts.totalBudgetSec = 60.0;
    const TesselResult tessel = tesselSearch(model.placement, opts);
    if (!tessel.found) {
        std::cerr << "search failed\n";
        return 1;
    }
    std::cout << "Tessel: NR=" << tessel.nrUsed << ", period "
              << tessel.period << " ms/micro-batch, steady bubble "
              << tessel.plan.steadyBubbleRate() * 100.0 << "%\n";

    ClusterSpec cluster;
    cluster.memCapacityMB = model.memCapacityMB;
    cluster.initialMemMB = model.initialMemMB;

    const Schedule ours = tessel.plan.instantiate(n);
    const SimResult sim_ours =
        simulateSchedule(ours, model.edgeMB, cluster);
    const double pflops_ours = model.flopsPerMicrobatch * n /
                               (sim_ours.makespanMs / 1e3) / 1e15;
    std::cout << "  simulated iteration: " << sim_ours.makespanMs / 1e3
              << " s -> " << pflops_ours << " PFLOPS\n";

    // 1F1B+ on the same placement.
    Problem prob(model.placement, n, model.memCapacityMB);
    prob.setInitialMem(model.initialMemMB);
    const auto plus = schedule1F1BPlus(prob);
    if (plus) {
        const SimResult sim_plus =
            simulateSchedule(*plus, model.edgeMB, cluster);
        const double pflops_plus = model.flopsPerMicrobatch * n /
                                   (sim_plus.makespanMs / 1e3) / 1e15;
        std::cout << "1F1B+:  simulated iteration: "
                  << sim_plus.makespanMs / 1e3 << " s -> " << pflops_plus
                  << " PFLOPS\n";
        std::cout << "\nTessel speedup over 1F1B+: "
                  << sim_plus.makespanMs / sim_ours.makespanMs << "x\n";
    }
    return 0;
}
