/**
 * @file
 * Quickstart: describe a custom 2-device operator placement with the
 * public builder API, search a schedule with Tessel, and print the
 * result — the minimal end-to-end flow of the library.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/search.h"
#include "ir/gantt.h"
#include "placement/builder.h"

using namespace tessel;

int
main()
{
    // 1. Describe one micro-batch's blocks: a two-stage pipeline with a
    //    forward and backward block per stage (a small V-Shape).
    PlacementBuilder builder("two-stage", /*num_devices=*/2);
    const int f0 =
        builder.forward("f0").on(0).span(1).mem(1).done();
    const int f1 =
        builder.forward("f1").on(1).span(1).mem(1).after(f0).done();
    const int b1 =
        builder.backward("b1").on(1).span(2).mem(-1).after(f1).done();
    builder.backward("b0").on(0).span(2).mem(-1).after(b1).done();
    const Placement placement = builder.build();

    // 2. Search for an efficient schedule under a memory budget.
    TesselOptions options;
    options.memLimit = 4;
    const TesselResult result = tesselSearch(placement, options);
    if (!result.found) {
        std::cerr << "no schedule found\n";
        return 1;
    }

    std::cout << "Found a repetend over " << result.nrUsed
              << " micro-batches with steady-state period "
              << result.period << " (lower bound " << result.lowerBound
              << ", bubble rate "
              << result.plan.steadyBubbleRate() * 100.0 << "%).\n\n";

    // 3. Generalize to any number of micro-batches and inspect it.
    const int n = 8;
    const Schedule schedule = result.plan.instantiate(n);
    std::cout << "Schedule for " << n << " micro-batches (makespan "
              << schedule.makespan() << "):\n"
              << renderGantt(schedule) << "\n";

    // The schedule is fully validated: dependencies, exclusivity, and
    // the memory budget all hold.
    const ValidationResult check = schedule.validate();
    std::cout << "validates: " << (check.ok ? "yes" : check.message)
              << "\n";
    return 0;
}
