/**
 * @file
 * Flava multi-modal inference on a K-Shape placement (Fig. 1d / Fig. 15
 * scenario): the text and vision branches run concurrently on disjoint
 * device halves and join in a tensor-parallel cross encoder. The example
 * contrasts Tessel's searched schedule with pure tensor parallelism on
 * the latency/throughput trade-off.
 */

#include <iostream>

#include "baselines/schedules.h"
#include "core/search.h"
#include "models/lower.h"
#include "sim/runner.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    const int gpus = 4;
    const int batch = 4;
    const FlavaConfig cfg = flavaConfig();

    const LoweredModel kshape =
        lowerFlavaKShape(cfg, gpus, batch, hw, /*training=*/false);
    const LoweredModel tponly =
        lowerFlavaTensorParallel(cfg, gpus, batch, hw);

    TesselOptions opts;
    opts.totalBudgetSec = 30.0;
    const TesselResult tessel = tesselSearch(kshape.placement, opts);
    if (!tessel.found) {
        std::cerr << "search failed\n";
        return 1;
    }
    std::cout << "K-Shape schedule: NR=" << tessel.nrUsed << ", period "
              << tessel.period << " ms/request-batch\n\n";

    ClusterSpec cluster;
    cluster.initialMemMB = kshape.initialMemMB;

    std::cout << "reqs  |  Tessel latency  TP latency  |  Tessel thr  "
                 "TP thr (req/s)\n";
    for (int n : {1, 4, 16, 64}) {
        const int actual = std::max(n, tessel.plan.minMicrobatches());
        const Schedule ours = tessel.plan.instantiate(actual);
        const SimResult sim_ours =
            simulateSchedule(ours, kshape.edgeMB, cluster);

        Problem tp_prob(tponly.placement, n, tponly.memCapacityMB);
        tp_prob.setInitialMem(tponly.initialMemMB);
        ClusterSpec tp_cluster;
        tp_cluster.initialMemMB = tponly.initialMemMB;
        const SimResult sim_tp = simulateSchedule(
            scheduleSequential(tp_prob), tponly.edgeMB, tp_cluster);

        std::cout << n << "  |  " << sim_ours.makespanMs << " ms  "
                  << sim_tp.makespanMs << " ms  |  "
                  << actual * batch / (sim_ours.makespanMs / 1e3)
                  << "  "
                  << n * batch / (sim_tp.makespanMs / 1e3) << "\n";
    }
    std::cout << "\nTessel keeps latency near TP's while pipelining "
                 "batches for throughput (Fig. 15's trade-off).\n";
    return 0;
}
