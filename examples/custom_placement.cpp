/**
 * @file
 * Searching a schedule for a novel, user-defined placement: a 3-device
 * "Y-Shape" with two independent input branches feeding a shared trunk
 * on the third device — a strategy with no predefined schedule, which
 * is exactly the situation Tessel targets (Sec. II). Also demonstrates
 * the runtime instantiation pipeline down to generated device code.
 */

#include <iostream>

#include "core/search.h"
#include "ir/gantt.h"
#include "placement/builder.h"
#include "runtime/codegen.h"
#include "runtime/instantiate.h"

using namespace tessel;

int
main()
{
    // Two branches (devices 0 and 1) join on a trunk (device 2).
    PlacementBuilder b("Y-shape", 3);
    const int left =
        b.forward("leftF").on(0).span(2).mem(1).done();
    const int right =
        b.forward("rightF").on(1).span(2).mem(1).done();
    const int trunk = b.forward("trunkF")
                          .on(2)
                          .span(2)
                          .mem(1)
                          .after(left)
                          .after(right)
                          .done();
    const int trunk_b =
        b.backward("trunkB").on(2).span(4).mem(-1).after(trunk).done();
    b.backward("leftB").on(0).span(4).mem(-1).after(trunk_b).done();
    b.backward("rightB").on(1).span(4).mem(-1).after(trunk_b).done();
    const Placement placement = b.build();

    TesselOptions opts;
    opts.memLimit = 6;
    const TesselResult result = tesselSearch(placement, opts);
    if (!result.found) {
        std::cerr << "no schedule found\n";
        return 1;
    }
    std::cout << "Y-shape: period " << result.period << " (bound "
              << result.lowerBound << "), NR=" << result.nrUsed
              << ", bubble "
              << result.plan.steadyBubbleRate() * 100.0 << "%\n\n";

    const Schedule sched = result.plan.instantiate(6);
    std::cout << renderGantt(sched) << "\n";

    // Lower to per-device programs with communication primitives and
    // emit the pseudo-PyTorch code for device 2 (the trunk).
    std::map<std::pair<int, int>, double> edge_mb;
    for (int spec = 0; spec < placement.numBlocks(); ++spec)
        for (int dep : placement.block(spec).deps)
            edge_mb[{dep, spec}] = 16.0;
    const Program prog = instantiate(sched, edge_mb);
    std::cout << "Generated code for device 2 (first lines):\n";
    const std::string code = emitDeviceCode(prog, 2);
    std::cout << code.substr(0, 800) << "...\n";
    return 0;
}
