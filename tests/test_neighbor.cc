/**
 * @file
 * Neighbor-seeded search tests: instance-meta serialization, similarity
 * ranking, plan adaptation (fast path, retime path, structural
 * fallback), and the end-to-end service guarantee — seeding never
 * changes a plan, only the work needed to find it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "placement/shapes.h"
#include "service/service.h"
#include "store/adapt.h"
#include "store/fingerprint.h"
#include "store/neighbor.h"
#include "store/serialize.h"
#include "store/store.h"
#include "support/io.h"

namespace tessel {
namespace {

/** Query options mirroring the reference-shape batch budgets. */
TesselOptions
quickOptions()
{
    TesselOptions opts;
    opts.totalBudgetSec = 5.0;
    opts.repetendBudgetSec = 1.0;
    opts.phaseBudgetSec = 5.0;
    return opts;
}

/** Wrap a cold search of (placement, options) as its stored result. */
TesselResult
solvedResult(const Placement &placement, const TesselOptions &options)
{
    TesselResult result = tesselSearch(placement, options);
    EXPECT_TRUE(result.found);
    return result;
}

// ------------------------------------------------------- instance meta

TEST(NeighborMeta, SerializationRoundTrip)
{
    const Placement p = makeShapeByName("V", 4);
    const InstanceMeta meta = computeInstanceMeta(p, quickOptions());
    EXPECT_EQ(meta.fingerprint, fingerprintQuery(p, quickOptions()));
    EXPECT_EQ(meta.features[kFeatDevices], 4.0);
    EXPECT_GT(meta.features[kFeatBlocks], 0.0);
    EXPECT_GT(meta.features[kFeatTotalWork], 0.0);

    const std::string bytes = serializeMeta(meta);
    InstanceMeta back;
    ASSERT_TRUE(deserializeMeta(bytes, &back));
    EXPECT_EQ(back.fingerprint, meta.fingerprint);
    EXPECT_EQ(back.sub, meta.sub);
    EXPECT_EQ(back.phaseOptions, meta.phaseOptions);
    EXPECT_EQ(back.features, meta.features);
}

TEST(NeighborMeta, PhaseOptionsDigestTracksCompletionInputsOnly)
{
    const TesselOptions base = quickOptions();
    const Hash128 digest = phaseOptionsDigest(base);

    // Knobs that cannot move a phase completion share the digest...
    TesselOptions deeper = base;
    deeper.maxRepetendMicrobatches += 1;
    EXPECT_EQ(phaseOptionsDigest(deeper), digest);
    TesselOptions repetend = base;
    repetend.repetendBudgetSec *= 2.0;
    EXPECT_EQ(phaseOptionsDigest(repetend), digest);

    // ...while budget and memory knobs that can do not.
    TesselOptions phase_budget = base;
    phase_budget.phaseBudgetSec *= 2.0;
    EXPECT_NE(phaseOptionsDigest(phase_budget), digest);
    TesselOptions total_budget = base;
    total_budget.totalBudgetSec *= 2.0;
    EXPECT_NE(phaseOptionsDigest(total_budget), digest);
    TesselOptions capped = base;
    capped.memLimit = 4;
    EXPECT_NE(phaseOptionsDigest(capped), digest);

    // Trailing zero initial memory is canonicalized away, like the
    // full fingerprint does.
    TesselOptions padded = base;
    padded.initialMem = {0, 0, 0};
    EXPECT_EQ(phaseOptionsDigest(padded), digest);
    padded.initialMem = {1, 0, 0};
    EXPECT_NE(phaseOptionsDigest(padded), digest);
}

TEST(NeighborMeta, RejectsCorruptSidecars)
{
    const Placement p = makeShapeByName("V", 4);
    const std::string bytes =
        serializeMeta(computeInstanceMeta(p, quickOptions()));
    InstanceMeta out;

    std::string truncated = bytes.substr(0, bytes.size() / 2);
    EXPECT_FALSE(deserializeMeta(truncated, &out));

    // Any single flipped payload byte must fail the checksum.
    std::string flipped = bytes;
    flipped[flipped.size() - 3] ^= 0x40;
    EXPECT_FALSE(deserializeMeta(flipped, &out));

    std::string bad_magic = bytes;
    bad_magic[0] ^= 0x01;
    EXPECT_FALSE(deserializeMeta(bad_magic, &out));

    EXPECT_FALSE(deserializeMeta(std::string(), &out));
}

TEST(NeighborMeta, SubFingerprintsIsolateComponents)
{
    const Placement v = makeShapeByName("V", 4);
    TesselOptions base = quickOptions();

    TesselOptions capped = base;
    capped.memLimit = 4;
    const SubFingerprints a = subFingerprintsQuery(v, base);
    const SubFingerprints b = subFingerprintsQuery(v, capped);
    EXPECT_EQ(a.placement, b.placement); // Same structure + costs.
    EXPECT_EQ(a.cluster, b.cluster);     // Both homogeneous.
    EXPECT_NE(a.options, b.options);     // The knob that moved.

    const SubFingerprints c =
        subFingerprintsQuery(makeShapeByName("X", 4), base);
    EXPECT_NE(a.placement, c.placement);
    EXPECT_EQ(a.options, c.options);
}

// ------------------------------------------------------ neighbor index

TEST(NeighborIndex, RanksSharedPlacementAboveSharedOptions)
{
    const Placement v = makeShapeByName("V", 4);
    const Placement x = makeShapeByName("X", 4);
    const TesselOptions base = quickOptions();
    // A one-knob options delta: small feature distance + options
    // penalty. (A memLimit delta would not do here — finite vs the
    // unlimited sentinel saturates that feature's relative distance.)
    TesselOptions deeper = base;
    deeper.maxRepetendMicrobatches += 1;

    NeighborIndex index;
    index.add(computeInstanceMeta(v, deeper)); // Same placement, knob off.
    index.add(computeInstanceMeta(x, base));   // Same options, other shape.
    EXPECT_EQ(index.size(), 2u);

    const InstanceMeta query = computeInstanceMeta(v, base);
    const auto near = index.nearest(query, 4);
    ASSERT_EQ(near.size(), 2u);
    EXPECT_EQ(near[0].fingerprint, fingerprintQuery(v, deeper));
    EXPECT_LT(near[0].distance, near[1].distance);
}

TEST(NeighborIndex, ExcludesExactMatchAndHonorsK)
{
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions base = quickOptions();

    NeighborIndex index;
    index.add(computeInstanceMeta(v, base));
    const InstanceMeta query = computeInstanceMeta(v, base);
    EXPECT_TRUE(index.nearest(query, 4).empty()); // Own fp is a cache hit.

    TesselOptions other = base;
    for (int i = 0; i < 3; ++i) {
        other.memLimit = 10 + i;
        index.add(computeInstanceMeta(v, other));
    }
    EXPECT_EQ(index.nearest(query, 2).size(), 2u);
    EXPECT_EQ(index.nearest(query, 0).size(), 0u);

    other.memLimit = 10;
    EXPECT_TRUE(index.remove(fingerprintQuery(v, other)));
    EXPECT_FALSE(index.remove(fingerprintQuery(v, other)));
    EXPECT_EQ(index.size(), 3u);
}

// ---------------------------------------------------------- adaptation

TEST(NeighborAdapt, FastPathWhenOnlyBudgetsMoved)
{
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions stored_opts = quickOptions();
    const TesselResult stored = solvedResult(v, stored_opts);

    TesselOptions query_opts = stored_opts;
    query_opts.totalBudgetSec = 7.5; // Fingerprint moves, costs do not.
    ASSERT_NE(fingerprintQuery(v, query_opts),
              fingerprintQuery(v, stored_opts));

    const AdaptOutcome out = adaptResultToQuery(v, query_opts, stored);
    ASSERT_TRUE(out.ok) << out.reason;
    EXPECT_FALSE(out.retimed);
    // Without the caller's phase-options attestation the seed carries
    // no reusable phases, however identical the instances look.
    EXPECT_FALSE(out.seed.phasesExact);
    EXPECT_FALSE(out.seed.plan.has_value());
    EXPECT_EQ(out.seed.period, stored.period);
    EXPECT_EQ(out.seed.windowStart.size(),
              static_cast<size_t>(v.numBlocks()));
    EXPECT_GE(out.seed.makespan, out.seed.period);
    EXPECT_TRUE(
        verifyResultAgainstQuery(v, query_opts, out.adapted).ok);
}

TEST(NeighborAdapt, ExactPhaseReuseWhenAttestedAndInputsIdentical)
{
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions stored_opts = quickOptions();
    const TesselResult stored = solvedResult(v, stored_opts);

    // One more micro-batch of sweep headroom: the fingerprint moves but
    // every phase-completion input (placement costs, memory, budgets)
    // stays put — exactly the perturbation the service attests.
    TesselOptions query_opts = stored_opts;
    query_opts.maxRepetendMicrobatches += 1;
    ASSERT_EQ(phaseOptionsDigest(query_opts),
              phaseOptionsDigest(stored_opts));

    const AdaptOutcome out =
        adaptResultToQuery(v, query_opts, stored,
                           /*exactPhasesAllowed=*/true);
    ASSERT_TRUE(out.ok) << out.reason;
    EXPECT_FALSE(out.retimed);
    ASSERT_TRUE(out.seed.phasesExact);
    ASSERT_TRUE(out.seed.plan.has_value());
    // The carried plan is the stored answer rebuilt on the query's own
    // placement — the completion the search may now return verbatim.
    EXPECT_EQ(out.seed.plan->period(), stored.plan.period());
    EXPECT_EQ(out.seed.plan->windowStart(), stored.plan.windowStart());
    EXPECT_EQ(out.seed.plan->warmupStarts(), stored.plan.warmupStarts());
    EXPECT_EQ(out.seed.plan->cooldownStarts(),
              stored.plan.cooldownStarts());
}

TEST(NeighborAdapt, RetimesWhenSpansMoved)
{
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult stored = solvedResult(v, opts);

    // Same structure, every span doubled: the stored start times are
    // too dense for the new costs, so the fast path must fail and the
    // known-good assignment be retimed exactly.
    std::vector<BlockSpec> blocks = v.blocks();
    for (BlockSpec &block : blocks)
        block.span *= 2;
    const Placement stretched(v.name(), v.numDevices(), blocks);

    const AdaptOutcome out = adaptResultToQuery(stretched, opts, stored);
    ASSERT_TRUE(out.ok) << out.reason;
    EXPECT_TRUE(out.retimed);
    EXPECT_TRUE(
        verifyResultAgainstQuery(stretched, opts, out.adapted).ok);
    // The adapted plan must be a real answer for the *stretched* costs.
    EXPECT_EQ(out.adapted.nrUsed, stored.nrUsed);
    EXPECT_GE(out.adapted.period, stored.period);

    // And the seed must match what the adapted plan promises.
    EXPECT_EQ(out.seed.period, out.adapted.period);
    EXPECT_EQ(out.seed.windowStart, out.adapted.plan.windowStart());
}

TEST(NeighborAdapt, StructuralMismatchFallsBackCold)
{
    const TesselOptions opts = quickOptions();
    const TesselResult stored = solvedResult(makeShapeByName("V", 4), opts);

    // Different dependency structure (X-Shape) and a different stage
    // count (V at 6 devices) must both refuse to adapt.
    EXPECT_FALSE(
        adaptResultToQuery(makeShapeByName("X", 4), opts, stored).ok);
    EXPECT_FALSE(
        adaptResultToQuery(makeShapeByName("V", 6), opts, stored).ok);

    // A not-found neighbor has nothing to offer either.
    TesselResult empty;
    EXPECT_FALSE(
        adaptResultToQuery(makeShapeByName("V", 4), opts, empty).ok);
}

// ------------------------------------------------- store integration

TEST(PlanCacheNeighbors, PutIndexesAndPeekFetchesRaw)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-neighbor-store-", &dir));
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const Hash128 fp = fingerprintQuery(v, opts);
    const TesselResult result = solvedResult(v, opts);

    {
        PlanCache cache(dir);
        cache.put(fp, v, opts, result);
        EXPECT_EQ(cache.indexedInstances(), 1u);

        const auto peeked = cache.peek(fp);
        ASSERT_TRUE(peeked.has_value());
        EXPECT_EQ(resultPlanDigest(*peeked), resultPlanDigest(result));
        EXPECT_EQ(cache.stats().neighborFetches, 1u);
        // peek is not a lookup: no hit/miss accounting.
        EXPECT_EQ(cache.stats().lookups(), 0u);
    }

    // A fresh cache on the same directory rebuilds the index from the
    // meta sidecars alone.
    PlanCache reopened(dir);
    EXPECT_EQ(reopened.indexedInstances(), 1u);
    TesselOptions query = opts;
    query.memLimit = 4;
    const auto near =
        reopened.neighbors(computeInstanceMeta(v, query), 2);
    ASSERT_EQ(near.size(), 1u);
    EXPECT_EQ(near[0].fingerprint, fp);
}

// --------------------------------------------- end-to-end determinism

/**
 * The tentpole guarantee, per perturbation: a seeded search returns a
 * plan bit-identical to the unseeded one (the seed only prunes), while
 * doing strictly less solver work.
 */
TEST(NeighborSeeding, PerturbedQueriesBitIdenticalSeedingOnOrOff)
{
    std::string warm_dir, cold_dir;
    ASSERT_TRUE(makeTempDir("tessel-seed-warm-", &warm_dir));
    ASSERT_TRUE(makeTempDir("tessel-seed-cold-", &cold_dir));

    // Base instances the warm store knows about: V homogeneous + V
    // hetero (small but covers both search paths).
    std::vector<PlanQuery> base;
    {
        PlanQuery homogeneous;
        homogeneous.label = "V/homogeneous";
        homogeneous.placement = makeShapeByName("V", 4);
        homogeneous.options = quickOptions();
        base.push_back(homogeneous);

        HeteroShape hs = makeHeteroShapeByName("V", 4);
        PlanQuery hetero;
        hetero.label = "V/hetero";
        hetero.placement = hs.placement;
        hetero.options = quickOptions();
        hetero.options.edgeMB = hs.edgeMB;
        hetero.cluster =
            std::make_shared<ClusterModel>(std::move(hs.cluster));
        base.push_back(hetero);
    }

    ServiceOptions warm_opts;
    warm_opts.cacheDir = warm_dir;
    warm_opts.numThreads = 1;
    warm_opts.neighborSeed = true;
    PlanningService warm(warm_opts);
    warm.runBatch(base);

    ServiceOptions cold_opts;
    cold_opts.cacheDir = cold_dir;
    cold_opts.numThreads = 1;
    cold_opts.neighborSeed = false;
    PlanningService cold(cold_opts);

    // Perturbations: a deeper NR cap, links 5% slower and 5% faster,
    // and one extra pipeline stage (structural -> must fall back cold).
    // fewer_nodes marks queries whose adaptation reuses the stored
    // timing verbatim (identical costs): those charge no solver work to
    // adaptation, so total warm nodes must be strictly below cold. The
    // link-scaled queries re-time the assignment — one candidate solve
    // charged to the warm side — so only their pruning counters are
    // asserted, not the total.
    std::vector<PlanQuery> perturbed;
    std::vector<bool> expect_seeded;
    std::vector<bool> fewer_nodes;
    {
        PlanQuery nr_cap = base[0];
        nr_cap.label = "V/nr-cap+1";
        nr_cap.options.maxRepetendMicrobatches += 1;
        perturbed.push_back(nr_cap);
        expect_seeded.push_back(true);
        fewer_nodes.push_back(true);

        for (const double scale : {1.05, 0.95}) {
            PlanQuery link = base[1];
            link.label = "V/hetero/link-scaled";
            auto scaled = std::make_shared<ClusterModel>(*link.cluster);
            scaled->defaultLink.timePerMB *= scale;
            for (auto &entry : scaled->linkOverride)
                entry.second.timePerMB *= scale;
            link.cluster = std::move(scaled);
            perturbed.push_back(link);
            expect_seeded.push_back(true);
            fewer_nodes.push_back(false);
        }

        PlanQuery wider = base[0];
        wider.label = "V/6-devices";
        wider.placement = makeShapeByName("V", 6);
        perturbed.push_back(wider);
        expect_seeded.push_back(false);
        fewer_nodes.push_back(false);
    }

    for (size_t i = 0; i < perturbed.size(); ++i) {
        QueryReport cold_report, warm_report;
        const TesselResult cold_result =
            cold.runOne(perturbed[i], &cold_report);
        const TesselResult warm_result =
            warm.runOne(perturbed[i], &warm_report);

        // The tentpole invariant: identical serialized plans.
        EXPECT_EQ(cold_report.planHash, warm_report.planHash)
            << perturbed[i].label;
        EXPECT_EQ(cold_result.period, warm_result.period)
            << perturbed[i].label;

        if (expect_seeded[i]) {
            EXPECT_FALSE(warm_report.seededFrom.empty())
                << perturbed[i].label;
            EXPECT_GE(warm_report.seedMakespan, warm_result.period)
                << perturbed[i].label;
            // The seed's virtual incumbent did real pruning.
            EXPECT_GT(warm_report.seedNodesPruned, 0u)
                << perturbed[i].label;
            // And never forced extra phase SAT checks.
            EXPECT_LE(warm_result.breakdown.satChecks,
                      cold_result.breakdown.satChecks)
                << perturbed[i].label;
            if (fewer_nodes[i]) {
                // Strictly less solver work than the unseeded search,
                // even counting what the adaptation itself spent.
                EXPECT_LT(warm_result.breakdown.solverNodes,
                          cold_result.breakdown.solverNodes)
                    << perturbed[i].label;
            }
        } else {
            EXPECT_TRUE(warm_report.seededFrom.empty())
                << perturbed[i].label;
            EXPECT_EQ(warm_report.seedMakespan, -1) << perturbed[i].label;
        }
    }
}

TEST(NeighborSeeding, SeededSearchAttributesPrunesToSeed)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-seed-attr-", &dir));
    const Placement v = makeShapeByName("V", 4);
    const TesselOptions base = quickOptions();

    ServiceOptions svc;
    svc.cacheDir = dir;
    svc.numThreads = 1;
    PlanningService service(svc);
    PlanQuery seed_query;
    seed_query.label = "V/base";
    seed_query.placement = v;
    seed_query.options = base;
    service.runOne(seed_query);

    PlanQuery miss = seed_query;
    miss.label = "V/nr-cap+1";
    miss.options.maxRepetendMicrobatches += 1;
    QueryReport report;
    const TesselResult result = service.runOne(miss, &report);
    ASSERT_TRUE(result.found);
    ASSERT_FALSE(report.seededFrom.empty());
    EXPECT_EQ(report.seededFrom, fingerprintQuery(v, base).hex());

    // The seed's virtual incumbent pruned work before the first own
    // candidate landed, and the report surfaces that attribution.
    EXPECT_GT(report.seedNodesPruned, 0u);
    EXPECT_EQ(report.seedNodesPruned,
              result.breakdown.seededNodesPruned);
    EXPECT_EQ(report.seedMakespan, result.breakdown.seedMakespan);
}

} // namespace
} // namespace tessel
