/**
 * @file
 * Tests for the baseline schedule generators: classic 1F1B behavior on
 * V-Shape, 1F1B+ splicing on M/NN shapes, GPipe, Chimera-direct rounds,
 * sequential execution, and OOM-deadlock reporting.
 */

#include <gtest/gtest.h>

#include "baselines/schedules.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TEST(OneFOneB, VShapeZeroSteadyBubble)
{
    Problem prob(makeVShape(4), 24, kUnlimitedMem);
    const auto s = schedule1F1B(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    EXPECT_NEAR(measuredSteadyBubble(*s), 0.0, 0.02);
}

TEST(OneFOneB, VShapeMakespanMatchesClassicFormula)
{
    // 1F1B with balanced stages: fill (critical path) + (N-1) periods.
    for (int n : {4, 8, 16}) {
        Problem prob(makeVShape(4), n, kUnlimitedMem);
        const auto s = schedule1F1B(prob);
        ASSERT_TRUE(s.has_value());
        EXPECT_EQ(s->makespan(), 12 + 3 * (n - 1)) << "n=" << n;
    }
}

TEST(OneFOneB, AdmissionBoundsInflightMemory)
{
    // Device 0 of a 4-stage V-shape holds at most D in-flight
    // micro-batches under the classic 1F1B admission rule.
    Problem prob(makeVShape(4), 32, kUnlimitedMem);
    const auto s = schedule1F1B(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_LE(s->peakMemory(0), 4);
}

TEST(OneFOneB, RespectsMemoryLimit)
{
    Problem prob(makeVShape(4), 16, 2);
    const auto s = schedule1F1B(prob);
    ASSERT_TRUE(s.has_value());
    const auto check = s->validate();
    EXPECT_TRUE(check.ok) << check.message;
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_LE(s->peakMemory(d), 2);
}

TEST(OneFOneB, DeadlockWithImpossibleMemoryReturnsNullopt)
{
    // Every forward needs +1 but the capacity is 0: nothing dispatches.
    Problem prob(makeVShape(4), 2, 1);
    prob.setInitialMem({1, 1, 1, 1});
    EXPECT_FALSE(schedule1F1B(prob).has_value());
}

TEST(GPipe, AllForwardsBeforeBackwardsPerDevice)
{
    Problem prob(makeVShape(4), 6, kUnlimitedMem);
    const auto s = scheduleGPipe(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    // On device 3 the first backward comes after all its forwards.
    Time last_fwd = 0, first_bwd = kUnlimitedMem;
    const Placement &p = prob.placement();
    for (int id : s->deviceOrder(3)) {
        const BlockRef ref = prob.refOf(id);
        if (p.block(ref.spec).kind == BlockKind::Forward)
            last_fwd = std::max(last_fwd, s->start(ref));
        else
            first_bwd = std::min(first_bwd, s->start(ref));
    }
    EXPECT_LT(last_fwd, first_bwd);
}

TEST(GPipe, SlowerOrEqualToOneFOneBUnderMemory)
{
    Problem prob(makeVShape(4), 16, 4);
    const auto g = scheduleGPipe(prob);
    const auto o = schedule1F1B(prob);
    ASSERT_TRUE(o.has_value());
    if (g.has_value()) {
        EXPECT_GE(g->makespan(), o->makespan());
    }
}

TEST(OneFOneBPlus, MShapeBubbleNearPaperValue)
{
    // Table II reports 25% for the GPT (M-Shape) 1F1B+ adaptation.
    Problem prob(makeMShape(4), 24, kUnlimitedMem);
    const auto s = schedule1F1BPlus(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    EXPECT_NEAR(measuredSteadyBubble(*s), 0.25, 0.08);
}

TEST(OneFOneBPlus, NnShapeBubbleNearPaperValue)
{
    // Table II reports 20% for the mT5 (NN-Shape) 1F1B+ adaptation.
    Problem prob(makeNnShape(4), 24, kUnlimitedMem);
    const auto s = schedule1F1BPlus(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    EXPECT_NEAR(measuredSteadyBubble(*s), 0.20, 0.08);
}

TEST(OneFOneBPlus, FallsBackOnPlainPlacements)
{
    // V-shape has no full-device blocks: 1F1B+ degenerates to 1F1B.
    Problem prob(makeVShape(4), 8, kUnlimitedMem);
    const auto plus = schedule1F1BPlus(prob);
    const auto classic = schedule1F1B(prob);
    ASSERT_TRUE(plus.has_value());
    ASSERT_TRUE(classic.has_value());
    EXPECT_EQ(plus->makespan(), classic->makespan());
}

TEST(OneFOneBPlus, TensorParallelBlocksAdjacentToAnchors)
{
    Problem prob(makeMShape(4), 8, kUnlimitedMem);
    const auto s = schedule1F1BPlus(prob);
    ASSERT_TRUE(s.has_value());
    const Placement &p = prob.placement();
    // embF(m) must finish before f0(m) starts (dependency), and start
    // after f0(m-1) started (adjacency: no unbounded run-ahead).
    int emb = -1, f0 = -1;
    for (int i = 0; i < p.numBlocks(); ++i) {
        if (p.block(i).name == "embF")
            emb = i;
        if (p.block(i).name == "f0")
            f0 = i;
    }
    ASSERT_GE(emb, 0);
    ASSERT_GE(f0, 0);
    for (int mb = 1; mb < 8; ++mb)
        EXPECT_GE(s->start({emb, mb}), s->start({f0, mb - 1}));
}

TEST(ChimeraDirect, XShapeBubbleNearPaperValue)
{
    // Table II reports 20% for Chimera-direct.
    Problem prob(makeXShape(4), 24, kUnlimitedMem);
    const auto s = scheduleChimeraDirect(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    EXPECT_NEAR(measuredSteadyBubble(*s), 0.22, 0.08);
}

TEST(ChimeraDirect, RoundsDoNotOverlap)
{
    Problem prob(makeXShape(4), 8, kUnlimitedMem);
    const auto s = scheduleChimeraDirect(prob);
    ASSERT_TRUE(s.has_value());
    // Units 0-1 form round 0; everything in round 1 starts after all of
    // round 0 finishes.
    Time round0_end = 0;
    Time round1_start = kUnlimitedMem;
    const Placement &p = prob.placement();
    for (int spec = 0; spec < p.numBlocks(); ++spec) {
        for (int u = 0; u < 2; ++u)
            round0_end = std::max(round0_end, s->finish({spec, u}));
        for (int u = 2; u < 4; ++u)
            round1_start = std::min(round1_start, s->start({spec, u}));
    }
    EXPECT_GE(round1_start, round0_end);
}

TEST(ChimeraDirect, HandlesPartialLastRound)
{
    Problem prob(makeXShape(4), 5, kUnlimitedMem);
    const auto s = scheduleChimeraDirect(prob);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
}

TEST(Sequential, MinimalMemoryMaximalTime)
{
    Problem prob(makeVShape(4), 6, kUnlimitedMem);
    const Schedule s = scheduleSequential(prob);
    EXPECT_TRUE(s.validate().ok);
    EXPECT_EQ(s.makespan(), 6 * 12); // One critical path per mb.
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_LE(s.peakMemory(d), 1);
}

TEST(Baselines, ForwardFirstVsBackwardFirstMemory)
{
    // GPipe accumulates all forwards; 1F1B drains. Peak memory must
    // reflect that on the first device.
    Problem prob(makeVShape(4), 12, kUnlimitedMem);
    const auto gpipe = scheduleGPipe(prob);
    const auto ofob = schedule1F1B(prob);
    ASSERT_TRUE(gpipe.has_value());
    ASSERT_TRUE(ofob.has_value());
    EXPECT_GT(gpipe->peakMemory(0), ofob->peakMemory(0));
}

TEST(Baselines, MeasuredSteadyBubbleOfSequentialIsHigh)
{
    Problem prob(makeVShape(4), 9, kUnlimitedMem);
    const Schedule s = scheduleSequential(prob);
    EXPECT_NEAR(measuredSteadyBubble(s), 0.75, 0.05);
}

} // namespace
} // namespace tessel
