/**
 * @file
 * Property-based tests for the solver over randomized instances: every
 * produced schedule must satisfy all constraints; the optimum must never
 * exceed a greedy list schedule; pruning features must not change the
 * optimum; decide() must be consistent with the optimum.
 */

#include <gtest/gtest.h>

#include "solver/bnb.h"
#include "support/rng.h"

namespace tessel {
namespace {

/** Random DAG scheduling instance generator. */
SolverProblem
randomProblem(uint64_t seed, int num_blocks, int num_devices,
              bool with_memory)
{
    Rng rng(seed);
    SolverProblem sp;
    sp.numDevices = num_devices;
    sp.memLimit = with_memory ? 3 : kUnlimitedMem;
    for (int i = 0; i < num_blocks; ++i) {
        SolverBlock b;
        b.span = rng.range(1, 4);
        b.devices = oneDevice(static_cast<DeviceId>(
            rng.range(0, num_devices - 1)));
        if (rng.chance(0.15))
            b.devices = allDevices(num_devices);
        if (with_memory) {
            // Alternate allocations and releases to keep instances
            // feasible: even blocks allocate, odd blocks release what
            // their dependency allocated.
            if (i % 2 == 0) {
                b.memory = rng.range(0, 2);
            } else {
                b.memory = -sp.blocks[i - 1].memory;
                b.deps.push_back(i - 1);
            }
        }
        // Sparse random dependencies on earlier blocks.
        for (int j = 0; j < i; ++j)
            if (rng.chance(2.0 / (i + 1)))
                b.deps.push_back(j);
        sp.blocks.push_back(std::move(b));
    }
    return sp;
}

/** Check a solver result against all constraints of its problem. */
void
expectValid(const SolverProblem &sp, const SolveResult &r)
{
    ASSERT_TRUE(r.feasible());
    ASSERT_EQ(r.starts.size(), sp.blocks.size());
    Time makespan = 0;
    for (size_t i = 0; i < sp.blocks.size(); ++i) {
        EXPECT_GE(r.starts[i], sp.blocks[i].release);
        makespan = std::max(makespan, r.starts[i] + sp.blocks[i].span);
        for (int dep : sp.blocks[i].deps)
            EXPECT_LE(r.starts[dep] + sp.blocks[dep].span, r.starts[i]);
    }
    EXPECT_EQ(makespan, r.makespan);
    // Exclusivity and memory per device.
    for (int d = 0; d < sp.numDevices; ++d) {
        std::vector<int> on;
        for (size_t i = 0; i < sp.blocks.size(); ++i)
            if (sp.blocks[i].devices.test(d))
                on.push_back(static_cast<int>(i));
        std::sort(on.begin(), on.end(), [&](int a, int b) {
            return r.starts[a] < r.starts[b];
        });
        Mem used = sp.initialMem.empty() ? 0 : sp.initialMem[d];
        for (size_t k = 0; k + 1 < on.size(); ++k)
            EXPECT_LE(r.starts[on[k]] + sp.blocks[on[k]].span,
                      r.starts[on[k + 1]]);
        for (int id : on) {
            used += sp.blocks[id].memory;
            EXPECT_LE(used, sp.memLimit);
        }
    }
}

/** Greedy earliest-start list schedule (upper bound on the optimum). */
Time
greedyMakespan(const SolverProblem &sp)
{
    const int nb = static_cast<int>(sp.blocks.size());
    std::vector<char> done(nb, 0);
    std::vector<Time> finish(nb, 0);
    std::vector<Time> avail(sp.numDevices, 0);
    Time makespan = 0;
    for (int step = 0; step < nb; ++step) {
        int pick = -1;
        Time pick_est = 0;
        for (int i = 0; i < nb; ++i) {
            if (done[i])
                continue;
            bool ready = true;
            Time est = sp.blocks[i].release;
            for (int dep : sp.blocks[i].deps) {
                if (!done[dep])
                    ready = false;
                else
                    est = std::max(est, finish[dep]);
            }
            if (!ready)
                continue;
            for (int d = 0; d < sp.numDevices; ++d)
                if (sp.blocks[i].devices.test(d))
                    est = std::max(est, avail[d]);
            if (pick < 0 || est < pick_est) {
                pick = i;
                pick_est = est;
            }
        }
        EXPECT_GE(pick, 0);
        done[pick] = 1;
        finish[pick] = pick_est + sp.blocks[pick].span;
        makespan = std::max(makespan, finish[pick]);
        for (int d = 0; d < sp.numDevices; ++d)
            if (sp.blocks[pick].devices.test(d))
                avail[d] = finish[pick];
    }
    return makespan;
}

class RandomInstance : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomInstance, OptimalScheduleIsValid)
{
    const SolverProblem sp =
        randomProblem(GetParam() * 7919 + 13, 10, 3, false);
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    expectValid(sp, r);
}

TEST_P(RandomInstance, OptimumNeverExceedsGreedy)
{
    const SolverProblem sp =
        randomProblem(GetParam() * 104729 + 1, 10, 3, false);
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_LE(r.makespan, greedyMakespan(sp));
}

TEST_P(RandomInstance, DominanceIsLossless)
{
    const SolverProblem sp =
        randomProblem(GetParam() * 31 + 5, 9, 3, false);
    SolverOptions with, without;
    without.useDominance = false;
    BnbSolver a(sp, with), b(sp, without);
    EXPECT_EQ(a.minimizeMakespan().makespan,
              b.minimizeMakespan().makespan);
}

TEST_P(RandomInstance, DecideConsistentWithOptimum)
{
    const SolverProblem sp =
        randomProblem(GetParam() * 607 + 3, 9, 2, false);
    BnbSolver solver(sp);
    const Time opt = solver.minimizeMakespan().makespan;
    EXPECT_TRUE(solver.decide(opt).feasible());
    EXPECT_EQ(solver.decide(opt - 1).status, SolveStatus::Infeasible);
}

TEST_P(RandomInstance, MemoryConstrainedSchedulesAreValid)
{
    const SolverProblem sp =
        randomProblem(GetParam() * 1543 + 11, 10, 2, true);
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    if (r.status == SolveStatus::Infeasible)
        return; // Legitimately over-constrained instance.
    expectValid(sp, r);
}

TEST_P(RandomInstance, MemoryTightensTheOptimum)
{
    SolverProblem sp = randomProblem(GetParam() * 8111 + 7, 10, 2, true);
    BnbSolver constrained(sp);
    const SolveResult tight = constrained.minimizeMakespan();
    sp.memLimit = kUnlimitedMem;
    BnbSolver relaxed(sp);
    const SolveResult loose = relaxed.minimizeMakespan();
    ASSERT_TRUE(loose.feasible());
    if (tight.feasible()) {
        EXPECT_GE(tight.makespan, loose.makespan);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstance, ::testing::Range(0, 20));

} // namespace
} // namespace tessel
