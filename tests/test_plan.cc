/**
 * @file
 * Tests for TesselPlan: schedule generalization to any micro-batch count
 * (Sec. III-C), periodic growth of the makespan, and memory-safety of
 * the expansion.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TesselResult
searchShape(const std::string &name, Mem mem_limit = kUnlimitedMem)
{
    TesselOptions opts;
    opts.totalBudgetSec = 120.0;
    opts.memLimit = mem_limit;
    auto r = tesselSearch(makeShapeByName(name, 4), opts);
    EXPECT_TRUE(r.found) << name;
    return r;
}

class ExpandShape
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ExpandShape, InstantiatedSchedulesAreValid)
{
    const auto [name, extra] = GetParam();
    const TesselResult r = searchShape(name);
    const int n = r.plan.minMicrobatches() + extra;
    const Schedule sched = r.plan.instantiate(n);
    const auto check = sched.validate();
    EXPECT_TRUE(check.ok) << name << " N=" << n << ": " << check.message;
    EXPECT_TRUE(sched.complete());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExpandShape,
    ::testing::Combine(::testing::Values("V", "X", "M", "K"),
                       ::testing::Values(0, 1, 3, 8, 20)));

TEST(TesselPlan, MakespanGrowsByOnePeriodPerMicrobatch)
{
    const TesselResult r = searchShape("V");
    const int nr = r.plan.minMicrobatches();
    const Time base = r.plan.makespanFor(nr + 4);
    for (int extra = 5; extra <= 8; ++extra) {
        const Time t = r.plan.makespanFor(nr + extra);
        EXPECT_EQ(t - base,
                  static_cast<Time>(extra - 4) * r.plan.period());
    }
}

TEST(TesselPlan, AsymptoticRateMatchesPeriod)
{
    for (const char *name : {"V", "M", "K"}) {
        const TesselResult r = searchShape(name);
        const int nr = r.plan.minMicrobatches();
        const Time t1 = r.plan.makespanFor(nr + 10);
        const Time t2 = r.plan.makespanFor(nr + 40);
        EXPECT_EQ((t2 - t1) / 30, r.plan.period()) << name;
    }
}

TEST(TesselPlan, RequiresAtLeastNrMicrobatches)
{
    const TesselResult r = searchShape("V");
    EXPECT_EQ(r.plan.minMicrobatches(), 4);
    // instantiate(NR) is the smallest valid instantiation.
    const Schedule sched = r.plan.instantiate(4);
    EXPECT_TRUE(sched.validate().ok);
}

TEST(TesselPlan, MemoryConstrainedExpansionStaysFeasible)
{
    const TesselResult r = searchShape("V", 4);
    for (int n = r.plan.minMicrobatches(); n <= 24; n += 5) {
        const Schedule sched = r.plan.instantiate(n);
        const auto check = sched.validate();
        EXPECT_TRUE(check.ok) << "N=" << n << ": " << check.message;
        for (DeviceId d = 0; d < 4; ++d)
            EXPECT_LE(sched.peakMemory(d), 4) << "N=" << n;
    }
}

TEST(TesselPlan, SteadyBubbleFormula)
{
    const TesselResult r = searchShape("V");
    EXPECT_DOUBLE_EQ(r.plan.steadyBubbleRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.plan.worstDeviceBubbleRate(), 0.0);

    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    opts.maxRepetendMicrobatches = 1; // Sequential repetend.
    const auto seq = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(seq.found);
    EXPECT_NEAR(seq.plan.steadyBubbleRate(), 0.75, 1e-9);
    EXPECT_NEAR(seq.plan.worstDeviceBubbleRate(), 0.75, 1e-9);
}

TEST(TesselPlan, WholeRunBubbleApproachesSteadyBubble)
{
    const TesselResult r = searchShape("M");
    const Schedule small = r.plan.instantiate(r.plan.minMicrobatches());
    const Schedule large =
        r.plan.instantiate(r.plan.minMicrobatches() + 60);
    // With many micro-batches the warmup/cooldown overhead washes out.
    EXPECT_LT(large.bubbleRate(), small.bubbleRate());
    EXPECT_LT(large.bubbleRate(), 0.15);
}

TEST(TesselPlan, ProblemForCarriesMemoryConfig)
{
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    opts.memLimit = 4;
    opts.initialMem = {1, 0, 0, 0};
    const auto r = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(r.found);
    const Problem prob = r.plan.problemFor(8);
    EXPECT_EQ(prob.memLimit(), 4);
    EXPECT_EQ(prob.initialMem()[0], 1);
    EXPECT_TRUE(r.plan.instantiate(8).validate().ok);
}

} // namespace
} // namespace tessel
