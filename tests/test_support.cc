/**
 * @file
 * Unit tests for the support library: bitsets, tables, RNG, timers.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bitset.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace tessel {
namespace {

TEST(BlockSet, StartsEmpty)
{
    BlockSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    for (int i = 0; i < BlockSet::maxBits; i += 17)
        EXPECT_FALSE(s.test(i));
}

TEST(BlockSet, SetResetTest)
{
    BlockSet s;
    s.set(0);
    s.set(63);
    s.set(64);
    s.set(255);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(255));
    EXPECT_FALSE(s.test(1));
    EXPECT_EQ(s.count(), 4);
    s.reset(63);
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3);
}

TEST(BlockSet, EqualityAndHash)
{
    BlockSet a, b;
    a.set(7);
    a.set(130);
    b.set(130);
    EXPECT_NE(a, b);
    b.set(7);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.reset(7);
    b.set(8);
    EXPECT_NE(a.hash(), b.hash()); // Overwhelmingly likely.
}

TEST(BlockSet, Contains)
{
    BlockSet a, b;
    a.set(3);
    a.set(100);
    a.set(200);
    b.set(3);
    b.set(200);
    EXPECT_TRUE(a.contains(b));
    EXPECT_FALSE(b.contains(a));
    EXPECT_TRUE(a.contains(a));
    EXPECT_TRUE(a.contains(BlockSet{}));
}

TEST(BlockSet, HashDistribution)
{
    std::set<size_t> hashes;
    for (int i = 0; i < 256; ++i) {
        BlockSet s;
        s.set(i);
        hashes.insert(s.hash());
    }
    // FNV folding may collide rarely; demand near-perfect spread.
    EXPECT_GE(hashes.size(), 240u);
}

TEST(Table, AlignsColumnsAndPrintsHeader)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RaggedRowsTolerated)
{
    Table t("ragged");
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(FormatHelpers, Doubles)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
    EXPECT_EQ(fmtPercent(0.25, 1), "25.0%");
    EXPECT_EQ(fmtPercent(0.0, 0), "0%");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = r.range(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
    EXPECT_EQ(r.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);
}

TEST(TimeBudget, UnlimitedNeverExpires)
{
    TimeBudget b(0.0);
    EXPECT_FALSE(b.expired());
    TimeBudget neg(-1.0);
    EXPECT_FALSE(neg.expired());
}

TEST(TimeBudget, TinyBudgetExpires)
{
    TimeBudget b(1e-9);
    // A nanosecond budget is certainly gone by now.
    EXPECT_TRUE(b.expired());
}

TEST(Stopwatch, MeasuresForwardProgress)
{
    Stopwatch w;
    const double a = w.seconds();
    const double b = w.seconds();
    EXPECT_GE(b, a);
    EXPECT_GE(a, 0.0);
}

TEST(Logging, VerboseToggle)
{
    const bool prev = setLogVerbose(false);
    EXPECT_FALSE(logVerbose());
    setLogVerbose(prev);
    EXPECT_EQ(logVerbose(), prev);
}

} // namespace
} // namespace tessel
