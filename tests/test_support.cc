/**
 * @file
 * Unit tests for the support library: bitsets, tables, RNG, timers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "support/bitset.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/cancel.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/threadpool.h"
#include "support/timer.h"

namespace tessel {
namespace {

TEST(BlockSet, StartsEmpty)
{
    BlockSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    // Probing far past the inline capacity is valid and reads false.
    for (int i = 0; i < 1024; i += 17)
        EXPECT_FALSE(s.test(i));
}

TEST(BlockSet, SetResetTest)
{
    BlockSet s;
    s.set(0);
    s.set(63);
    s.set(64);
    s.set(255);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(255));
    EXPECT_FALSE(s.test(1));
    EXPECT_EQ(s.count(), 4);
    s.reset(63);
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3);
}

TEST(BlockSet, EqualityAndHash)
{
    BlockSet a, b;
    a.set(7);
    a.set(130);
    b.set(130);
    EXPECT_NE(a, b);
    b.set(7);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.reset(7);
    b.set(8);
    EXPECT_NE(a.hash(), b.hash()); // Overwhelmingly likely.
}

TEST(BlockSet, Contains)
{
    BlockSet a, b;
    a.set(3);
    a.set(100);
    a.set(200);
    b.set(3);
    b.set(200);
    EXPECT_TRUE(a.contains(b));
    EXPECT_FALSE(b.contains(a));
    EXPECT_TRUE(a.contains(a));
    EXPECT_TRUE(a.contains(BlockSet{}));
}

TEST(BlockSet, HashDistribution)
{
    std::set<size_t> hashes;
    for (int i = 0; i < 256; ++i) {
        BlockSet s;
        s.set(i);
        hashes.insert(s.hash());
    }
    // FNV folding may collide rarely; demand near-perfect spread.
    EXPECT_GE(hashes.size(), 240u);
}

TEST(Table, AlignsColumnsAndPrintsHeader)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RaggedRowsTolerated)
{
    Table t("ragged");
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(FormatHelpers, Doubles)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
    EXPECT_EQ(fmtPercent(0.25, 1), "25.0%");
    EXPECT_EQ(fmtPercent(0.0, 0), "0%");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = r.range(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
    EXPECT_EQ(r.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);
}

TEST(TimeBudget, UnlimitedNeverExpires)
{
    TimeBudget b(0.0);
    EXPECT_FALSE(b.expired());
    TimeBudget neg(-1.0);
    EXPECT_FALSE(neg.expired());
}

TEST(TimeBudget, TinyBudgetExpires)
{
    TimeBudget b(1e-9);
    // A nanosecond budget is certainly gone by now.
    EXPECT_TRUE(b.expired());
}

TEST(TimeBudget, ConcurrentPollingIsConsistent)
{
    // The deadline is fixed at construction, so many threads may poll
    // one shared instance; an unlimited budget must read false from
    // every thread, and a tiny one true.
    TimeBudget unlimited(0.0);
    TimeBudget tiny(1e-9);
    std::atomic<int> false_votes{0};
    std::atomic<int> true_votes{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                if (!unlimited.expired())
                    ++false_votes;
                if (tiny.expired())
                    ++true_votes;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(false_votes.load(), 4000);
    EXPECT_EQ(true_votes.load(), 4000);
}

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
    // The pool is reusable after a wait().
    pool.submit([&sum] { sum += 1; });
    pool.wait();
    EXPECT_EQ(sum.load(), 99 * 100 / 2 + 1);
}

TEST(ThreadPool, WaiterHelpsOnTinyPool)
{
    // Even a 1-thread pool finishes promptly because wait() steals.
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(CancelToken, DefaultNeverCancelled)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ObservesSourceAndLinks)
{
    CancelSource a, b;
    const CancelToken linked = a.token().linked(b.token());
    EXPECT_FALSE(linked.cancelled());
    b.cancel();
    EXPECT_TRUE(linked.cancelled());
    EXPECT_FALSE(a.token().cancelled());
    EXPECT_TRUE(b.cancelled());
}

TEST(SharedIncumbent, ImprovesMonotonically)
{
    SharedIncumbent inc(100);
    EXPECT_EQ(inc.load(), 100);
    EXPECT_TRUE(inc.tryImprove(42));
    EXPECT_FALSE(inc.tryImprove(42)); // Equal value is not an improvement.
    EXPECT_FALSE(inc.tryImprove(50));
    EXPECT_EQ(inc.load(), 42);
}

TEST(SharedIncumbent, ConcurrentImprovesKeepMinimum)
{
    SharedIncumbent inc(1000000);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&inc, t] {
            for (int i = 999; i >= 0; --i)
                inc.tryImprove(4 * i + t);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(inc.load(), 0);
}

TEST(Stopwatch, MeasuresForwardProgress)
{
    Stopwatch w;
    const double a = w.seconds();
    const double b = w.seconds();
    EXPECT_GE(b, a);
    EXPECT_GE(a, 0.0);
}

TEST(Logging, VerboseToggle)
{
    const bool prev = setLogVerbose(false);
    EXPECT_FALSE(logVerbose());
    setLogVerbose(prev);
    EXPECT_EQ(logVerbose(), prev);
}

TEST(Logging, MessagesAtomicAcrossThreadPoolWorkers)
{
    // warn()/inform() must land whole, one line per message, even when
    // ThreadPool workers log concurrently (the planning service's miss
    // fan-out does exactly that). logMessage writes message + newline
    // in a single fputs, and stdio locks the FILE per call, so lines
    // can never interleave mid-message. Capture stderr through a temp
    // file shared by every worker and check each line verbatim.
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-logtest-", &dir));
    const std::string path = dir + "/stderr.txt";

    ASSERT_EQ(std::fflush(stderr), 0);
    const int saved = ::dup(STDERR_FILENO);
    ASSERT_GE(saved, 0);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_GE(::dup2(fd, STDERR_FILENO), 0);
    ::close(fd);

    constexpr int kMessages = 400;
    // Long payload: a torn write would interleave inside the x-run.
    const std::string payload(160, 'x');
    {
        ThreadPool pool(8);
        for (int i = 0; i < kMessages; ++i) {
            pool.submit([i, &payload] {
                inform("atomic-", i, "-", payload, "-end");
            });
        }
        pool.wait();
    }
    ASSERT_EQ(std::fflush(stderr), 0);
    ASSERT_GE(::dup2(saved, STDERR_FILENO), 0);
    ::close(saved);

    std::string captured, err;
    ASSERT_TRUE(readFile(path, &captured, &err)) << err;
    ::unlink(path.c_str());
    ::rmdir(dir.c_str());

    // Every line must be exactly one complete message; every message
    // must appear exactly once.
    std::set<int> seen;
    size_t pos = 0;
    while (pos < captured.size()) {
        size_t nl = captured.find('\n', pos);
        ASSERT_NE(nl, std::string::npos)
            << "unterminated line: " << captured.substr(pos, 80);
        const std::string line = captured.substr(pos, nl - pos);
        pos = nl + 1;
        const size_t tag = line.find("atomic-");
        ASSERT_NE(tag, std::string::npos) << "torn line: " << line;
        const size_t dash = line.find('-', tag + 7);
        ASSERT_NE(dash, std::string::npos) << "torn line: " << line;
        const int id = std::stoi(line.substr(tag + 7, dash - tag - 7));
        EXPECT_TRUE(seen.insert(id).second)
            << "message " << id << " split across lines";
        EXPECT_NE(line.find("-" + payload + "-end"), std::string::npos)
            << "torn line: " << line;
        // The whole line is one formatted message: "info: " prefix and
        // the source-location suffix must both be on this line.
        EXPECT_EQ(line.rfind("info: ", 0), 0u) << "torn line: " << line;
        EXPECT_NE(line.find("[" __FILE__), std::string::npos)
            << "suffix missing: " << line;
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kMessages));
}

} // namespace
} // namespace tessel
