/**
 * @file
 * Plan store tests: canonical fingerprint invariances, versioned
 * serialization round-trip exactness (property-tested over random
 * instances, including a >64-resource comm-aware one), corruption and
 * version-bump rejection, and the verification-on-load invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "core/search.h"
#include "placement/comm.h"
#include "placement/shapes.h"
#include "solver/oracle.h"
#include "store/fingerprint.h"
#include "store/serialize.h"
#include "store/store.h"
#include "support/io.h"
#include "support/rng.h"

namespace tessel {
namespace {

/** Fast search options for test instances. */
TesselOptions
quickOptions()
{
    TesselOptions opts;
    opts.maxRepetendMicrobatches = 2;
    opts.totalBudgetSec = 5.0;
    opts.repetendBudgetSec = 1.0;
    opts.phaseBudgetSec = 2.0;
    opts.numThreads = 1;
    return opts;
}

// ----------------------------------------------------------- Hash128

TEST(Hash128, HexRoundTrip)
{
    Hasher h;
    h.addU64(42);
    h.addString("tessel");
    const Hash128 digest = h.digest();
    Hash128 parsed;
    ASSERT_TRUE(Hash128::fromHex(digest.hex(), &parsed));
    EXPECT_EQ(parsed, digest);
    EXPECT_EQ(digest.hex().size(), 32u);

    EXPECT_FALSE(Hash128::fromHex("zz", &parsed));
    EXPECT_FALSE(Hash128::fromHex(std::string(32, 'g'), &parsed));
}

TEST(Hash128, DistinctInputsDistinctDigests)
{
    // Sanity distribution check: nearby integers avalanche apart.
    std::set<std::string> seen;
    for (uint64_t i = 0; i < 1000; ++i) {
        Hasher h;
        h.addU64(i);
        seen.insert(h.digest().hex());
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash128, ResourceSetCapacityInvariant)
{
    // A set that grew past 64 bits and shrank back hashes identically
    // to one that never grew.
    ResourceSet grown;
    grown.set(300);
    grown.reset(300);
    grown.set(2);
    grown.set(63);
    ResourceSet never_grown;
    never_grown.set(2);
    never_grown.set(63);
    Hasher a, b;
    a.addResourceSet(grown);
    b.addResourceSet(never_grown);
    EXPECT_EQ(a.digest(), b.digest());
}

// ------------------------------------------------------- fingerprints

TEST(Fingerprint, DeterministicAndSensitive)
{
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const Hash128 fp = fingerprintQuery(p, opts);
    EXPECT_EQ(fp, fingerprintQuery(p, opts));

    // Every plan-relevant knob moves the fingerprint.
    TesselOptions changed = opts;
    changed.memLimit = 4;
    EXPECT_NE(fp, fingerprintQuery(p, changed));
    changed = opts;
    changed.maxRepetendMicrobatches += 1;
    EXPECT_NE(fp, fingerprintQuery(p, changed));
    changed = opts;
    changed.lazy = !changed.lazy;
    EXPECT_NE(fp, fingerprintQuery(p, changed));
    changed = opts;
    changed.totalBudgetSec += 1.0;
    EXPECT_NE(fp, fingerprintQuery(p, changed));
    changed = opts;
    changed.initialMem = {1, 0, 0, 0};
    EXPECT_NE(fp, fingerprintQuery(p, changed));

    // A different placement structure moves it too.
    EXPECT_NE(fp, fingerprintQuery(makeShapeByName("X", 4), opts));
    ShapeCosts costs;
    costs.bwdSpan = 3;
    EXPECT_NE(fp, fingerprintQuery(makeShapeByName("V", 4, costs), opts));
}

TEST(Fingerprint, PlanInvariantKnobsExcluded)
{
    const Placement p = makeShapeByName("M", 4);
    TesselOptions a = quickOptions();
    TesselOptions b = a;
    b.numThreads = 7; // Any thread count returns the same plan.
    CancelSource src;
    b.cancel = src.token();
    EXPECT_EQ(fingerprintQuery(p, a), fingerprintQuery(p, b));

    // The display name is cosmetic.
    const Placement renamed("SomethingElse", p.numDevices(),
                            p.blocks());
    EXPECT_EQ(fingerprintQuery(p, a), fingerprintQuery(renamed, a));
}

TEST(Fingerprint, CanonicalizationDropsNoOpModelEntries)
{
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    TesselOptions base = quickOptions();
    base.cluster = &hs.cluster;
    base.edgeMB = hs.edgeMB;
    const Hash128 fp = fingerprintQuery(hs.placement, base);

    // Trailing unit speed factors are invisible.
    ClusterModel padded = hs.cluster;
    padded.speedFactor.push_back(1.0);
    padded.speedFactor.push_back(1.0);
    TesselOptions opts = base;
    opts.cluster = &padded;
    EXPECT_EQ(fp, fingerprintQuery(hs.placement, opts));

    // Link overrides equal to the default link, or naming devices the
    // placement does not have, are no-ops for ClusterModel::link.
    ClusterModel redundant = hs.cluster;
    redundant.linkOverride[{0, 1}] = redundant.defaultLink;
    redundant.linkOverride[{40, 41}] = LinkParams{9.0, 9.0};
    opts = base;
    opts.cluster = &redundant;
    EXPECT_EQ(fp, fingerprintQuery(hs.placement, opts));

    // A *meaningful* override does move the fingerprint.
    ClusterModel meaningful = hs.cluster;
    meaningful.linkOverride[{0, 1}] =
        LinkParams{hs.cluster.defaultLink.latency + 1.0,
                   hs.cluster.defaultLink.timePerMB};
    opts = base;
    opts.cluster = &meaningful;
    EXPECT_NE(fp, fingerprintQuery(hs.placement, opts));

    // A zero-MB entry equals a missing one (both cost latency only),
    // and entries for edges the placement lacks are never read. Edge
    // (3, 4) is V-shape's same-device f3 -> b3 edge, absent from the
    // hetero map; (997, 998) is not an edge at all.
    opts = base;
    opts.edgeMB[{3, 4}] = 0.0;
    opts.edgeMB[{997, 998}] = 5.0;
    EXPECT_EQ(fp, fingerprintQuery(hs.placement, opts));

    // Trailing zero initial memory equals an absent vector.
    opts = base;
    opts.initialMem = {0, 0, 0, 0};
    EXPECT_EQ(fp, fingerprintQuery(hs.placement, opts));
}

TEST(Fingerprint, TrivialClusterEqualsNullCluster)
{
    const Placement p = makeShapeByName("NN", 4);
    TesselOptions no_cluster = quickOptions();

    ClusterModel trivial;
    trivial.speedFactor.assign(4, 1.0);
    TesselOptions with_trivial = no_cluster;
    with_trivial.cluster = &trivial;
    // The search takes the homogeneous path bit for bit for both, so
    // they must share a fingerprint (and hence a cache entry).
    EXPECT_EQ(fingerprintQuery(p, no_cluster),
              fingerprintQuery(p, with_trivial));

    ClusterModel nontrivial = trivial;
    nontrivial.speedFactor[1] = 2.0;
    TesselOptions with_real = no_cluster;
    with_real.cluster = &nontrivial;
    EXPECT_NE(fingerprintQuery(p, no_cluster),
              fingerprintQuery(p, with_real));
}

// ---------------------------------------------------- cluster deltas

// ClusterDelta has no fingerprint of its own: a replan keys the store
// by fingerprintQuery of the *applied* model. These invariances are
// what make that sound.

TEST(Fingerprint, NoOpClusterDeltaKeepsFingerprint)
{
    HeteroShape hs = makeHeteroShapeByName("V", 4);
    TesselOptions opts = quickOptions();
    opts.cluster = &hs.cluster;
    opts.edgeMB = hs.edgeMB;
    const Hash128 base = fingerprintQuery(hs.placement, opts);

    // Empty delta: applied model is a verbatim copy.
    const ClusterModel copied = applyDelta(hs.cluster, ClusterDelta{}, 4);
    TesselOptions with_copy = opts;
    with_copy.cluster = &copied;
    EXPECT_EQ(fingerprintQuery(hs.placement, with_copy), base);

    // Identity delta: re-states values the model already holds (the
    // link entry restates the default, which canonicalization drops).
    ClusterDelta noop;
    noop.speedFactor[1] = hs.cluster.speedOf(1);
    noop.link[{0, 1}] = hs.cluster.defaultLink;
    EXPECT_TRUE(!noop.empty());
    const ClusterModel applied = applyDelta(hs.cluster, noop, 4);
    TesselOptions with_noop = opts;
    with_noop.cluster = &applied;
    EXPECT_EQ(fingerprintQuery(hs.placement, with_noop), base);

    // A real drift moves the key.
    ClusterDelta drift;
    drift.speedFactor[1] = hs.cluster.speedOf(1) * 2.0;
    const ClusterModel drifted = applyDelta(hs.cluster, drift, 4);
    TesselOptions with_drift = opts;
    with_drift.cluster = &drifted;
    EXPECT_NE(fingerprintQuery(hs.placement, with_drift), base);
}

TEST(Fingerprint, DisjointClusterDeltasComposeOrderIndependently)
{
    HeteroShape hs = makeHeteroShapeByName("X", 4);
    TesselOptions opts = quickOptions();
    opts.edgeMB = hs.edgeMB;

    ClusterDelta speed;
    speed.speedFactor[0] = 2.0;
    ClusterDelta link;
    LinkParams lp;
    lp.latency = 3.0;
    lp.timePerMB = 1.0;
    link.link[{2, 3}] = lp;

    const ClusterModel ab =
        applyDelta(applyDelta(hs.cluster, speed, 4), link, 4);
    const ClusterModel ba =
        applyDelta(applyDelta(hs.cluster, link, 4), speed, 4);
    TesselOptions with_ab = opts;
    with_ab.cluster = &ab;
    TesselOptions with_ba = opts;
    with_ba.cluster = &ba;
    EXPECT_EQ(fingerprintQuery(hs.placement, with_ab),
              fingerprintQuery(hs.placement, with_ba));
}

TEST(ClusterDeltaDeathTest, OutOfRangeRemovalRejected)
{
    ClusterModel base;
    base.speedFactor.assign(4, 1.0);
    ClusterDelta bad;
    bad.removedDevices = {7};
    EXPECT_DEATH(applyDelta(base, bad, 4), "outside");
}

// ------------------------------------------------------ serialization

/** Round-trip a searched result and assert byte and value exactness. */
void
expectRoundTrip(const Placement &placement, const TesselOptions &options)
{
    const TesselResult result = tesselSearch(placement, options);
    const Hash128 fp = fingerprintQuery(placement, options);
    const std::string bytes = serializeResult(result, fp);

    const LoadedResult loaded = deserializeResult(bytes);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.fingerprint, fp);
    EXPECT_EQ(loaded.result.found, result.found);
    EXPECT_EQ(loaded.result.period, result.period);
    EXPECT_EQ(loaded.result.lowerBound, result.lowerBound);
    EXPECT_EQ(loaded.result.nrUsed, result.nrUsed);
    EXPECT_EQ(loaded.result.commAware, result.commAware);
    EXPECT_TRUE(loaded.result.plan == result.plan);
    EXPECT_EQ(loaded.result.expansion.has_value(),
              result.expansion.has_value());
    if (result.expansion && loaded.result.expansion) {
        EXPECT_TRUE(loaded.result.expansion->placement ==
                    result.expansion->placement);
        EXPECT_EQ(loaded.result.expansion->origSpec,
                  result.expansion->origSpec);
        EXPECT_EQ(loaded.result.expansion->indexSpec,
                  result.expansion->indexSpec);
        EXPECT_EQ(loaded.result.expansion->linkEndpoints,
                  result.expansion->linkEndpoints);
    }

    // Byte-exact re-serialization: the strongest round-trip statement.
    EXPECT_EQ(serializeResult(loaded.result, loaded.fingerprint), bytes);

    // Found plans must still instantiate and agree on the makespan.
    if (result.found) {
        const int n = result.plan.minMicrobatches() + 1;
        EXPECT_EQ(loaded.result.plan.makespanFor(n),
                  result.plan.makespanFor(n));
    }
}

TEST(Serialize, ReferenceShapesRoundTrip)
{
    for (const char *shape : {"V", "X", "M", "NN", "K"})
        expectRoundTrip(makeShapeByName(shape, 4), quickOptions());
}

TEST(Serialize, CommAwareRoundTrip)
{
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    TesselOptions opts = quickOptions();
    opts.cluster = &hs.cluster;
    opts.edgeMB = hs.edgeMB;
    expectRoundTrip(hs.placement, opts);
}

/** Random placements via the differential oracle's generator. */
Placement
placementFromSolver(const SolverProblem &sp, const std::string &name)
{
    std::vector<BlockSpec> blocks;
    blocks.reserve(sp.blocks.size());
    for (size_t i = 0; i < sp.blocks.size(); ++i) {
        const SolverBlock &b = sp.blocks[i];
        BlockSpec spec;
        spec.name = "b" + std::to_string(i);
        spec.kind = b.memory < 0 ? BlockKind::Backward : BlockKind::Forward;
        spec.devices = b.devices;
        spec.span = b.span;
        spec.memory = b.memory;
        spec.deps = b.deps;
        blocks.push_back(std::move(spec));
    }
    return Placement(name, sp.numDevices, std::move(blocks));
}

TEST(Serialize, PropertyRandomInstancesRoundTripByteExact)
{
    Rng rng(0x9d5ce5u);
    RandomInstanceParams params;
    params.minBlocks = 3;
    params.maxBlocks = 7;
    params.maxDevices = 3;
    TesselOptions opts = quickOptions();
    opts.totalBudgetSec = 1.0;
    for (int trial = 0; trial < 30; ++trial) {
        params.withComm = trial % 3 == 0;
        const SolverProblem sp = randomInstance(rng, params);
        const Placement p = placementFromSolver(
            sp, "rand" + std::to_string(trial));
        SCOPED_TRACE(p.name());
        expectRoundTrip(p, opts);
    }
}

TEST(Serialize, WideCommAwareInstanceRoundTrips)
{
    // Sparse 71-device chain: with its two link pseudo-devices the
    // expanded placement's masks live past bit 64, exercising the
    // multi-word canonical paths end to end.
    std::vector<BlockSpec> blocks;
    const int devs[] = {0, 40, 70};
    for (int i = 0; i < 3; ++i) {
        BlockSpec f;
        f.name = "f" + std::to_string(i);
        f.devices = oneDevice(devs[i]);
        f.span = 2;
        f.memory = 1;
        if (i > 0)
            f.deps = {i - 1};
        blocks.push_back(f);
    }
    for (int i = 2; i >= 0; --i) {
        BlockSpec b;
        b.name = "b" + std::to_string(i);
        b.kind = BlockKind::Backward;
        b.devices = oneDevice(devs[i]);
        b.span = 3;
        b.memory = -1;
        b.deps = {i == 2 ? 2 : 3 + (2 - i) - 1};
        blocks.push_back(b);
    }
    const Placement p("wideV", 71, blocks);

    ClusterModel cluster = ClusterModel::uniformLink(71, {1.0, 0.25});
    cluster.speedFactor[40] = 1.5;
    TesselOptions opts = quickOptions();
    opts.cluster = &cluster;
    opts.edgeMB = crossDeviceEdgeMB(p, 4.0);

    // Confirm this instance really crosses the 64-resource line.
    EXPECT_GT(commResourceDemand(p, cluster, opts.edgeMB, opts.comm), 64);
    expectRoundTrip(p, opts);
}

TEST(Serialize, NotFoundResultRoundTrips)
{
    TesselResult result; // found = false, empty plan.
    result.breakdown.candidatesEnumerated = 3;
    const Hash128 fp{123, 456};
    const std::string bytes = serializeResult(result, fp);
    const LoadedResult loaded = deserializeResult(bytes);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_FALSE(loaded.result.found);
    EXPECT_EQ(serializeResult(loaded.result, loaded.fingerprint), bytes);
}

// -------------------------------------------- corruption & versioning

TEST(Serialize, TruncationAlwaysRejected)
{
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult result = tesselSearch(p, opts);
    const std::string bytes =
        serializeResult(result, fingerprintQuery(p, opts));

    for (size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 37)) {
        const LoadedResult loaded =
            deserializeResult(bytes.substr(0, len));
        EXPECT_FALSE(loaded.ok) << "accepted a " << len
                                << "-byte truncation";
    }
}

TEST(Serialize, BitFlipsAlwaysRejected)
{
    const Placement p = makeShapeByName("K", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult result = tesselSearch(p, opts);
    std::string bytes = serializeResult(result, fingerprintQuery(p, opts));

    // Every byte outside the fingerprint field (offsets [12, 28), which
    // is identification, not payload) is protected by the magic, the
    // version check, the length check, or the payload checksum.
    for (size_t off = 0; off < bytes.size(); ++off) {
        if (off >= 12 && off < 28)
            continue;
        std::string mutated = bytes;
        mutated[off] = static_cast<char>(mutated[off] ^ 0x40);
        const LoadedResult loaded = deserializeResult(mutated);
        EXPECT_FALSE(loaded.ok) << "accepted bit flip at offset " << off;
    }
}

TEST(Serialize, VersionBumpRejectedWithCleanError)
{
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    std::string bytes = serializeResult(tesselSearch(p, opts),
                                        fingerprintQuery(p, opts));
    bytes[kPlanVersionOffset] =
        static_cast<char>(kPlanFormatVersion + 1);
    const LoadedResult loaded = deserializeResult(bytes);
    EXPECT_FALSE(loaded.ok);
    EXPECT_NE(loaded.error.find("unsupported plan format version"),
              std::string::npos)
        << loaded.error;
}

TEST(Serialize, GarbageRejected)
{
    EXPECT_FALSE(deserializeResult("").ok);
    EXPECT_FALSE(deserializeResult("short").ok);
    EXPECT_FALSE(deserializeResult(std::string(4096, '\x5a')).ok);
}

TEST(Serialize, HostileMagnitudesRejected)
{
    // A well-formed entry may still carry absurd values; the decoder
    // must bound them so verification arithmetic stays in int64 and
    // allocations stay sane.
    const Placement p = makeShapeByName("V", 4);
    const int k = p.numBlocks();

    // Tiny plan claiming NR = 2^26: instantiating NR + 1 micro-batches
    // would need k * (2^26 + 1) start slots.
    RepetendAssignment huge_nr;
    huge_nr.r.assign(k, 0);
    huge_nr.numMicrobatches = 1 << 26;
    TesselResult hostile;
    hostile.found = true;
    hostile.plan = TesselPlan(p, huge_nr, std::vector<Time>(k, 0), 1, 1,
                              {}, {}, {}, {}, kUnlimitedMem, {});
    hostile.period = 1;
    LoadedResult loaded =
        deserializeResult(serializeResult(hostile, Hash128{}));
    EXPECT_FALSE(loaded.ok);
    EXPECT_NE(loaded.error.find("instance count"), std::string::npos)
        << loaded.error;

    // Window starts near int64 max would overflow the stride sums.
    RepetendAssignment small;
    small.r.assign(k, 0);
    small.numMicrobatches = 1;
    hostile.plan = TesselPlan(
        p, small, std::vector<Time>(k, Time{1} << 50), 1, 1, {}, {}, {},
        {}, kUnlimitedMem, {});
    loaded = deserializeResult(serializeResult(hostile, Hash128{}));
    EXPECT_FALSE(loaded.ok);
}

// ------------------------------------------------------- verification

TEST(Verify, AcceptsMatchingAndRejectsMismatchedQuery)
{
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    EXPECT_TRUE(verifyResultAgainstQuery(p, opts, result).ok);

    // Same options, structurally different placement: the stored plan
    // does not schedule this query.
    const Placement other = makeShapeByName("X", 4);
    const VerifyOutcome mismatch =
        verifyResultAgainstQuery(other, opts, result);
    EXPECT_FALSE(mismatch.ok);
    EXPECT_FALSE(mismatch.reason.empty());

    // Comm-awareness mismatch is detected before any expensive work.
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    TesselOptions comm_opts = quickOptions();
    comm_opts.cluster = &hs.cluster;
    comm_opts.edgeMB = hs.edgeMB;
    EXPECT_FALSE(
        verifyResultAgainstQuery(hs.placement, comm_opts, result).ok);
}

TEST(Verify, RenamedQueryServedByStructurallyEqualEntry)
{
    // The fingerprint excludes display names, so a query differing only
    // in names maps to the same cache entry — verification must accept
    // it (structural comparison), not thrash on the name mismatch.
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    std::vector<BlockSpec> renamed_blocks = p.blocks();
    for (size_t i = 0; i < renamed_blocks.size(); ++i)
        renamed_blocks[i].name = "other" + std::to_string(i);
    const Placement renamed("RenamedV", p.numDevices(), renamed_blocks);
    ASSERT_EQ(fingerprintQuery(p, opts), fingerprintQuery(renamed, opts));

    const VerifyOutcome verdict =
        verifyResultAgainstQuery(renamed, opts, result);
    EXPECT_TRUE(verdict.ok) << verdict.reason;

    // End to end: the disk entry stored under the original name answers
    // the renamed query.
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-rename-", &dir));
    const Hash128 fp = fingerprintQuery(p, opts);
    {
        PlanCache cache(dir);
        cache.put(fp, result);
    }
    PlanCache cache(dir);
    PlanCache::Source source;
    ASSERT_TRUE(cache.get(fp, renamed, opts, &source).has_value());
    EXPECT_EQ(source, PlanCache::Source::Disk);
    EXPECT_EQ(cache.stats().verifyFailures, 0u);
}

TEST(Verify, TamperedPlanRejectedByOracle)
{
    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    // Rebuild the plan with a shrunken period: instances overlap, which
    // the oracle's exclusivity check must catch (tryInstantiate reports
    // the inconsistency instead of panicking).
    const TesselPlan &plan = result.plan;
    TesselResult tampered = result;
    tampered.plan = TesselPlan(
        plan.placement(), plan.assignment(), plan.windowStart(),
        std::max<Time>(1, plan.period() / 2), plan.windowSpan(),
        plan.warmupRefs(), plan.warmupStarts(), plan.cooldownRefs(),
        plan.cooldownStarts(), plan.memLimit(), plan.initialMem());
    tampered.period = tampered.plan.period();
    const VerifyOutcome verdict =
        verifyResultAgainstQuery(p, opts, tampered);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.reason.empty());
}

// ---------------------------------------------------------- PlanCache

TEST(PlanCache, MemoryDiskAndVerifyFailurePaths)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-test-", &dir));

    const Placement p = makeShapeByName("M", 4);
    const TesselOptions opts = quickOptions();
    const Hash128 fp = fingerprintQuery(p, opts);
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    {
        PlanCache cache(dir);
        EXPECT_FALSE(cache.get(fp, p, opts).has_value());
        EXPECT_EQ(cache.stats().misses, 1u);

        cache.put(fp, result);
        PlanCache::Source source;
        const auto hit = cache.get(fp, p, opts, &source);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(source, PlanCache::Source::Memory);
        EXPECT_TRUE(hit->plan == result.plan);
    }

    {
        // Fresh cache, same dir: the disk tier answers, after oracle
        // verification.
        PlanCache cache(dir);
        PlanCache::Source source;
        const auto hit = cache.get(fp, p, opts, &source);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(source, PlanCache::Source::Disk);
        EXPECT_TRUE(hit->plan == result.plan);
        EXPECT_EQ(cache.stats().diskHits, 1u);

        // A mismatched query must NOT be served the entry even though
        // the fingerprint collides by construction here — and the
        // rejected entry is garbage-collected on the spot.
        const bool prev = setLogVerbose(false);
        PlanCache fresh(dir);
        const Placement other = makeShapeByName("NN", 4);
        EXPECT_FALSE(fresh.get(fp, other, opts).has_value());
        setLogVerbose(prev);
        EXPECT_EQ(fresh.stats().verifyFailures, 1u);
        EXPECT_FALSE(fresh.store().has(fp));
        EXPECT_GE(fresh.stats().gcRemoved, 1u);
    }

    {
        // Corrupt the payload on disk: rejected, counted, miss. (The
        // verify failure above removed the entry; publish it again.)
        {
            PlanCache republish(dir);
            republish.put(fp, result);
        }
        PlanStore store(dir);
        std::string bytes, err;
        ASSERT_TRUE(readFile(store.pathFor(fp), &bytes, &err)) << err;
        bytes[bytes.size() / 2] ^= 0x1;
        ASSERT_TRUE(writeFileAtomic(store.pathFor(fp), bytes, &err))
            << err;

        const bool prev = setLogVerbose(false);
        PlanCache cache(dir);
        EXPECT_FALSE(cache.get(fp, p, opts).has_value());
        setLogVerbose(prev);
        EXPECT_EQ(cache.stats().verifyFailures, 1u);
    }
}

TEST(PlanCache, LruEvictsBeyondCapacity)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-lru-", &dir));
    PlanCacheOptions cache_opts;
    cache_opts.memoryCapacity = 2;
    // One shard = one global LRU order, so "capacity 2, third insert
    // evicts the oldest" holds exactly; with multiple shards the
    // entries could land apart and nothing would need evicting.
    cache_opts.shards = 1;
    PlanCache cache(dir, cache_opts);

    const Placement p = makeShapeByName("V", 4);
    TesselOptions opts = quickOptions();
    std::vector<Hash128> fps;
    for (int i = 0; i < 3; ++i) {
        opts.memLimit = 10 + i; // Three distinct instances.
        const Hash128 fp = fingerprintQuery(p, opts);
        fps.push_back(fp);
        cache.put(fp, tesselSearch(p, opts));
    }
    EXPECT_EQ(cache.stats().evictions, 1u);

    // The evicted (oldest) entry falls back to the disk tier.
    opts.memLimit = 10;
    PlanCache::Source source;
    ASSERT_TRUE(cache.get(fps[0], p, opts, &source).has_value());
    EXPECT_EQ(source, PlanCache::Source::Disk);
}

TEST(PlanCache, MemoryCapacityHonoredBelowShardCount)
{
    // The requested capacity must be the *total* evictable capacity no
    // matter how it relates to the shard count: historically a capacity
    // below `shards` rounded each shard up to one entry, silently
    // holding `shards` results instead of `memoryCapacity`.
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-cap-", &dir));

    const struct
    {
        size_t capacity;
        size_t shards;
    } cases[] = {{2, 8}, {1, 8}, {5, 4}, {8, 8}, {3, 1}, {0, 8}};
    for (const auto &c : cases) {
        PlanCacheOptions cache_opts;
        cache_opts.memoryCapacity = c.capacity;
        cache_opts.shards = c.shards;
        PlanCache cache(dir, cache_opts);
        EXPECT_EQ(cache.memoryCapacity(),
                  std::max<size_t>(1, c.capacity))
            << "capacity " << c.capacity << ", shards " << c.shards;
    }

    // Behavioral check: capacity 2 under 8 requested shards keeps at
    // most 2 results in memory — the third insert must evict.
    PlanCacheOptions cache_opts;
    cache_opts.memoryCapacity = 2;
    cache_opts.shards = 8;
    PlanCache cache(dir, cache_opts);
    const Placement p = makeShapeByName("V", 4);
    TesselOptions opts = quickOptions();
    std::vector<Hash128> fps;
    std::vector<TesselOptions> variants;
    for (int i = 0; i < 3; ++i) {
        opts.memLimit = 20 + i;
        fps.push_back(fingerprintQuery(p, opts));
        variants.push_back(opts);
        cache.put(fps.back(), tesselSearch(p, opts));
    }
    EXPECT_GE(cache.stats().evictions, 1u);
    size_t in_memory = 0;
    for (size_t i = 0; i < fps.size(); ++i) {
        PlanCache::Source source;
        ASSERT_TRUE(cache.get(fps[i], p, variants[i], &source).has_value());
        in_memory += source == PlanCache::Source::Memory ? 1 : 0;
    }
    EXPECT_LE(in_memory, 2u);
}

// ----------------------------------------------------- Sharded layout

TEST(PlanStore, FlatEntriesMigratedToPrefixShardsOnOpen)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-migrate-", &dir));

    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const Hash128 fp = fingerprintQuery(p, opts);
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    {
        PlanCache cache(dir);
        cache.put(fp, p, opts, result);
    }

    // Demote the sharded entry (and sidecar) to the legacy flat layout
    // a pre-sharding writer would have produced.
    PlanStore store(dir);
    const std::string flat_plan = dir + "/" + fp.hex() + ".plan";
    const std::string flat_meta = dir + "/" + fp.hex() + ".meta";
    ASSERT_TRUE(fileExists(store.pathFor(fp)));
    ASSERT_EQ(::rename(store.pathFor(fp).c_str(), flat_plan.c_str()), 0);
    ASSERT_EQ(::rename(store.metaPathFor(fp).c_str(), flat_meta.c_str()),
              0);

    // Re-open: the flat files must migrate into their prefix shard and
    // remain fully readable (list, get, and a verified cache hit).
    PlanStore reopened(dir);
    EXPECT_TRUE(fileExists(reopened.pathFor(fp)));
    EXPECT_TRUE(fileExists(reopened.metaPathFor(fp)));
    EXPECT_FALSE(fileExists(flat_plan));
    EXPECT_FALSE(fileExists(flat_meta));
    ASSERT_EQ(reopened.list().size(), 1u);
    EXPECT_EQ(reopened.list()[0], fp);

    PlanCache cache(dir);
    PlanCache::Source source;
    const auto hit = cache.get(fp, p, opts, &source);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(source, PlanCache::Source::Disk);
    EXPECT_TRUE(hit->plan == result.plan);
    EXPECT_EQ(cache.indexedInstances(), 1u);
}

TEST(PlanCache, OrphanMetaSidecarSkippedAndDeletedOnOpen)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-orphan-", &dir));

    const Placement p = makeShapeByName("V", 4);
    const TesselOptions opts = quickOptions();
    const Hash128 fp = fingerprintQuery(p, opts);
    const TesselResult result = tesselSearch(p, opts);
    ASSERT_TRUE(result.found);

    {
        PlanCache cache(dir);
        cache.put(fp, p, opts, result);
    }

    // Delete only the .plan, stranding the .meta sidecar — the state a
    // crash between the two removals (or an external cleanup) leaves.
    PlanStore store(dir);
    ASSERT_TRUE(removeFile(store.pathFor(fp)));
    ASSERT_TRUE(fileExists(store.metaPathFor(fp)));

    // A fresh cache must not index the phantom instance; it deletes the
    // orphan sidecar instead of seeding the neighbor index with an
    // entry whose plan can never be fetched.
    PlanCache cache(dir);
    EXPECT_EQ(cache.indexedInstances(), 0u);
    EXPECT_FALSE(fileExists(store.metaPathFor(fp)));
    EXPECT_GE(cache.stats().gcRemoved, 1u);
    EXPECT_FALSE(cache.get(fp, p, opts).has_value());
}

TEST(PlanCache, RevalidationSweepDropsRottenEntries)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-store-reval-", &dir));

    const Placement p = makeShapeByName("V", 4);
    TesselOptions opts = quickOptions();
    const Hash128 good_fp = fingerprintQuery(p, opts);
    const TesselResult good = tesselSearch(p, opts);
    ASSERT_TRUE(good.found);
    opts.memLimit = 30;
    const Hash128 bad_fp = fingerprintQuery(p, opts);
    const TesselResult bad = tesselSearch(p, opts);
    ASSERT_TRUE(bad.found);

    PlanCache cache(dir);
    cache.put(good_fp, p, quickOptions(), good);
    cache.put(bad_fp, p, opts, bad);

    // Rot one entry on disk behind the cache's back.
    {
        PlanStore store(dir);
        std::string bytes, err;
        ASSERT_TRUE(readFile(store.pathFor(bad_fp), &bytes, &err)) << err;
        bytes[bytes.size() / 2] ^= 0x1;
        ASSERT_TRUE(writeFileAtomic(store.pathFor(bad_fp), bytes, &err))
            << err;
    }

    const bool prev = setLogVerbose(false);
    const size_t removed = cache.revalidateOnce();
    setLogVerbose(prev);
    EXPECT_GE(removed, 1u);
    EXPECT_GE(cache.stats().revalidated, 1u);
    EXPECT_GE(cache.stats().gcRemoved, 1u);

    // The rotten entry (and its sidecar) are gone; the good one still
    // serves — and a second sweep finds nothing left to collect.
    PlanStore store(dir);
    EXPECT_FALSE(store.has(bad_fp));
    EXPECT_FALSE(fileExists(store.metaPathFor(bad_fp)));
    EXPECT_TRUE(store.has(good_fp));
    const bool prev2 = setLogVerbose(false);
    EXPECT_EQ(cache.revalidateOnce(), 0u);
    setLogVerbose(prev2);
    PlanCache fresh(dir);
    EXPECT_TRUE(fresh.get(good_fp, p, quickOptions()).has_value());
}

} // namespace
} // namespace tessel
