/**
 * @file
 * Tests for runtime instantiation (Sec. IV-D): send/recv pairing and
 * global-order consistency, wait tagging, and code emission.
 */

#include <gtest/gtest.h>

#include "baselines/schedules.h"
#include "placement/shapes.h"
#include "runtime/codegen.h"
#include "runtime/instantiate.h"

namespace tessel {
namespace {

Program
vShapeProgram(int n)
{
    Problem prob(makeVShape(4), n, kUnlimitedMem);
    auto sched = schedule1F1B(prob);
    EXPECT_TRUE(sched.has_value());
    std::map<std::pair<int, int>, double> edges;
    for (int spec = 0; spec < prob.placement().numBlocks(); ++spec)
        for (int dep : prob.placement().block(spec).deps)
            edges[{dep, spec}] = 8.0;
    return instantiate(*sched, edges);
}

TEST(Instantiate, EverySendHasAMatchingRecv)
{
    const Program prog = vShapeProgram(4);
    std::map<int, int> sends, recvs;
    for (const auto &code : prog.code) {
        for (const Instruction &op : code) {
            if (op.kind == OpKind::Send)
                ++sends[op.tensor];
            if (op.kind == OpKind::Recv)
                ++recvs[op.tensor];
        }
    }
    EXPECT_EQ(static_cast<int>(sends.size()), prog.numTensors);
    EXPECT_EQ(sends.size(), recvs.size());
    for (const auto &[tensor, count] : sends) {
        EXPECT_EQ(count, 1);
        EXPECT_EQ(recvs[tensor], 1);
    }
}

TEST(Instantiate, CrossDeviceEdgeCountMatches)
{
    // V-shape with 4 devices: per micro-batch, 3 fwd handoffs + 1 local
    // f3->b3 + 3 bwd handoffs = 6 transfers.
    const Program prog = vShapeProgram(5);
    EXPECT_EQ(prog.numTensors, 5 * 6);
}

TEST(Instantiate, ComputeCountsMatchSchedule)
{
    const Program prog = vShapeProgram(3);
    EXPECT_EQ(prog.numComputeOps(), 8 * 3);
}

TEST(Instantiate, ConsumersWaitOnTheirTensors)
{
    const Program prog = vShapeProgram(2);
    // f1 (device 1) must wait on a tensor produced by f0.
    bool f1_waits = false;
    for (const Instruction &op : prog.code[1]) {
        if (op.kind == OpKind::Compute && op.name == "f1" &&
            !op.waits.empty()) {
            f1_waits = true;
        }
    }
    EXPECT_TRUE(f1_waits);
}

TEST(Instantiate, TensorParallelBlocksNeedNoInternalComm)
{
    // All-device blocks feeding all-device blocks transfer nothing.
    Problem prob(makeMShape(2), 3, kUnlimitedMem);
    auto sched = schedule1F1BPlus(prob);
    ASSERT_TRUE(sched.has_value());
    const Program prog = instantiate(*sched, {});
    for (const auto &code : prog.code) {
        for (const Instruction &op : code) {
            if (op.kind != OpKind::Send)
                continue;
            // No transfer may originate from a dependency whose consumer
            // holds the producer's devices.
            EXPECT_GE(op.tensor, 0);
        }
    }
    EXPECT_TRUE(true);
}

TEST(Instantiate, CommOrderConsistentAcrossDevices)
{
    // The per-device order of shared tensors must be identical for every
    // pair of devices (the paper's deadlock-freedom argument).
    const Program prog = vShapeProgram(6);
    for (int a = 0; a < prog.numDevices; ++a) {
        for (int b = a + 1; b < prog.numDevices; ++b) {
            std::vector<int> on_a, on_b;
            for (const Instruction &op : prog.code[a])
                if (op.kind != OpKind::Compute && op.peer == b)
                    on_a.push_back(op.tensor);
            for (const Instruction &op : prog.code[b])
                if (op.kind != OpKind::Compute && op.peer == a)
                    on_b.push_back(op.tensor);
            EXPECT_EQ(on_a, on_b) << "devices " << a << "," << b;
        }
    }
}

TEST(Instantiate, RecvPostedBeforeConsumerCompute)
{
    const Program prog = vShapeProgram(4);
    for (int d = 0; d < prog.numDevices; ++d) {
        std::map<int, size_t> recv_pos;
        for (size_t i = 0; i < prog.code[d].size(); ++i)
            if (prog.code[d][i].kind == OpKind::Recv)
                recv_pos[prog.code[d][i].tensor] = i;
        for (size_t i = 0; i < prog.code[d].size(); ++i) {
            const Instruction &op = prog.code[d][i];
            if (op.kind != OpKind::Compute)
                continue;
            for (int tensor : op.waits) {
                ASSERT_TRUE(recv_pos.count(tensor));
                EXPECT_LT(recv_pos[tensor], i);
            }
        }
    }
}

TEST(Codegen, EmitsAllOpsForDevice)
{
    const Program prog = vShapeProgram(2);
    const std::string code = emitDeviceCode(prog, 0);
    EXPECT_NE(code.find("def run_device_0"), std::string::npos);
    EXPECT_NE(code.find("blocks['f0']"), std::string::npos);
    EXPECT_NE(code.find("comm.isend"), std::string::npos);
    EXPECT_NE(code.find("comm.irecv"), std::string::npos);
    EXPECT_NE(code.find("comm.wait"), std::string::npos);
}

TEST(Codegen, AllDevicesEmitted)
{
    const Program prog = vShapeProgram(2);
    const std::string code = emitAllDeviceCode(prog);
    for (int d = 0; d < 4; ++d)
        EXPECT_NE(code.find("run_device_" + std::to_string(d)),
                  std::string::npos);
}

} // namespace
} // namespace tessel
