/**
 * @file
 * Counter-regression tests for the incremental solver hot paths: the
 * warm-started PeriodSearch must produce bit-identical periods and
 * start vectors while spending strictly fewer Bellman-Ford relaxation
 * passes than the cold path, and the persistent dominance memo must
 * leave binarySearchMakespan's answer unchanged while expanding
 * strictly fewer nodes than cold per-round re-solves. The instances
 * are fixed (GPT M-shape, mT5 NN-shape) and every solver involved is
 * deterministic, so the assertions lock exact effort reductions, not
 * just statistical tendencies.
 */

#include <gtest/gtest.h>

#include "core/repetend.h"
#include "core/repetend_solver.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"

namespace tessel {
namespace {

struct WarmColdTotals
{
    /** Probe passes: Bellman-Ford relaxations in Binary mode, value
     *  sweeps in Howard mode (each mode uses exactly one counter). */
    uint64_t warmEffort = 0;
    uint64_t coldEffort = 0;
    uint64_t warmNodes = 0;
    uint64_t coldNodes = 0;
    int feasible = 0;
};

/**
 * Solve every repetend candidate of @p p up to @p max_nr twice — warm
 * and cold — under @p mode, asserting identical feasibility, periods,
 * and start vectors, and accumulate the effort counters.
 */
WarmColdTotals
compareWarmCold(const Placement &p, int max_nr, McrMode mode,
                Mem mem_limit = kUnlimitedMem)
{
    WarmColdTotals t;
    for (const auto &a : allRepetends(p, max_nr)) {
        RepetendSolveOptions warm_opts;
        warm_opts.memLimit = mem_limit;
        warm_opts.mcr = mode;
        RepetendSolveOptions cold_opts = warm_opts;
        cold_opts.warmStart = false;
        const RepetendSchedule warm = solveRepetend(p, a, warm_opts);
        const RepetendSchedule cold = solveRepetend(p, a, cold_opts);
        EXPECT_EQ(warm.feasible, cold.feasible);
        if (warm.feasible && cold.feasible) {
            ++t.feasible;
            EXPECT_EQ(warm.period, cold.period);
            EXPECT_EQ(warm.start, cold.start); // Bit-identical plans.
            EXPECT_EQ(warm.windowSpan, cold.windowSpan);
        }
        t.warmEffort += warm.stats.relaxations + warm.stats.valueSweeps;
        t.coldEffort += cold.stats.relaxations + cold.stats.valueSweeps;
        t.warmNodes += warm.stats.nodes;
        t.coldNodes += cold.stats.nodes;
    }
    return t;
}

/** Warm/cold invariants that must hold in both MCR modes. */
void
expectWarmIdenticalAndCheaper(const Placement &p, int max_nr,
                              Mem mem_limit = kUnlimitedMem)
{
    for (const McrMode mode : {McrMode::Howard, McrMode::Binary}) {
        const WarmColdTotals t =
            compareWarmCold(p, max_nr, mode, mem_limit);
        EXPECT_GT(t.feasible, 0);
        // Warm start never changes the search tree, only probe cost.
        EXPECT_EQ(t.warmNodes, t.coldNodes);
        EXPECT_LT(t.warmEffort, t.coldEffort);
    }
}

TEST(IncrementalSolver, WarmStartMShapeIdenticalAndCheaper)
{
    expectWarmIdenticalAndCheaper(makeMShape(4), 2);
}

TEST(IncrementalSolver, WarmStartNnShapeIdenticalAndCheaper)
{
    expectWarmIdenticalAndCheaper(makeNnShape(4), 2);
}

TEST(IncrementalSolver, WarmStartIdenticalUnderMemoryPressure)
{
    // Memory branching exercises the deep decision stacks where the
    // anchor chain matters most; the V-shape 1F1B candidate set under
    // a tight cap forces reorder branches.
    expectWarmIdenticalAndCheaper(makeVShape(4), 3, 4);
}

/** Run warm/cold binarySearchMakespan on @p sp and compare. */
void
expectPersistentMemoCheaper(const SolverProblem &sp, uint64_t &warm_nodes,
                            uint64_t &cold_nodes, uint64_t &reused)
{
    BnbSolver warm_solver(sp);
    SolverOptions cold_opts;
    cold_opts.persistentMemo = false;
    BnbSolver cold_solver(sp, cold_opts);
    const SolveResult warm = warm_solver.binarySearchMakespan();
    const SolveResult cold = cold_solver.binarySearchMakespan();
    ASSERT_EQ(warm.feasible(), cold.feasible());
    if (!warm.feasible())
        return;
    EXPECT_EQ(warm.makespan, cold.makespan);
    // Cross-check against direct minimization on a fresh solver.
    BnbSolver direct(sp);
    EXPECT_EQ(direct.minimizeMakespan().makespan, warm.makespan);
    // The ready list is maintained incrementally: its insertion count
    // is bounded by dependency-edge work per node, not nodes x blocks.
    EXPECT_GT(warm.stats.readyPushes, 0u);
    EXPECT_LT(warm.stats.readyPushes,
              warm.stats.nodes * sp.blocks.size() + sp.blocks.size());
    warm_nodes += warm.stats.nodes;
    cold_nodes += cold.stats.nodes;
    reused += warm.stats.memoReused;
}

TEST(IncrementalSolver, PersistentMemoMShapeFewerNodes)
{
    // The memory cap matters: it derails the est/tail greedy first
    // dive, so the binary search runs real SAT rounds with shrinking
    // deadlines (the regime cross-round proofs accelerate). Unlimited
    // memory makes the first dive optimal and every later round UNSAT
    // at a *rising* deadline, which proofs can never cover.
    uint64_t warm_nodes = 0, cold_nodes = 0, reused = 0;
    for (int n = 2; n <= 3; ++n) {
        Problem prob(makeMShape(4), n, 4);
        expectPersistentMemoCheaper(buildFullInstance(prob), warm_nodes,
                                    cold_nodes, reused);
    }
    EXPECT_LT(warm_nodes, cold_nodes);
    EXPECT_GT(reused, 0u);
}

TEST(IncrementalSolver, PersistentMemoNnShapeFewerNodes)
{
    uint64_t warm_nodes = 0, cold_nodes = 0, reused = 0;
    for (int n = 2; n <= 3; ++n) {
        Problem prob(makeNnShape(4), n, 4);
        expectPersistentMemoCheaper(buildFullInstance(prob), warm_nodes,
                                    cold_nodes, reused);
    }
    EXPECT_LT(warm_nodes, cold_nodes);
    EXPECT_GT(reused, 0u);
}

TEST(IncrementalSolver, PersistentMemoDecideSequencesStaySound)
{
    // Manual decide() sequences with non-monotone deadlines: proof
    // levels must only prune rounds they cover, so every answer has to
    // match a fresh cold solver's.
    Problem prob(makeVShape(4), 3);
    const SolverProblem sp = buildFullInstance(prob);
    BnbSolver persistent(sp);
    BnbSolver probe(sp);
    const Time opt = probe.minimizeMakespan().makespan;
    for (const Time d :
         {opt - 1, opt, opt + 5, opt - 2, opt + 1, opt - 1, opt}) {
        SolverOptions cold_opts;
        cold_opts.persistentMemo = false;
        BnbSolver fresh(sp, cold_opts);
        EXPECT_EQ(persistent.decide(d).feasible(), fresh.decide(d).feasible())
            << "deadline " << d;
    }
}

} // namespace
} // namespace tessel
