/**
 * @file
 * Metrics registry and flight-recorder tracing tests: exact counts
 * under concurrent hammering, le-inclusive histogram bucketing and
 * quantile interpolation, Prometheus exposition golden (mangling,
 * suffixes, label escaping), the global enable switch, snapshot-time
 * collectors, ring-buffer wraparound, span nesting, and
 * snapshot-while-writing consistency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.h"
#include "support/tracing.h"

namespace tessel {
namespace {

/** Force the global enable switch for a scope and restore it after
 *  (tests share one process-global flag). */
struct ScopedMetricsEnabled
{
    explicit ScopedMetricsEnabled(bool on)
        : previous(MetricsRegistry::enabled())
    {
        MetricsRegistry::setEnabled(on);
    }
    ~ScopedMetricsEnabled() { MetricsRegistry::setEnabled(previous); }
    const bool previous;
};

const MetricSample *
findSample(const MetricsSnapshot &snap, const std::string &name,
           const std::string &labelValue = "")
{
    for (const MetricSample &s : snap.samples)
        if (s.name == name && s.labelValue == labelValue)
            return &s;
    return nullptr;
}

// ----------------------------------------------------------- Counter

TEST(Metrics, CounterConcurrentHammerIsExact)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Counter *c = reg.counter("test.hammer");
    constexpr int kThreads = 8;
    constexpr uint64_t kIncrements = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([c] {
            for (uint64_t i = 0; i < kIncrements; ++i)
                c->inc();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c->value(), kThreads * kIncrements);
}

TEST(Metrics, CounterDisabledIsNoOp)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("test.noop");
    {
        ScopedMetricsEnabled off(false);
        c->inc(1000);
    }
    EXPECT_EQ(c->value(), 0u);
    {
        ScopedMetricsEnabled on(true);
        c->inc(3);
    }
    EXPECT_EQ(c->value(), 3u);
}

TEST(Metrics, RegistrationReturnsStableHandles)
{
    MetricsRegistry reg;
    Counter *a = reg.counter("test.same");
    Counter *b = reg.counter("test.same");
    EXPECT_EQ(a, b);
    // Distinct label values are distinct series.
    Counter *l1 = reg.counter("test.labelled", "k", "v1");
    Counter *l2 = reg.counter("test.labelled", "k", "v2");
    EXPECT_NE(l1, l2);
    EXPECT_EQ(l1, reg.counter("test.labelled", "k", "v1"));
}

// ------------------------------------------------------------- Gauge

TEST(Metrics, GaugeSetMaxIsMonotone)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Gauge *g = reg.gauge("test.highwater");
    g->setMax(5);
    g->setMax(3);
    EXPECT_EQ(g->value(), 5);
    g->setMax(9);
    EXPECT_EQ(g->value(), 9);
    g->set(2);
    EXPECT_EQ(g->value(), 2);
    g->add(4);
    EXPECT_EQ(g->value(), 6);
}

// --------------------------------------------------------- Histogram

TEST(Metrics, HistogramBucketBoundariesAreLeInclusive)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Histogram *h = reg.histogram("test.hist", {1.0, 10.0, 100.0});
    h->observe(0.5);   // bucket 0 (<= 1)
    h->observe(1.0);   // bucket 0: le-buckets are inclusive
    h->observe(1.001); // bucket 1
    h->observe(10.0);  // bucket 1
    h->observe(100.0); // bucket 2
    h->observe(500.0); // overflow
    const MetricsSnapshot snap = reg.snapshot();
    const MetricSample *s = findSample(snap, "test.hist");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->counts.size(), 4u);
    EXPECT_EQ(s->counts[0], 2u);
    EXPECT_EQ(s->counts[1], 2u);
    EXPECT_EQ(s->counts[2], 1u);
    EXPECT_EQ(s->counts[3], 1u);
    EXPECT_EQ(s->count, 6u);
    EXPECT_NEAR(s->sum, 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 500.0, 1e-6);
}

TEST(Metrics, HistogramQuantileInterpolates)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Histogram *h = reg.histogram("test.quant", {10.0, 20.0, 40.0});
    // 10 observations uniformly into (10, 20]: the q-quantile should
    // interpolate linearly inside that bucket.
    for (int i = 0; i < 10; ++i)
        h->observe(15.0);
    const MetricsSnapshot snap = reg.snapshot();
    const MetricSample *s = findSample(snap, "test.quant");
    ASSERT_NE(s, nullptr);
    EXPECT_NEAR(histogramQuantile(*s, 0.5), 15.0, 1e-9);
    EXPECT_NEAR(histogramQuantile(*s, 1.0), 20.0, 1e-9);
    // Ranks landing in the overflow bucket clamp to the last finite
    // bound instead of inventing an upper edge.
    h->observe(1000.0);
    const MetricsSnapshot snap2 = reg.snapshot();
    const MetricSample *s2 = findSample(snap2, "test.quant");
    ASSERT_NE(s2, nullptr);
    EXPECT_NEAR(histogramQuantile(*s2, 0.999), 40.0, 1e-9);
    // Empty histogram: 0.
    Histogram *empty = reg.histogram("test.quant_empty", {1.0});
    (void)empty;
    const MetricsSnapshot snap3 = reg.snapshot();
    const MetricSample *s3 = findSample(snap3, "test.quant_empty");
    ASSERT_NE(s3, nullptr);
    EXPECT_EQ(histogramQuantile(*s3, 0.5), 0.0);
}

// ----------------------------------------------------- Prometheus text

TEST(Metrics, PrometheusExpositionGolden)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    reg.counter("store.memory_hits")->inc(7);
    reg.counter("loop.rejected", "verdict", "queue-full")->inc(2);
    reg.gauge("loop.queue_depth")->set(3);
    reg.histogram("svc.ms", {1.0, 5.0})->observe(1.0);
    reg.histogram("svc.ms", {1.0, 5.0})->observe(2.0);
    const std::string text = toPrometheus(reg.snapshot());
    const std::string expected =
        "# TYPE loop_queue_depth gauge\n"
        "loop_queue_depth 3\n"
        "# TYPE loop_rejected_total counter\n"
        "loop_rejected_total{verdict=\"queue-full\"} 2\n"
        "# TYPE store_memory_hits_total counter\n"
        "store_memory_hits_total 7\n"
        "# TYPE svc_ms histogram\n"
        "svc_ms_bucket{le=\"1\"} 1\n"
        "svc_ms_bucket{le=\"5\"} 2\n"
        "svc_ms_bucket{le=\"+Inf\"} 2\n"
        "svc_ms_sum 3\n"
        "svc_ms_count 2\n";
    EXPECT_EQ(text, expected);
}

TEST(Metrics, PrometheusEscapesLabelValues)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    reg.counter("test.esc", "tenant", "a\"b\\c\nd")->inc();
    const std::string text = toPrometheus(reg.snapshot());
    EXPECT_NE(text.find("tenant=\"a\\\"b\\\\c\\nd\""), std::string::npos)
        << text;
}

TEST(Metrics, JsonExposesDottedNamesAndHistograms)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    reg.counter("store.misses")->inc(4);
    reg.histogram("svc.ms", {1.0})->observe(0.5);
    const std::string json = toJson(reg.snapshot());
    EXPECT_NE(json.find("\"name\": \"store.misses\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"value\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos) << json;
}

// --------------------------------------------------------- Collectors

TEST(Metrics, CollectorsRunAtSnapshotAndAreRemovable)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Counter *mirrored = reg.counter("test.mirrored");
    uint64_t external = 0, lastMirrored = 0;
    const int id = reg.addCollector([&] {
        mirrored->inc(external - lastMirrored);
        lastMirrored = external;
    });
    external = 5;
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(findSample(snap, "test.mirrored")->counterValue, 5u);
    external = 9; // delta publishing: only +4 on the next snapshot
    snap = reg.snapshot();
    EXPECT_EQ(findSample(snap, "test.mirrored")->counterValue, 9u);
    reg.removeCollector(id);
    external = 100;
    snap = reg.snapshot();
    EXPECT_EQ(findSample(snap, "test.mirrored")->counterValue, 9u);
}

TEST(Metrics, SnapshotWhileWritingSeesConsistentTotals)
{
    ScopedMetricsEnabled on(true);
    MetricsRegistry reg;
    Counter *c = reg.counter("test.live");
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed))
            c->inc();
    });
    uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
        const MetricsSnapshot snap = reg.snapshot();
        const MetricSample *s = findSample(snap, "test.live");
        ASSERT_NE(s, nullptr);
        // Counter totals must be monotone across snapshots taken
        // concurrently with the writer.
        EXPECT_GE(s->counterValue, last);
        last = s->counterValue;
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    EXPECT_EQ(c->value(), c->value());
}

// ------------------------------------------------------------ Tracing

TEST(Tracing, RingWraparoundKeepsMostRecent)
{
    TraceRecorder rec(/*capacity=*/8);
    rec.setEnabled(true);
    for (uint64_t i = 0; i < 20; ++i) {
        SpanRecord r;
        r.name = "wrap";
        r.tsMicros = i;
        r.durMicros = 1;
        rec.record(r);
    }
    EXPECT_EQ(rec.recorded(), 20u);
    const std::vector<SpanRecord> spans = rec.collect();
    ASSERT_EQ(spans.size(), 8u);
    // Oldest first, and only the most recent capacity spans survive.
    for (size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].tsMicros, 12 + i);
}

TEST(Tracing, SpanNestingRecordsBothLevels)
{
    TraceRecorder rec(/*capacity=*/16);
    rec.setEnabled(true);
    {
        TraceSpan outer("outer", rec);
        outer.setLabel("q1");
        outer.setArg("value_sweeps", 42);
        {
            TraceSpan inner("inner", rec);
            inner.setArg("sat_checks", 7);
        }
    }
    const std::vector<SpanRecord> spans = rec.collect();
    ASSERT_EQ(spans.size(), 2u);
    // collect() orders by start time; spans with the same microsecond
    // timestamp keep ring order, so look both up by name instead.
    const SpanRecord *outerRec = nullptr, *innerRec = nullptr;
    for (const SpanRecord &s : spans) {
        if (std::string(s.name) == "outer")
            outerRec = &s;
        else if (std::string(s.name) == "inner")
            innerRec = &s;
    }
    ASSERT_NE(outerRec, nullptr);
    ASSERT_NE(innerRec, nullptr);
    EXPECT_EQ(std::string(outerRec->label), "q1");
    ASSERT_EQ(outerRec->nargs, 1u);
    EXPECT_STREQ(outerRec->argKey[0], "value_sweeps");
    EXPECT_EQ(outerRec->argValue[0], 42u);
    ASSERT_EQ(innerRec->nargs, 1u);
    EXPECT_STREQ(innerRec->argKey[0], "sat_checks");
    EXPECT_EQ(innerRec->argValue[0], 7u);
    // The outer span brackets the inner one.
    EXPECT_LE(outerRec->tsMicros, innerRec->tsMicros);
    EXPECT_GE(outerRec->tsMicros + outerRec->durMicros,
              innerRec->tsMicros + innerRec->durMicros);
}

TEST(Tracing, DisabledSpansCostNothingAndRecordNothing)
{
    TraceRecorder rec(/*capacity=*/4);
    rec.setEnabled(false);
    {
        TraceSpan span("ghost", rec);
        EXPECT_FALSE(span.active());
        span.setArg("k", 1); // must be a safe no-op
    }
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_TRUE(rec.collect().empty());
}

TEST(Tracing, CollectWhileWritingDropsTornSlotsOnly)
{
    TraceRecorder rec(/*capacity=*/32);
    rec.setEnabled(true);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&rec, &stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                SpanRecord r;
                r.name = "load";
                r.durMicros = 1;
                rec.record(r);
            }
        });
    for (int i = 0; i < 100; ++i) {
        const std::vector<SpanRecord> spans = rec.collect();
        EXPECT_LE(spans.size(), rec.capacity());
        for (const SpanRecord &s : spans) {
            // A torn slot would show an arbitrary name pointer; every
            // collected span must be fully published.
            ASSERT_NE(s.name, nullptr);
            EXPECT_STREQ(s.name, "load");
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : writers)
        t.join();
}

TEST(Tracing, ChromeTraceJsonShape)
{
    TraceRecorder rec(/*capacity=*/4);
    rec.setEnabled(true);
    {
        TraceSpan span("phase-solve", rec);
        span.setLabel("V/hetero");
        span.setArg("sat_checks", 3);
    }
    const std::string json = toChromeTrace(rec.collect());
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u) << json;
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"phase-solve\""), std::string::npos);
    EXPECT_NE(json.find("\"sat_checks\": 3"), std::string::npos);
    EXPECT_NE(json.find("V/hetero"), std::string::npos);
}

} // namespace
} // namespace tessel
