/**
 * @file
 * Tests for the cluster simulator: timing semantics of blocking vs
 * non-blocking communication (Fig. 7), link model, memory/OOM
 * accounting, and busy/wait bookkeeping.
 */

#include <gtest/gtest.h>

#include "baselines/schedules.h"
#include "placement/shapes.h"
#include "runtime/instantiate.h"
#include "sim/runner.h"

namespace tessel {
namespace {

/** A minimal hand-built program: compute A on dev0 -> send -> B on dev1. */
Program
handoffProgram(double mb)
{
    Program prog;
    prog.numDevices = 2;
    prog.numTensors = 1;
    prog.code.resize(2);

    Instruction a;
    a.kind = OpKind::Compute;
    a.name = "A";
    a.spanMs = 10;
    prog.code[0].push_back(a);

    Instruction send;
    send.kind = OpKind::Send;
    send.tensor = 0;
    send.peer = 1;
    send.sizeMB = mb;
    prog.code[0].push_back(send);

    Instruction extra;
    extra.kind = OpKind::Compute;
    extra.name = "A2";
    extra.spanMs = 50;
    prog.code[0].push_back(extra);

    Instruction recv;
    recv.kind = OpKind::Recv;
    recv.tensor = 0;
    recv.peer = 0;
    recv.sizeMB = mb;
    prog.code[1].push_back(recv);

    Instruction b;
    b.kind = OpKind::Compute;
    b.name = "B";
    b.spanMs = 10;
    b.waits = {0};
    prog.code[1].push_back(b);
    return prog;
}

TEST(Sim, SingleHandoffTiming)
{
    ClusterSpec cs;
    cs.nonBlockingComm = true;
    cs.linkLatencyMs = 1.0;
    cs.nvlinkGBs = 1.0; // 1 GB/s so sizes translate directly to ms.
    const SimResult r = simulate(handoffProgram(1024.0), cs);
    ASSERT_TRUE(r.ok);
    // A: 10ms; transfer: 1 + 1000ms; B: 10ms => ~1021ms.
    EXPECT_NEAR(r.makespanMs, 10.0 + 1.0 + 1000.0 + 10.0, 1e-6);
    EXPECT_NEAR(r.busyMs[0], 60.0, 1e-9);
    EXPECT_NEAR(r.busyMs[1], 10.0, 1e-9);
}

TEST(Sim, NonBlockingOverlapsComputeWithComm)
{
    ClusterSpec nb, bl;
    nb.nonBlockingComm = true;
    bl.nonBlockingComm = false;
    nb.linkLatencyMs = bl.linkLatencyMs = 0.0;
    nb.nvlinkGBs = bl.nvlinkGBs = 1.0;
    const Program prog = handoffProgram(1024.0); // 1000ms transfer.
    const SimResult r_nb = simulate(prog, nb);
    const SimResult r_bl = simulate(prog, bl);
    ASSERT_TRUE(r_nb.ok);
    ASSERT_TRUE(r_bl.ok);
    // Blocking: dev0 runs A2 only after the transfer completes.
    EXPECT_NEAR(r_bl.makespanMs, 10 + 1000 + 50, 1e-6);
    // Non-blocking: A2 overlaps the transfer.
    EXPECT_NEAR(r_nb.makespanMs, 10 + 1000 + 10, 1e-6);
    EXPECT_LT(r_nb.makespanMs, r_bl.makespanMs + 1e-9);
}

TEST(Sim, CrossServerUsesInfiniband)
{
    Program prog = handoffProgram(1024.0);
    ClusterSpec cs;
    cs.linkLatencyMs = 0.0;
    cs.nvlinkGBs = 100.0;
    cs.ibGBs = 1.0;
    cs.gpusPerServer = 1; // Devices 0 and 1 on different servers.
    const SimResult slow = simulate(prog, cs);
    cs.gpusPerServer = 8; // Same server.
    const SimResult fast = simulate(prog, cs);
    EXPECT_GT(slow.makespanMs, fast.makespanMs * 10);
}

TEST(Sim, OomDetection)
{
    Program prog;
    prog.numDevices = 1;
    prog.code.resize(1);
    Instruction big;
    big.kind = OpKind::Compute;
    big.spanMs = 1;
    big.memDeltaMB = 100;
    prog.code[0].push_back(big);
    ClusterSpec cs;
    cs.memCapacityMB = 50;
    const SimResult r = simulate(prog, cs);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.oom);
    EXPECT_EQ(r.oomDevice, 0);
    EXPECT_EQ(r.peakMemMB[0], 100);
}

TEST(Sim, InitialMemoryCounts)
{
    Program prog;
    prog.numDevices = 1;
    prog.code.resize(1);
    Instruction op;
    op.kind = OpKind::Compute;
    op.spanMs = 1;
    op.memDeltaMB = 10;
    prog.code[0].push_back(op);
    ClusterSpec cs;
    cs.memCapacityMB = 15;
    cs.initialMemMB = {10};
    const SimResult r = simulate(prog, cs);
    EXPECT_TRUE(r.oom);
    cs.initialMemMB = {5};
    EXPECT_FALSE(simulate(prog, cs).oom);
}

TEST(Sim, DeadlockDetectedOnMisorderedComm)
{
    // Two transfers posted in opposite orders on the two devices under
    // blocking communication: a rendezvous cycle.
    Program prog;
    prog.numDevices = 2;
    prog.numTensors = 2;
    prog.code.resize(2);
    auto comm = [&](OpKind kind, int tensor, DeviceId peer) {
        Instruction op;
        op.kind = kind;
        op.tensor = tensor;
        op.peer = peer;
        op.sizeMB = 1.0;
        return op;
    };
    prog.code[0].push_back(comm(OpKind::Send, 0, 1));
    prog.code[0].push_back(comm(OpKind::Recv, 1, 1));
    prog.code[1].push_back(comm(OpKind::Recv, 1, 0));
    // Device 1 wants tensor 1 first, but device 0 sends tensor 0 first;
    // under blocking semantics both make progress only if orders agree.
    prog.code[1].insert(prog.code[1].begin(),
                        comm(OpKind::Send, 0, 0)); // Wrong direction.
    // tensor 0: send on dev0 and send on dev1 -> unmatched pair.
    ClusterSpec cs;
    cs.nonBlockingComm = false;
    const SimResult r = simulate(prog, cs);
    EXPECT_FALSE(r.ok);
}

TEST(Sim, EndToEndScheduleSimulationIsConsistent)
{
    Problem prob(makeVShape(4), 8, kUnlimitedMem);
    auto sched = schedule1F1B(prob);
    ASSERT_TRUE(sched.has_value());
    std::map<std::pair<int, int>, double> edges;
    ClusterSpec cs;
    cs.linkLatencyMs = 0.0; // Zero-cost comm: sim time == schedule time.
    const SimResult r = simulateSchedule(*sched, edges, cs);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.makespanMs, static_cast<double>(sched->makespan()),
                1e-6);
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_NEAR(r.busyMs[d],
                    static_cast<double>(sched->busyTime(d)), 1e-9);
}

TEST(Sim, CommCostsExtendTheMakespan)
{
    Problem prob(makeVShape(4), 8, kUnlimitedMem);
    auto sched = schedule1F1B(prob);
    ASSERT_TRUE(sched.has_value());
    std::map<std::pair<int, int>, double> edges;
    for (int spec = 0; spec < prob.placement().numBlocks(); ++spec)
        for (int dep : prob.placement().block(spec).deps)
            edges[{dep, spec}] = 64.0;
    ClusterSpec cheap, pricey;
    cheap.linkLatencyMs = 0.0;
    pricey.linkLatencyMs = 0.5;
    pricey.nvlinkGBs = 10.0;
    const SimResult fast = simulateSchedule(*sched, edges, cheap);
    const SimResult slow = simulateSchedule(*sched, edges, pricey);
    EXPECT_GT(slow.makespanMs, fast.makespanMs);
    EXPECT_GT(slow.commMs, 0.0);
}

TEST(Sim, WaitPlusBusyEqualsMakespan)
{
    Problem prob(makeVShape(4), 6, kUnlimitedMem);
    auto sched = schedule1F1B(prob);
    ASSERT_TRUE(sched.has_value());
    const SimResult r = simulateSchedule(*sched, {}, ClusterSpec{});
    ASSERT_TRUE(r.ok);
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_NEAR(r.busyMs[d] + r.waitMs[d], r.makespanMs, 1e-9);
    EXPECT_GT(r.slowestBusyMs(), 0.0);
    EXPECT_GE(r.slowestWaitFraction(), 0.0);
    EXPECT_LE(r.slowestWaitFraction(), 1.0);
}

} // namespace
} // namespace tessel
