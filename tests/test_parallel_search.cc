/**
 * @file
 * Tests for the parallel candidate sweep: serial/parallel plan identity,
 * cooperative cancellation, and mergeable stats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "core/search.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"
#include "support/cancel.h"
#include "support/threadpool.h"
#include "support/timer.h"

namespace tessel {
namespace {

TesselOptions
optsWithThreads(int threads)
{
    TesselOptions o;
    o.totalBudgetSec = 120.0;
    o.numThreads = threads;
    return o;
}

/** Full plan identity: assignment, window, period, and instantiation. */
void
expectSamePlan(const TesselResult &serial, const TesselResult &parallel)
{
    ASSERT_EQ(serial.found, parallel.found);
    if (!serial.found)
        return;
    EXPECT_EQ(serial.period, parallel.period);
    EXPECT_EQ(serial.nrUsed, parallel.nrUsed);
    EXPECT_EQ(serial.plan.assignment().r, parallel.plan.assignment().r);
    EXPECT_EQ(serial.plan.windowStart(), parallel.plan.windowStart());
    EXPECT_EQ(serial.plan.windowSpan(), parallel.plan.windowSpan());
    const int n = serial.plan.minMicrobatches() + 2;
    EXPECT_EQ(serial.plan.makespanFor(n), parallel.plan.makespanFor(n));
}

TEST(ParallelSearch, GptMShapeMatchesSerial)
{
    const Placement p = makeMShape(4);
    const auto serial = tesselSearch(p, optsWithThreads(1));
    ASSERT_TRUE(serial.found);
    EXPECT_EQ(serial.breakdown.threadsUsed, 1);
    for (int threads : {2, 4}) {
        const auto parallel = tesselSearch(p, optsWithThreads(threads));
        EXPECT_EQ(parallel.breakdown.threadsUsed, threads);
        expectSamePlan(serial, parallel);
    }
}

TEST(ParallelSearch, Mt5NnShapeMatchesSerial)
{
    const Placement p = makeNnShape(4);
    const auto serial = tesselSearch(p, optsWithThreads(1));
    ASSERT_TRUE(serial.found);
    for (int threads : {2, 4}) {
        const auto parallel = tesselSearch(p, optsWithThreads(threads));
        expectSamePlan(serial, parallel);
    }
}

TEST(ParallelSearch, NonLazyMatchesSerial)
{
    const Placement p = makeMShape(4);
    TesselOptions serial_opts = optsWithThreads(1);
    serial_opts.lazy = false;
    TesselOptions parallel_opts = optsWithThreads(4);
    parallel_opts.lazy = false;
    expectSamePlan(tesselSearch(p, serial_opts),
                   tesselSearch(p, parallel_opts));
}

TEST(ParallelSearch, MemoryLimitedMatchesSerial)
{
    // A finite memory budget exercises the cutoff + entry-memory paths.
    const Placement p = makeVShape(4);
    TesselOptions serial_opts = optsWithThreads(1);
    serial_opts.memLimit = 6;
    TesselOptions parallel_opts = optsWithThreads(3);
    parallel_opts.memLimit = 6;
    expectSamePlan(tesselSearch(p, serial_opts),
                   tesselSearch(p, parallel_opts));
}

TEST(ParallelSearch, CancellationStopsOversizedSolve)
{
    // A 10-micro-batch time-optimal instance runs for minutes if left
    // alone; an asynchronous cancel must stop it near-immediately.
    Problem prob(makeMShape(4), 10);
    const SolverProblem sp = buildFullInstance(prob);
    CancelSource source;
    SolverOptions so;
    so.cancel = source.token();
    BnbSolver solver(sp, so);

    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        source.cancel();
    });
    Stopwatch watch;
    const SolveResult r = solver.minimizeMakespan();
    killer.join();
    EXPECT_LT(watch.seconds(), 10.0);
    EXPECT_TRUE(r.stats.cancelled);
    EXPECT_NE(r.status, SolveStatus::Infeasible);
}

TEST(ParallelSearch, SearchHonorsExternalCancel)
{
    CancelSource source;
    source.cancel();
    TesselOptions opts = optsWithThreads(4);
    opts.cancel = source.token();
    Stopwatch watch;
    const auto r = tesselSearch(makeMShape(4), opts);
    EXPECT_LT(watch.seconds(), 10.0);
    EXPECT_FALSE(r.found); // Cancelled before any candidate completed.
}

TEST(ParallelSearch, SolveStatsMergeIsAssociative)
{
    SolveStats a, b, c;
    a.nodes = 3;
    a.seconds = 0.5;
    a.memoHits = 1;
    b.nodes = 7;
    b.boundPrunes = 4;
    b.seedPrunes = 2;
    b.budgetExhausted = true;
    c.nodes = 11;
    c.seconds = 1.25;
    c.seedPrunes = 5;
    c.cancelled = true;

    SolveStats left = a;   // (a + b) + c
    SolveStats ab = a;
    ab.merge(b);
    left = ab;
    left.merge(c);

    SolveStats right = a;  // a + (b + c)
    SolveStats bc = b;
    bc.merge(c);
    right.merge(bc);

    EXPECT_EQ(left.nodes, right.nodes);
    EXPECT_DOUBLE_EQ(left.seconds, right.seconds);
    EXPECT_EQ(left.budgetExhausted, right.budgetExhausted);
    EXPECT_EQ(left.cancelled, right.cancelled);
    EXPECT_EQ(left.memoHits, right.memoHits);
    EXPECT_EQ(left.boundPrunes, right.boundPrunes);
    EXPECT_EQ(left.seedPrunes, right.seedPrunes);
}

TEST(ParallelSearch, BreakdownMergeIsAssociative)
{
    SearchBreakdown a, b, c;
    a.repetendSeconds = 1.0;
    a.candidatesEnumerated = 5;
    a.threadsUsed = 2;
    b.warmupSeconds = 0.25;
    b.candidatesSolved = 3;
    b.earlyExit = true;
    b.seedMakespan = 40;
    b.seededNodesPruned = 17;
    c.cooldownSeconds = 0.5;
    c.satChecks = 9;
    c.threadsUsed = 8;
    c.budgetExhausted = true;
    c.seedMakespan = 25;
    c.seededNodesPruned = 4;

    SearchBreakdown ab = a;
    ab.merge(b);
    SearchBreakdown left = ab;
    left.merge(c);

    SearchBreakdown bc = b;
    bc.merge(c);
    SearchBreakdown right = a;
    right.merge(bc);

    EXPECT_DOUBLE_EQ(left.repetendSeconds, right.repetendSeconds);
    EXPECT_DOUBLE_EQ(left.warmupSeconds, right.warmupSeconds);
    EXPECT_DOUBLE_EQ(left.cooldownSeconds, right.cooldownSeconds);
    EXPECT_EQ(left.candidatesEnumerated, right.candidatesEnumerated);
    EXPECT_EQ(left.candidatesSolved, right.candidatesSolved);
    EXPECT_EQ(left.satChecks, right.satChecks);
    EXPECT_EQ(left.threadsUsed, right.threadsUsed);
    EXPECT_EQ(left.earlyExit, right.earlyExit);
    EXPECT_EQ(left.budgetExhausted, right.budgetExhausted);
    // seedMakespan merges by max (all workers saw the same seed, some
    // saw none), seededNodesPruned by sum — both associative.
    EXPECT_EQ(left.seedMakespan, right.seedMakespan);
    EXPECT_EQ(left.seededNodesPruned, right.seededNodesPruned);
    EXPECT_EQ(left.seedMakespan, 40);
    EXPECT_EQ(left.seededNodesPruned, 21u);
}

TEST(ParallelSearch, SweepSpeedsUpOnRealMulticore)
{
    // PR 1 shipped a >=2x speedup expectation that only holds with
    // enough physical parallelism; on the 1-core CI runner 4 workers
    // run at ~0.95x serial. Guard on hardware_concurrency() instead of
    // hardware luck: machines that cannot show the speedup skip, and
    // machines that can must deliver it. hardware_concurrency() counts
    // SMT threads, not cores, so the asserted ratio is tiered: 4-7
    // logical CPUs may be only 2 physical cores (~1.5x realistic),
    // while >= 8 must show the full 2x.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
        GTEST_SKIP() << "parallel speedup needs >= 4 logical CPUs, have "
                     << hw;
    }
    const double required = hw >= 8 ? 2.0 : 1.4;
    // NN-Shape has the largest candidate pool of the canonical shapes,
    // so the sweep dominates wall time and scales with workers.
    const Placement p = makeNnShape(4);

    Stopwatch serial_watch;
    const auto serial = tesselSearch(p, optsWithThreads(1));
    const double serial_sec = serial_watch.seconds();
    ASSERT_TRUE(serial.found);

    // Best of two runs damps scheduler noise on shared CI machines.
    double parallel_sec = std::numeric_limits<double>::max();
    for (int attempt = 0; attempt < 2; ++attempt) {
        Stopwatch parallel_watch;
        const auto parallel = tesselSearch(p, optsWithThreads(4));
        parallel_sec = std::min(parallel_sec, parallel_watch.seconds());
        ASSERT_TRUE(parallel.found);
        expectSamePlan(serial, parallel);
    }
    EXPECT_GE(serial_sec / parallel_sec, required)
        << "serial " << serial_sec << "s vs parallel " << parallel_sec
        << "s with " << hw << " logical CPUs";
}

TEST(ParallelSearch, RepetendSolveHonorsCancelToken)
{
    const Placement p = makeMShape(4);
    RepetendAssignment assign;
    assign.r.assign(p.numBlocks(), 0);
    assign.numMicrobatches = 1;

    CancelSource source;
    source.cancel();
    RepetendSolveOptions rso;
    rso.cancel = source.token();
    const RepetendSchedule sched = solveRepetend(p, assign, rso);
    EXPECT_TRUE(sched.stats.cancelled);
    EXPECT_FALSE(sched.proven);
}

} // namespace
} // namespace tessel
