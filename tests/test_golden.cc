/**
 * @file
 * Golden schedule tests: lock in the Fig. 8 repetend structure and the
 * Table II bubble ratios the search currently reproduces for the five
 * canonical shapes, so search refactors cannot silently regress plan
 * quality, and pin the guarantee that a zero-comm, uniform-speed cluster
 * model leaves plans bit-identical to the homogeneous path.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TesselOptions
goldenOptions()
{
    // Golden values must not depend on machine load: run every solve to
    // completion (the searches below all terminate quickly via the
    // lower-bound early exit, so unlimited budgets are safe). A tripped
    // budget would otherwise pick a different — equally valid but not
    // golden — plan under sanitizers or CI contention.
    TesselOptions opts;
    opts.totalBudgetSec = 0.0;
    opts.repetendBudgetSec = 0.0;
    opts.phaseBudgetSec = 0.0;
    return opts;
}

/** Expected plan structure of one shape at 4 devices, default costs. */
struct GoldenPlan
{
    const char *name;
    int nr;
    Time period;
    std::vector<int> assignment;
    std::vector<Time> windowStart;
    Time makespan12; ///< makespanFor(12)
};

/**
 * Values recorded from the current search (they match the paper's
 * Fig. 8 structure where it prints one: M-Shape trains with NR=6 and a
 * period of 9 = the per-device work, i.e. a zero-bubble repetend).
 */
const GoldenPlan kGolden[] = {
    {"V", 4, 3, {3, 3, 3, 3, 3, 2, 1, 0}, {0, 1, 2, 3, 4, 3, 2, 1}, 45},
    {"X", 3, 6, {2, 2, 2, 1, 1, 1, 0, 0, 2, 2, 2, 2, 2, 2, 1, 1},
     {2, 3, 4, 1, 2, 5, 4, 6, 0, 1, 2, 3, 4, 6, 2, 4}, 81},
    {"M", 6, 9, {5, 5, 5, 4, 4, 4, 3, 2, 1, 0, 0},
     {0, 1, 3, 1, 3, 4, 1, 2, 1, 2, 7}, 117},
    {"NN", 6, 9, {5, 5, 5, 5, 4, 4, 4, 3, 3, 3, 3, 2, 2, 2, 1, 1, 0, 0},
     {0, 1, 3, 4, 1, 2, 4, 1, 2, 3, 5, 1, 3, 5, 2, 5, 5, 7}, 121},
    {"K", 3, 6, {2, 2, 2, 2, 2, 2, 2, 2, 0, 0},
     {0, 0, 2, 2, 3, 4, 6, 6, 1, 1}, 75},
};

TEST(Golden, Fig8RepetendStructure)
{
    for (const GoldenPlan &g : kGolden) {
        const auto r = tesselSearch(makeShapeByName(g.name, 4),
                                    goldenOptions());
        ASSERT_TRUE(r.found) << g.name;
        EXPECT_EQ(r.nrUsed, g.nr) << g.name;
        EXPECT_EQ(r.period, g.period) << g.name;
        EXPECT_EQ(r.period, r.lowerBound) << g.name;
        EXPECT_EQ(r.plan.assignment().r, g.assignment) << g.name;
        EXPECT_EQ(r.plan.windowStart(), g.windowStart) << g.name;
        EXPECT_EQ(r.plan.makespanFor(12), g.makespan12) << g.name;
    }
}

TEST(Golden, Table2SteadyBubbleRatios)
{
    // Table II: Tessel reaches a zero-bubble steady state on every
    // placement it shares with the baselines (the paper's 0% column).
    for (const GoldenPlan &g : kGolden) {
        const auto r = tesselSearch(makeShapeByName(g.name, 4),
                                    goldenOptions());
        ASSERT_TRUE(r.found) << g.name;
        EXPECT_DOUBLE_EQ(r.plan.steadyBubbleRate(), 0.0) << g.name;
        EXPECT_DOUBLE_EQ(r.plan.worstDeviceBubbleRate(), 0.0) << g.name;
    }
}

/** Heterogeneous/comm goldens at 2 devices (new in the comm search). */
struct GoldenHetero
{
    const char *name;
    int nr;
    Time period;
    Time makespanNrPlus4;
};

const GoldenHetero kGoldenHetero[] = {
    {"V", 3, 5, 43},  {"X", 2, 10, 64}, {"M", 3, 15, 111},
    {"NN", 4, 16, 137}, {"K", 2, 10, 63},
};

TEST(Golden, HeterogeneousCommPlans)
{
    for (const GoldenHetero &g : kGoldenHetero) {
        const HeteroShape hs = makeHeteroShapeByName(g.name, 2);
        TesselOptions opts = goldenOptions();
        opts.cluster = &hs.cluster;
        opts.edgeMB = hs.edgeMB;
        const auto r = tesselSearch(hs.placement, opts);
        ASSERT_TRUE(r.found) << g.name;
        EXPECT_EQ(r.nrUsed, g.nr) << g.name;
        EXPECT_EQ(r.period, g.period) << g.name;
        EXPECT_EQ(r.period, r.lowerBound) << g.name;
        EXPECT_EQ(r.plan.makespanFor(r.plan.minMicrobatches() + 4),
                  g.makespanNrPlus4)
            << g.name;
    }
}

TEST(Golden, TrivialClusterModelIsBitIdentical)
{
    // Acceptance gate of the comm-aware search: with zero comm cost and
    // uniform speed factors, passing a cluster model must not change a
    // single start time on any of the five shapes.
    for (const GoldenPlan &g : kGolden) {
        const Placement p = makeShapeByName(g.name, 4);
        const auto plain = tesselSearch(p, goldenOptions());
        ASSERT_TRUE(plain.found) << g.name;

        ClusterModel trivial;
        trivial.speedFactor.assign(4, 1.0);
        // Zero-latency, zero-cost links on every pair.
        trivial.linkOverride[{0, 1}] = LinkParams{};
        ASSERT_TRUE(trivial.isTrivial(4));

        TesselOptions opts = goldenOptions();
        opts.cluster = &trivial;
        opts.edgeMB = crossDeviceEdgeMB(p, 64.0); // Volumes are ignored.
        const auto modeled = tesselSearch(p, opts);
        ASSERT_TRUE(modeled.found) << g.name;
        EXPECT_FALSE(modeled.commAware) << g.name;
        EXPECT_FALSE(modeled.expansion.has_value()) << g.name;

        EXPECT_EQ(plain.period, modeled.period) << g.name;
        EXPECT_EQ(plain.nrUsed, modeled.nrUsed) << g.name;
        EXPECT_EQ(plain.plan.assignment().r, modeled.plan.assignment().r)
            << g.name;
        EXPECT_EQ(plain.plan.windowStart(), modeled.plan.windowStart())
            << g.name;

        const int n = plain.plan.minMicrobatches() + 3;
        const Schedule a = plain.plan.instantiate(n);
        const Schedule b = modeled.plan.instantiate(n);
        for (int id = 0; id < a.problem().numInstances(); ++id) {
            const BlockRef ref = a.problem().refOf(id);
            ASSERT_EQ(a.start(ref), b.start(ref))
                << g.name << " instance " << id;
        }
    }
}

} // namespace
} // namespace tessel
