/**
 * @file
 * Planning-service tests: batch deduplication, the memory/disk/search
 * answer paths with bit-identical plans across service instances,
 * corrupted and version-bumped store entries falling back to a fresh
 * search, concurrent fan-out determinism, and per-query budgets — plus
 * the daemon loop: streaming answers while a worker is busy, clean
 * queue-full and per-tenant throttling rejections, graceful and
 * cancelling shutdown (cancelled answers flagged and never cached), and
 * the lock-free hot path keeping lockContended at zero on a read-only
 * trace.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "placement/shapes.h"
#include "service/loop.h"
#include "service/service.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/logging.h"

namespace tessel {
namespace {

/** Small homogeneous batch (fast; hetero variants covered separately). */
std::vector<PlanQuery>
smallBatch()
{
    return referenceShapeQueries(4, /*include_hetero=*/false,
                                 /*budget_sec=*/5.0);
}

ServiceOptions
optionsFor(const std::string &dir)
{
    ServiceOptions opts;
    opts.cacheDir = dir;
    opts.numThreads = 1;
    return opts;
}

std::vector<std::string>
hashes(const BatchReport &report)
{
    std::vector<std::string> out;
    for (const QueryReport &q : report.queries)
        out.push_back(q.planHash);
    return out;
}

TEST(PlanningService, ColdThenMemoryThenDiskWithIdenticalPlans)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-test-", &dir));
    const std::vector<PlanQuery> batch = smallBatch();

    PlanningService service(optionsFor(dir));
    const BatchReport cold = service.runBatch(batch);
    EXPECT_EQ(cold.searches, cold.uniqueInstances);
    EXPECT_EQ(cold.memoryHits + cold.diskHits, 0u);
    for (const QueryReport &q : cold.queries) {
        EXPECT_STREQ(q.source, "search");
        EXPECT_TRUE(q.found) << q.label;
    }

    const BatchReport warm = service.runBatch(batch);
    EXPECT_EQ(warm.memoryHits, warm.uniqueInstances);
    EXPECT_EQ(warm.searches, 0u);
    EXPECT_EQ(hashes(warm), hashes(cold));
    EXPECT_DOUBLE_EQ(warm.hitRate(), 1.0);

    // A fresh service sharing the directory simulates a new process:
    // every answer comes from a verified disk entry, bit-identical.
    PlanningService fresh(optionsFor(dir));
    const BatchReport disk = fresh.runBatch(batch);
    EXPECT_EQ(disk.diskHits, disk.uniqueInstances);
    EXPECT_EQ(disk.searches, 0u);
    EXPECT_EQ(hashes(disk), hashes(cold));
    for (const QueryReport &q : disk.queries)
        EXPECT_STREQ(q.source, "disk");
    EXPECT_EQ(fresh.cache().stats().verifyFailures, 0u);
}

TEST(PlanningService, DeduplicatesIdenticalInstances)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-dedup-", &dir));

    PlanQuery q;
    q.label = "a";
    q.placement = makeShapeByName("V", 4);
    q.options.totalBudgetSec = 5.0;
    q.options.numThreads = 1;
    PlanQuery q2 = q;
    q2.label = "b";
    // Label and thread count are not part of the instance identity.
    q2.options.numThreads = 3;
    PlanQuery q3 = q;
    q3.label = "c";

    PlanningService service(optionsFor(dir));
    const BatchReport report = service.runBatch({q, q2, q3});
    EXPECT_EQ(report.uniqueInstances, 1u);
    EXPECT_EQ(report.searches, 1u);
    ASSERT_EQ(report.queries.size(), 3u);
    EXPECT_EQ(report.queries[0].fingerprint,
              report.queries[1].fingerprint);
    EXPECT_EQ(report.queries[0].planHash, report.queries[2].planHash);
}

TEST(PlanningService, CorruptedEntryFallsBackToSearch)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-corrupt-", &dir));
    PlanQuery q;
    q.label = "V";
    q.placement = makeShapeByName("V", 4);
    q.options.totalBudgetSec = 5.0;

    PlanningService service(optionsFor(dir));
    QueryReport cold;
    const TesselResult cold_result = service.runOne(q, &cold);
    ASSERT_TRUE(cold_result.found);
    EXPECT_STREQ(cold.source, "search");

    // Flip one payload byte of the stored entry.
    const std::vector<Hash128> entries = service.cache().store().list();
    ASSERT_EQ(entries.size(), 1u);
    const std::string path = service.cache().store().pathFor(entries[0]);
    std::string bytes, err;
    ASSERT_TRUE(readFile(path, &bytes, &err)) << err;
    std::string corrupted = bytes;
    corrupted[bytes.size() / 2] ^= 0x10;
    ASSERT_TRUE(writeFileAtomic(path, corrupted, &err)) << err;

    const bool prev = setLogVerbose(false);
    PlanningService recovered(optionsFor(dir));
    QueryReport rec;
    const TesselResult rec_result = recovered.runOne(q, &rec);
    setLogVerbose(prev);
    EXPECT_STREQ(rec.source, "search");
    EXPECT_EQ(recovered.cache().stats().verifyFailures, 1u);
    ASSERT_TRUE(rec_result.found);
    // The fallback search reproduces the identical plan.
    EXPECT_EQ(rec.planHash, cold.planHash);
    EXPECT_TRUE(rec_result.plan == cold_result.plan);

    // Version-bumped entries are likewise rejected, not misparsed.
    std::string bumped = bytes;
    bumped[kPlanVersionOffset] =
        static_cast<char>(kPlanFormatVersion + 7);
    ASSERT_TRUE(writeFileAtomic(path, bumped, &err)) << err;
    const bool prev2 = setLogVerbose(false);
    PlanningService after_bump(optionsFor(dir));
    QueryReport bump_rep;
    after_bump.runOne(q, &bump_rep);
    setLogVerbose(prev2);
    EXPECT_STREQ(bump_rep.source, "search");
    EXPECT_EQ(after_bump.cache().stats().verifyFailures, 1u);
    EXPECT_EQ(bump_rep.planHash, cold.planHash);
}

TEST(PlanningService, ParallelFanOutMatchesSerial)
{
    std::string serial_dir, parallel_dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-serial-", &serial_dir));
    ASSERT_TRUE(makeTempDir("tessel-svc-parallel-", &parallel_dir));
    // Identical-plans-under-fan-out is only promised for searches that
    // *complete*: a wall budget expiring mid-sweep truncates to a
    // best-so-far that depends on how much CPU the contended pool gave
    // this query. Debug builds push the heavyweight shapes close to the
    // batch's 5 s budget, so give every budget enough headroom that no
    // solve truncates even with four searches timesharing the cores.
    std::vector<PlanQuery> batch = smallBatch();
    for (PlanQuery &q : batch) {
        q.options.totalBudgetSec = 60.0;
        q.options.repetendBudgetSec = 60.0;
        q.options.phaseBudgetSec = 60.0;
    }

    PlanningService serial(optionsFor(serial_dir));
    ServiceOptions par_opts = optionsFor(parallel_dir);
    par_opts.numThreads = 4;
    PlanningService parallel(par_opts);

    const BatchReport a = serial.runBatch(batch);
    const BatchReport b = parallel.runBatch(batch);
    // The pool fan-out must not change any plan (determinism contract).
    EXPECT_EQ(hashes(a), hashes(b));
    EXPECT_EQ(b.searches, b.uniqueInstances);
}

TEST(PlanningService, PerQueryBudgetOverrideChangesIdentity)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-budget-", &dir));
    PlanQuery q;
    q.label = "M";
    q.placement = makeShapeByName("M", 4);
    q.options.totalBudgetSec = 5.0;

    PlanningService service(optionsFor(dir));
    QueryReport base;
    service.runOne(q, &base);

    // A service-level budget override is part of the effective options,
    // hence of the fingerprint: the same query under a different budget
    // is a different instance and must not reuse the cache entry.
    ServiceOptions tighter = optionsFor(dir);
    tighter.perQueryBudgetSec = 4.0;
    PlanningService tight_service(tighter);
    QueryReport tight;
    tight_service.runOne(q, &tight);
    EXPECT_NE(tight.fingerprint, base.fingerprint);
    EXPECT_STREQ(tight.source, "search");
}

TEST(PlanningService, HeteroQueriesServedAndVerifiedCommAware)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-hetero-", &dir));
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    PlanQuery q;
    q.label = "V/hetero";
    q.placement = hs.placement;
    q.options.totalBudgetSec = 5.0;
    q.options.edgeMB = hs.edgeMB;
    q.cluster = std::make_shared<ClusterModel>(hs.cluster);

    PlanningService service(optionsFor(dir));
    QueryReport cold;
    const TesselResult result = service.runOne(q, &cold);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.commAware);

    // Disk answer re-verifies against the comm-expanded placement.
    PlanningService fresh(optionsFor(dir));
    QueryReport warm;
    const TesselResult cached = fresh.runOne(q, &warm);
    EXPECT_STREQ(warm.source, "disk");
    EXPECT_EQ(warm.planHash, cold.planHash);
    EXPECT_TRUE(cached.plan == result.plan);
    EXPECT_EQ(fresh.cache().stats().verifyFailures, 0u);
}

// -------------------------------------------------------- ServiceLoop

ServiceLoopOptions
loopOptionsFor(const std::string &dir, int workers = 2)
{
    ServiceLoopOptions opts;
    opts.service = optionsFor(dir);
    opts.workers = workers;
    return opts;
}

/** A reference query by coordinates (label stays batch-identical). */
PlanQuery
refQuery(const std::string &shape, const std::string &variant = "homogeneous")
{
    auto q = referenceShapeQuery(shape, variant, 4, /*budget_sec=*/5.0);
    EXPECT_TRUE(q.has_value()) << shape << "/" << variant;
    return *q;
}

TEST(ServiceLoop, StreamAnsweredWhileOneWorkerBusy)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-stream-", &dir));

    ServiceLoop loop(loopOptionsFor(dir, /*workers=*/2));

    // Warm the cache so the streamed queries below are hot.
    std::vector<std::string> shapes = {"V", "X", "M"};
    std::atomic<size_t> warm{0};
    for (const std::string &s : shapes)
        loop.submit(refQuery(s), "warmup",
                    [&warm](const ServiceLoop::Response &) { ++warm; });
    loop.drain();
    ASSERT_EQ(warm.load(), shapes.size());

    // Occupy one worker: a query whose callback blocks until released.
    // The other worker must keep draining the stream meanwhile — a
    // long-running (cold) search never stalls hot traffic.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::promise<void> entered;
    loop.submit(refQuery("NN"), "cold",
                [&entered, released](const ServiceLoop::Response &) {
                    entered.set_value();
                    released.wait();
                });
    entered.get_future().wait();

    std::atomic<size_t> answered{0};
    std::atomic<size_t> hits{0};
    for (const std::string &s : shapes)
        loop.submit(refQuery(s), "hot",
                    [&](const ServiceLoop::Response &resp) {
                        hits += resp.report.source == std::string("memory")
                                    ? 1
                                    : 0;
                        EXPECT_TRUE(resp.report.found);
                        ++answered;
                    });
    // Wait for the hot stream with the blocker still parked.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (answered.load() < shapes.size() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(answered.load(), shapes.size())
        << "hot queries stalled behind a busy worker";
    EXPECT_EQ(hits.load(), shapes.size());

    release.set_value();
    loop.drain();
    const LoopStats stats = loop.stats();
    EXPECT_EQ(stats.completed, 2 * shapes.size() + 1);
    EXPECT_EQ(stats.accepted, stats.submitted);
}

TEST(ServiceLoop, QueueFullRejectsWithCleanError)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-full-", &dir));

    ServiceLoopOptions opts = loopOptionsFor(dir, /*workers=*/1);
    opts.queueDepth = 1;
    ServiceLoop loop(std::move(opts));

    // Park the single worker inside a callback, then fill the queue.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::promise<void> entered;
    loop.submit(refQuery("V"), "a",
                [&entered, released](const ServiceLoop::Response &) {
                    entered.set_value();
                    released.wait();
                });
    entered.get_future().wait();

    std::atomic<size_t> queued_answers{0};
    EXPECT_EQ(loop.submit(refQuery("X"), "a",
                          [&queued_answers](const ServiceLoop::Response &r) {
                              EXPECT_EQ(r.admission, Admission::Accepted);
                              ++queued_answers;
                          }),
              Admission::Accepted);

    // Queue is now at capacity: the next submission must be rejected
    // synchronously with a typed verdict and a per-query error — never
    // silently dropped, never a crash.
    bool rejected_cb = false;
    const Admission verdict = loop.submit(
        refQuery("M"), "a",
        [&rejected_cb](const ServiceLoop::Response &resp) {
            rejected_cb = true;
            EXPECT_EQ(resp.admission, Admission::QueueFull);
            EXPECT_STREQ(resp.report.source, "rejected");
            EXPECT_NE(resp.error.find("queue-full"), std::string::npos)
                << resp.error;
        });
    EXPECT_EQ(verdict, Admission::QueueFull);
    EXPECT_TRUE(rejected_cb) << "rejection callback must fire inline";

    release.set_value();
    loop.drain();
    EXPECT_EQ(queued_answers.load(), 1u);
    const LoopStats stats = loop.stats();
    EXPECT_EQ(stats.rejectedQueueFull, 1u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(ServiceLoop, TenantBudgetsThrottlePerTenant)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-tenant-", &dir));

    ServiceLoopOptions opts = loopOptionsFor(dir, /*workers=*/1);
    // Metered default: one token, refilled too slowly to matter within
    // the test. "vip" overrides to unlimited.
    opts.defaultBudget.ratePerSec = 1e-6;
    opts.defaultBudget.burst = 1.0;
    opts.tenantBudgets["vip"] = TenantBudget{0.0, 1.0};
    ServiceLoop loop(std::move(opts));

    EXPECT_EQ(loop.submit(refQuery("V"), "metered", nullptr),
              Admission::Accepted);
    bool throttled_cb = false;
    EXPECT_EQ(loop.submit(refQuery("X"), "metered",
                          [&throttled_cb](const ServiceLoop::Response &r) {
                              throttled_cb = true;
                              EXPECT_EQ(r.admission, Admission::Throttled);
                              EXPECT_NE(r.error.find("metered"),
                                        std::string::npos);
                          }),
              Admission::Throttled);
    EXPECT_TRUE(throttled_cb);

    // Budgets are per tenant: another tenant's bucket is untouched, and
    // the unlimited override never throttles.
    EXPECT_EQ(loop.submit(refQuery("X"), "other", nullptr),
              Admission::Accepted);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(loop.submit(refQuery("M"), "vip", nullptr),
                  Admission::Accepted);

    loop.drain();
    const LoopStats stats = loop.stats();
    EXPECT_EQ(stats.rejectedThrottled, 1u);
    EXPECT_EQ(stats.accepted, 6u);
}

TEST(ServiceLoop, TokenBucketSurvivesClockSteppingBackwards)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-clock-", &dir));

    // Virtual clock the test steps by hand (only the submitting thread
    // reads it, always under the loop's admission lock).
    auto now = std::make_shared<std::chrono::steady_clock::time_point>(
        std::chrono::steady_clock::time_point{} +
        std::chrono::hours(1000));
    ServiceLoopOptions opts = loopOptionsFor(dir, /*workers=*/1);
    opts.defaultBudget.ratePerSec = 1.0;
    opts.defaultBudget.burst = 2.0;
    opts.clock = [now] { return *now; };
    ServiceLoop loop(std::move(opts));

    // Drain the burst; the bucket is now empty.
    EXPECT_EQ(loop.submit(refQuery("V"), "t", nullptr),
              Admission::Accepted);
    EXPECT_EQ(loop.submit(refQuery("X"), "t", nullptr),
              Admission::Accepted);
    EXPECT_EQ(loop.submit(refQuery("M"), "t", nullptr),
              Admission::Throttled);

    // steady_clock stepping backwards (observed across suspend/resume
    // and on virtualized clocks). The refill must saturate at zero —
    // the old code *drained* 10 s worth of tokens, locking the tenant
    // out until real time caught up with the phantom debt.
    *now -= std::chrono::seconds(10);
    EXPECT_EQ(loop.submit(refQuery("NN"), "t", nullptr),
              Admission::Throttled);

    // One second of forward progress from the new anchor refills one
    // token: the tenant is admitted again immediately, debt-free.
    *now += std::chrono::seconds(1);
    EXPECT_EQ(loop.submit(refQuery("K"), "t", nullptr),
              Admission::Accepted);

    loop.drain();
    const LoopStats stats = loop.stats();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.rejectedThrottled, 2u);
}

TEST(ServiceLoop, ShutdownDrainsAndCancelFlagsWithoutCaching)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-shutdown-", &dir));

    // Graceful: everything submitted before shutdown still answers.
    {
        ServiceLoop loop(loopOptionsFor(dir, /*workers=*/1));
        std::atomic<size_t> answered{0};
        for (const std::string s : {"V", "X", "M"})
            loop.submit(refQuery(s), "t",
                        [&answered](const ServiceLoop::Response &resp) {
                            EXPECT_TRUE(resp.report.found);
                            EXPECT_FALSE(resp.cancelled);
                            ++answered;
                        });
        loop.shutdown(/*cancel_in_flight=*/false);
        EXPECT_EQ(answered.load(), 3u);
        EXPECT_FALSE(loop.accepting());
        EXPECT_EQ(loop.submit(refQuery("V"), "t", nullptr),
                  Admission::ShuttingDown);
    }

    // Cancelling: park the worker in a callback, queue one more query,
    // shut down with cancellation. The queued query runs against the
    // tripped token, comes back flagged, and is NOT admitted to the
    // cache — cancellation is outside the fingerprint, so a truncated
    // answer must never be served to a later uncancelled query.
    std::string dir2;
    ASSERT_TRUE(makeTempDir("tessel-loop-cancel-", &dir2));
    ServiceLoop loop(loopOptionsFor(dir2, /*workers=*/1));
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::promise<void> entered;
    loop.submit(refQuery("V"), "t",
                [&entered, released](const ServiceLoop::Response &) {
                    entered.set_value();
                    released.wait();
                });
    entered.get_future().wait();

    bool cancelled_flagged = false;
    std::string cancelled_fp;
    loop.submit(refQuery("NN"), "t",
                [&](const ServiceLoop::Response &resp) {
                    cancelled_flagged = resp.cancelled;
                    cancelled_fp = resp.report.fingerprint;
                    EXPECT_NE(resp.error.find("cancelled"),
                              std::string::npos);
                });
    std::thread stopper([&loop] { loop.shutdown(/*cancel_in_flight=*/true); });
    release.set_value();
    stopper.join();
    EXPECT_TRUE(cancelled_flagged);

    // The cancelled answer must not have been cached: a fresh service
    // searches the instance from scratch (and the first, uncancelled
    // query is served from disk as usual).
    ASSERT_FALSE(cancelled_fp.empty());
    PlanningService fresh(optionsFor(dir2));
    QueryReport after;
    fresh.runOne(refQuery("NN"), &after);
    EXPECT_EQ(after.fingerprint, cancelled_fp);
    EXPECT_STREQ(after.source, "search");
    QueryReport hot;
    fresh.runOne(refQuery("V"), &hot);
    EXPECT_STREQ(hot.source, "disk");
}

TEST(ServiceLoop, ReadOnlyHotTraceNeverContends)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-loop-rcu-", &dir));

    ServiceLoop loop(loopOptionsFor(dir, /*workers=*/2));
    const std::vector<std::string> shapes = {"V", "X", "M", "NN", "K"};

    // Two warm passes: searches, then disk promotions into memory. Both
    // take the writer lock; after them every instance is resident.
    for (int pass = 0; pass < 2; ++pass) {
        for (const std::string &s : shapes)
            loop.submit(refQuery(s), "warm", nullptr);
        loop.drain();
    }

    // Read-only replay: pure snapshot hits. The writer mutex is never
    // touched, so the contention counter must not move — this is the
    // regression signal for the lock-free hit path.
    const uint64_t before = loop.service().cache().stats().lockContended;
    std::atomic<size_t> memory_hits{0};
    for (int round = 0; round < 20; ++round) {
        for (const std::string &s : shapes)
            loop.submit(refQuery(s), "hot",
                        [&memory_hits](const ServiceLoop::Response &resp) {
                            memory_hits +=
                                resp.report.source == std::string("memory")
                                    ? 1
                                    : 0;
                        });
        // Drain per round so the bounded queue never rejects.
        loop.drain();
    }
    const uint64_t after = loop.service().cache().stats().lockContended;
    EXPECT_EQ(memory_hits.load(), 20 * shapes.size());
    EXPECT_EQ(after - before, 0u);
}

} // namespace
} // namespace tessel
