/**
 * @file
 * Planning-service tests: batch deduplication, the memory/disk/search
 * answer paths with bit-identical plans across service instances,
 * corrupted and version-bumped store entries falling back to a fresh
 * search, concurrent fan-out determinism, and per-query budgets.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "placement/shapes.h"
#include "service/service.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/logging.h"

namespace tessel {
namespace {

/** Small homogeneous batch (fast; hetero variants covered separately). */
std::vector<PlanQuery>
smallBatch()
{
    return referenceShapeQueries(4, /*include_hetero=*/false,
                                 /*budget_sec=*/5.0);
}

ServiceOptions
optionsFor(const std::string &dir)
{
    ServiceOptions opts;
    opts.cacheDir = dir;
    opts.numThreads = 1;
    return opts;
}

std::vector<std::string>
hashes(const BatchReport &report)
{
    std::vector<std::string> out;
    for (const QueryReport &q : report.queries)
        out.push_back(q.planHash);
    return out;
}

TEST(PlanningService, ColdThenMemoryThenDiskWithIdenticalPlans)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-test-", &dir));
    const std::vector<PlanQuery> batch = smallBatch();

    PlanningService service(optionsFor(dir));
    const BatchReport cold = service.runBatch(batch);
    EXPECT_EQ(cold.searches, cold.uniqueInstances);
    EXPECT_EQ(cold.memoryHits + cold.diskHits, 0u);
    for (const QueryReport &q : cold.queries) {
        EXPECT_STREQ(q.source, "search");
        EXPECT_TRUE(q.found) << q.label;
    }

    const BatchReport warm = service.runBatch(batch);
    EXPECT_EQ(warm.memoryHits, warm.uniqueInstances);
    EXPECT_EQ(warm.searches, 0u);
    EXPECT_EQ(hashes(warm), hashes(cold));
    EXPECT_DOUBLE_EQ(warm.hitRate(), 1.0);

    // A fresh service sharing the directory simulates a new process:
    // every answer comes from a verified disk entry, bit-identical.
    PlanningService fresh(optionsFor(dir));
    const BatchReport disk = fresh.runBatch(batch);
    EXPECT_EQ(disk.diskHits, disk.uniqueInstances);
    EXPECT_EQ(disk.searches, 0u);
    EXPECT_EQ(hashes(disk), hashes(cold));
    for (const QueryReport &q : disk.queries)
        EXPECT_STREQ(q.source, "disk");
    EXPECT_EQ(fresh.cache().stats().verifyFailures, 0u);
}

TEST(PlanningService, DeduplicatesIdenticalInstances)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-dedup-", &dir));

    PlanQuery q;
    q.label = "a";
    q.placement = makeShapeByName("V", 4);
    q.options.totalBudgetSec = 5.0;
    q.options.numThreads = 1;
    PlanQuery q2 = q;
    q2.label = "b";
    // Label and thread count are not part of the instance identity.
    q2.options.numThreads = 3;
    PlanQuery q3 = q;
    q3.label = "c";

    PlanningService service(optionsFor(dir));
    const BatchReport report = service.runBatch({q, q2, q3});
    EXPECT_EQ(report.uniqueInstances, 1u);
    EXPECT_EQ(report.searches, 1u);
    ASSERT_EQ(report.queries.size(), 3u);
    EXPECT_EQ(report.queries[0].fingerprint,
              report.queries[1].fingerprint);
    EXPECT_EQ(report.queries[0].planHash, report.queries[2].planHash);
}

TEST(PlanningService, CorruptedEntryFallsBackToSearch)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-corrupt-", &dir));
    PlanQuery q;
    q.label = "V";
    q.placement = makeShapeByName("V", 4);
    q.options.totalBudgetSec = 5.0;

    PlanningService service(optionsFor(dir));
    QueryReport cold;
    const TesselResult cold_result = service.runOne(q, &cold);
    ASSERT_TRUE(cold_result.found);
    EXPECT_STREQ(cold.source, "search");

    // Flip one payload byte of the stored entry.
    const std::vector<Hash128> entries = service.cache().store().list();
    ASSERT_EQ(entries.size(), 1u);
    const std::string path = service.cache().store().pathFor(entries[0]);
    std::string bytes, err;
    ASSERT_TRUE(readFile(path, &bytes, &err)) << err;
    std::string corrupted = bytes;
    corrupted[bytes.size() / 2] ^= 0x10;
    ASSERT_TRUE(writeFileAtomic(path, corrupted, &err)) << err;

    const bool prev = setLogVerbose(false);
    PlanningService recovered(optionsFor(dir));
    QueryReport rec;
    const TesselResult rec_result = recovered.runOne(q, &rec);
    setLogVerbose(prev);
    EXPECT_STREQ(rec.source, "search");
    EXPECT_EQ(recovered.cache().stats().verifyFailures, 1u);
    ASSERT_TRUE(rec_result.found);
    // The fallback search reproduces the identical plan.
    EXPECT_EQ(rec.planHash, cold.planHash);
    EXPECT_TRUE(rec_result.plan == cold_result.plan);

    // Version-bumped entries are likewise rejected, not misparsed.
    std::string bumped = bytes;
    bumped[kPlanVersionOffset] =
        static_cast<char>(kPlanFormatVersion + 7);
    ASSERT_TRUE(writeFileAtomic(path, bumped, &err)) << err;
    const bool prev2 = setLogVerbose(false);
    PlanningService after_bump(optionsFor(dir));
    QueryReport bump_rep;
    after_bump.runOne(q, &bump_rep);
    setLogVerbose(prev2);
    EXPECT_STREQ(bump_rep.source, "search");
    EXPECT_EQ(after_bump.cache().stats().verifyFailures, 1u);
    EXPECT_EQ(bump_rep.planHash, cold.planHash);
}

TEST(PlanningService, ParallelFanOutMatchesSerial)
{
    std::string serial_dir, parallel_dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-serial-", &serial_dir));
    ASSERT_TRUE(makeTempDir("tessel-svc-parallel-", &parallel_dir));
    // Identical-plans-under-fan-out is only promised for searches that
    // *complete*: a wall budget expiring mid-sweep truncates to a
    // best-so-far that depends on how much CPU the contended pool gave
    // this query. Debug builds push the heavyweight shapes close to the
    // batch's 5 s budget, so give every budget enough headroom that no
    // solve truncates even with four searches timesharing the cores.
    std::vector<PlanQuery> batch = smallBatch();
    for (PlanQuery &q : batch) {
        q.options.totalBudgetSec = 60.0;
        q.options.repetendBudgetSec = 60.0;
        q.options.phaseBudgetSec = 60.0;
    }

    PlanningService serial(optionsFor(serial_dir));
    ServiceOptions par_opts = optionsFor(parallel_dir);
    par_opts.numThreads = 4;
    PlanningService parallel(par_opts);

    const BatchReport a = serial.runBatch(batch);
    const BatchReport b = parallel.runBatch(batch);
    // The pool fan-out must not change any plan (determinism contract).
    EXPECT_EQ(hashes(a), hashes(b));
    EXPECT_EQ(b.searches, b.uniqueInstances);
}

TEST(PlanningService, PerQueryBudgetOverrideChangesIdentity)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-budget-", &dir));
    PlanQuery q;
    q.label = "M";
    q.placement = makeShapeByName("M", 4);
    q.options.totalBudgetSec = 5.0;

    PlanningService service(optionsFor(dir));
    QueryReport base;
    service.runOne(q, &base);

    // A service-level budget override is part of the effective options,
    // hence of the fingerprint: the same query under a different budget
    // is a different instance and must not reuse the cache entry.
    ServiceOptions tighter = optionsFor(dir);
    tighter.perQueryBudgetSec = 4.0;
    PlanningService tight_service(tighter);
    QueryReport tight;
    tight_service.runOne(q, &tight);
    EXPECT_NE(tight.fingerprint, base.fingerprint);
    EXPECT_STREQ(tight.source, "search");
}

TEST(PlanningService, HeteroQueriesServedAndVerifiedCommAware)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-svc-hetero-", &dir));
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    PlanQuery q;
    q.label = "V/hetero";
    q.placement = hs.placement;
    q.options.totalBudgetSec = 5.0;
    q.options.edgeMB = hs.edgeMB;
    q.cluster = std::make_shared<ClusterModel>(hs.cluster);

    PlanningService service(optionsFor(dir));
    QueryReport cold;
    const TesselResult result = service.runOne(q, &cold);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.commAware);

    // Disk answer re-verifies against the comm-expanded placement.
    PlanningService fresh(optionsFor(dir));
    QueryReport warm;
    const TesselResult cached = fresh.runOne(q, &warm);
    EXPECT_STREQ(warm.source, "disk");
    EXPECT_EQ(warm.planHash, cold.planHash);
    EXPECT_TRUE(cached.plan == result.plan);
    EXPECT_EQ(fresh.cache().stats().verifyFailures, 0u);
}

} // namespace
} // namespace tessel
