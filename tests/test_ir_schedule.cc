/**
 * @file
 * Tests for schedules: constraint validation (Eq. 1), metrics, the
 * sequence scheduler, and the Gantt renderer.
 */

#include <gtest/gtest.h>

#include "ir/gantt.h"
#include "ir/sequence.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

/** Two-device, two-block chain placement used across these tests. */
Placement
chain2()
{
    std::vector<BlockSpec> blocks(2);
    blocks[0] = {"a", BlockKind::Forward, oneDevice(0), 2, 1, {}};
    blocks[1] = {"b", BlockKind::Backward, oneDevice(1), 3, -1, {0}};
    return Placement("chain2", 2, blocks);
}

TEST(Schedule, EmptyScheduleIsIncomplete)
{
    Schedule s(Problem(chain2(), 2));
    EXPECT_FALSE(s.complete());
    EXPECT_FALSE(s.validate().ok);
}

TEST(Schedule, ValidChainSchedule)
{
    Problem prob(chain2(), 2);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({1, 0}, 2);
    s.setStart({0, 1}, 2);
    s.setStart({1, 1}, 5);
    ASSERT_TRUE(s.complete());
    const auto check = s.validate();
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_EQ(s.makespan(), 8);
    EXPECT_EQ(s.busyTime(0), 4);
    EXPECT_EQ(s.busyTime(1), 6);
    EXPECT_NEAR(s.bubbleRate(), 1.0 - 10.0 / 16.0, 1e-9);
}

TEST(Schedule, DetectsDependencyViolation)
{
    Problem prob(chain2(), 1);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({1, 0}, 1); // b starts before a finishes (t=2).
    const auto check = s.validate();
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.message.find("dependency"), std::string::npos);
}

TEST(Schedule, DetectsExclusivityViolation)
{
    Problem prob(chain2(), 2);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({0, 1}, 1); // Overlaps mb 0 on device 0.
    s.setStart({1, 0}, 2);
    s.setStart({1, 1}, 5);
    EXPECT_FALSE(s.validate().ok);
}

TEST(Schedule, DetectsNegativeStart)
{
    Problem prob(chain2(), 1);
    Schedule s(prob);
    s.setStart({0, 0}, -1);
    s.setStart({1, 0}, 2);
    EXPECT_FALSE(s.validate().ok);
}

TEST(Schedule, DetectsMemoryViolation)
{
    // Two forwards in flight exceed a capacity of 1.
    Problem prob(chain2(), 2, 1);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({0, 1}, 2); // Second allocation before any release.
    s.setStart({1, 0}, 4);
    s.setStart({1, 1}, 7);
    const auto check = s.validate();
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.message.find("memory"), std::string::npos);
}

TEST(Schedule, InitialMemCountsTowardPeak)
{
    Problem prob(chain2(), 1, 10);
    prob.setInitialMem({10, 0});
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({1, 0}, 2);
    EXPECT_FALSE(s.validate().ok); // 10 + 1 > 10 on device 0.
    EXPECT_EQ(s.peakMemory(0), 11);
}

TEST(Schedule, MultiDeviceBlockOccupiesAllDevices)
{
    std::vector<BlockSpec> blocks(2);
    blocks[0] = {"tp", BlockKind::Forward, allDevices(2), 2, 0, {}};
    blocks[1] = {"x", BlockKind::Forward, oneDevice(1), 1, 0, {}};
    Problem prob(Placement("tp2", 2, blocks), 1);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({1, 0}, 1); // Overlaps the TP block on device 1.
    EXPECT_FALSE(s.validate().ok);
    s.setStart({1, 0}, 2);
    EXPECT_TRUE(s.validate().ok);
}

TEST(Schedule, ShiftAllMovesEverything)
{
    Problem prob(chain2(), 1);
    Schedule s(prob);
    s.setStart({0, 0}, 0);
    s.setStart({1, 0}, 2);
    s.shiftAll(5);
    EXPECT_EQ(s.start({0, 0}), 5);
    EXPECT_EQ(s.makespan(), 10);
    EXPECT_EQ(s.earliestStart(), 5);
}

TEST(Schedule, DeviceOrderSortsByStart)
{
    Problem prob(chain2(), 3);
    Schedule s(prob);
    s.setStart({0, 2}, 0);
    s.setStart({0, 0}, 2);
    s.setStart({0, 1}, 4);
    const auto order = s.deviceOrder(0);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(prob.refOf(order[0]).mb, 2);
    EXPECT_EQ(prob.refOf(order[1]).mb, 0);
    EXPECT_EQ(prob.refOf(order[2]).mb, 1);
}

TEST(SequenceScheduler, TimesAChain)
{
    Problem prob(chain2(), 2);
    DeviceSequences seqs;
    seqs.order = {{prob.instanceId({0, 0}), prob.instanceId({0, 1})},
                  {prob.instanceId({1, 0}), prob.instanceId({1, 1})}};
    auto s = scheduleFromSequences(prob, seqs);
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->validate().ok);
    // Earliest-start: a0 @0, a1 @2, b0 @2, b1 @5.
    EXPECT_EQ(s->start({0, 0}), 0);
    EXPECT_EQ(s->start({0, 1}), 2);
    EXPECT_EQ(s->start({1, 0}), 2);
    EXPECT_EQ(s->start({1, 1}), 5);
}

TEST(SequenceScheduler, DetectsDeadlockCycle)
{
    // Device order contradicting the dependency chain: b before a with a
    // TP block forcing the cycle across devices.
    std::vector<BlockSpec> blocks(2);
    blocks[0] = {"a", BlockKind::Forward, allDevices(2), 1, 0, {}};
    blocks[1] = {"b", BlockKind::Forward, allDevices(2), 1, 0, {0}};
    Problem prob(Placement("pp", 2, blocks), 1);
    DeviceSequences seqs;
    // Device 0 orders a then b, device 1 orders b then a: cycle.
    seqs.order = {{prob.instanceId({0, 0}), prob.instanceId({1, 0})},
                  {prob.instanceId({1, 0}), prob.instanceId({0, 0})}};
    EXPECT_FALSE(scheduleFromSequences(prob, seqs).has_value());
}

TEST(SequenceScheduler, RejectsMissingInstances)
{
    Problem prob(chain2(), 2);
    DeviceSequences seqs;
    seqs.order = {{prob.instanceId({0, 0})}, {prob.instanceId({1, 0})}};
    EXPECT_FALSE(scheduleFromSequences(prob, seqs).has_value());
}

TEST(SequenceScheduler, RoundTripsThroughSequencesOf)
{
    Problem prob(chain2(), 3);
    DeviceSequences seqs;
    seqs.order = {{}, {}};
    for (int mb = 0; mb < 3; ++mb) {
        seqs.order[0].push_back(prob.instanceId({0, mb}));
        seqs.order[1].push_back(prob.instanceId({1, mb}));
    }
    auto s = scheduleFromSequences(prob, seqs);
    ASSERT_TRUE(s.has_value());
    const DeviceSequences back = sequencesOf(*s);
    EXPECT_EQ(back.order[0], seqs.order[0]);
    EXPECT_EQ(back.order[1], seqs.order[1]);
}

TEST(Gantt, RendersAllDevicesAndMarksRepetend)
{
    Problem prob(chain2(), 2);
    DeviceSequences seqs;
    seqs.order = {{prob.instanceId({0, 0}), prob.instanceId({0, 1})},
                  {prob.instanceId({1, 0}), prob.instanceId({1, 1})}};
    auto s = scheduleFromSequences(prob, seqs);
    ASSERT_TRUE(s.has_value());
    GanttOptions opts;
    opts.repetendBegin = 2;
    opts.repetendEnd = 5;
    const std::string text = renderGantt(*s, opts);
    EXPECT_NE(text.find("dev0"), std::string::npos);
    EXPECT_NE(text.find("dev1"), std::string::npos);
    EXPECT_NE(text.find("repetend"), std::string::npos);
    // Backward blocks render with '*'.
    EXPECT_NE(text.find("*0*"), std::string::npos);
}

TEST(Gantt, TruncatesAtMaxTime)
{
    Problem prob(chain2(), 4);
    Schedule s(prob);
    Time t = 0;
    for (int mb = 0; mb < 4; ++mb) {
        s.setStart({0, mb}, t);
        s.setStart({1, mb}, t + 2);
        t += 5;
    }
    GanttOptions opts;
    opts.maxTime = 6;
    const std::string text = renderGantt(s, opts);
    // Time axis should stop at 5.
    EXPECT_EQ(text.find("12"), std::string::npos);
}

TEST(Problem, InstanceIdRoundTrip)
{
    Problem prob(chain2(), 5);
    for (int spec = 0; spec < 2; ++spec) {
        for (int mb = 0; mb < 5; ++mb) {
            const int id = prob.instanceId({spec, mb});
            const BlockRef ref = prob.refOf(id);
            EXPECT_EQ(ref.spec, spec);
            EXPECT_EQ(ref.mb, mb);
        }
    }
    EXPECT_EQ(prob.numInstances(), 10);
}

} // namespace
} // namespace tessel
