/**
 * @file
 * Unit tests for the exact branch-and-bound scheduler: optimality on
 * known instances, memory and release-time handling, decision mode, and
 * the binary-search parity path.
 */

#include <gtest/gtest.h>

#include "ir/problem.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"

namespace tessel {
namespace {

SolverBlock
mkBlock(Time span, uint64_t device_bits, Mem memory = 0,
        std::vector<int> deps = {})
{
    SolverBlock b;
    b.span = span;
    b.devices = ResourceSet::fromWord(device_bits);
    b.memory = memory;
    b.deps = std::move(deps);
    return b;
}

TEST(BnbSolver, SingleBlock)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.blocks = {mkBlock(5, 1)};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 5);
    EXPECT_EQ(r.starts[0], 0);
}

TEST(BnbSolver, ChainHonorsDependencies)
{
    SolverProblem sp;
    sp.numDevices = 2;
    sp.blocks = {mkBlock(2, 1), mkBlock(3, 2, 0, {0}),
                 mkBlock(1, 1, 0, {1})};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 6);
    EXPECT_EQ(r.starts[1], 2);
    EXPECT_EQ(r.starts[2], 5);
}

TEST(BnbSolver, ParallelBlocksOnDistinctDevices)
{
    SolverProblem sp;
    sp.numDevices = 3;
    sp.blocks = {mkBlock(4, 1), mkBlock(4, 2), mkBlock(4, 4)};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.makespan, 4);
}

TEST(BnbSolver, ExclusiveExecutionSerializes)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.blocks = {mkBlock(3, 1), mkBlock(4, 1)};
    BnbSolver solver(sp);
    EXPECT_EQ(solver.minimizeMakespan().makespan, 7);
}

TEST(BnbSolver, MultiDeviceBlockBlocksBoth)
{
    SolverProblem sp;
    sp.numDevices = 2;
    sp.blocks = {mkBlock(2, 3), mkBlock(2, 1), mkBlock(2, 2)};
    BnbSolver solver(sp);
    // TP block + the two singles can overlap pairwise only after it.
    EXPECT_EQ(solver.minimizeMakespan().makespan, 4);
}

TEST(BnbSolver, MemoryForcesInterleaving)
{
    // Two alloc(+1)/release(-1) pairs under capacity 1: must alternate.
    SolverProblem sp;
    sp.numDevices = 1;
    sp.memLimit = 1;
    sp.blocks = {mkBlock(1, 1, 1), mkBlock(1, 1, -1, {0}),
                 mkBlock(1, 1, 1), mkBlock(1, 1, -1, {2})};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    ASSERT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 4);
    // The release of pair 0 must precede the allocation of pair 1 or
    // vice versa; both allocations can never be in flight together.
    const bool pair0_first = r.starts[0] < r.starts[2];
    const Time first_release = pair0_first ? r.starts[1] : r.starts[3];
    const Time second_alloc = pair0_first ? r.starts[2] : r.starts[0];
    EXPECT_LE(first_release + 1, second_alloc);
}

TEST(BnbSolver, InfeasibleMemoryDetected)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.memLimit = 1;
    sp.blocks = {mkBlock(1, 1, 2)};
    BnbSolver solver(sp);
    EXPECT_EQ(solver.minimizeMakespan().status, SolveStatus::Infeasible);
}

TEST(BnbSolver, InitialMemoryReducesHeadroom)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.memLimit = 3;
    sp.initialMem = {2};
    sp.blocks = {mkBlock(1, 1, 2)};
    BnbSolver solver(sp);
    EXPECT_EQ(solver.minimizeMakespan().status, SolveStatus::Infeasible);
    sp.initialMem = {1};
    BnbSolver solver2(sp);
    EXPECT_EQ(solver2.minimizeMakespan().status, SolveStatus::Optimal);
}

TEST(BnbSolver, ReleaseTimesDelayStart)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.blocks = {mkBlock(2, 1)};
    sp.blocks[0].release = 7;
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.starts[0], 7);
    EXPECT_EQ(r.makespan, 9);
}

TEST(BnbSolver, InitialAvailDelaysDevices)
{
    SolverProblem sp;
    sp.numDevices = 2;
    sp.initialAvail = {5, 0};
    sp.blocks = {mkBlock(1, 1), mkBlock(1, 2)};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.starts[0], 5);
    EXPECT_EQ(r.starts[1], 0);
    EXPECT_EQ(r.makespan, 6);
}

TEST(BnbSolver, DecideSatAndUnsat)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.blocks = {mkBlock(3, 1), mkBlock(4, 1)};
    BnbSolver solver(sp);
    EXPECT_TRUE(solver.decide(7).feasible());
    EXPECT_TRUE(solver.decide(100).feasible());
    const SolveResult tight = solver.decide(6);
    EXPECT_EQ(tight.status, SolveStatus::Infeasible);
}

TEST(BnbSolver, BinarySearchMatchesMinimize)
{
    // V-shape TO instance, 3 micro-batches.
    Problem prob(makeVShape(4), 3);
    const SolverProblem sp = buildFullInstance(prob);
    BnbSolver a(sp), b(sp);
    const SolveResult direct = a.minimizeMakespan();
    const SolveResult bsearch = b.binarySearchMakespan();
    ASSERT_TRUE(direct.feasible());
    ASSERT_TRUE(bsearch.feasible());
    EXPECT_EQ(direct.makespan, bsearch.makespan);
}

TEST(BnbSolver, VShapeKnownOptimalMakespans)
{
    // V-shape (tf=1, tb=2, D=4): pipeline fill 12, then 3 per extra
    // micro-batch: optimal makespan = 12 + 3 (N - 1).
    for (int n = 1; n <= 4; ++n) {
        Problem prob(makeVShape(4), n);
        const ToBaselineResult to = solveTimeOptimal(prob);
        ASSERT_TRUE(to.result.feasible()) << "n=" << n;
        EXPECT_EQ(to.result.makespan, 12 + 3 * (n - 1)) << "n=" << n;
        EXPECT_TRUE(to.schedule.validate().ok);
    }
}

TEST(BnbSolver, SymmetryAndDominanceAreLossless)
{
    Problem prob(makeVShape(3), 3);
    const SolverProblem sp = buildFullInstance(prob);
    SolveResult results[4];
    int idx = 0;
    for (bool sym : {true, false}) {
        for (bool dom : {true, false}) {
            SolverOptions opts;
            opts.useSymmetry = sym;
            opts.useDominance = dom;
            BnbSolver solver(sp, opts);
            results[idx++] = solver.minimizeMakespan();
        }
    }
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(results[i].makespan, results[0].makespan);
    // The pruning features should reduce explored nodes.
    EXPECT_LE(results[0].stats.nodes, results[3].stats.nodes);
}

TEST(BnbSolver, NodeBudgetReportsFeasibleNotOptimal)
{
    Problem prob(makeVShape(4), 6);
    const SolverProblem sp = buildFullInstance(prob);
    SolverOptions opts;
    opts.nodeLimit = 50; // Far too small to prove optimality.
    BnbSolver solver(sp, opts);
    const SolveResult r = solver.minimizeMakespan();
    // Either it found something (Feasible) or nothing (Unknown), but it
    // must not claim optimality or infeasibility.
    EXPECT_TRUE(r.status == SolveStatus::Feasible ||
                r.status == SolveStatus::Unknown);
    EXPECT_TRUE(r.stats.budgetExhausted);
}

TEST(BnbSolver, TagRoundTripThroughLift)
{
    Problem prob(makeVShape(2), 2);
    const ToBaselineResult to = solveTimeOptimal(prob);
    ASSERT_TRUE(to.result.feasible());
    const auto check = to.schedule.validate();
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_EQ(to.schedule.makespan(), to.result.makespan);
}

TEST(BnbSolver, MemoryDeadlockIsInfeasible)
{
    // Block B depends on A; A allocates 2 under cap 3, B allocates 2 as
    // well and only C (dep of nothing) releases, but C needs memory too.
    SolverProblem sp;
    sp.numDevices = 1;
    sp.memLimit = 3;
    sp.blocks = {mkBlock(1, 1, 2), mkBlock(1, 1, 2, {0})};
    BnbSolver solver(sp);
    EXPECT_EQ(solver.minimizeMakespan().status, SolveStatus::Infeasible);
}

TEST(BnbSolver, NegativeMemoryAlwaysDispatchable)
{
    SolverProblem sp;
    sp.numDevices = 1;
    sp.memLimit = 2;
    sp.blocks = {mkBlock(1, 1, 2), mkBlock(1, 1, -2, {0}),
                 mkBlock(1, 1, 2, {1})};
    BnbSolver solver(sp);
    const SolveResult r = solver.minimizeMakespan();
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 3);
}

TEST(FromIr, FullInstanceStructure)
{
    Problem prob(makeVShape(2), 3);
    const SolverProblem sp = buildFullInstance(prob);
    EXPECT_EQ(sp.blocks.size(), 12u); // 4 specs x 3 micro-batches.
    // Symmetry chains: (spec, mb) ordered after (spec, mb-1).
    for (int spec = 0; spec < 4; ++spec) {
        for (int mb = 1; mb < 3; ++mb) {
            const int id = prob.instanceId({spec, mb});
            EXPECT_EQ(sp.blocks[id].orderAfter,
                      prob.instanceId({spec, mb - 1}));
        }
    }
    // Dependencies stay within a micro-batch.
    for (size_t i = 0; i < sp.blocks.size(); ++i)
        for (int dep : sp.blocks[i].deps)
            EXPECT_EQ(prob.refOf(dep).mb,
                      prob.refOf(static_cast<int>(i)).mb);
}

} // namespace
} // namespace tessel
