/**
 * @file
 * Exactness tests for the minimal-period / maximum-cycle-ratio kernel
 * (McrCore): Howard policy iteration and binary search must agree with
 * a brute-force simple-cycle oracle on random tiny systems, warm kernel
 * calls must reproduce cold results bit for bit while spending strictly
 * fewer value sweeps, and both modes must drive PeriodSearch to
 * bit-identical schedules with exact nodeLimit accounting.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/repetend.h"
#include "core/repetend_solver.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

/** Deterministic LCG so the random systems are reproducible. */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed) {}
    uint64_t
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    }
    int
    range(int lo, int hi) // inclusive
    {
        return lo + static_cast<int>(next() % (hi - lo + 1));
    }
};

/** ceil(w / h) for h > 0 without truncation-toward-zero surprises. */
Time
ceilDivFloorSafe(Time w, Time h)
{
    const Time q = w / h;
    return q * h < w ? q + 1 : q;
}

struct OracleVerdict
{
    /** true when some cycle has sum_h == 0 and sum_w > 0 (no period
     *  can satisfy it). */
    bool hopeless = false;
    /** max over cycles with sum_h > 0 of ceil(sum_w / sum_h); the
     *  smallest feasible period ignoring bounds. */
    Time minFeasible = 0;
    bool anyCycle = false;
};

/**
 * Enumerate every simple cycle by edge-DFS. Roots ascend and paths
 * only visit nodes >= the root, so each cycle is found exactly once
 * (from its smallest node; multi-edges contribute distinct cycles).
 */
void
cycleDfs(const std::vector<PeriodEdge> &edges, int root, int at,
         uint32_t visited, Time w, Time h, OracleVerdict &v)
{
    for (const PeriodEdge &e : edges) {
        if (e.from != at || e.to < root)
            continue;
        if (e.to == root) {
            const Time cw = w + e.w;
            const Time ch = h + e.h;
            v.anyCycle = true;
            if (ch == 0) {
                if (cw > 0)
                    v.hopeless = true;
            } else if (cw > 0) {
                v.minFeasible =
                    std::max(v.minFeasible, ceilDivFloorSafe(cw, ch));
            }
        } else if (!(visited & (1u << e.to))) {
            cycleDfs(edges, root, e.to, visited | (1u << e.to),
                     w + e.w, h + e.h, v);
        }
    }
}

Time
oracleMinPeriod(int n, const std::vector<PeriodEdge> &edges, Time lo,
                Time hi)
{
    OracleVerdict v;
    for (int root = 0; root < n; ++root)
        cycleDfs(edges, root, root, 1u << root, 0, 0, v);
    if (v.hopeless)
        return -1;
    const Time period = std::max(lo, v.minFeasible);
    return period > hi ? -1 : period;
}

std::vector<PeriodEdge>
randomSystem(Rng &rng, int n)
{
    const int ne = rng.range(n, 3 * n);
    std::vector<PeriodEdge> edges;
    edges.reserve(ne);
    for (int i = 0; i < ne; ++i) {
        const int from = rng.range(0, n - 1);
        int to = rng.range(0, n - 1);
        if (to == from)
            to = (to + 1) % n;
        edges.push_back({from, to, static_cast<Time>(rng.range(-3, 20)),
                         rng.range(0, 3)});
    }
    return edges;
}

/** Every constraint satisfied and the vector grounded at zero. */
void
expectValidStart(const std::vector<PeriodEdge> &edges,
                 const std::vector<Time> &s, Time period)
{
    for (const PeriodEdge &e : edges)
        EXPECT_GE(s[e.to], s[e.from] + e.w - e.h * period);
    for (const Time t : s)
        EXPECT_GE(t, 0);
}

TEST(McrKernel, HowardAndBinaryMatchBruteForceOracle)
{
    Rng rng(20240808);
    int feasible = 0, infeasible = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const int n = rng.range(2, 6);
        const std::vector<PeriodEdge> edges = randomSystem(rng, n);
        const Time lo = rng.range(0, 3);
        const Time hi = rng.range(8, 40);
        const Time want = oracleMinPeriod(n, edges, lo, hi);
        const McrSolveResult howard =
            solveMinPeriod(n, edges, lo, hi, McrMode::Howard);
        const McrSolveResult binary =
            solveMinPeriod(n, edges, lo, hi, McrMode::Binary);
        ASSERT_EQ(howard.period, want) << "trial " << trial;
        ASSERT_EQ(binary.period, want) << "trial " << trial;
        if (want < 0) {
            ++infeasible;
            continue;
        }
        ++feasible;
        // Bit-identical least fixed points, valid as start vectors.
        EXPECT_EQ(howard.start, binary.start) << "trial " << trial;
        expectValidStart(edges, howard.start, want);
        // Minimality of the period is the oracle's claim; minimality
        // of the starts is the LFP claim — dropping any single start
        // by one must break a constraint or the ground.
        EXPECT_GT(howard.stats.valueSweeps, 0u);
        EXPECT_GT(binary.stats.relaxations, 0u);
        EXPECT_EQ(howard.stats.relaxations, 0u);
        EXPECT_EQ(binary.stats.valueSweeps, 0u);
    }
    // The mix must exercise both verdicts or the trial space is dead.
    EXPECT_GT(feasible, 50);
    EXPECT_GT(infeasible, 50);
}

TEST(McrKernel, WarmKernelMatchesColdOnGrownSystems)
{
    // Edge-growth chains mimic the BnB decision tail: solve, append a
    // decision edge, re-solve with the previous solution as the warm
    // base. Warm results must be bit-identical with strictly fewer
    // value sweeps in aggregate.
    Rng rng(7);
    uint64_t warmSweeps = 0, coldSweeps = 0;
    int compared = 0;
    for (int chain = 0; chain < 60; ++chain) {
        const int n = rng.range(3, 6);
        std::vector<PeriodEdge> edges = randomSystem(rng, n);
        const Time hi = 200;
        McrSolveResult prev =
            solveMinPeriod(n, edges, 1, hi, McrMode::Howard);
        for (int grow = 0; grow < 4 && prev.period >= 0; ++grow) {
            const int from = rng.range(0, n - 1);
            int to = rng.range(0, n - 1);
            if (to == from)
                to = (to + 1) % n;
            edges.push_back({from, to,
                             static_cast<Time>(rng.range(0, 12)),
                             rng.range(0, 2)});
            const McrWarmStart warm{&prev.start, prev.period,
                                    &prev.policy};
            const McrSolveResult w = solveMinPeriod(
                n, edges, prev.period, hi, McrMode::Howard, warm);
            const McrSolveResult c = solveMinPeriod(
                n, edges, prev.period, hi, McrMode::Howard);
            ASSERT_EQ(w.period, c.period);
            EXPECT_EQ(w.start, c.start);
            warmSweeps += w.stats.valueSweeps;
            coldSweeps += c.stats.valueSweeps;
            ++compared;
            prev = w;
        }
    }
    EXPECT_GT(compared, 100);
    EXPECT_LT(warmSweeps, coldSweeps);
}

/** Bit-identical PeriodSearch results across the two MCR modes. */
void
expectModesAgree(const Placement &p, int max_nr,
                 Mem mem_limit = kUnlimitedMem)
{
    int feasible = 0;
    for (const auto &a : allRepetends(p, max_nr)) {
        RepetendSolveOptions howard_opts;
        howard_opts.memLimit = mem_limit;
        howard_opts.mcr = McrMode::Howard;
        RepetendSolveOptions binary_opts = howard_opts;
        binary_opts.mcr = McrMode::Binary;
        const RepetendSchedule h = solveRepetend(p, a, howard_opts);
        const RepetendSchedule b = solveRepetend(p, a, binary_opts);
        ASSERT_EQ(h.feasible, b.feasible);
        // Identical periods AND starts (the determinism contract), and
        // identical trees: same nodes, same prune counts.
        EXPECT_EQ(h.period, b.period);
        EXPECT_EQ(h.start, b.start);
        EXPECT_EQ(h.windowSpan, b.windowSpan);
        EXPECT_EQ(h.stats.nodes, b.stats.nodes);
        EXPECT_EQ(h.stats.boundPrunes, b.stats.boundPrunes);
        feasible += h.feasible ? 1 : 0;
    }
    EXPECT_GT(feasible, 0);
}

TEST(McrModes, HowardEqualsBinaryVShape)
{
    expectModesAgree(makeVShape(4), 3);
}

TEST(McrModes, HowardEqualsBinaryMShape)
{
    expectModesAgree(makeMShape(4), 2);
}

TEST(McrModes, HowardEqualsBinaryNnShape)
{
    expectModesAgree(makeNnShape(4), 2);
}

TEST(McrModes, HowardEqualsBinaryUnderMemoryPressure)
{
    expectModesAgree(makeVShape(4), 3, 4);
}

TEST(McrModes, HowardBudgetMarksUnproven)
{
    const Placement p = makeNnShape(4);
    const auto all = allRepetends(p, 4);
    ASSERT_FALSE(all.empty());
    RepetendSolveOptions opts;
    opts.mcr = McrMode::Howard;
    opts.nodeLimit = 1;
    const auto sched = solveRepetend(p, all[all.size() / 2], opts);
    EXPECT_FALSE(sched.proven);
}

TEST(McrModes, NodeLimitExactInBothModes)
{
    // nodeLimit is counted per search node in both modes — the Howard
    // sweep-loop stop polling must not perturb it.
    const Placement p = makeNnShape(4);
    const auto all = allRepetends(p, 4);
    ASSERT_FALSE(all.empty());
    for (const McrMode mode : {McrMode::Howard, McrMode::Binary}) {
        RepetendSolveOptions opts;
        opts.mcr = mode;
        opts.nodeLimit = 5;
        const auto sched = solveRepetend(p, all[all.size() / 2], opts);
        EXPECT_FALSE(sched.proven);
        EXPECT_EQ(sched.stats.nodes, 5u);
    }
}

TEST(McrModes, DefaultModeFollowsEnvironment)
{
    const char *prev = std::getenv("TESSEL_MCR");
    const std::string saved = prev ? prev : "";
    setenv("TESSEL_MCR", "binary", 1);
    EXPECT_EQ(defaultMcrMode(), McrMode::Binary);
    setenv("TESSEL_MCR", "howard", 1);
    EXPECT_EQ(defaultMcrMode(), McrMode::Howard);
    setenv("TESSEL_MCR", "nonsense", 1);
    EXPECT_EQ(defaultMcrMode(), McrMode::Howard);
    unsetenv("TESSEL_MCR");
    EXPECT_EQ(defaultMcrMode(), McrMode::Howard);
    if (prev)
        setenv("TESSEL_MCR", saved.c_str(), 1);
}

} // namespace
} // namespace tessel
