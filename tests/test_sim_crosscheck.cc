/**
 * @file
 * Planner/simulator agreement: for all five shapes, homogeneous and
 * heterogeneous/comm variants, the simulated makespan of an instantiated
 * plan equals the planned makespan under planner-fidelity dispatch
 * (honorPlannedStarts), free-running execution never finishes later than
 * planned, and every instantiated program is deadlock-free.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "placement/builder.h"
#include "placement/comm.h"
#include "placement/shapes.h"
#include "runtime/instantiate.h"
#include "sim/runner.h"

namespace tessel {
namespace {

/** Shapes x device counts kept small enough for exhaustive searches. */
int
devicesFor(const std::string &name)
{
    // NN has by far the largest expanded candidate space; its hetero
    // variant stays exhaustive at 2 devices.
    return name == "NN" ? 2 : 4;
}

class ShapeCrossCheck : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ShapeCrossCheck, HomogeneousSimEqualsPlanned)
{
    const std::string name = GetParam();
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    const auto r = tesselSearch(makeShapeByName(name, devicesFor(name)),
                                opts);
    ASSERT_TRUE(r.found) << name;
    EXPECT_FALSE(r.commAware);
    const Schedule sched = r.plan.instantiate(r.plan.minMicrobatches() + 4);
    const Time planned = sched.makespan();

    const Program prog = instantiate(sched, {});
    ClusterSpec fidelity;
    fidelity.linkLatencyMs = 0.0;
    fidelity.honorPlannedStarts = true;
    const SimResult sim = simulate(prog, fidelity);
    ASSERT_TRUE(sim.ok) << name;
    EXPECT_FALSE(sim.deadlock) << name;
    EXPECT_DOUBLE_EQ(sim.makespanMs, static_cast<double>(planned)) << name;

    ClusterSpec free_run = fidelity;
    free_run.honorPlannedStarts = false;
    const SimResult compacted = simulate(prog, free_run);
    ASSERT_TRUE(compacted.ok) << name;
    EXPECT_LE(compacted.makespanMs, static_cast<double>(planned)) << name;
}

TEST_P(ShapeCrossCheck, HeterogeneousCommSimEqualsPlanned)
{
    const std::string name = GetParam();
    const HeteroShape hs = makeHeteroShapeByName(name, devicesFor(name));
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    opts.cluster = &hs.cluster;
    opts.edgeMB = hs.edgeMB;
    const auto r = tesselSearch(hs.placement, opts);
    ASSERT_TRUE(r.found) << name;
    ASSERT_TRUE(r.commAware);
    ASSERT_TRUE(r.expansion.has_value());
    EXPECT_GT(r.expansion->numLinks, 0) << name;
    EXPECT_GT(r.expansion->numCommBlocks(), 0) << name;

    const Schedule sched = r.plan.instantiate(r.plan.minMicrobatches() + 4);
    const Time planned = sched.makespan();

    const SimResult sim = simulateExpandedSchedule(sched);
    ASSERT_TRUE(sim.ok) << name;
    EXPECT_FALSE(sim.deadlock) << name;
    EXPECT_DOUBLE_EQ(sim.makespanMs, static_cast<double>(planned)) << name;

    const SimResult compacted =
        simulateExpandedSchedule(sched, /*work_conserving=*/true);
    ASSERT_TRUE(compacted.ok) << name;
    EXPECT_FALSE(compacted.deadlock) << name;
    EXPECT_LE(compacted.makespanMs, static_cast<double>(planned)) << name;
}

TEST_P(ShapeCrossCheck, InstantiatedProgramsAreDeadlockFree)
{
    // Both program variants (with and without real edge volumes) of both
    // plan flavors must simulate without rendezvous cycles, in blocking
    // and non-blocking mode.
    const std::string name = GetParam();
    const int nd = devicesFor(name);
    const HeteroShape hs = makeHeteroShapeByName(name, nd);

    TesselOptions hom;
    hom.totalBudgetSec = 60.0;
    const auto r_hom = tesselSearch(hs.placement, hom);
    ASSERT_TRUE(r_hom.found) << name;

    TesselOptions het = hom;
    het.cluster = &hs.cluster;
    het.edgeMB = hs.edgeMB;
    const auto r_het = tesselSearch(hs.placement, het);
    ASSERT_TRUE(r_het.found) << name;

    for (const TesselResult *r : {&r_hom, &r_het}) {
        const Schedule sched =
            r->plan.instantiate(r->plan.minMicrobatches() + 2);
        const Program prog = instantiate(
            sched, r->commAware ? std::map<std::pair<int, int>, double>{}
                                : hs.edgeMB);
        for (bool non_blocking : {true, false}) {
            ClusterSpec cs;
            cs.nonBlockingComm = non_blocking;
            const SimResult sim = simulate(prog, cs);
            EXPECT_FALSE(sim.deadlock)
                << name << " commAware=" << r->commAware
                << " nonBlocking=" << non_blocking;
            EXPECT_TRUE(sim.ok);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeCrossCheck,
                         ::testing::Values("V", "X", "M", "NN", "K"));

TEST(SimModel, PlannerLinkChargingMatchesClusterModel)
{
    // A two-device handoff charged through ClusterModel::transferSpan
    // must land exactly on the integer planner cost.
    ClusterModel model;
    model.defaultLink.latency = 2.0;
    model.defaultLink.timePerMB = 0.5;

    Program prog;
    prog.numDevices = 2;
    prog.numTensors = 1;
    prog.code.resize(2);
    Instruction a;
    a.kind = OpKind::Compute;
    a.spanMs = 10;
    prog.code[0].push_back(a);
    Instruction send;
    send.kind = OpKind::Send;
    send.tensor = 0;
    send.peer = 1;
    send.sizeMB = 7.0;
    prog.code[0].push_back(send);
    Instruction recv = send;
    recv.kind = OpKind::Recv;
    recv.peer = 0;
    prog.code[1].push_back(recv);
    Instruction b;
    b.kind = OpKind::Compute;
    b.spanMs = 4;
    b.waits = {0};
    prog.code[1].push_back(b);

    ClusterSpec cs;
    cs.commModel = &model;
    const SimResult sim = simulate(prog, cs);
    ASSERT_TRUE(sim.ok);
    // 10 (compute) + ceil(2 + 7 * 0.5) = 6 (transfer) + 4 (compute).
    EXPECT_DOUBLE_EQ(sim.makespanMs, 10.0 + 6.0 + 4.0);
    EXPECT_DOUBLE_EQ(sim.commMs, 6.0);
}

TEST(SimModel, InstantiateScalesSpansBySpeedFactor)
{
    // A V-shape schedule on a cluster whose device 1 runs 2x slower:
    // instantiate(model) must scale exactly like the planner would.
    const Placement p = makeVShape(2);
    Problem prob(p, 1, kUnlimitedMem);
    Schedule sched(prob);
    sched.setStart({0, 0}, 0); // f0 on dev0, span 1.
    sched.setStart({1, 0}, 1); // f1 on dev1, span 1.
    sched.setStart({2, 0}, 2); // b1 on dev1, span 2.
    sched.setStart({3, 0}, 4); // b0 on dev0, span 2.
    ASSERT_TRUE(sched.validate().ok);

    ClusterModel model;
    model.speedFactor = {1.0, 2.0};
    const Program prog = instantiate(sched, {}, &model);
    for (DeviceId d = 0; d < 2; ++d) {
        for (const Instruction &op : prog.code[d]) {
            if (op.kind != OpKind::Compute)
                continue;
            const BlockSpec &spec = p.block(op.block.spec);
            EXPECT_EQ(op.spanMs, model.scaledSpan(spec.span, spec.devices))
                << spec.name;
        }
    }
    // simulateWithModel executes those scaled spans with charged links.
    ClusterSpec cs;
    const SimResult sim = simulateWithModel(sched, {}, model, cs);
    ASSERT_TRUE(sim.ok);
    // f0(1) -> f1(2) -> b1(4) -> b0(2), all serial on the critical path.
    EXPECT_DOUBLE_EQ(sim.makespanMs, 1.0 + 2.0 + 4.0 + 2.0);
}

TEST(SimModel, WideClusterCommPlanSimEqualsPlanned)
{
    // A V-chain whose stages sit on devices {0, 30, 66, 90} of a
    // 91-device cluster: the placement itself crosses bit 64, and the
    // comm expansion appends link pseudo-devices past index 90, so the
    // whole search -> sim -> runtime path runs on multi-word resource
    // sets (impossible under the old 64-bit device mask).
    PlacementBuilder b("wide-v", 91);
    const std::vector<DeviceId> stage_dev = {0, 30, 66, 90};
    std::vector<int> fwd(4);
    for (int s = 0; s < 4; ++s) {
        auto h = b.forward("f" + std::to_string(s))
                     .on(stage_dev[s])
                     .span(1)
                     .mem(1);
        if (s > 0)
            h.after(fwd[s - 1]);
        fwd[s] = h.done();
    }
    int prev = fwd[3];
    for (int s = 3; s >= 0; --s) {
        prev = b.backward("b" + std::to_string(s))
                   .on(stage_dev[s])
                   .span(2)
                   .mem(-1)
                   .after(prev)
                   .done();
    }
    const Placement wide = b.build();

    ClusterModel cluster =
        ClusterModel::uniformLink(91, LinkParams{2.0, 0.5});
    cluster.speedFactor[66] = 2.0; // Heterogeneous middle stage.

    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    opts.cluster = &cluster;
    opts.edgeMB = crossDeviceEdgeMB(wide, 4.0);
    const auto r = tesselSearch(wide, opts);
    ASSERT_TRUE(r.found);
    ASSERT_TRUE(r.commAware);
    ASSERT_TRUE(r.expansion.has_value());
    EXPECT_GT(r.expansion->numLinks, 0);
    // The solver genuinely ran past the old 64-resource cap.
    EXPECT_GT(r.plan.placement().numDevices(), 64);

    const Schedule sched = r.plan.instantiate(r.plan.minMicrobatches() + 3);
    const Time planned = sched.makespan();
    const SimResult sim = simulateExpandedSchedule(sched);
    ASSERT_TRUE(sim.ok);
    EXPECT_FALSE(sim.deadlock);
    EXPECT_DOUBLE_EQ(sim.makespanMs, static_cast<double>(planned));

    const SimResult compacted =
        simulateExpandedSchedule(sched, /*work_conserving=*/true);
    ASSERT_TRUE(compacted.ok);
    EXPECT_LE(compacted.makespanMs, static_cast<double>(planned));

    // Runtime leg: device programs instantiate and free-run without
    // rendezvous deadlock in both comm modes.
    const Program prog = instantiate(sched, {});
    for (bool non_blocking : {true, false}) {
        ClusterSpec cs;
        cs.nonBlockingComm = non_blocking;
        const SimResult run = simulate(prog, cs);
        EXPECT_TRUE(run.ok);
        EXPECT_FALSE(run.deadlock) << "nonBlocking=" << non_blocking;
    }
}

TEST(SimModel, CommAwarePlanBeatsObliviousUnderCharging)
{
    // The headline property of the tentpole: on a comm-heavy cluster,
    // executing the comm-aware plan (its planned makespan, equal to its
    // planner-fidelity simulation) is no worse than executing the
    // comm-oblivious plan under the same model with blocking transfers.
    const HeteroShape hs = makeHeteroShapeByName("V", 4);
    const int n = 12;

    TesselOptions hom;
    hom.totalBudgetSec = 60.0;
    const auto oblivious = tesselSearch(hs.placement, hom);
    ASSERT_TRUE(oblivious.found);

    TesselOptions het = hom;
    het.cluster = &hs.cluster;
    het.edgeMB = hs.edgeMB;
    const auto aware = tesselSearch(hs.placement, het);
    ASSERT_TRUE(aware.found);

    ClusterSpec blocking;
    blocking.nonBlockingComm = false;
    const SimResult obl_exec = simulateWithModel(
        oblivious.plan.instantiate(n), hs.edgeMB, hs.cluster, blocking);
    ASSERT_TRUE(obl_exec.ok);

    const Time aware_planned = aware.plan.makespanFor(n);
    EXPECT_LE(static_cast<double>(aware_planned),
              obl_exec.makespanMs + 1e-9);
}

} // namespace
} // namespace tessel
