/**
 * @file
 * End-to-end integration tests: search -> plan -> instantiate ->
 * simulate pipelines on unit-cost shapes and realistic model lowerings,
 * plus the headline comparative claims (Tessel never loses to the
 * baselines it shares a placement with).
 */

#include <gtest/gtest.h>

#include "baselines/schedules.h"
#include "core/search.h"
#include "models/lower.h"
#include "placement/shapes.h"
#include "runtime/instantiate.h"
#include "sim/runner.h"

namespace tessel {
namespace {

TEST(Integration, TesselBeatsOrMatches1F1BPlusOnMShape)
{
    const Placement p = makeMShape(4);
    TesselOptions opts;
    opts.totalBudgetSec = 120.0;
    const auto tessel = tesselSearch(p, opts);
    ASSERT_TRUE(tessel.found);
    const int n = 24;
    const Schedule ours = tessel.plan.instantiate(n);
    Problem prob(p, n, kUnlimitedMem);
    const auto theirs = schedule1F1BPlus(prob);
    ASSERT_TRUE(theirs.has_value());
    EXPECT_LE(ours.makespan(), theirs->makespan());
    // Asymptotically the gap approaches the Table II bubble gap.
    EXPECT_LT(static_cast<double>(ours.makespan()),
              0.9 * static_cast<double>(theirs->makespan()));
}

TEST(Integration, TesselMatches1F1BOnVShape)
{
    // On the classic V-shape both are zero-bubble: Tessel should tie.
    const Placement p = makeVShape(4);
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    const auto tessel = tesselSearch(p, opts);
    ASSERT_TRUE(tessel.found);
    const int n = 16;
    Problem prob(p, n, kUnlimitedMem);
    const auto ofob = schedule1F1B(prob);
    ASSERT_TRUE(ofob.has_value());
    EXPECT_LE(tessel.plan.makespanFor(n), ofob->makespan() + 3);
}

TEST(Integration, SearchedScheduleSurvivesRuntimeAndSim)
{
    for (const char *name : {"V", "M", "K"}) {
        TesselOptions opts;
        opts.totalBudgetSec = 120.0;
        const auto r = tesselSearch(makeShapeByName(name, 4), opts);
        ASSERT_TRUE(r.found) << name;
        const Schedule sched =
            r.plan.instantiate(r.plan.minMicrobatches() + 6);
        std::map<std::pair<int, int>, double> edges;
        const Program prog = instantiate(sched, edges);
        const SimResult sim = simulate(prog, ClusterSpec{});
        EXPECT_TRUE(sim.ok) << name;
        EXPECT_GT(sim.makespanMs, 0.0) << name;
    }
}

TEST(Integration, GptEndToEndOrdering)
{
    // Fig. 13's qualitative result at 4 GPUs: Tessel >= 1F1B+ >= OOM'd
    // Chimera; 1F1B on its own Piper V-shape is also beaten.
    HardwareSpec hw;
    const auto cfg = gptConfigForGpus(4);
    const auto m = lowerGptMShape(cfg, 4, 1, hw);
    ASSERT_TRUE(m.fits);
    const int n = 16;

    TesselOptions topts;
    topts.memLimit = m.memCapacityMB;
    topts.initialMem = m.initialMemMB;
    topts.totalBudgetSec = 120.0;
    const auto tessel = tesselSearch(m.placement, topts);
    ASSERT_TRUE(tessel.found);

    ClusterSpec cs;
    cs.memCapacityMB = m.memCapacityMB;
    cs.initialMemMB = m.initialMemMB;
    const SimResult sim_tessel =
        simulateSchedule(tessel.plan.instantiate(n), m.edgeMB, cs);
    ASSERT_TRUE(sim_tessel.ok);

    Problem prob(m.placement, n, m.memCapacityMB);
    prob.setInitialMem(m.initialMemMB);
    const auto plus = schedule1F1BPlus(prob);
    ASSERT_TRUE(plus.has_value());
    const SimResult sim_plus = simulateSchedule(*plus, m.edgeMB, cs);
    ASSERT_TRUE(sim_plus.ok);

    EXPECT_LT(sim_tessel.makespanMs, sim_plus.makespanMs);

    const auto chim = lowerGptXShapeChimera(cfg, 4, 1, hw);
    EXPECT_FALSE(chim.fits); // The paper's OOM column.
}

TEST(Integration, FlavaInferenceLatencyOrdering)
{
    // Fig. 15's qualitative result: K-shape Tessel has lower single-
    // batch latency than the serialized V-shape pipeline, and better
    // throughput than pure tensor parallelism at high batch counts.
    HardwareSpec hw;
    const auto cfg = flavaConfig();
    const auto k = lowerFlavaKShape(cfg, 4, 4, hw, false);
    const auto tp = lowerFlavaTensorParallel(cfg, 4, 4, hw);
    ASSERT_TRUE(k.fits);
    ASSERT_TRUE(tp.fits);

    TesselOptions topts;
    topts.totalBudgetSec = 120.0;
    const auto tessel = tesselSearch(k.placement, topts);
    ASSERT_TRUE(tessel.found);

    // Steady-state throughput: K-shape period vs TP serial time.
    const double tessel_rate = static_cast<double>(tessel.period);
    const double tp_rate = static_cast<double>(tp.placement.totalWork());
    EXPECT_LT(tessel_rate, tp_rate); // Higher throughput for Tessel.
}

TEST(Integration, SimulatedWaitTimeTracksScheduleBubble)
{
    // Fig. 16's consistency check: simulated wait occupation is close
    // to the schedule's theoretical bubble (within a few percent when
    // communication is cheap).
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    const auto r = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(r.found);
    const int n = 40;
    const Schedule sched = r.plan.instantiate(n);
    ClusterSpec cs;
    cs.linkLatencyMs = 0.0;
    const SimResult sim = simulateSchedule(sched, {}, cs);
    ASSERT_TRUE(sim.ok);
    const double theoretical = sched.bubbleRate();
    double mean_wait = 0.0;
    for (DeviceId d = 0; d < 4; ++d)
        mean_wait += sim.waitMs[d] / sim.makespanMs;
    mean_wait /= 4.0;
    EXPECT_NEAR(mean_wait, theoretical, 0.02);
}

TEST(Integration, NonBlockingCommNeverSlower)
{
    HardwareSpec hw;
    const auto m = lowerGptMShape(gptConfigForGpus(4), 4, 1, hw);
    TesselOptions topts;
    topts.memLimit = m.memCapacityMB;
    topts.initialMem = m.initialMemMB;
    topts.totalBudgetSec = 120.0;
    const auto tessel = tesselSearch(m.placement, topts);
    ASSERT_TRUE(tessel.found);
    const Schedule sched = tessel.plan.instantiate(12);

    ClusterSpec nb, bl;
    nb.memCapacityMB = bl.memCapacityMB = m.memCapacityMB;
    nb.initialMemMB = bl.initialMemMB = m.initialMemMB;
    nb.nonBlockingComm = true;
    bl.nonBlockingComm = false;
    const SimResult r_nb = simulateSchedule(sched, m.edgeMB, nb);
    const SimResult r_bl = simulateSchedule(sched, m.edgeMB, bl);
    ASSERT_TRUE(r_nb.ok);
    ASSERT_TRUE(r_bl.ok);
    EXPECT_LE(r_nb.makespanMs, r_bl.makespanMs + 1e-6);
}

TEST(Integration, SequentialIsTheMemoryFloor)
{
    // Property: among valid schedules, sequential execution minimizes
    // peak memory; every baseline and Tessel must use at least as much.
    const Placement p = makeVShape(4);
    Problem prob(p, 8, kUnlimitedMem);
    const Schedule seq = scheduleSequential(prob);
    const auto ofob = schedule1F1B(prob);
    ASSERT_TRUE(ofob.has_value());
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_GE(ofob->peakMemory(d), seq.peakMemory(d));
}

class ShapeByDevices
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ShapeByDevices, SearchInstantiateSimulate)
{
    const auto [name, devices] = GetParam();
    TesselOptions opts;
    opts.totalBudgetSec = 120.0;
    const auto r = tesselSearch(makeShapeByName(name, devices), opts);
    ASSERT_TRUE(r.found) << name << "/" << devices;
    EXPECT_EQ(r.period, r.lowerBound) << name << "/" << devices;
    const Schedule sched =
        r.plan.instantiate(r.plan.minMicrobatches() + 4);
    EXPECT_TRUE(sched.validate().ok);
    const SimResult sim = simulateSchedule(sched, {}, ClusterSpec{});
    EXPECT_TRUE(sim.ok);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapeByDevices,
    ::testing::Values(std::make_tuple("V", 2), std::make_tuple("V", 4),
                      std::make_tuple("X", 2), std::make_tuple("X", 4),
                      std::make_tuple("K", 2), std::make_tuple("K", 4),
                      std::make_tuple("M", 2), std::make_tuple("M", 4)));

} // namespace
} // namespace tessel
