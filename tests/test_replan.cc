/**
 * @file
 * Elastic-replanning tests: applyDelta survivor compaction, incremental
 * re-lowering bit-identical to a fresh lowering (and falling back when
 * the delta changes transfer structure), core tesselReplan producing
 * plans bit-identical to a cold search of the drifted instance, and the
 * service-level contract — drifted answers matching cold searches,
 * device failure served as a verified degraded plan (never an error),
 * budget-missed replans serving the old plan conservatively retimed
 * (stale) while the full search publishes to the store in the
 * background, and replans without a served base degenerating to an
 * ordinary fresh search.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/search.h"
#include "placement/comm.h"
#include "placement/shapes.h"
#include "service/service.h"
#include "store/adapt.h"
#include "store/serialize.h"
#include "store/store.h"
#include "support/io.h"

namespace tessel {
namespace {

/** Fast deterministic search options for test instances. */
TesselOptions
quickOptions()
{
    TesselOptions opts;
    opts.totalBudgetSec = 5.0;
    opts.repetendBudgetSec = 1.0;
    opts.phaseBudgetSec = 2.0;
    opts.numThreads = 1;
    return opts;
}

/** Hetero reference query owning its cluster model. */
PlanQuery
heteroQuery(const std::string &shape)
{
    HeteroShape hs = makeHeteroShapeByName(shape, 4);
    PlanQuery q;
    q.label = shape + "/hetero";
    q.placement = std::move(hs.placement);
    q.options = quickOptions();
    q.options.edgeMB = std::move(hs.edgeMB);
    q.cluster = std::make_shared<ClusterModel>(std::move(hs.cluster));
    return q;
}

/** Speed drift: device 1 slows to 2x its span cost. */
ClusterDelta
speedDrift()
{
    ClusterDelta delta;
    delta.speedFactor[1] = 2.0;
    return delta;
}

// ----------------------------------------------------------- applyDelta

TEST(ApplyDelta, RemovalCompactsSurvivorsPreservingHardware)
{
    HeteroShape hs = makeHeteroShapeByName("V", 4);
    // Fast/slow alternation: speeds [1, 1.5, 1, 1.5].
    ASSERT_EQ(hs.cluster.speedOf(1), 1.5);

    ClusterDelta delta;
    delta.removedDevices = {1};
    const ClusterModel survivors = applyDelta(hs.cluster, delta, 4);
    // Survivors keep their own hardware: [1, 1, 1.5], NOT the fresh
    // alternating pattern a 3-device hetero shape would fabricate.
    ASSERT_EQ(survivors.speedFactor.size(), 3u);
    EXPECT_EQ(survivors.speedOf(0), 1.0);
    EXPECT_EQ(survivors.speedOf(1), 1.0);
    EXPECT_EQ(survivors.speedOf(2), 1.5);

    // Link overrides re-key through the compaction; pairs touching the
    // removed device vanish.
    ClusterModel with_links = hs.cluster;
    LinkParams lp;
    lp.latency = 7.0;
    with_links.linkOverride[{2, 3}] = lp;
    with_links.linkOverride[{0, 1}] = lp;
    const ClusterModel remapped = applyDelta(with_links, delta, 4);
    ASSERT_EQ(remapped.linkOverride.size(), 1u);
    const auto it = remapped.linkOverride.find({1, 2});
    ASSERT_NE(it, remapped.linkOverride.end());
    EXPECT_EQ(it->second.latency, 7.0);
}

TEST(ApplyDelta, DegradedHeteroShapeUsesSurvivorCluster)
{
    std::vector<DeviceId> removed;
    const HeteroShape degraded =
        makeDegradedHeteroShapeByName("V", 4, /*failed=*/1, {}, {},
                                      &removed);
    EXPECT_EQ(removed, std::vector<DeviceId>{1});
    EXPECT_EQ(degraded.placement.numDevices(), 3);
    ASSERT_EQ(degraded.cluster.speedFactor.size(), 3u);
    EXPECT_EQ(degraded.cluster.speedOf(1), 1.0);
    EXPECT_EQ(degraded.cluster.speedOf(2), 1.5);

    // K-Shape retires the failed device's mirror partner with it.
    std::vector<DeviceId> k_removed;
    const HeteroShape k =
        makeDegradedHeteroShapeByName("K", 4, /*failed=*/3, {}, {},
                                      &k_removed);
    EXPECT_EQ(k_removed, (std::vector<DeviceId>{1, 3}));
    EXPECT_EQ(k.placement.numDevices(), 2);
}

// ------------------------------------------------------ relowerWithComm

TEST(RelowerWithComm, SpeedDriftPatchesBitIdentically)
{
    HeteroShape hs = makeHeteroShapeByName("X", 4);
    const CommExpansion base =
        expandWithComm(hs.placement, hs.cluster, hs.edgeMB, {});

    const ClusterDelta delta = speedDrift();
    const ClusterModel drifted = applyDelta(hs.cluster, delta, 4);
    const CommExpansion fresh =
        expandWithComm(hs.placement, drifted, hs.edgeMB, {});
    bool patched = false;
    const CommExpansion patched_exp = relowerWithComm(
        hs.placement, drifted, hs.edgeMB, {}, base, delta, &patched);

    EXPECT_TRUE(patched);
    EXPECT_TRUE(patched_exp.placement == fresh.placement);
    EXPECT_EQ(patched_exp.numLinks, fresh.numLinks);
    EXPECT_EQ(patched_exp.origSpec, fresh.origSpec);
    EXPECT_EQ(patched_exp.indexSpec, fresh.indexSpec);
    EXPECT_EQ(patched_exp.linkEndpoints, fresh.linkEndpoints);
}

TEST(RelowerWithComm, StructureChangingDeltaFallsBackToFullLowering)
{
    HeteroShape hs = makeHeteroShapeByName("V", 4);
    const CommExpansion base =
        expandWithComm(hs.placement, hs.cluster, hs.edgeMB, {});
    ASSERT_GT(base.numCommBlocks(), 0);

    // Making a carrying link free drops its transfers (span 0): the
    // comm-block set changes, so the patch must fall back to a full
    // lowering — and still equal it bit for bit.
    ClusterDelta delta;
    delta.link[{0, 1}] = LinkParams{};
    const ClusterModel drifted = applyDelta(hs.cluster, delta, 4);
    const CommExpansion fresh =
        expandWithComm(hs.placement, drifted, hs.edgeMB, {});
    ASSERT_NE(fresh.numCommBlocks(), base.numCommBlocks());
    bool patched = true;
    const CommExpansion relowered = relowerWithComm(
        hs.placement, drifted, hs.edgeMB, {}, base, delta, &patched);
    EXPECT_FALSE(patched);
    EXPECT_TRUE(relowered.placement == fresh.placement);
    EXPECT_EQ(relowered.origSpec, fresh.origSpec);
}

// -------------------------------------------------------- core replan

TEST(TesselReplan, DriftedPlanBitIdenticalToColdSearch)
{
    const PlanQuery base = heteroQuery("V");
    const TesselOptions base_opts = base.effectiveOptions();
    const TesselResult served = tesselSearch(base.placement, base_opts);
    ASSERT_TRUE(served.found);

    const ClusterDelta delta = speedDrift();
    const ClusterModel drifted_model =
        applyDelta(*base.cluster, delta, base.placement.numDevices());
    TesselOptions drifted = base_opts;
    drifted.cluster = &drifted_model;

    const TesselResult cold = tesselSearch(base.placement, drifted);
    ASSERT_TRUE(cold.found);

    ReplanSeed info;
    const TesselResult replanned = tesselReplan(
        base.placement, drifted, served, &delta,
        /*exactPhasesAllowed=*/true, &info);
    ASSERT_TRUE(info.ok) << info.reason;
    EXPECT_TRUE(info.incrementalLower);
    EXPECT_TRUE(info.retimed);
    // Seed-only-prunes: the seeded search lands on the cold plan bit
    // for bit. The retimed fallback itself verified against the
    // drifted instance.
    EXPECT_EQ(resultPlanDigest(replanned), resultPlanDigest(cold));
    const VerifyOutcome stale_ok = verifyResultAgainstQuery(
        base.placement, drifted, info.retimedResult);
    EXPECT_TRUE(stale_ok.ok) << stale_ok.reason;
}

// ----------------------------------------------------- service replan

TEST(ServiceReplan, DriftServedBitIdenticalToColdSearch)
{
    std::string warm_dir, cold_dir;
    ASSERT_TRUE(makeTempDir("tessel-replan-warm-", &warm_dir));
    ASSERT_TRUE(makeTempDir("tessel-replan-cold-", &cold_dir));

    ReplanRequest req;
    req.base = heteroQuery("X");
    req.delta = speedDrift();

    ServiceOptions warm_opts;
    warm_opts.cacheDir = warm_dir;
    warm_opts.numThreads = 1;
    warm_opts.replanBudgetSec = 0.0; // always wait: no stale answers
    PlanningService warm(warm_opts);
    warm.runOne(req.base, nullptr); // populate the base instance

    QueryReport report;
    const TesselResult replanned = warm.replan(req, &report);
    ASSERT_TRUE(replanned.found);
    EXPECT_TRUE(report.replanned);
    EXPECT_FALSE(report.stale);
    EXPECT_FALSE(report.degraded);
    EXPECT_STREQ(report.source, "search");
    EXPECT_FALSE(report.seededFrom.empty());

    ServiceOptions cold_opts;
    cold_opts.cacheDir = cold_dir;
    cold_opts.numThreads = 1;
    cold_opts.neighborSeed = false;
    PlanningService cold(cold_opts);
    QueryReport cold_report;
    cold.runOne(makeDriftedQuery(req), &cold_report);
    EXPECT_EQ(report.planHash, cold_report.planHash);
    EXPECT_EQ(report.fingerprint, cold_report.fingerprint);
}

TEST(ServiceReplan, BudgetMissServesVerifiedStaleThenPublishes)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-replan-stale-", &dir));

    ReplanRequest req;
    req.base = heteroQuery("NN");
    req.delta = speedDrift();
    const PlanQuery drifted = makeDriftedQuery(req);

    ServiceOptions opts;
    opts.cacheDir = dir;
    opts.numThreads = 1;
    opts.replanBudgetSec = 1e-9; // never enough: force the stale path
    PlanningService service(opts);
    service.runOne(req.base, nullptr);

    QueryReport stale_report;
    const TesselResult stale = service.replan(req, &stale_report);
    ASSERT_TRUE(stale.found);
    EXPECT_TRUE(stale_report.stale);
    EXPECT_STREQ(stale_report.source, "stale");
    // The stale answer is the old plan retimed under the drifted costs,
    // and it passed the oracle before being served.
    const VerifyOutcome ok = verifyResultAgainstQuery(
        drifted.placement, drifted.effectiveOptions(), stale);
    EXPECT_TRUE(ok.ok) << ok.reason;

    // The background search publishes the full answer to the store: a
    // repeat of the same drift is a plain hit, bit-identical to cold.
    service.waitBackgroundReplans();
    QueryReport fresh_report;
    const TesselResult fresh = service.replan(req, &fresh_report);
    ASSERT_TRUE(fresh.found);
    EXPECT_FALSE(fresh_report.stale);
    const std::string fresh_source = fresh_report.source;
    EXPECT_TRUE(fresh_source == "memory" || fresh_source == "disk")
        << fresh_source;

    std::string cold_dir;
    ASSERT_TRUE(makeTempDir("tessel-replan-stale-cold-", &cold_dir));
    ServiceOptions cold_opts;
    cold_opts.cacheDir = cold_dir;
    cold_opts.numThreads = 1;
    cold_opts.neighborSeed = false;
    PlanningService cold(cold_opts);
    QueryReport cold_report;
    cold.runOne(drifted, &cold_report);
    EXPECT_EQ(fresh_report.planHash, cold_report.planHash);
}

TEST(ServiceReplan, DeviceFailureServedAsVerifiedDegradedPlan)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-replan-fail-", &dir));

    ReplanRequest req;
    req.base = heteroQuery("V");
    std::vector<DeviceId> removed;
    HeteroShape hs =
        makeDegradedHeteroShapeByName("V", 4, /*failed=*/1, {}, {},
                                      &removed);
    PlanQuery degraded;
    degraded.label = "V/hetero/fail=1";
    degraded.placement = std::move(hs.placement);
    degraded.options = quickOptions();
    degraded.options.edgeMB = std::move(hs.edgeMB);
    degraded.cluster =
        std::make_shared<ClusterModel>(std::move(hs.cluster));
    req.delta.removedDevices = std::move(removed);
    req.degraded = std::move(degraded);

    ServiceOptions opts;
    opts.cacheDir = dir;
    opts.numThreads = 1;
    opts.replanBudgetSec = 0.0;
    PlanningService service(opts);
    service.runOne(req.base, nullptr);

    QueryReport report;
    const TesselResult result = service.replan(req, &report);
    // A failure is served as a verified survivor plan, never an error.
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(report.degraded);
    EXPECT_TRUE(report.replanned);
    EXPECT_FALSE(report.stale);
    const VerifyOutcome ok = verifyResultAgainstQuery(
        req.degraded->placement, req.degraded->effectiveOptions(),
        result);
    EXPECT_TRUE(ok.ok) << ok.reason;
}

TEST(ServiceReplan, NoServedBaseFallsBackToFreshSearchNotStale)
{
    std::string dir;
    ASSERT_TRUE(makeTempDir("tessel-replan-nobase-", &dir));

    ReplanRequest req;
    req.base = heteroQuery("M");
    req.delta = speedDrift();

    ServiceOptions opts;
    opts.cacheDir = dir;
    opts.numThreads = 1;
    opts.replanBudgetSec = 1e-9; // stale path would trigger if eligible
    PlanningService service(opts);
    // No runOne(base): the store has nothing to retime.

    QueryReport report;
    const TesselResult result = service.replan(req, &report);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(report.replanned);
    EXPECT_FALSE(report.stale);
    EXPECT_STREQ(report.source, "search");
}

} // namespace
} // namespace tessel
