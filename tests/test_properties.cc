/**
 * @file
 * Cross-cutting property tests: invariants that must hold for every
 * shape x configuration combination — repetend consistency, expansion
 * validity, the Sec. VI-B training-to-inference observation, and
 * end-to-end agreement between the schedule metrics and the simulator.
 */

#include <gtest/gtest.h>

#include "baselines/schedules.h"
#include "core/search.h"
#include "placement/shapes.h"
#include "sim/runner.h"
#include "support/rng.h"

namespace tessel {
namespace {

class EveryShape : public ::testing::TestWithParam<const char *>
{
  protected:
    Placement
    placement() const
    {
        return makeShapeByName(GetParam(), 4);
    }

    TesselResult
    search(TesselOptions opts = {}) const
    {
        if (opts.totalBudgetSec == 0.0)
            opts.totalBudgetSec = 120.0;
        return tesselSearch(placement(), opts);
    }
};

TEST_P(EveryShape, PeriodNeverBelowWorkBound)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    EXPECT_GE(r.period, r.lowerBound);
}

TEST_P(EveryShape, RepetendEntryMemoryNonNegative)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    for (Mem m : repetendEntryMem(placement(), r.plan.assignment()))
        EXPECT_GE(m, 0);
}

TEST_P(EveryShape, WindowRespectsIntraDependencies)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    const Placement p = placement();
    const auto &assign = r.plan.assignment();
    const auto &start = r.plan.windowStart();
    for (int j = 0; j < p.numBlocks(); ++j)
        for (int i : p.block(j).deps)
            if (assign.r[i] == assign.r[j]) {
                EXPECT_LE(start[i] + p.block(i).span, start[j]);
            }
}

TEST_P(EveryShape, ExpansionMakespanIsAffineInN)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    const int nr = r.plan.minMicrobatches();
    // Beyond a settling point, makespan(N+1) - makespan(N) == period.
    Time prev = r.plan.makespanFor(nr + 6);
    for (int n = nr + 7; n <= nr + 12; ++n) {
        const Time cur = r.plan.makespanFor(n);
        EXPECT_EQ(cur - prev, r.plan.period()) << GetParam() << " N=" << n;
        prev = cur;
    }
}

TEST_P(EveryShape, WholeRunBubbleConvergesToSteady)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    const Schedule big = r.plan.instantiate(r.plan.minMicrobatches() + 80);
    EXPECT_NEAR(big.bubbleRate(), r.plan.steadyBubbleRate(), 0.08)
        << GetParam();
}

TEST_P(EveryShape, SimMatchesScheduleWithFreeComm)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    const Schedule sched =
        r.plan.instantiate(r.plan.minMicrobatches() + 6);
    ClusterSpec cs;
    cs.linkLatencyMs = 0.0;
    cs.nvlinkGBs = cs.ibGBs = 1e9;
    const SimResult sim = simulateSchedule(sched, {}, cs);
    ASSERT_TRUE(sim.ok) << GetParam();
    // Free communication: the simulator can only compress the periodic
    // layout, never stretch it.
    EXPECT_LE(sim.makespanMs,
              static_cast<double>(sched.makespan()) + 1e-6)
        << GetParam();
    // And never beat the per-device work bound.
    double max_busy = 0.0;
    for (double b : sim.busyMs)
        max_busy = std::max(max_busy, b);
    EXPECT_GE(sim.makespanMs, max_busy - 1e-6);
}

TEST_P(EveryShape, TrainingMinusBackwardIsValidInference)
{
    // Sec. VI-B: inference schedules can be derived from training
    // schedules by dropping backward blocks. Project the searched
    // training schedule's order onto the forward-only placement and
    // check it times into a valid schedule.
    const auto r = search();
    ASSERT_TRUE(r.found);
    const Placement train = placement();
    const Placement infer = forwardOnly(train);
    // Map forward specs: forwardOnly preserves relative order.
    std::vector<int> to_infer(train.numBlocks(), -1);
    int next = 0;
    for (int i = 0; i < train.numBlocks(); ++i)
        if (train.block(i).kind != BlockKind::Backward)
            to_infer[i] = next++;

    const int n = r.plan.minMicrobatches() + 4;
    const Schedule tsched = r.plan.instantiate(n);
    Problem iprob(infer, n, kUnlimitedMem);
    Schedule isched(iprob);
    // Keep the training start times for the surviving blocks; validity
    // (deps + exclusivity) must be inherited.
    for (int spec = 0; spec < train.numBlocks(); ++spec) {
        if (to_infer[spec] < 0)
            continue;
        for (int mb = 0; mb < n; ++mb)
            isched.setStart({to_infer[spec], mb},
                            tsched.start({spec, mb}));
    }
    const auto check = isched.validate();
    EXPECT_TRUE(check.ok) << GetParam() << ": " << check.message;
}

TEST_P(EveryShape, TesselNeverLosesToSequential)
{
    const auto r = search();
    ASSERT_TRUE(r.found);
    const int n = r.plan.minMicrobatches() + 8;
    Problem prob(placement(), n, kUnlimitedMem);
    EXPECT_LE(r.plan.makespanFor(n),
              scheduleSequential(prob).makespan());
}

TEST_P(EveryShape, BaselinesAlwaysValidate)
{
    const int n = 12;
    Problem prob(placement(), n, kUnlimitedMem);
    for (const auto &sched :
         {schedule1F1B(prob), scheduleGPipe(prob),
          schedule1F1BPlus(prob), scheduleChimeraDirect(prob)}) {
        ASSERT_TRUE(sched.has_value());
        EXPECT_TRUE(sched->validate().ok) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, EveryShape,
                         ::testing::Values("V", "X", "M", "K"));

TEST(RandomCosts, SearchHandlesHeterogeneousSpans)
{
    // Randomized spans/memories on a V-shape skeleton: the search must
    // always return a valid, work-bound-respecting plan.
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(seed * 2654435761ull);
        ShapeCosts costs;
        costs.fwdSpan = rng.range(1, 4);
        costs.bwdSpan = rng.range(costs.fwdSpan, 8);
        const Placement p = makeVShape(3, costs);
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        const auto r = tesselSearch(p, opts);
        ASSERT_TRUE(r.found) << "seed " << seed;
        EXPECT_GE(r.period, r.lowerBound);
        EXPECT_TRUE(
            r.plan.instantiate(r.plan.minMicrobatches() + 3).validate().ok)
            << "seed " << seed;
    }
}

TEST(RandomCosts, MemoryLimitedSearchesStayWithinBudget)
{
    for (Mem m : {2, 3, 5}) {
        TesselOptions opts;
        opts.memLimit = m;
        opts.totalBudgetSec = 30.0;
        const auto r = tesselSearch(makeVShape(3), opts);
        ASSERT_TRUE(r.found) << "M=" << m;
        const Schedule sched =
            r.plan.instantiate(r.plan.minMicrobatches() + 6);
        for (DeviceId d = 0; d < 3; ++d)
            EXPECT_LE(sched.peakMemory(d), m) << "M=" << m;
    }
}

} // namespace
} // namespace tessel
