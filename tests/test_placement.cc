/**
 * @file
 * Tests for placement structures: shape builders (Fig. 1), the public
 * PlacementBuilder API, derived placement queries, and the Piper stage
 * partitioner.
 */

#include <gtest/gtest.h>


#include "placement/builder.h"
#include "placement/piper.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TEST(Placement, TopoOrderRespectsDeps)
{
    const Placement p = makeVShape(4);
    std::vector<int> pos(p.numBlocks());
    for (size_t i = 0; i < p.topoOrder().size(); ++i)
        pos[p.topoOrder()[i]] = static_cast<int>(i);
    for (int i = 0; i < p.numBlocks(); ++i)
        for (int dep : p.block(i).deps)
            EXPECT_LT(pos[dep], pos[i]);
}

TEST(Placement, VShapeStructure)
{
    const Placement p = makeVShape(4);
    EXPECT_EQ(p.numBlocks(), 8);
    EXPECT_EQ(p.numDevices(), 4);
    // First half forward down the devices, second half backward up.
    for (int d = 0; d < 4; ++d) {
        EXPECT_EQ(p.block(d).kind, BlockKind::Forward);
        EXPECT_EQ(p.block(d).devices, oneDevice(d));
    }
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(p.block(i).kind, BlockKind::Backward);
    // Chain of length 8.
    EXPECT_EQ(p.criticalPath(), 4 * 1 + 4 * 2);
    EXPECT_EQ(p.totalWork(), 4 * 1 + 4 * 2);
    EXPECT_EQ(p.perMicrobatchLowerBound(), 3);
}

TEST(Placement, VShapeMemoryNetZero)
{
    const Placement p = makeVShape(4);
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(p.netMemoryOnDevice(d), 0);
}

TEST(Placement, XShapeTwoPipelines)
{
    const Placement p = makeXShape(4);
    EXPECT_EQ(p.numBlocks(), 16);
    // Each device hosts exactly 4 blocks (2 fwd + 2 bwd).
    for (DeviceId d = 0; d < 4; ++d) {
        EXPECT_EQ(p.blocksOnDevice(d).size(), 4u);
        EXPECT_EQ(p.workOnDevice(d), 2 * (1 + 2));
    }
}

TEST(Placement, MShapeHasFullDeviceBlocks)
{
    const Placement p = makeMShape(4);
    int full_device = 0;
    for (int i = 0; i < p.numBlocks(); ++i)
        if (p.block(i).devices == allDevices(4))
            ++full_device;
    EXPECT_EQ(full_device, 3); // embF, headFB, embB.
    // Every device executes the TP blocks plus its own stage pair.
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(p.blocksOnDevice(d).size(), 5u);
}

TEST(Placement, NnShapeDecoderDependsOnEncoderAndEmbedding)
{
    const Placement p = makeNnShape(4);
    // Find dF0 and check its dependencies include eF3 and embF.
    int d0 = -1, e3 = -1, emb = -1;
    for (int i = 0; i < p.numBlocks(); ++i) {
        if (p.block(i).name == "dF0")
            d0 = i;
        if (p.block(i).name == "eF3")
            e3 = i;
        if (p.block(i).name == "embF")
            emb = i;
    }
    ASSERT_GE(d0, 0);
    ASSERT_GE(e3, 0);
    ASSERT_GE(emb, 0);
    const auto &deps = p.block(d0).deps;
    EXPECT_NE(std::find(deps.begin(), deps.end(), e3), deps.end());
    EXPECT_NE(std::find(deps.begin(), deps.end(), emb), deps.end());
}

TEST(Placement, KShapeBranchesAreIndependent)
{
    const Placement p = makeKShape(4);
    // tF* on devices {0,1}, vF* on {2,3}; neither depends on the other.
    DeviceMask text_half = allDevices(2); // {0,1}
    DeviceMask vision_half;               // {2,3}
    vision_half.set(2);
    vision_half.set(3);
    for (int i = 0; i < p.numBlocks(); ++i) {
        const BlockSpec &b = p.block(i);
        if (b.name[0] == 't' && b.kind == BlockKind::Forward) {
            EXPECT_TRUE(text_half.contains(b.devices)) << b.devices;
        }
        if (b.name[0] == 'v' && b.kind == BlockKind::Forward) {
            EXPECT_TRUE(vision_half.contains(b.devices)) << b.devices;
        }
    }
}

TEST(Placement, ShapesScaleWithDeviceCount)
{
    for (int d : {2, 4, 8, 16}) {
        EXPECT_EQ(makeVShape(d).numBlocks(), 2 * d);
        EXPECT_EQ(makeXShape(d).numBlocks(), 4 * d);
        EXPECT_EQ(makeMShape(d).numBlocks(), 2 * d + 3);
        EXPECT_EQ(makeNnShape(d).numBlocks(), 4 * d + 2);
        EXPECT_EQ(makeKShape(d).numBlocks(), 2 * d + 2);
    }
}

TEST(Placement, ShapeByNameRoundTrip)
{
    for (const char *name : {"V", "X", "M", "NN", "K"}) {
        const Placement p = makeShapeByName(name, 4);
        EXPECT_GT(p.numBlocks(), 0) << name;
    }
}

TEST(Placement, ForwardOnlyDropsBackward)
{
    const Placement train = makeMShape(4);
    const Placement infer = forwardOnly(train);
    for (int i = 0; i < infer.numBlocks(); ++i) {
        EXPECT_NE(infer.block(i).kind, BlockKind::Backward);
        EXPECT_EQ(infer.block(i).memory, 0);
    }
    int fwd = 0;
    for (int i = 0; i < train.numBlocks(); ++i)
        if (train.block(i).kind != BlockKind::Backward)
            ++fwd;
    EXPECT_EQ(infer.numBlocks(), fwd);
}

TEST(Placement, ForwardOnlyPreservesDependencies)
{
    const Placement infer = forwardOnly(makeVShape(4));
    EXPECT_EQ(infer.numBlocks(), 4);
    for (int i = 1; i < 4; ++i) {
        ASSERT_EQ(infer.block(i).deps.size(), 1u);
        EXPECT_EQ(infer.block(i).deps[0], i - 1);
    }
}

TEST(Placement, RecomputeCostsTripleBackward)
{
    const Placement p = makeVShape(4, ShapeCosts::withRecompute());
    EXPECT_EQ(p.block(4).span, 3);
    EXPECT_EQ(p.block(0).span, 1);
}

TEST(PlacementBuilder, BuildsCustomShape)
{
    PlacementBuilder b("custom", 2);
    const int f0 = b.forward("f0").on(0).span(2).mem(1).done();
    const int f1 = b.forward("f1").on(1).span(2).mem(1).after(f0).done();
    const int bb =
        b.backward("b").onDevices({0, 1}).span(4).mem(-1).after(f1).done();
    EXPECT_EQ(b.size(), 3);
    const Placement p = b.build();
    EXPECT_EQ(p.numBlocks(), 3);
    EXPECT_EQ(p.block(bb).devices, allDevices(2));
    EXPECT_EQ(p.block(f1).deps, std::vector<int>{f0});
    EXPECT_EQ(p.criticalPath(), 8);
}

TEST(PlacementBuilder, OnAllUsesEveryDevice)
{
    PlacementBuilder b("tp", 4);
    const int x = b.other("x").onAll().span(3).done();
    const Placement p = b.build();
    EXPECT_EQ(p.block(x).devices, allDevices(4));
    EXPECT_EQ(p.workOnDevice(3), 3);
}

TEST(Piper, BalancedSplitWithoutMemoryPressure)
{
    std::vector<LayerCost> layers;
    for (int i = 0; i < 8; ++i)
        layers.push_back({"l", 1.0, 2.0, 1.0});
    const PiperResult r = piperPartition(layers, 4, 1e9, 1.0, 1);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.stages.size(), 4u);
    EXPECT_DOUBLE_EQ(r.bottleneckTime, 6.0); // 2 layers x 3.
    EXPECT_DOUBLE_EQ(r.fastestTime, 6.0);
}

TEST(Piper, MemoryForcesImbalance)
{
    // A huge first layer (embedding) must sit alone.
    std::vector<LayerCost> layers;
    layers.push_back({"emb", 0.1, 0.2, 90.0});
    for (int i = 0; i < 6; ++i)
        layers.push_back({"l", 1.0, 2.0, 10.0});
    const PiperResult r = piperPartition(layers, 4, 95.0, 1.0, 1);
    ASSERT_TRUE(r.feasible);
    // First stage holds only the embedding.
    EXPECT_EQ(r.stages[0].firstLayer, 0);
    EXPECT_EQ(r.stages[0].lastLayer, 0);
    EXPECT_GT(r.bottleneckTime / r.fastestTime, 2.0);
}

TEST(Piper, InfeasibleWhenNothingFits)
{
    std::vector<LayerCost> layers{{"big", 1.0, 2.0, 1000.0}};
    const PiperResult r = piperPartition(layers, 4, 10.0, 1.0);
    EXPECT_FALSE(r.feasible);
}

TEST(Piper, TensorParallelismRescuesBigLayers)
{
    std::vector<LayerCost> layers{{"big", 1.0, 2.0, 1000.0}};
    const PiperResult r = piperPartition(layers, 4, 300.0, 1.0);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.stages.size(), 1u);
    EXPECT_EQ(r.stages[0].numDevices, 4);
}

TEST(Piper, MaxTpCapsStageWidth)
{
    std::vector<LayerCost> layers;
    for (int i = 0; i < 4; ++i)
        layers.push_back({"l", 1.0, 1.0, 1.0});
    const PiperResult r = piperPartition(layers, 4, 1e9, 1.0, 2);
    ASSERT_TRUE(r.feasible);
    for (const PiperStage &st : r.stages)
        EXPECT_LE(st.numDevices, 2);
}

TEST(Piper, ToPlacementProducesValidVShape)
{
    std::vector<LayerCost> layers;
    for (int i = 0; i < 8; ++i)
        layers.push_back({"l", 1.0, 2.0, 1.0});
    const PiperResult r = piperPartition(layers, 4, 1e9, 1.0, 1);
    ASSERT_TRUE(r.feasible);
    const Placement p = piperToPlacement(r, 1.0);
    EXPECT_EQ(p.numDevices(), 4);
    EXPECT_EQ(p.numBlocks(), 8); // 4 fwd + 4 bwd stages.
    // Backward releases what forward allocated.
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(p.netMemoryOnDevice(d), 0);
}

TEST(Piper, UsesAllDevices)
{
    std::vector<LayerCost> layers;
    for (int i = 0; i < 10; ++i)
        layers.push_back({"l", 1.0, 1.0, 1.0});
    for (int devices : {2, 3, 4, 6}) {
        const PiperResult r = piperPartition(layers, devices, 1e9, 0.9);
        ASSERT_TRUE(r.feasible);
        int used = 0;
        for (const PiperStage &st : r.stages)
            used += st.numDevices;
        EXPECT_EQ(used, devices);
    }
}

} // namespace
} // namespace tessel
