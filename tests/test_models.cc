/**
 * @file
 * Tests for model configurations (Table III), the analytic cost model,
 * and the model-to-placement lowerings used by the end-to-end benches.
 */

#include <gtest/gtest.h>

#include "models/config.h"
#include "models/lower.h"

namespace tessel {
namespace {

TEST(Configs, TableIIIGptParameterCounts)
{
    // Table III: {11B, 24B, 47B, 77B}.
    EXPECT_NEAR(gptConfigForGpus(4).params() / 1e9, 11.0, 2.0);
    EXPECT_NEAR(gptConfigForGpus(8).params() / 1e9, 24.0, 4.0);
    EXPECT_NEAR(gptConfigForGpus(16).params() / 1e9, 47.0, 7.0);
    EXPECT_NEAR(gptConfigForGpus(32).params() / 1e9, 77.0, 12.0);
}

TEST(Configs, TableIIIMt5ParameterCounts)
{
    EXPECT_NEAR(mt5ConfigForGpus(4).params() / 1e9, 1.8, 0.8);
    EXPECT_NEAR(mt5ConfigForGpus(8).params() / 1e9, 9.5, 3.0);
    EXPECT_NEAR(mt5ConfigForGpus(16).params() / 1e9, 43.0, 8.0);
    EXPECT_NEAR(mt5ConfigForGpus(32).params() / 1e9, 88.0, 15.0);
}

TEST(Configs, Fig2GeometryIs6Point7B)
{
    const GptConfig cfg = gptFig2Config(32);
    EXPECT_EQ(cfg.hidden, 4096);
    EXPECT_EQ(cfg.vocab, 768000);
    EXPECT_EQ(cfg.layers, 32);
}

TEST(CostModel, LayerFlopsScaleQuadraticallyInHidden)
{
    HardwareSpec hw;
    CostModel cm(hw, 1);
    const double f1 = cm.layerFwdFlops(1024, 512);
    const double f2 = cm.layerFwdFlops(2048, 512);
    EXPECT_GT(f2 / f1, 3.5);
    EXPECT_LT(f2 / f1, 4.5);
}

TEST(CostModel, TensorParallelSpeedupIsSubLinear)
{
    HardwareSpec hw;
    CostModel cm(hw, 1);
    const double flops = 1e13;
    const double t1 = cm.msFor(flops, 1);
    const double t4 = cm.msFor(flops, 4);
    EXPECT_LT(t4, t1 / 2.0); // Parallelism helps...
    EXPECT_GT(t4, t1 / 4.0); // ...but below linear.
}

TEST(CostModel, SpansArePositiveIntegers)
{
    HardwareSpec hw;
    CostModel cm(hw, 1);
    EXPECT_GE(cm.spanFor(1.0), 1);
    EXPECT_GE(cm.spanFor(0.0), 1);
    EXPECT_EQ(CostModel::quantizeMs(2.4), 2);
    EXPECT_EQ(CostModel::quantizeMs(2.6), 3);
}

TEST(CostModel, MemoryHelpers)
{
    HardwareSpec hw;
    CostModel cm(hw, 2);
    EXPECT_GT(cm.boundaryMB(4096, 1024), 0.0);
    EXPECT_GT(cm.stageActivationMB(8, 4096, 1024), 0);
    // Training bytes dominate inference bytes.
    EXPECT_GT(cm.paramMB(1e9, true), cm.paramMB(1e9, false));
    // Tensor parallel splits storage.
    EXPECT_LT(cm.paramMB(1e9, true, 4), cm.paramMB(1e9, true, 1));
}

TEST(Lower, GptMShapeStructureAndFit)
{
    HardwareSpec hw;
    const auto m = lowerGptMShape(gptConfigForGpus(4), 4, 1, hw);
    EXPECT_TRUE(m.fits);
    EXPECT_EQ(m.placement.numDevices(), 4);
    EXPECT_EQ(m.placement.numBlocks(), 2 * 4 + 3);
    // Net memory per device is zero (steady-state trainable).
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(m.placement.netMemoryOnDevice(d), 0);
    EXPECT_GT(m.flopsPerMicrobatch, 0.0);
    // Every chain edge carries activation volume.
    EXPECT_GE(m.edgeMB.size(), 8u);
}

TEST(Lower, GptMShapeBalancedStages)
{
    HardwareSpec hw;
    const auto m = lowerGptMShape(gptConfigForGpus(4), 4, 1, hw);
    // Per-device work within 15% of each other (the paper's premise
    // that M-Shape balances computation).
    Time lo = kUnlimitedMem, hi = 0;
    for (DeviceId d = 0; d < 4; ++d) {
        lo = std::min(lo, m.placement.workOnDevice(d));
        hi = std::max(hi, m.placement.workOnDevice(d));
    }
    EXPECT_LT(static_cast<double>(hi) / lo, 1.15);
}

TEST(Lower, PiperVShapeKeepsPipelineStructure)
{
    HardwareSpec hw;
    const auto v = lowerGptVShapePiper(gptConfigForGpus(4), 4, 1, hw);
    ASSERT_TRUE(v.fits);
    // Multiple stages (the max-TP cap prevents whole-model TP).
    EXPECT_GE(v.placement.numBlocks(), 4);
}

TEST(Lower, ChimeraDoublesParameterMemory)
{
    HardwareSpec hw;
    const auto x = lowerGptXShapeChimera(gptConfigForGpus(4), 4, 1, hw);
    const auto m = lowerGptMShape(gptConfigForGpus(4), 4, 1, hw);
    // Chimera replicates the model onto both pipelines: it must not fit
    // where the single-copy M-shape does (the paper's OOM column).
    EXPECT_TRUE(m.fits);
    EXPECT_FALSE(x.fits);
    EXPECT_GT(x.initialMemMB[0], m.initialMemMB[0]);
}

TEST(Lower, Mt5NnShapeStructure)
{
    HardwareSpec hw;
    const auto m = lowerMt5NnShape(mt5ConfigForGpus(4), 4, 2, hw);
    EXPECT_TRUE(m.fits);
    EXPECT_EQ(m.placement.numBlocks(), 4 * 4 + 3); // enc+dec+embx2+head.
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(m.placement.netMemoryOnDevice(d), 0);
}

TEST(Lower, FlavaKShapeTrainingAndInference)
{
    HardwareSpec hw;
    const auto train = lowerFlavaKShape(flavaConfig(), 4, 4, hw, true);
    const auto infer = lowerFlavaKShape(flavaConfig(), 4, 4, hw, false);
    EXPECT_TRUE(train.fits);
    EXPECT_TRUE(infer.fits);
    EXPECT_GT(train.placement.numBlocks(), infer.placement.numBlocks());
    // Inference holds only weights: less memory than training.
    EXPECT_LT(infer.initialMemMB[0], train.initialMemMB[0]);
    // Training counts backward+recompute FLOPs.
    EXPECT_GT(train.flopsPerMicrobatch, 3.0 * infer.flopsPerMicrobatch);
}

TEST(Lower, FlavaTensorParallelIsSequentialChain)
{
    HardwareSpec hw;
    const auto tp = lowerFlavaTensorParallel(flavaConfig(), 4, 4, hw);
    EXPECT_EQ(tp.placement.numBlocks(), 3);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(tp.placement.block(i).devices, allDevices(4));
    // Latency per micro-batch = total span (no pipelining possible).
    EXPECT_EQ(tp.placement.criticalPath(), tp.placement.totalWork());
}

TEST(Lower, FlavaVShapeSerializesBranches)
{
    HardwareSpec hw;
    const auto v = lowerFlavaVShape(flavaConfig(), 4, 4, hw);
    const auto k = lowerFlavaKShape(flavaConfig(), 4, 4, hw, false);
    // The V-shape chain's critical path exceeds the K-shape's because
    // the branches cannot run concurrently.
    EXPECT_GT(v.placement.criticalPath(),
              k.placement.criticalPath() * 0.9);
}

TEST(Lower, CrossServerTensorParallelCostsMore)
{
    HardwareSpec hw;
    // 16 GPUs = 2 servers: the full-device embedding spans servers.
    const auto m16 = lowerGptMShape(gptConfigForGpus(16), 16, 1, hw);
    const auto m4 = lowerGptMShape(gptConfigForGpus(4), 4, 1, hw);
    // The cross-server embF pays IB all-reduce: compare per-FLOP span.
    const double emb16 = static_cast<double>(m16.placement.block(0).span);
    const double emb4 = static_cast<double>(m4.placement.block(0).span);
    EXPECT_GT(emb16, emb4);
}

TEST(Lower, Fig2LayerCostsEmbeddingDominatesMemoryNotTime)
{
    HardwareSpec hw;
    CostModel cm(hw, 1);
    const auto layers = gptLayerCosts(gptFig2Config(32), cm);
    ASSERT_GE(layers.size(), 3u);
    const LayerCost &emb = layers.front();
    const LayerCost &mid = layers[1];
    EXPECT_GT(emb.memory, 10.0 * mid.memory);
    EXPECT_LT(emb.fwdTime, mid.fwdTime);
}

} // namespace
} // namespace tessel
