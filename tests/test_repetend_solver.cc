/**
 * @file
 * Tests for the minimal-period repetend solver: known optimal periods,
 * tight vs simple compaction (Fig. 6), memory constraints at steady
 * state, and cutoff behavior.
 */

#include <gtest/gtest.h>

#include "core/repetend_solver.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

RepetendAssignment
assign(std::vector<int> r)
{
    RepetendAssignment a;
    a.numMicrobatches = 1;
    for (int v : r)
        a.numMicrobatches = std::max(a.numMicrobatches, v + 1);
    a.r = std::move(r);
    return a;
}

TEST(RepetendSolver, VShape1F1BReachesWorkBound)
{
    const Placement p = makeVShape(4); // Work per device = 3.
    const auto sched =
        solveRepetend(p, assign({3, 2, 1, 0, 0, 0, 0, 0}));
    ASSERT_TRUE(sched.feasible);
    EXPECT_TRUE(sched.proven);
    EXPECT_EQ(sched.period, 3);
}

TEST(RepetendSolver, SequentialAssignmentIsSlow)
{
    const Placement p = makeVShape(4);
    // All indices zero: the repetend is one whole micro-batch; device
    // spans can be tiny but cross-instance deps force the serial chain
    // through: period = critical path = 12.
    const auto sched = solveRepetend(p, assign({0, 0, 0, 0, 0, 0, 0, 0}));
    ASSERT_TRUE(sched.feasible);
    EXPECT_EQ(sched.period, 12);
}

TEST(RepetendSolver, PeriodImprovesWithMoreMicrobatches)
{
    const Placement p = makeVShape(4);
    Time prev = kUnlimitedMem;
    for (const auto &r :
         {assign({0, 0, 0, 0, 0, 0, 0, 0}),
          assign({1, 1, 1, 0, 0, 0, 0, 0}),
          assign({3, 2, 1, 0, 0, 0, 0, 0})}) {
        const auto sched = solveRepetend(p, r);
        ASSERT_TRUE(sched.feasible);
        EXPECT_LE(sched.period, prev);
        prev = sched.period;
    }
}

TEST(RepetendSolver, WindowDelayBeatsSemiActive)
{
    // The K-shape training repetend needs delayed first blocks on some
    // devices to reach the work bound; this asserts the solver is not
    // restricted to earliest-start (semi-active) window timings.
    const Placement p = makeKShape(4); // Work/device = 2*(1+2) = 6? No:
    // each device: 1 fwd (1) + 1 bwd (2) + xF (1) + xB (2) = 6.
    const auto all = allRepetends(p, 3);
    Time best = kUnlimitedMem;
    for (const auto &a : all) {
        const auto sched = solveRepetend(p, a);
        if (sched.feasible)
            best = std::min(best, sched.period);
    }
    EXPECT_EQ(best, p.perMicrobatchLowerBound());
}

TEST(RepetendSolver, MemoryLimitsRaiseThePeriod)
{
    const Placement p = makeVShape(4);
    const RepetendAssignment a = assign({3, 2, 1, 0, 0, 0, 0, 0});
    RepetendSolveOptions opts;
    opts.memLimit = 4; // Entry 3 + in-window +1 fits comfortably.
    const auto ok = solveRepetend(p, a, opts);
    EXPECT_TRUE(ok.feasible);
    EXPECT_EQ(ok.period, 3);
    // M = 3 forces a longer period: holding only 3 in-flight
    // micro-batches on device 0 breaks the 1F1B phase (Fig. 12's
    // memory/bubble trade-off).
    opts.memLimit = 3;
    const auto reordered = solveRepetend(p, a, opts);
    EXPECT_TRUE(reordered.feasible);
    EXPECT_GT(reordered.period, 3);
    opts.memLimit = 2; // Below the warmup entry usage: impossible.
    const auto tight = solveRepetend(p, a, opts);
    EXPECT_FALSE(tight.feasible);
}

TEST(RepetendSolver, InitialMemCounts)
{
    const Placement p = makeVShape(4);
    const RepetendAssignment a = assign({3, 2, 1, 0, 0, 0, 0, 0});
    RepetendSolveOptions opts;
    opts.memLimit = 4;
    opts.initialMem = {2, 0, 0, 0}; // Entry 3 + 2 exceeds the cap.
    EXPECT_FALSE(solveRepetend(p, a, opts).feasible);
}

TEST(RepetendSolver, CutoffPrunes)
{
    const Placement p = makeVShape(4);
    RepetendSolveOptions opts;
    opts.cutoff = 12; // Sequential assignment cannot beat this.
    const auto sched =
        solveRepetend(p, assign({0, 0, 0, 0, 0, 0, 0, 0}), opts);
    EXPECT_FALSE(sched.feasible);
}

TEST(RepetendSolver, WindowScheduleInternallyConsistent)
{
    const Placement p = makeMShape(4);
    const auto all = allRepetends(p, 2);
    for (const auto &a : all) {
        const auto sched = solveRepetend(p, a);
        if (!sched.feasible)
            continue;
        // Starts normalized, within the window span.
        Time lo = sched.start[0];
        for (Time s : sched.start)
            lo = std::min(lo, s);
        EXPECT_EQ(lo, 0);
        for (int i = 0; i < p.numBlocks(); ++i)
            EXPECT_LE(sched.start[i] + p.block(i).span,
                      sched.windowSpan);
        // Intra-window dependencies hold.
        for (int j = 0; j < p.numBlocks(); ++j)
            for (int i : p.block(j).deps)
                if (a.r[i] == a.r[j]) {
                    EXPECT_LE(sched.start[i] + p.block(i).span,
                              sched.start[j]);
                }
        // The reported period matches the independent evaluator.
        EXPECT_EQ(evalPeriod(p, a, sched.start, true), sched.period);
    }
}

TEST(RepetendSolver, EvalPeriodSimpleNeverBeatsTight)
{
    const Placement p = makeVShape(4);
    for (const auto &a : allRepetends(p, 3)) {
        const auto sched = solveRepetend(p, a);
        if (!sched.feasible)
            continue;
        EXPECT_GE(evalPeriod(p, a, sched.start, false),
                  evalPeriod(p, a, sched.start, true));
    }
}

TEST(RepetendSolver, TightCompactionMatchesFig6)
{
    // Fig. 6's example: a V-shape repetend whose next instance can start
    // before the previous window fully ends. With the 1F1B assignment
    // the window spans more than the period.
    const Placement p = makeVShape(4);
    const auto sched = solveRepetend(p, assign({3, 2, 1, 0, 0, 0, 0, 0}));
    ASSERT_TRUE(sched.feasible);
    EXPECT_GT(sched.windowSpan, sched.period);
}

TEST(RepetendSolver, XShapePeriodReachesBound)
{
    const Placement p = makeXShape(4); // Work per device = 6.
    const auto all = allRepetends(p, 3);
    Time best = kUnlimitedMem;
    for (const auto &a : all) {
        const auto sched = solveRepetend(p, a);
        if (sched.feasible)
            best = std::min(best, sched.period);
    }
    EXPECT_EQ(best, 6);
}

TEST(RepetendSolver, BudgetMarksUnproven)
{
    const Placement p = makeNnShape(4);
    const auto all = allRepetends(p, 4);
    ASSERT_FALSE(all.empty());
    RepetendSolveOptions opts;
    opts.nodeLimit = 1;
    const auto sched = solveRepetend(p, all[all.size() / 2], opts);
    EXPECT_FALSE(sched.proven);
}

} // namespace
} // namespace tessel
