/**
 * @file
 * Differential-testing oracle suite: the branch-and-bound solver (all
 * pruning enabled) must agree with a prune-free brute-force permutation
 * solver on hundreds of seeded random tiny instances, with and without
 * comm blocks on link pseudo-devices, and every schedule either solver
 * emits must pass the standalone verifySolverSchedule() checker. Plans
 * produced by the end-to-end search (warmup + repetend window + cooldown)
 * are verified through the same checker.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/search.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"
#include "solver/oracle.h"
#include "support/rng.h"

namespace tessel {
namespace {

/** Run one brute-vs-BnB comparison; returns a failure message or "". */
std::string
compareOne(const SolverProblem &sp, uint64_t seed, int which)
{
    const SolveResult brute = bruteForceMinMakespan(sp);
    BnbSolver solver(sp);
    const SolveResult bnb = solver.minimizeMakespan();

    std::ostringstream os;
    os << "seed=" << seed << " instance=" << which
       << " blocks=" << sp.blocks.size() << " devices=" << sp.numDevices;
    const std::string ctx = os.str();

    if (brute.status == SolveStatus::Infeasible ||
        bnb.status == SolveStatus::Infeasible) {
        if (brute.status != bnb.status)
            return ctx + ": feasibility disagreement";
        return "";
    }
    if (brute.status != SolveStatus::Optimal)
        return ctx + ": brute force not optimal?";
    if (bnb.status != SolveStatus::Optimal)
        return ctx + ": BnB failed to prove optimality without a budget";
    if (brute.makespan != bnb.makespan) {
        std::ostringstream bad;
        bad << ctx << ": brute=" << brute.makespan
            << " bnb=" << bnb.makespan;
        return bad.str();
    }
    const OracleVerdict v_bnb = verifySolverSchedule(sp, bnb.starts);
    if (!v_bnb.ok)
        return ctx + ": BnB schedule rejected: " + v_bnb.message;
    const OracleVerdict v_brute = verifySolverSchedule(sp, brute.starts);
    if (!v_brute.ok)
        return ctx + ": brute schedule rejected: " + v_brute.message;
    return "";
}

TEST(Differential, BnbMatchesBruteForceWithoutComm)
{
    Rng rng(0xd1ffe7);
    RandomInstanceParams params;
    int feasible = 0;
    for (int i = 0; i < 150; ++i) {
        const SolverProblem sp = randomInstance(rng, params);
        const std::string err = compareOne(sp, 0xd1ffe7, i);
        EXPECT_EQ(err, "");
        BnbSolver probe(sp);
        if (probe.minimizeMakespan().feasible())
            ++feasible;
    }
    // The generator must not degenerate into all-infeasible instances.
    EXPECT_GT(feasible, 100);
}

TEST(Differential, BnbMatchesBruteForceWithComm)
{
    Rng rng(0xc0111);
    RandomInstanceParams params;
    params.withComm = true;
    params.minDevices = 2;
    int with_comm = 0;
    for (int i = 0; i < 100; ++i) {
        const SolverProblem sp = randomInstance(rng, params);
        if (sp.numDevices > params.maxDevices)
            ++with_comm; // Link pseudo-devices were appended.
        const std::string err = compareOne(sp, 0xc0111, i);
        EXPECT_EQ(err, "");
    }
    EXPECT_GT(with_comm, 20);
}

TEST(Differential, BnbMatchesBruteForceOnWideResourceSets)
{
    // Device counts straddling the one-word/multi-word ResourceSet
    // boundary, plus comm links appended past the real device count:
    // these instances were unrepresentable under the old 64-bit mask.
    Rng rng(0x51de);
    RandomInstanceParams params;
    params.withComm = true;
    params.minDevices = 62;
    params.maxDevices = 68;
    int wide = 0, multiword = 0;
    for (int i = 0; i < 60; ++i) {
        const SolverProblem sp = randomInstance(rng, params);
        if (sp.numDevices > 64)
            ++wide;
        for (const SolverBlock &b : sp.blocks)
            if (b.devices.anyAtOrAbove(64)) {
                ++multiword;
                break;
            }
        const std::string err = compareOne(sp, 0x51de, i);
        EXPECT_EQ(err, "");
    }
    // The sweep must actually exercise >64-resource instances and
    // blocks whose masks need a second word.
    EXPECT_GT(wide, 20);
    EXPECT_GT(multiword, 10);
}

TEST(Differential, BinarySearchAgreesWithDirectMinimization)
{
    Rng rng(0xb1a5);
    RandomInstanceParams params;
    for (int i = 0; i < 40; ++i) {
        const SolverProblem sp = randomInstance(rng, params);
        BnbSolver a(sp);
        const SolveResult direct = a.minimizeMakespan();
        BnbSolver b(sp);
        const SolveResult bin = b.binarySearchMakespan();
        ASSERT_EQ(direct.feasible(), bin.feasible()) << "instance " << i;
        if (direct.feasible()) {
            EXPECT_EQ(direct.makespan, bin.makespan) << "instance " << i;
        }
    }
}

TEST(Differential, VerifierRejectsCorruptedSchedules)
{
    // A hand-built two-device instance with a dependency and a memory
    // pair; corrupt each constraint in turn and expect rejection.
    SolverProblem sp;
    sp.numDevices = 2;
    sp.memLimit = 2;
    SolverBlock a;
    a.span = 2;
    a.devices = oneDevice(0);
    a.memory = 2;
    SolverBlock b;
    b.span = 3;
    b.devices = oneDevice(1);
    b.deps = {0};
    b.release = 1;
    SolverBlock c;
    c.span = 1;
    c.devices = oneDevice(0);
    c.memory = -2;
    c.deps = {0};
    sp.blocks = {a, b, c};

    const std::vector<Time> good = {0, 2, 5};
    EXPECT_TRUE(verifySolverSchedule(sp, good).ok);

    EXPECT_FALSE(verifySolverSchedule(sp, {0, 1, 5}).ok);  // Dependency.
    EXPECT_FALSE(verifySolverSchedule(sp, {0, 2, 1}).ok);  // Exclusivity.
    EXPECT_FALSE(verifySolverSchedule(sp, {-1, 2, 5}).ok); // Negative.
    EXPECT_FALSE(verifySolverSchedule(sp, {0, 2}).ok);     // Size.

    // Release: block b may not start before t=1 even without the dep.
    SolverProblem no_dep = sp;
    no_dep.blocks[1].deps.clear();
    EXPECT_FALSE(verifySolverSchedule(no_dep, {0, 0, 5}).ok);

    // Memory: two allocations without the release in between.
    SolverProblem tight = sp;
    tight.blocks[2].memory = 2;
    EXPECT_FALSE(verifySolverSchedule(tight, good).ok);

    // Initial availability.
    SolverProblem busy = sp;
    busy.initialAvail = {1, 0};
    EXPECT_FALSE(verifySolverSchedule(busy, good).ok);
}

TEST(Differential, VerifierChecksLinkExclusivity)
{
    // Two comm blocks on the same link pseudo-device must serialize.
    SolverProblem sp;
    sp.numDevices = 3; // Devices 0, 1 and link pseudo-device 2.
    SolverBlock p0;
    p0.span = 1;
    p0.devices = oneDevice(0);
    SolverBlock p1;
    p1.span = 1;
    p1.devices = oneDevice(1);
    SolverBlock c0;
    c0.span = 3;
    c0.devices = oneDevice(2);
    c0.deps = {0};
    SolverBlock c1;
    c1.span = 3;
    c1.devices = oneDevice(2);
    c1.deps = {1};
    sp.blocks = {p0, p1, c0, c1};

    EXPECT_TRUE(verifySolverSchedule(sp, {0, 0, 1, 4}).ok);
    const OracleVerdict overlap = verifySolverSchedule(sp, {0, 0, 1, 2});
    EXPECT_FALSE(overlap.ok);
    EXPECT_NE(overlap.message.find("exclusivity"), std::string::npos);
}

/** Search plans (warmup + window + cooldown) must pass the verifier. */
class PlanVerification : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PlanVerification, SearchWarmupCooldownSchedulesVerify)
{
    const std::string name = GetParam();
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    const auto r = tesselSearch(makeShapeByName(name, 4), opts);
    ASSERT_TRUE(r.found) << name;
    for (int extra : {0, 3}) {
        const int n = r.plan.minMicrobatches() + extra;
        const Schedule sched = r.plan.instantiate(n);
        const Problem prob = r.plan.problemFor(n);
        const SolverProblem sp = buildFullInstance(prob);
        const OracleVerdict v =
            verifySolverSchedule(sp, startsFromSchedule(prob, sched));
        EXPECT_TRUE(v.ok) << name << " n=" << n << ": " << v.message;
    }
}

TEST_P(PlanVerification, CommAwarePlansVerify)
{
    const std::string name = GetParam();
    const HeteroShape hs = makeHeteroShapeByName(name, 2);
    TesselOptions opts;
    opts.totalBudgetSec = 60.0;
    opts.cluster = &hs.cluster;
    opts.edgeMB = hs.edgeMB;
    const auto r = tesselSearch(hs.placement, opts);
    ASSERT_TRUE(r.found) << name;
    ASSERT_TRUE(r.commAware);
    const int n = r.plan.minMicrobatches() + 2;
    const Schedule sched = r.plan.instantiate(n);
    const Problem prob = r.plan.problemFor(n);
    const SolverProblem sp = buildFullInstance(prob);
    const OracleVerdict v =
        verifySolverSchedule(sp, startsFromSchedule(prob, sched));
    EXPECT_TRUE(v.ok) << name << ": " << v.message;
}

INSTANTIATE_TEST_SUITE_P(Shapes, PlanVerification,
                         ::testing::Values("V", "X", "M", "NN", "K"));

} // namespace
} // namespace tessel
