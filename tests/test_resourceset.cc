/**
 * @file
 * Property tests for the width-generic ResourceSet against a
 * std::bitset reference model: set/reset/test/count/contains/
 * intersects/hash agree with the model across word-boundary widths
 * (63/64/65/127/128/512), equality and hashing are canonical across
 * different grown capacities, and the value semantics (copy, move,
 * iteration) hold on both the inline one-word path and the heap path.
 */

#include <gtest/gtest.h>

#include <bitset>
#include <set>
#include <sstream>
#include <utility>

#include "support/resourceset.h"
#include "support/rng.h"

namespace tessel {
namespace {

constexpr int kModelBits = 512;
using Model = std::bitset<kModelBits>;

/** Assert every observable of @p s matches the reference model. */
void
expectMatchesModel(const ResourceSet &s, const Model &m, int width)
{
    ASSERT_EQ(s.count(), static_cast<int>(m.count()));
    ASSERT_EQ(s.empty(), m.none());
    for (int i = 0; i < width + 70; ++i)
        ASSERT_EQ(s.test(i), i < kModelBits && m.test(i)) << "bit " << i;
    // Iteration yields exactly the set bits, ascending.
    int prev = -1, seen = 0;
    for (int i : s) {
        ASSERT_GT(i, prev);
        ASSERT_TRUE(m.test(i)) << "iterated bit " << i;
        prev = i;
        ++seen;
    }
    ASSERT_EQ(seen, static_cast<int>(m.count()));
    if (m.any()) {
        int lo = 0;
        while (!m.test(lo))
            ++lo;
        ASSERT_EQ(s.lowest(), lo);
    }
}

TEST(ResourceSet, RandomOpsMatchBitsetAtWordBoundaryWidths)
{
    Rng rng(0x5e7b175);
    for (int width : {63, 64, 65, 127, 128, 512}) {
        ResourceSet s;
        Model m;
        for (int step = 0; step < 2000; ++step) {
            const int bit = static_cast<int>(rng.range(0, width - 1));
            if (rng.chance(0.6)) {
                s.set(bit);
                m.set(bit);
            } else {
                s.reset(bit);
                m.reset(bit);
            }
            if (step % 97 == 0)
                expectMatchesModel(s, m, width);
        }
        expectMatchesModel(s, m, width);
    }
}

TEST(ResourceSet, ContainsIntersectsHashMatchModel)
{
    Rng rng(0xc0ffee);
    for (int width : {63, 64, 65, 127, 128, 512}) {
        for (int round = 0; round < 50; ++round) {
            ResourceSet a, b;
            Model ma, mb;
            const int n = static_cast<int>(rng.range(0, 40));
            for (int k = 0; k < n; ++k) {
                const int bit = static_cast<int>(rng.range(0, width - 1));
                if (rng.chance(0.5)) {
                    a.set(bit);
                    ma.set(bit);
                }
                if (rng.chance(0.5)) {
                    b.set(bit);
                    mb.set(bit);
                }
            }
            EXPECT_EQ(a.contains(b), (mb & ~ma).none());
            EXPECT_EQ(b.contains(a), (ma & ~mb).none());
            EXPECT_EQ(a.intersects(b), (ma & mb).any());
            EXPECT_EQ(a.intersects(b), b.intersects(a));
            EXPECT_EQ(a == b, ma == mb);
            if (ma == mb) {
                EXPECT_EQ(a.hash(), b.hash());
            }
        }
    }
}

TEST(ResourceSet, EqualityAndHashCanonicalAcrossCapacities)
{
    // One set that grew wide and shrank back, one that never grew: the
    // capacities differ, the values must not.
    ResourceSet grown;
    grown.set(500);
    grown.set(7);
    grown.reset(500);
    ResourceSet narrow;
    narrow.set(7);
    EXPECT_EQ(grown, narrow);
    EXPECT_EQ(narrow, grown);
    EXPECT_EQ(grown.hash(), narrow.hash());
    EXPECT_TRUE(narrow.contains(grown));
    EXPECT_TRUE(grown.contains(narrow));
    EXPECT_FALSE(grown.anyAtOrAbove(8));
    EXPECT_EQ(grown.count(), 1);

    grown.reset(7);
    EXPECT_EQ(grown, ResourceSet{});
    EXPECT_EQ(grown.hash(), ResourceSet{}.hash());
    EXPECT_TRUE(grown.empty());
}

TEST(ResourceSet, FirstNRepresentsExactlyCountBits)
{
    for (int count : {0, 1, 63, 64, 65, 127, 128, 200, 512}) {
        const ResourceSet s = ResourceSet::firstN(count);
        EXPECT_EQ(s.count(), count) << count;
        if (count > 0) {
            EXPECT_TRUE(s.test(count - 1));
            EXPECT_EQ(s.lowest(), 0);
        }
        EXPECT_FALSE(s.test(count));
        EXPECT_FALSE(s.anyAtOrAbove(count));
        if (count > 0) {
            EXPECT_TRUE(s.anyAtOrAbove(count - 1));
        }
        EXPECT_EQ(s, ResourceSet::firstN(count));
    }
}

TEST(ResourceSetDeathTest, NegativeIndicesPanic)
{
    ResourceSet s;
    EXPECT_DEATH(s.set(-1), "negative index");
    EXPECT_DEATH(s.test(-3), "negative index");
    EXPECT_DEATH(ResourceSet::firstN(-2), "negative index");
}

TEST(ResourceSet, CopyAndMoveSemantics)
{
    for (int hot_bit : {5, 300}) { // Inline path and heap path.
        ResourceSet a;
        a.set(hot_bit);
        a.set(2);

        ResourceSet copy = a;
        EXPECT_EQ(copy, a);
        copy.set(40);
        EXPECT_NE(copy, a); // Deep copy: no shared words.
        EXPECT_FALSE(a.test(40));

        ResourceSet assigned;
        assigned.set(400); // Overwrite a heap-backed value.
        assigned = a;
        EXPECT_EQ(assigned, a);

        ResourceSet moved = std::move(copy);
        EXPECT_TRUE(moved.test(40));
        EXPECT_TRUE(moved.test(hot_bit));

        ResourceSet move_assigned;
        move_assigned = std::move(moved);
        EXPECT_TRUE(move_assigned.test(40));

        a = a; // Self-assignment must be a no-op.
        EXPECT_TRUE(a.test(hot_bit));
        EXPECT_EQ(a.count(), 2);
    }
}

TEST(ResourceSet, FromWordMatchesBitPattern)
{
    const ResourceSet s = ResourceSet::fromWord(0x8000000000000005ull);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(2));
    EXPECT_TRUE(s.test(63));
    EXPECT_EQ(s.count(), 3);
    EXPECT_EQ(s, [] {
        ResourceSet t;
        t.set(0);
        t.set(2);
        t.set(63);
        return t;
    }());
}

TEST(ResourceSet, HashDistributionAcrossWideIndices)
{
    std::set<size_t> hashes;
    for (int i = 0; i < 512; ++i) {
        ResourceSet s;
        s.set(i);
        hashes.insert(s.hash());
    }
    // FNV folding may collide rarely; demand near-perfect spread.
    EXPECT_GE(hashes.size(), 500u);
}

TEST(ResourceSet, StreamsAsBitList)
{
    ResourceSet s;
    s.set(0);
    s.set(3);
    s.set(130);
    std::ostringstream os;
    os << s;
    EXPECT_EQ(os.str(), "{0,3,130}");
}

} // namespace
} // namespace tessel
