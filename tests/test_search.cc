/**
 * @file
 * Tests for TesselSearch (Algorithm 1): zero-bubble periods and NR
 * thresholds matching the paper's searched schedules (Fig. 8 / Fig. 11),
 * memory ablation behavior (Fig. 12), and lazy-search equivalence.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TesselOptions
quickOpts()
{
    TesselOptions o;
    o.totalBudgetSec = 120.0;
    return o;
}

TEST(TesselSearch, VShapeFindsOneFOneB)
{
    const auto r = tesselSearch(makeVShape(4), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, 3);
    EXPECT_EQ(r.period, r.lowerBound);
    EXPECT_EQ(r.nrUsed, 4); // Fig. 11: V-shape needs >= 4 micro-batches.
    EXPECT_DOUBLE_EQ(r.plan.steadyBubbleRate(), 0.0);
    EXPECT_TRUE(r.breakdown.earlyExit);
}

TEST(TesselSearch, MShapeNeedsSixMicrobatches)
{
    const auto r = tesselSearch(makeMShape(4), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, r.lowerBound);
    EXPECT_EQ(r.nrUsed, 6); // Fig. 8(b) / Fig. 11.
    EXPECT_DOUBLE_EQ(r.plan.steadyBubbleRate(), 0.0);
}

TEST(TesselSearch, KShapeTrainingNeedsThree)
{
    const auto r = tesselSearch(makeKShape(4), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, r.lowerBound);
    EXPECT_EQ(r.nrUsed, 3); // Fig. 8(h).
}

TEST(TesselSearch, XShapeZeroBubble)
{
    const auto r = tesselSearch(makeXShape(4), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, r.lowerBound);
    EXPECT_DOUBLE_EQ(r.plan.steadyBubbleRate(), 0.0);
}

TEST(TesselSearch, InferenceShapes)
{
    // Inference NR values from Fig. 8(c,f,i): M=4, K=2, V=1.
    const auto rv = tesselSearch(forwardOnly(makeVShape(4)), quickOpts());
    ASSERT_TRUE(rv.found);
    EXPECT_EQ(rv.nrUsed, 1);
    EXPECT_EQ(rv.period, rv.lowerBound);

    const auto rm = tesselSearch(forwardOnly(makeMShape(4)), quickOpts());
    ASSERT_TRUE(rm.found);
    EXPECT_EQ(rm.nrUsed, 4);
    EXPECT_EQ(rm.period, rm.lowerBound);

    const auto rk = tesselSearch(forwardOnly(makeKShape(4)), quickOpts());
    ASSERT_TRUE(rk.found);
    EXPECT_EQ(rk.nrUsed, 2);
    EXPECT_EQ(rk.period, rk.lowerBound);
}

TEST(TesselSearch, LazyAndEagerAgreeOnPeriod)
{
    for (const char *name : {"V", "M", "K"}) {
        TesselOptions lazy = quickOpts();
        TesselOptions eager = quickOpts();
        eager.lazy = false;
        const auto a = tesselSearch(makeShapeByName(name, 4), lazy);
        const auto b = tesselSearch(makeShapeByName(name, 4), eager);
        ASSERT_TRUE(a.found);
        ASSERT_TRUE(b.found);
        EXPECT_EQ(a.period, b.period) << name;
        EXPECT_EQ(a.nrUsed, b.nrUsed) << name;
    }
}

class MemorySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MemorySweep, BubbleNonIncreasingInMemory)
{
    // Fig. 12's trend: more memory never hurts the searched period.
    const Mem m = GetParam();
    TesselOptions opts = quickOpts();
    opts.memLimit = m;
    const auto r = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(r.found) << "M=" << m;

    TesselOptions more = quickOpts();
    more.memLimit = m + 1;
    const auto r2 = tesselSearch(makeVShape(4), more);
    ASSERT_TRUE(r2.found);
    EXPECT_LE(r2.period, r.period);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MemorySweep,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(TesselSearch, VShapeZeroBubbleAtMemoryFour)
{
    // Fig. 12: V-shape reaches zero bubble once M >= D = 4.
    TesselOptions opts = quickOpts();
    opts.memLimit = 4;
    const auto r = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, 3);

    opts.memLimit = 2;
    const auto tight = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(tight.found);
    EXPECT_GT(tight.period, 3);
}

TEST(TesselSearch, NrSweepMatchesFig11Start)
{
    // Restricting the repetend to 1 micro-batch leaves the sequential
    // period (high bubble), like the leftmost points of Fig. 11.
    TesselOptions opts = quickOpts();
    opts.maxRepetendMicrobatches = 1;
    const auto r = tesselSearch(makeVShape(4), opts);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, 12);
    EXPECT_NEAR(r.plan.steadyBubbleRate(), 0.75, 1e-9);
}

TEST(TesselSearch, ReportsBreakdown)
{
    const auto r = tesselSearch(makeMShape(4), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_GT(r.breakdown.candidatesEnumerated, 0u);
    EXPECT_GT(r.breakdown.candidatesSolved, 0u);
    EXPECT_GE(r.breakdown.repetendSeconds, 0.0);
}

TEST(TesselSearch, TwoDeviceShapes)
{
    for (const char *name : {"V", "X", "K"}) {
        const auto r = tesselSearch(makeShapeByName(name, 2), quickOpts());
        ASSERT_TRUE(r.found) << name;
        EXPECT_EQ(r.period, r.lowerBound) << name;
    }
}

TEST(TesselSearch, CustomSpansStillOptimal)
{
    // Unbalanced stage costs: the work bound moves; the search should
    // still reach it with enough micro-batches.
    ShapeCosts costs;
    costs.fwdSpan = 2;
    costs.bwdSpan = 4;
    const auto r = tesselSearch(makeVShape(4, costs), quickOpts());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.period, 6);
}

} // namespace
} // namespace tessel
