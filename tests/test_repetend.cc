/**
 * @file
 * Tests for repetend construction: the candidate enumeration with
 * Property 4.1/4.2 pruning and canonical forms, warmup/cooldown block
 * derivation (Eqs. 5/6), entry-memory analysis, and the in-flight limit.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/repetend.h"
#include "placement/shapes.h"

namespace tessel {
namespace {

TEST(RepetendEnum, SingleMicrobatchHasOneCandidate)
{
    for (const char *name : {"V", "X", "M", "NN", "K"}) {
        const Placement p = makeShapeByName(name, 4);
        const auto all = allRepetends(p, 1);
        ASSERT_EQ(all.size(), 1u) << name;
        for (int r : all[0].r)
            EXPECT_EQ(r, 0);
    }
}

TEST(RepetendEnum, Property42AlongChains)
{
    const Placement p = makeVShape(4);
    for (int nr = 2; nr <= 4; ++nr) {
        for (const auto &a : allRepetends(p, nr)) {
            for (int j = 0; j < p.numBlocks(); ++j)
                for (int i : p.block(j).deps)
                    EXPECT_GE(a.r[i], a.r[j]);
        }
    }
}

TEST(RepetendEnum, CanonicalFormMinZeroMaxNrMinusOne)
{
    const Placement p = makeMShape(4);
    for (int nr = 1; nr <= 4; ++nr) {
        for (const auto &a : allRepetends(p, nr)) {
            int lo = nr, hi = -1;
            for (int r : a.r) {
                lo = std::min(lo, r);
                hi = std::max(hi, r);
            }
            EXPECT_EQ(lo, 0);
            EXPECT_EQ(hi, nr - 1);
            EXPECT_EQ(a.numMicrobatches, nr);
        }
    }
}

TEST(RepetendEnum, ChainCountMatchesCombinatorics)
{
    // For a single dependency chain of K blocks and indices in [0, NR),
    // non-increasing assignments with min 0 and max NR-1 are the
    // compositions counted by C(K-2 + NR-2, NR-2)... verified here
    // against brute force for small sizes.
    const Placement p = makeVShape(2); // Chain of 4 blocks.
    for (int nr = 1; nr <= 4; ++nr) {
        int brute = 0;
        // Enumerate all 4-digit assignments in [0, nr).
        for (int a = 0; a < nr; ++a)
            for (int b = 0; b < nr; ++b)
                for (int c = 0; c < nr; ++c)
                    for (int d = 0; d < nr; ++d) {
                        if (!(a >= b && b >= c && c >= d))
                            continue;
                        if (std::min({a, b, c, d}) != 0 ||
                            std::max({a, b, c, d}) != nr - 1) {
                            continue;
                        }
                        ++brute;
                    }
        EXPECT_EQ(static_cast<int>(allRepetends(p, nr).size()), brute)
            << "nr=" << nr;
    }
}

TEST(RepetendEnum, CandidatesAreUnique)
{
    const Placement p = makeKShape(4);
    for (int nr = 1; nr <= 3; ++nr) {
        std::set<std::vector<int>> seen;
        for (const auto &a : allRepetends(p, nr))
            EXPECT_TRUE(seen.insert(a.r).second);
    }
}

TEST(RepetendEnum, EarlyStopViaCallback)
{
    const Placement p = makeVShape(4);
    int count = 0;
    enumerateRepetends(p, 4, [&](const RepetendAssignment &) {
        ++count;
        return count < 3;
    });
    EXPECT_EQ(count, 3);
}

TEST(RepetendPhases, WarmupAndCooldownPartition)
{
    const Placement p = makeVShape(4);
    // 1F1B-like assignment: forwards 3,2,1,0; backwards all 0.
    RepetendAssignment a;
    a.r = {3, 2, 1, 0, 0, 0, 0, 0};
    a.numMicrobatches = 4;

    const auto warm = warmupBlocks(p, a);
    const auto cool = cooldownBlocks(p, a);
    // Warmup: f0 x3, f1 x2, f2 x1 = 6 blocks.
    EXPECT_EQ(warm.size(), 6u);
    // Cooldown: per spec NR-1-r blocks: f0:0, f1:1, f2:2, f3:3 and
    // 3 for each of the four backward specs.
    EXPECT_EQ(cool.size(), 0u + 1 + 2 + 3 + 3 * 4);
    // Disjointness and coverage: warm + cool + K == K * NR.
    EXPECT_EQ(warm.size() + cool.size() + p.numBlocks(),
              static_cast<size_t>(p.numBlocks()) * a.numMicrobatches);
    for (const BlockRef &ref : warm)
        EXPECT_LT(ref.mb, a.r[ref.spec]);
    for (const BlockRef &ref : cool) {
        EXPECT_GT(ref.mb, a.r[ref.spec]);
        EXPECT_LT(ref.mb, a.numMicrobatches);
    }
}

TEST(RepetendPhases, WarmupIsDependencyClosed)
{
    const Placement p = makeNnShape(4);
    for (const auto &a : allRepetends(p, 3)) {
        const auto warm = warmupBlocks(p, a);
        std::set<std::pair<int, int>> in_warm;
        for (const BlockRef &ref : warm)
            in_warm.insert({ref.spec, ref.mb});
        for (const BlockRef &ref : warm)
            for (int dep : p.block(ref.spec).deps)
                EXPECT_TRUE(in_warm.count({dep, ref.mb}))
                    << "warmup block depends outside the warmup";
    }
}

TEST(RepetendMemory, EntryMemoryCountsInFlightWarmup)
{
    const Placement p = makeVShape(4); // mem +1 fwd, -1 bwd.
    RepetendAssignment a;
    a.r = {3, 2, 1, 0, 0, 0, 0, 0};
    a.numMicrobatches = 4;
    const auto entry = repetendEntryMem(p, a);
    // Device d has r[f_d] forward allocations in flight at entry.
    EXPECT_EQ(entry[0], 3);
    EXPECT_EQ(entry[1], 2);
    EXPECT_EQ(entry[2], 1);
    EXPECT_EQ(entry[3], 0);
}

TEST(RepetendMemory, TensorParallelBlocksChargeEveryDevice)
{
    const Placement p = makeMShape(4);
    RepetendAssignment a;
    a.r.assign(p.numBlocks(), 0);
    a.r[0] = 2; // embF (all devices) two micro-batches ahead.
    a.numMicrobatches = 3;
    const auto entry = repetendEntryMem(p, a);
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(entry[d], 2); // 2 x embF memory (1 per device).
}

TEST(MaxInflight, UnlimitedMemoryGivesHardCap)
{
    const Placement p = makeVShape(4);
    EXPECT_EQ(calMaxInflight(p, kUnlimitedMem, {}, 8), 8);
}

TEST(MaxInflight, MemoryBoundsInflight)
{
    const Placement p = makeVShape(4); // Holds +1 per in-flight mb.
    EXPECT_EQ(calMaxInflight(p, 3, {}, 8), 3);
    EXPECT_EQ(calMaxInflight(p, 1, {}, 8), 1);
}

TEST(MaxInflight, InitialMemoryReducesHeadroom)
{
    const Placement p = makeVShape(4);
    EXPECT_EQ(calMaxInflight(p, 5, {2, 0, 0, 0}, 8), 3);
}

TEST(MaxInflight, AtLeastOne)
{
    const Placement p = makeVShape(4);
    EXPECT_GE(calMaxInflight(p, 1, {}, 8), 1);
}

} // namespace
} // namespace tessel
