/**
 * @file
 * Fig. 15 reproduction: Flava inference latency and throughput versus
 * the number of micro-batches on 4 GPUs, comparing 1F1B (serialized
 * V-Shape pipeline), pure tensor parallelism, and Tessel's K-Shape
 * schedule, against the 400 ms latency budget of the paper.
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    const FlavaConfig cfg = flavaConfig();
    const int gpus = 4;
    const int batch = 4;
    const double latency_budget_ms = 400.0;

    const auto k = lowerFlavaKShape(cfg, gpus, batch, hw, false);
    const auto tp = lowerFlavaTensorParallel(cfg, gpus, batch, hw);
    const auto v = lowerFlavaVShape(cfg, gpus, batch, hw);

    const auto tessel_search = tesselSearch(
        k.placement, bench::searchOptions(k.memCapacityMB,
                                          k.initialMemMB));

    Table lat("Fig. 15(a): Flava inference latency (ms) vs "
              "micro-batches");
    lat.setHeader({"micro-batches", "1F1B", "TensorParallel", "Tessel",
                   "budget ok?"});
    Table thr("Fig. 15(b): Flava inference throughput (reqs/s) vs "
              "micro-batches");
    thr.setHeader({"micro-batches", "1F1B", "TensorParallel", "Tessel"});

    for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
        // 1F1B on the serialized chain.
        Problem v_prob(v.placement, n, v.memCapacityMB);
        v_prob.setInitialMem(v.initialMemMB);
        const auto v_sched = schedule1F1B(v_prob);
        double v_ms = -1.0;
        if (v_sched)
            v_ms = bench::runSchedule(*v_sched, v, hw, n).iterationMs;

        // Pure tensor parallelism: sequential micro-batches.
        Problem tp_prob(tp.placement, n, tp.memCapacityMB);
        tp_prob.setInitialMem(tp.initialMemMB);
        const Schedule tp_sched = scheduleSequential(tp_prob);
        const double tp_ms =
            bench::runSchedule(tp_sched, tp, hw, n).iterationMs;

        // Tessel K-Shape.
        double t_ms = -1.0;
        if (tessel_search.found) {
            const int actual =
                std::max(n, tessel_search.plan.minMicrobatches());
            const Schedule sched = tessel_search.plan.instantiate(actual);
            t_ms = bench::runSchedule(sched, k, hw, actual).iterationMs;
        }

        auto cell = [](double ms) {
            return ms < 0 ? std::string("-") : fmtDouble(ms, 1);
        };
        auto rate = [&](double ms) {
            return ms <= 0 ? std::string("-")
                           : fmtDouble(n * batch / (ms / 1e3), 2);
        };
        lat.addRow({std::to_string(n), cell(v_ms), cell(tp_ms),
                    cell(t_ms),
                    (t_ms > 0 && t_ms <= latency_budget_ms) ? "yes"
                                                            : "no"});
        thr.addRow({std::to_string(n), rate(v_ms), rate(tp_ms),
                    rate(t_ms)});
    }
    lat.print(std::cout);
    thr.print(std::cout);
    std::cout << "Paper reference: tensor parallelism minimizes latency "
                 "but wastes throughput; 1F1B maximizes throughput but "
                 "blows the 400 ms budget; Tessel balances both (1.5x "
                 "throughput over TP, up to 2x over 1F1B at small "
                 "batch counts, 38% latency reduction).\n";
    return 0;
}
