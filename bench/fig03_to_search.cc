/**
 * @file
 * Fig. 3 reproduction: time-optimal (TO) schedule search time on the
 * V-Shape placement (tf = 1, tb = 2) as the micro-batch count grows.
 * The paper's Z3 encoding needed 3752 s at 16 micro-batches; our exact
 * branch-and-bound shows the same exponential blow-up (each solve is
 * capped by a wall budget, after which the row reports the cap).
 *
 * A dominance-memo ablation column documents the solver design choice.
 */

#include "bench/common.h"
#include "solver/from_ir.h"

using namespace tessel;

int
main()
{
    const double budget_sec = 5.0;
    Table table("Fig. 3: time-optimal search time vs micro-batches "
                "(V-Shape, tf=1, tb=2)");
    table.setHeader({"micro-batches", "makespan", "search time (s)",
                     "nodes", "no-memo time (s)"});

    int over_budget_streak = 0;
    for (int n = 1; n <= 16; ++n) {
        Problem prob(makeVShape(4), n);
        SolverOptions opts;
        opts.timeBudgetSec = budget_sec;

        Stopwatch watch;
        const ToBaselineResult to = solveTimeOptimal(prob, opts);
        const double seconds = watch.seconds();

        std::string makespan = "-";
        if (to.result.feasible()) {
            makespan = std::to_string(to.result.makespan);
            if (to.result.status != SolveStatus::Optimal)
                makespan += "?"; // Unproven under the budget.
        }
        std::string no_memo = "-";
        if (n <= 8) {
            SolverOptions ablate = opts;
            ablate.useDominance = false;
            Stopwatch w2;
            solveTimeOptimal(prob, ablate);
            no_memo = fmtDouble(w2.seconds(), 3);
        }
        const bool capped = to.result.stats.budgetExhausted;
        table.addRow({std::to_string(n), makespan,
                      capped ? (">" + fmtDouble(budget_sec, 0))
                             : fmtDouble(seconds, 3),
                      std::to_string(to.result.stats.nodes), no_memo});
        over_budget_streak = capped ? over_budget_streak + 1 : 0;
        if (over_budget_streak >= 3)
            break; // The explosion is established; stop burning time.
    }
    table.print(std::cout);
    std::cout << "Paper reference: Z3 takes 3752 s at 16 micro-batches; "
                 "the exact search is exponential in N, which motivates "
                 "the repetend decomposition.\n";
    return 0;
}
