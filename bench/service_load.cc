/**
 * @file
 * Planning-daemon load study: sustain a mixed hot/cold query trace
 * through a ServiceLoop and report what a service operator would watch
 * — sustained QPS, p50/p99 answer latency (overall and hot-only), and
 * the trace hit rate — while certifying two invariants the daemon must
 * hold:
 *
 *   1. Bit-identical answers: every daemon-served hot query must carry
 *      the same plan_hash the batch front-end produced for that
 *      instance (the daemon path is runOne over the same pipeline, so
 *      any divergence is a bug, not noise).
 *   2. Lock-free hot path: a read-only replay of the hot trace (every
 *      instance already resident in the memory tier) must leave
 *      StoreStats::lockContended untouched — snapshot reads never take
 *      a lock, so any growth means the RCU read path regressed.
 *
 * The trace mixes deterministically shuffled repeats of the reference
 * batch (hot: answered from the cache) with nr-cap perturbations of the
 * same instances (cold: guaranteed fingerprint misses that exercise the
 * neighbor-seeded search path). Submission is closed-loop with a small
 * number of outstanding queries, so the reported latencies measure the
 * daemon, not an unbounded backlog.
 *
 * Exits nonzero when plans diverge, lockContended grows on the
 * read-only phase, the hit rate falls below the floor, or the hot-only
 * p99 exceeds the ceiling. Env knobs:
 *
 *   TESSEL_LOAD_DEVICES         devices per shape        (default 4)
 *   TESSEL_LOAD_BUDGET_SEC      per-query search budget  (default 5)
 *   TESSEL_LOAD_HOT_REPEATS     hot replays per instance (default 4)
 *   TESSEL_LOAD_MIN_HIT_RATE    trace hit-rate floor     (default 0.7)
 *   TESSEL_LOAD_MAX_P99_MS      hot-only p99 ceiling, ms (default 2000;
 *                               0 disables the gate)
 *   TESSEL_METRICS_MAX_OVERHEAD metrics-on vs metrics-off QPS regression
 *                               ceiling on the read-only hot replay
 *                               (default 0.02; 0 disables the gate)
 *
 * A fourth phase replays the read-only hot trace with the metrics
 * registry switched off and on (best of 3 each) and gates the
 * instrumented path within TESSEL_METRICS_MAX_OVERHEAD of the no-op
 * path — the registry's per-shard relaxed atomics must be invisible at
 * daemon scale, and lockContended must stay untouched either way.
 *
 * Usage: bench_service_load [--json BENCH_service_load.json]
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/trace.h"
#include "support/io.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/timer.h"

using namespace tessel;

namespace {

double
envDouble(const char *name, double fallback)
{
    if (const char *s = std::getenv(name)) {
        const double v = std::atof(s);
        if (v >= 0.0)
            return v;
    }
    return fallback;
}

/** Deterministic LCG shuffle (the bench must not depend on rand()). */
void
shuffleTrace(std::vector<TraceQuery> *trace, uint64_t seed)
{
    uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
    for (size_t i = trace->size(); i > 1; --i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        std::swap((*trace)[i - 1], (*trace)[(state >> 33) % i]);
    }
}

struct Sample
{
    double latencyMs = 0.0;
    bool hot = false;
    bool hit = false; // served from memory or disk
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Replay @p trace closed-loop (at most @p outstanding in flight). */
struct ReplayResult
{
    std::vector<Sample> samples;
    double wallSec = 0.0;
    size_t planMismatches = 0;
    size_t notFound = 0;
};

ReplayResult
replay(ServiceLoop &loop, const std::vector<TraceQuery> &trace,
       const std::map<std::string, std::string> &batchHashes,
       size_t outstanding)
{
    ReplayResult out;
    out.samples.resize(trace.size());
    std::mutex mu;
    std::condition_variable cv;
    size_t inFlight = 0;

    Stopwatch timer;
    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceQuery &tq = trace[i];
        std::string err;
        std::optional<PlanQuery> query = makeTraceQuery(tq, &err);
        if (!query) {
            std::cerr << "bad trace query: " << err << "\n";
            ++out.notFound;
            continue;
        }
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return inFlight < outstanding; });
            ++inFlight;
        }
        const bool hot = tq.nrCap == 0 && tq.memLimit == 0;
        const auto start = std::chrono::steady_clock::now();
        loop.submit(
            std::move(*query), tq.tenant,
            [&, i, hot, start](const ServiceLoop::Response &resp) {
                const double ms =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count() *
                    1e3;
                std::lock_guard<std::mutex> lock(mu);
                Sample &s = out.samples[i];
                s.latencyMs = ms;
                s.hot = hot;
                s.hit = resp.report.source == std::string("memory") ||
                        resp.report.source == std::string("disk");
                if (!resp.report.found)
                    ++out.notFound;
                if (hot) {
                    const auto it =
                        batchHashes.find(resp.report.label);
                    if (it == batchHashes.end() ||
                        it->second != resp.report.planHash)
                        ++out.planMismatches;
                }
                --inFlight;
                cv.notify_all();
            });
    }
    loop.drain();
    out.wallSec = timer.seconds();
    return out;
}

std::vector<double>
latencies(const ReplayResult &r, bool hotOnly)
{
    std::vector<double> out;
    for (const Sample &s : r.samples)
        if (!hotOnly || s.hot)
            out.push_back(s.latencyMs);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
    }

    const int devices =
        static_cast<int>(envDouble("TESSEL_LOAD_DEVICES", 4));
    const double budget = envDouble("TESSEL_LOAD_BUDGET_SEC", 5.0);
    const int hotRepeats =
        static_cast<int>(envDouble("TESSEL_LOAD_HOT_REPEATS", 4));
    const double minHitRate = envDouble("TESSEL_LOAD_MIN_HIT_RATE", 0.7);
    const double maxP99Ms = envDouble("TESSEL_LOAD_MAX_P99_MS", 2000.0);

    std::string dir;
    if (!makeTempDir("tessel-service-load-", &dir)) {
        std::cerr << "cannot create temp cache dir\n";
        return 1;
    }

    // Phase 1 — batch populate: the batch front-end answers the
    // reference shapes cold and records the authoritative plan hash per
    // label (the bit-identical baseline the daemon must match).
    const std::vector<PlanQuery> batch =
        referenceShapeQueries(devices, /*include_hetero=*/true, budget);
    std::map<std::string, std::string> batchHashes;
    {
        ServiceOptions opts;
        opts.cacheDir = dir;
        PlanningService populate(opts);
        const BatchReport cold = populate.runBatch(batch);
        for (const QueryReport &q : cold.queries)
            batchHashes[q.label] = q.planHash;
    }

    // Build the mixed trace: every reference coordinate repeated
    // hotRepeats times, one nr-cap perturbation per coordinate (a
    // guaranteed miss that exercises the neighbor-seeded search),
    // deterministically shuffled together.
    static const char *kShapes[] = {"V", "X", "M", "NN", "K"};
    static const char *kVariants[] = {"homogeneous", "mem-capped",
                                      "hetero"};
    std::vector<TraceQuery> mixed;
    for (const char *shape : kShapes) {
        for (const char *variant : kVariants) {
            TraceQuery q;
            q.shape = shape;
            q.variant = variant;
            q.devices = devices;
            q.budgetSec = budget;
            for (int r = 0; r < hotRepeats; ++r)
                mixed.push_back(q);
            q.nrCap = 5; // perturbation: different fingerprint
            mixed.push_back(q);
        }
    }
    shuffleTrace(&mixed, /*seed=*/42);

    // Phase 2 — daemon, mixed trace: a fresh loop over the populated
    // directory. Hot queries resolve disk-then-memory; cold queries
    // search (neighbor-seeded).
    ServiceLoopOptions loopOpts;
    loopOpts.service.cacheDir = dir;
    loopOpts.queueDepth = 32;
    loopOpts.workers = 2;
    ServiceLoop loop(std::move(loopOpts));

    const ReplayResult mixedRun =
        replay(loop, mixed, batchHashes, /*outstanding=*/8);

    // Phase 3 — read-only hot replay: every hot instance is resident in
    // the memory tier now, so this phase is pure snapshot reads and the
    // writer-lock contention counter must not move.
    std::vector<TraceQuery> hotOnly;
    for (const TraceQuery &q : mixed)
        if (q.nrCap == 0 && q.memLimit == 0)
            hotOnly.push_back(q);
    const uint64_t contendedBefore =
        loop.service().cache().stats().lockContended;
    const ReplayResult hotRun =
        replay(loop, hotOnly, batchHashes, /*outstanding=*/8);
    const uint64_t contendedAfter =
        loop.service().cache().stats().lockContended;
    const uint64_t contendedDelta = contendedAfter - contendedBefore;

    // Phase 4 — metrics overhead: the same read-only hot replay with
    // the registry as a no-op vs live, best of 3 each (the replay is
    // sub-second, so best-of smooths scheduler noise). Instrumentation
    // must not reintroduce contention either: the lock counter is
    // watched across both legs.
    const double maxOverhead =
        envDouble("TESSEL_METRICS_MAX_OVERHEAD", 0.02);
    const bool metricsWereOn = MetricsRegistry::enabled();
    auto bestHotQps = [&](int reps) {
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            const ReplayResult run =
                replay(loop, hotOnly, batchHashes, /*outstanding=*/8);
            if (run.wallSec > 0.0)
                best = std::max(
                    best, static_cast<double>(run.samples.size()) /
                              run.wallSec);
        }
        return best;
    };
    const uint64_t contendedBeforeMetrics =
        loop.service().cache().stats().lockContended;
    MetricsRegistry::setEnabled(false);
    const double qpsMetricsOff = bestHotQps(3);
    MetricsRegistry::setEnabled(true);
    const double qpsMetricsOn = bestHotQps(3);
    MetricsRegistry::setEnabled(metricsWereOn);
    const uint64_t contendedMetricsDelta =
        loop.service().cache().stats().lockContended -
        contendedBeforeMetrics;
    const double metricsOverhead =
        qpsMetricsOff > 0.0
            ? (qpsMetricsOff - qpsMetricsOn) / qpsMetricsOff
            : 0.0;
    loop.shutdown();

    // Aggregate.
    size_t hits = 0, hotCount = 0, coldCount = 0;
    for (const Sample &s : mixedRun.samples) {
        hits += s.hit ? 1 : 0;
        (s.hot ? hotCount : coldCount) += 1;
    }
    const double hitRate =
        mixedRun.samples.empty()
            ? 0.0
            : static_cast<double>(hits) /
                  static_cast<double>(mixedRun.samples.size());
    const double qps = mixedRun.wallSec > 0.0
                           ? static_cast<double>(mixedRun.samples.size()) /
                                 mixedRun.wallSec
                           : 0.0;
    const double hotQps =
        hotRun.wallSec > 0.0
            ? static_cast<double>(hotRun.samples.size()) / hotRun.wallSec
            : 0.0;
    const std::vector<double> all = latencies(mixedRun, false);
    const std::vector<double> hot = latencies(mixedRun, true);
    const std::vector<double> hotPhase = latencies(hotRun, false);

    Table table("Planning daemon under mixed hot/cold load (" +
                std::to_string(devices) + " devices, " +
                std::to_string(mixed.size()) + " queries)");
    table.setHeader({"phase", "queries", "QPS", "p50 (ms)", "p99 (ms)",
                     "hit rate"});
    table.addRow({"mixed", std::to_string(mixedRun.samples.size()),
                  fmtDouble(qps, 1), fmtDouble(percentile(all, 0.5), 2),
                  fmtDouble(percentile(all, 0.99), 2),
                  fmtPercent(hitRate)});
    table.addRow({"mixed (hot only)", std::to_string(hot.size()), "-",
                  fmtDouble(percentile(hot, 0.5), 2),
                  fmtDouble(percentile(hot, 0.99), 2), "-"});
    table.addRow({"hot read-only", std::to_string(hotPhase.size()),
                  fmtDouble(hotQps, 1),
                  fmtDouble(percentile(hotPhase, 0.5), 2),
                  fmtDouble(percentile(hotPhase, 0.99), 2), "100%"});
    table.addRow({"hot, metrics off", std::to_string(hotOnly.size()),
                  fmtDouble(qpsMetricsOff, 1), "-", "-", "100%"});
    table.addRow({"hot, metrics on", std::to_string(hotOnly.size()),
                  fmtDouble(qpsMetricsOn, 1), "-", "-", "100%"});
    table.print(std::cout);
    std::cout << "lockContended delta over read-only phase: "
              << contendedDelta << "\n"
              << "lockContended delta over metrics legs: "
              << contendedMetricsDelta << "\n"
              << "metrics overhead (QPS regression, on vs off): "
              << fmtPercent(metricsOverhead) << "\n"
              << "plan mismatches vs batch baseline: "
              << mixedRun.planMismatches + hotRun.planMismatches << "\n";

    const double hotP99 = percentile(hotPhase, 0.99);
    bool ok = true;
    auto gate = [&ok](bool pass, const std::string &what) {
        if (!pass) {
            std::cout << "FAIL: " << what << "\n";
            ok = false;
        }
    };
    gate(mixedRun.planMismatches + hotRun.planMismatches == 0,
         "daemon answers must be bit-identical to the batch baseline");
    gate(mixedRun.notFound + hotRun.notFound == 0,
         "every trace query must resolve to a plan");
    gate(contendedDelta == 0,
         "lockContended grew on a read-only hot trace (delta " +
             std::to_string(contendedDelta) + ")");
    gate(hitRate >= minHitRate,
         "trace hit rate " + fmtPercent(hitRate) + " below floor " +
             fmtPercent(minHitRate));
    if (maxP99Ms > 0.0)
        gate(hotP99 <= maxP99Ms,
             "hot read-only p99 " + fmtDouble(hotP99, 2) +
                 " ms above ceiling " + fmtDouble(maxP99Ms, 0) + " ms");
    gate(contendedMetricsDelta == 0,
         "lockContended grew during the metrics-overhead legs (delta " +
             std::to_string(contendedMetricsDelta) + ")");
    if (maxOverhead > 0.0)
        gate(metricsOverhead <= maxOverhead,
             "metrics overhead " + fmtPercent(metricsOverhead) +
                 " above ceiling " + fmtPercent(maxOverhead));

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "cannot write " << jsonPath << "\n";
            return 1;
        }
        out << "{\n"
            << "  \"queries\": " << mixedRun.samples.size() << ",\n"
            << "  \"hot\": " << hotCount << ",\n"
            << "  \"cold\": " << coldCount << ",\n"
            << "  \"qps\": " << qps << ",\n"
            << "  \"p50_ms\": " << percentile(all, 0.5) << ",\n"
            << "  \"p99_ms\": " << percentile(all, 0.99) << ",\n"
            << "  \"hot_p50_ms\": " << percentile(hot, 0.5) << ",\n"
            << "  \"hot_p99_ms\": " << percentile(hot, 0.99) << ",\n"
            << "  \"readonly_qps\": " << hotQps << ",\n"
            << "  \"readonly_p50_ms\": " << percentile(hotPhase, 0.5)
            << ",\n"
            << "  \"readonly_p99_ms\": " << hotP99 << ",\n"
            << "  \"trace_hit_rate\": " << hitRate << ",\n"
            << "  \"lock_contended_delta\": " << contendedDelta << ",\n"
            << "  \"metrics_off_qps\": " << qpsMetricsOff << ",\n"
            << "  \"metrics_on_qps\": " << qpsMetricsOn << ",\n"
            << "  \"metrics_overhead\": " << metricsOverhead << ",\n"
            << "  \"metrics_lock_contended_delta\": "
            << contendedMetricsDelta << ",\n"
            << "  \"plan_mismatches\": "
            << mixedRun.planMismatches + hotRun.planMismatches << ",\n"
            << "  \"ok\": " << (ok ? "true" : "false") << "\n"
            << "}\n";
    }
    std::cout << (ok ? "service load bench PASSED\n"
                     : "service load bench FAILED\n");
    return ok ? 0 : 1;
}
