/**
 * @file
 * Fig. 8 reproduction: the searched training and inference schedules for
 * the M-Shape (GPT), NN-Shape (mT5), and K-Shape (Flava) placements,
 * rendered as Gantt charts with the repetend parameters annotated.
 */

#include "bench/common.h"
#include "ir/gantt.h"

using namespace tessel;

namespace {

void
show(const std::string &title, const Placement &placement)
{
    const auto result = tesselSearch(placement, bench::searchOptions());
    std::cout << "--- " << title << " ---\n";
    if (!result.found) {
        std::cout << "search failed\n\n";
        return;
    }
    std::cout << "NR=" << result.nrUsed << "  period=" << result.period
              << "  lower-bound=" << result.lowerBound
              << "  steady bubble="
              << fmtPercent(result.plan.steadyBubbleRate(), 1) << "\n";
    const int n = result.plan.minMicrobatches() + 2;
    const Schedule sched = result.plan.instantiate(n);
    GanttOptions opts;
    opts.maxTime = std::min<Time>(sched.makespan(), 64);
    std::cout << renderGantt(sched, opts) << "\n";
}

} // namespace

int
main()
{
    show("Fig. 8(b) GPT training (M-Shape, NR=6 in the paper)",
         makeMShape(4));
    show("Fig. 8(c) GPT inference (M-Shape fwd, NR=4 in the paper)",
         forwardOnly(makeMShape(4)));
    show("Fig. 8(e) mT5 training (NN-Shape, NR=6 in the paper)",
         makeNnShape(4));
    show("Fig. 8(f) mT5 inference (NN-Shape fwd, NR=4 in the paper)",
         forwardOnly(makeNnShape(4)));
    show("Fig. 8(h) Flava training (K-Shape, NR=3 in the paper)",
         makeKShape(4));
    show("Fig. 8(i) Flava inference (K-Shape fwd, NR=2 in the paper)",
         forwardOnly(makeKShape(4)));
    return 0;
}
