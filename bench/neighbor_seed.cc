/**
 * @file
 * Neighbor-seeding study: how much cheaper a plan-store *miss* becomes
 * when the store holds a similar — not identical — instance.
 *
 * Protocol: populate a cache directory with the reference-shape batch,
 * then sweep the canonical one-knob perturbation of every stored query:
 * one more micro-batch of NR-sweep headroom (maxRepetendMicrobatches
 * + 1). Each perturbed query fingerprints differently from everything
 * stored (budget-class knobs are hashed), so it can never be a cache
 * hit; it is answered twice:
 *
 *   cold — a service with seeding disabled on an empty directory
 *          (the full Algorithm 1 sweep), and
 *   warm — a fresh service on the populated directory with seeding
 *          enabled (neighbor lookup -> plan adaptation -> seeded
 *          search).
 *
 * Both paths end in a real search, so equal plan digests per query
 * certify the seed-only-prunes invariant end to end: the warm answer
 * must be bit-identical to cold, just cheaper to reach. Exits nonzero
 * when any plan differs, any perturbed query fails to seed, or the
 * aggregate cold/warm speedup falls below TESSEL_NEIGHBOR_MIN_SPEEDUP
 * (default 5; set 0 to only report).
 *
 * Env knobs:
 *   TESSEL_NEIGHBOR_BENCH_DEVICES     devices per shape (default 4)
 *   TESSEL_NEIGHBOR_BENCH_BUDGET_SEC  per-query budget (default 10)
 *   TESSEL_NEIGHBOR_MIN_SPEEDUP       minimum cold/warm ratio (default 5)
 *
 * `--json PATH` archives the per-query numbers (BENCH_neighbor.json in
 * CI, uploaded next to BENCH_solver.json).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/service.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/table.h"

using namespace tessel;

namespace {

double
envDouble(const char *name, double fallback)
{
    if (const char *s = std::getenv(name)) {
        const double v = std::atof(s);
        if (v >= 0.0)
            return v;
    }
    return fallback;
}

/** The canonical one-knob perturbation of every stored query: one more
 * micro-batch of NR-sweep headroom. The placement, cluster, memory
 * model, and budgets all stay put, so the neighbor index maps each
 * perturbed query straight back to its base instance and adaptation
 * takes the fast path with exactly-reusable phase schedules; the
 * deeper sweep itself still runs for real on both sides. (Cost-moving
 * knobs — link speeds, an extra stage — are exercised by
 * tests/test_neighbor.cc; this bench measures the sweep-dominated
 * regime the ISSUE's speedup target names.) */
std::vector<PlanQuery>
perturbedQueries(int devices, double budget_sec)
{
    std::vector<PlanQuery> out;
    for (const PlanQuery &base :
         referenceShapeQueries(devices, /*include_hetero=*/true,
                               budget_sec)) {
        PlanQuery q = base;
        q.options.maxRepetendMicrobatches += 1;
        q.label = base.label + "/nr-cap+1";
        out.push_back(std::move(q));
    }
    return out;
}

struct Row
{
    std::string label;
    double coldSec = 0.0;
    double warmSec = 0.0;
    bool identical = false;
    bool seeded = false;
    uint64_t seedNodesPruned = 0;
};

bool
writeJson(const std::string &path, const std::vector<Row> &rows,
          double cold_sec, double warm_sec, double speedup,
          double min_speedup, bool pass)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"queries\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"label\": \"" << r.label
            << "\", \"cold_sec\": " << r.coldSec
            << ", \"warm_sec\": " << r.warmSec << ", \"identical\": "
            << (r.identical ? "true" : "false")
            << ", \"seeded\": " << (r.seeded ? "true" : "false")
            << ", \"seed_nodes_pruned\": " << r.seedNodesPruned << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"cold_sec\": " << cold_sec << ",\n"
        << "  \"warm_sec\": " << warm_sec << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"min_speedup\": " << min_speedup << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_neighbor_seed [--json PATH]\n";
            return 2;
        }
    }

    const int devices = static_cast<int>(
        envDouble("TESSEL_NEIGHBOR_BENCH_DEVICES", 4));
    const double budget =
        envDouble("TESSEL_NEIGHBOR_BENCH_BUDGET_SEC", 10.0);
    const double min_speedup =
        envDouble("TESSEL_NEIGHBOR_MIN_SPEEDUP", 5.0);

    std::string base_dir, cold_dir;
    if (!makeTempDir("tessel-neighbor-base-", &base_dir) ||
        !makeTempDir("tessel-neighbor-cold-", &cold_dir)) {
        std::cerr << "cannot create temp cache dirs\n";
        return 1;
    }

    // Populate the store with the unperturbed batch.
    {
        ServiceOptions opts;
        opts.cacheDir = base_dir;
        PlanningService seed_service(opts);
        seed_service.runBatch(
            referenceShapeQueries(devices, /*include_hetero=*/true,
                                  budget));
    }

    const std::vector<PlanQuery> perturbed =
        perturbedQueries(devices, budget);

    // Cold: seeding off, empty directory — the pure Algorithm 1 cost.
    ServiceOptions cold_opts;
    cold_opts.cacheDir = cold_dir;
    cold_opts.neighborSeed = false;
    PlanningService cold_service(cold_opts);

    // Warm: seeding on, sharing the populated directory. A fresh
    // service, so even its memory tier starts empty — everything the
    // warm path saves comes from the neighbor index and adaptation.
    ServiceOptions warm_opts;
    warm_opts.cacheDir = base_dir;
    warm_opts.neighborSeed = true;
    PlanningService warm_service(warm_opts);

    std::vector<Row> rows;
    double cold_total = 0.0, warm_total = 0.0;
    size_t seeded = 0;
    bool all_identical = true, all_seeded = true;
    for (const PlanQuery &q : perturbed) {
        Row row;
        row.label = q.label;

        QueryReport cold_report;
        cold_service.runOne(q, &cold_report);
        row.coldSec = cold_report.wallSec;

        QueryReport warm_report;
        warm_service.runOne(q, &warm_report);
        row.warmSec = warm_report.wallSec;

        row.identical = cold_report.planHash == warm_report.planHash;
        row.seeded = !warm_report.seededFrom.empty();
        row.seedNodesPruned = warm_report.seedNodesPruned;
        all_identical = all_identical && row.identical;
        all_seeded = all_seeded && row.seeded;
        seeded += row.seeded ? 1 : 0;
        cold_total += row.coldSec;
        warm_total += row.warmSec;
        rows.push_back(std::move(row));
    }

    Table table("Neighbor-seeded search: cold miss vs warm-neighbor "
                "miss (" +
                std::to_string(devices) + " devices)");
    table.setHeader({"query", "cold (ms)", "warm (ms)", "speedup",
                     "seeded", "seed prunes", "plan identical"});
    for (const Row &r : rows) {
        const double ratio = r.warmSec > 0.0 ? r.coldSec / r.warmSec : 0.0;
        table.addRow({r.label, fmtDouble(r.coldSec * 1e3, 2),
                      fmtDouble(r.warmSec * 1e3, 2), fmtDouble(ratio, 1),
                      r.seeded ? "yes" : "NO",
                      std::to_string(r.seedNodesPruned),
                      r.identical ? "yes" : "NO"});
    }
    table.print(std::cout);

    const double speedup =
        warm_total > 0.0 ? cold_total / warm_total : 0.0;
    std::cout << "cold " << fmtDouble(cold_total, 3) << " s vs warm "
              << fmtDouble(warm_total, 3) << " s => "
              << fmtDouble(speedup, 1) << "x; " << seeded << "/"
              << rows.size() << " queries seeded\n";

    bool ok = all_identical && all_seeded;
    if (!all_identical)
        std::cout << "FAIL: a warm plan differs from its cold plan "
                     "(seed-only-prunes violated)\n";
    if (!all_seeded)
        std::cout << "FAIL: a perturbed query failed to seed from its "
                     "base instance\n";
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::cout << "FAIL: speedup " << fmtDouble(speedup, 1)
                  << "x below required " << fmtDouble(min_speedup, 1)
                  << "x\n";
        ok = false;
    }

    if (!json_path.empty() &&
        !writeJson(json_path, rows, cold_total, warm_total, speedup,
                   min_speedup, ok)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    return ok ? 0 : 1;
}
