/**
 * @file
 * Shared helpers for the reproduction benches: model/baseline setup,
 * simulation wrappers, and formatting. Every bench binary regenerates
 * one table or figure of the paper's evaluation (Sec. VI) and prints
 * paper-style rows to stdout.
 */

#ifndef TESSEL_BENCH_COMMON_H
#define TESSEL_BENCH_COMMON_H

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/schedules.h"
#include "core/search.h"
#include "models/lower.h"
#include "placement/shapes.h"
#include "sim/runner.h"
#include "support/table.h"
#include "support/timer.h"

namespace tessel {
namespace bench {

/** Search options tuned for bench runtime (seconds, not minutes). */
inline TesselOptions
searchOptions(Mem mem_limit = kUnlimitedMem,
              std::vector<Mem> initial_mem = {})
{
    TesselOptions opts;
    opts.memLimit = mem_limit;
    opts.initialMem = std::move(initial_mem);
    opts.totalBudgetSec = 60.0;
    opts.repetendBudgetSec = 2.0;
    opts.phaseBudgetSec = 10.0;
    return opts;
}

/** Cluster spec matching a LoweredModel. */
inline ClusterSpec
clusterFor(const LoweredModel &model, const HardwareSpec &hw,
           bool non_blocking = true)
{
    ClusterSpec cs;
    cs.gpusPerServer = hw.gpusPerServer;
    cs.nvlinkGBs = hw.nvlinkGBs;
    cs.ibGBs = hw.ibGBs;
    cs.linkLatencyMs = hw.linkLatencyMs;
    cs.memCapacityMB = model.memCapacityMB;
    cs.initialMemMB = model.initialMemMB;
    cs.nonBlockingComm = non_blocking;
    return cs;
}

/** Outcome of one end-to-end run. */
struct RunResult
{
    bool ok = false;
    bool oom = false;
    double iterationMs = 0.0;
    double pflops = 0.0;
    SimResult sim;
};

/** Simulate a schedule for a model; compute throughput in PFLOPS. */
inline RunResult
runSchedule(const Schedule &sched, const LoweredModel &model,
            const HardwareSpec &hw, int num_microbatches,
            bool non_blocking = true)
{
    RunResult out;
    out.sim = simulateSchedule(sched, model.edgeMB,
                               clusterFor(model, hw, non_blocking));
    out.ok = out.sim.ok;
    out.oom = out.sim.oom;
    out.iterationMs = out.sim.makespanMs;
    if (out.iterationMs > 0.0) {
        out.pflops = model.flopsPerMicrobatch * num_microbatches /
                     (out.iterationMs / 1e3) / 1e15;
    }
    return out;
}

/** Run Tessel end-to-end on a lowered model; nullopt when infeasible. */
inline std::optional<RunResult>
runTessel(const LoweredModel &model, const HardwareSpec &hw, int n,
          bool non_blocking = true)
{
    if (!model.fits)
        return std::nullopt;
    const auto result = tesselSearch(
        model.placement,
        searchOptions(model.memCapacityMB, model.initialMemMB));
    if (!result.found)
        return std::nullopt;
    const int actual_n = std::max(n, result.plan.minMicrobatches());
    RunResult run = runSchedule(result.plan.instantiate(actual_n), model,
                                hw, actual_n, non_blocking);
    return run.oom ? std::nullopt : std::optional<RunResult>(run);
}

/** Run a baseline schedule generator end-to-end. */
template <typename Fn>
std::optional<RunResult>
runBaseline(const LoweredModel &model, const HardwareSpec &hw, int n,
            Fn &&make_schedule, bool non_blocking = true)
{
    if (!model.fits)
        return std::nullopt;
    Problem prob(model.placement, n, model.memCapacityMB);
    prob.setInitialMem(model.initialMemMB);
    const std::optional<Schedule> sched = make_schedule(prob);
    if (!sched)
        return std::nullopt; // Scheduling deadlock under memory: OOM.
    RunResult run = runSchedule(*sched, model, hw, n, non_blocking);
    return run.oom ? std::nullopt : std::optional<RunResult>(run);
}

/** One row of a machine-readable bench report (see writeBenchJson). */
struct BenchJsonRow
{
    std::string bench;
    double wallMs = 0.0;
    uint64_t nodes = 0;
    uint64_t relaxations = 0;
    uint64_t valueSweeps = 0;
    uint64_t policyImprovements = 0;
};

/**
 * Emit a bench report as a JSON array of {"bench", "wall_ms", "nodes",
 * "relaxations", "value_sweeps", "policy_improvements"} objects — the
 * BENCH_solver.json schema CI archives per commit (and tools/
 * bench_diff.py gates against bench/baselines/) so the solver perf
 * trajectory is diffable across PRs. `relaxations` counts binary-mode
 * Bellman-Ford passes, `value_sweeps`/`policy_improvements` the Howard
 * kernel's effort; regression gating treats relaxations + value_sweeps
 * as one probe-pass budget so a mode flip can't masquerade as a win.
 */
inline bool
writeBenchJson(const std::string &path,
               const std::vector<BenchJsonRow> &rows)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        out << "  {\"bench\": \"" << rows[i].bench
            << "\", \"wall_ms\": " << rows[i].wallMs
            << ", \"nodes\": " << rows[i].nodes
            << ", \"relaxations\": " << rows[i].relaxations
            << ", \"value_sweeps\": " << rows[i].valueSweeps
            << ", \"policy_improvements\": "
            << rows[i].policyImprovements << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return static_cast<bool>(out);
}

/** Format a RunResult cell: PFLOPS or the paper's OOM marker 'x'. */
inline std::string
pflopsCell(const std::optional<RunResult> &run)
{
    if (!run)
        return "x (OOM)";
    return fmtDouble(run->pflops, 3);
}

} // namespace bench
} // namespace tessel

#endif // TESSEL_BENCH_COMMON_H
