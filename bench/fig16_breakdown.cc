/**
 * @file
 * Fig. 16 reproduction: runtime performance breakdown into (a) block
 * execution time on the slowest device and (b) device wait-time
 * occupation, for 1F1B / 1F1B+ / Tessel on GPT and mT5 across GPU
 * counts, alongside the theoretical (schedule-bubble) estimate the
 * paper shades.
 */

#include "bench/common.h"

using namespace tessel;

namespace {

void
addRows(Table &exec, Table &wait, const std::string &model, int gpus,
        const LoweredModel &advanced, const LoweredModel &piper_v,
        const HardwareSpec &hw, int n)
{
    auto fill = [&](const std::string &sched_name,
                    const std::optional<Schedule> &sched,
                    const LoweredModel &lm) {
        const std::string tag = model + "/" + std::to_string(gpus);
        if (!sched) {
            exec.addRow({tag, sched_name, "x"});
            wait.addRow({tag, sched_name, "x", "x"});
            return;
        }
        const auto run = bench::runSchedule(*sched, lm, hw, n);
        const double theory = sched->bubbleRate();
        exec.addRow({tag, sched_name,
                     fmtDouble(run.sim.slowestBusyMs() / 1e3, 2)});
        wait.addRow({tag, sched_name,
                     fmtPercent(run.sim.slowestWaitFraction(), 1),
                     fmtPercent(theory, 1)});
    };

    // Tessel on the advanced placement.
    std::optional<Schedule> tessel_sched;
    if (advanced.fits) {
        const auto r = tesselSearch(
            advanced.placement,
            bench::searchOptions(advanced.memCapacityMB,
                                 advanced.initialMemMB));
        if (r.found)
            tessel_sched = r.plan.instantiate(
                std::max(n, r.plan.minMicrobatches()));
    }
    fill("Tessel", tessel_sched, advanced);

    // 1F1B+ on the same placement.
    std::optional<Schedule> plus_sched;
    if (advanced.fits) {
        Problem prob(advanced.placement, n, advanced.memCapacityMB);
        prob.setInitialMem(advanced.initialMemMB);
        plus_sched = schedule1F1BPlus(prob);
    }
    fill("1F1B+", plus_sched, advanced);

    // 1F1B on its Piper V-shape.
    std::optional<Schedule> v_sched;
    if (piper_v.fits) {
        Problem prob(piper_v.placement, n, piper_v.memCapacityMB);
        prob.setInitialMem(piper_v.initialMemMB);
        v_sched = schedule1F1B(prob);
    }
    fill("1F1B", v_sched, piper_v);
}

} // namespace

int
main()
{
    HardwareSpec hw;
    const int n = 32;

    Table exec("Fig. 16(a): block execution time of the slowest device "
               "(s)");
    exec.setHeader({"model/GPUs", "schedule", "exec (s)"});
    Table wait("Fig. 16(b): wait-time occupation (measured vs "
               "theoretical schedule bubble)");
    wait.setHeader({"model/GPUs", "schedule", "wait %", "theory %"});

    for (int gpus : {4, 8, 16, 32}) {
        const GptConfig gcfg = gptConfigForGpus(gpus);
        addRows(exec, wait, "GPT", gpus,
                lowerGptMShape(gcfg, gpus, 1, hw),
                lowerGptVShapePiper(gcfg, gpus, 1, hw), hw, n);
        const Mt5Config mcfg = mt5ConfigForGpus(gpus);
        addRows(exec, wait, "mT5", gpus,
                lowerMt5NnShape(mcfg, gpus, 2, hw),
                lowerMt5VShapePiper(mcfg, gpus, 2, hw), hw, n);
    }
    exec.print(std::cout);
    wait.print(std::cout);
    std::cout << "Paper reference: Tessel's balanced placement keeps the "
                 "slowest device's execution time far below 1F1B's "
                 "(~100 s vs ~400 s for GPT/16); measured wait stays "
                 "within ~6% of the theoretical estimate.\n";
    return 0;
}
