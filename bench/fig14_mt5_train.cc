/**
 * @file
 * Fig. 14 reproduction: mT5 end-to-end training throughput (PFLOPS) at
 * 4/8/16/32 GPUs for Tessel (NN-Shape), 1F1B+ (NN-Shape), 1F1B (Piper
 * V-Shape), and Chimera (X-Shape). In the paper Chimera fits only the
 * small single-server configurations and Tessel reaches up to 5.5x
 * over the predefined schedules.
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    const int n = 32;

    Table table("Fig. 14: mT5 end-to-end training throughput (PFLOPS)");
    table.setHeader(
        {"GPUs", "Tessel", "1F1B+", "1F1B", "Chimera", "Tessel/1F1B"});

    for (int gpus : {4, 8, 16, 32}) {
        const Mt5Config cfg = mt5ConfigForGpus(gpus);
        const int batch = 2;

        const auto m = lowerMt5NnShape(cfg, gpus, batch, hw);
        const auto tessel = bench::runTessel(m, hw, n);
        const auto plus = bench::runBaseline(
            m, hw, n, [](const Problem &p) { return schedule1F1BPlus(p); });

        const auto v = lowerMt5VShapePiper(cfg, gpus, batch, hw);
        const auto ofob = bench::runBaseline(
            v, hw, n, [](const Problem &p) { return schedule1F1B(p); });

        const auto x = lowerMt5XShapeChimera(cfg, gpus, batch, hw);
        const auto chimera = bench::runBaseline(
            x, hw, n,
            [](const Problem &p) { return scheduleChimeraDirect(p); });

        std::string speedup = "-";
        if (tessel && ofob && ofob->pflops > 0)
            speedup = fmtDouble(tessel->pflops / ofob->pflops, 2) + "x";
        table.addRow({std::to_string(gpus), bench::pflopsCell(tessel),
                      bench::pflopsCell(plus), bench::pflopsCell(ofob),
                      bench::pflopsCell(chimera), speedup});
    }
    table.print(std::cout);
    std::cout << "Paper reference: Tessel up to 5.5x over the best "
                 "predefined schedule and 1.4x over 1F1B+; Chimera "
                 "fits only small configurations.\n";
    return 0;
}
