/**
 * @file
 * Fault-injection replanning study: how quickly the service *serves*
 * through cluster drift and device failure, and that what it
 * eventually publishes is bit-identical to planning the drifted
 * instance from scratch.
 *
 * Protocol: populate a cache directory with the reference-shape batch,
 * then sweep three single-knob fault injections of every shape's
 * heterogeneous instance:
 *
 *   speed — device 1 slows to 2x its span cost,
 *   link  — link (0, 1) drifts to latency 2 / 0.5 time-per-MB,
 *   fail  — device 1 drops out (replan onto the survivor placement).
 *
 * Each injection is answered through PlanningService::replan on the
 * populated directory with a serving budget (replanBudgetSec): a
 * search that beats the budget answers fresh; one that misses it
 * answers with the served plan conservatively retimed (stale) while
 * the full search publishes to the store in the background. The same
 * drifted/degraded query also runs cold — a seeding-disabled service
 * on an empty directory — as the baseline.
 *
 * Gates (exit nonzero on any violation):
 *   - every served answer (fresh, stale, or degraded) passes the
 *     verification oracle;
 *   - drift rows serve within TESSEL_REPLAN_MAX_MS — cold searches of
 *     the same instances are unbounded (they routinely take seconds);
 *   - once the background search lands, a repeat of the injection is
 *     a plain store hit, bit-identical to the cold plan (seed only
 *     prunes, so the published replan IS the cold answer);
 *   - failure rows produce a found, verified survivor plan — never an
 *     error. No latency gate: with the failed device gone there is no
 *     old plan to serve, so the search must run in the foreground.
 *
 * Env knobs:
 *   TESSEL_REPLAN_BENCH_DEVICES     devices per shape (default 4)
 *   TESSEL_REPLAN_BENCH_BUDGET_SEC  per-query search budget (default 10)
 *   TESSEL_REPLAN_SERVE_BUDGET_SEC  serving budget before going stale
 *                                   (default 0.25)
 *   TESSEL_REPLAN_MAX_MS            drift serving-latency ceiling
 *                                   (default 2000; 0 disables — covers
 *                                   the worst case of a retiming that
 *                                   burns its full repetend budget
 *                                   before falling back to a search)
 *
 * `--json PATH` archives per-injection numbers (BENCH_replan.json in
 * CI).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "placement/shapes.h"
#include "service/service.h"
#include "store/serialize.h"
#include "store/store.h"
#include "support/io.h"
#include "support/table.h"

using namespace tessel;

namespace {

double
envDouble(const char *name, double fallback)
{
    if (const char *s = std::getenv(name)) {
        const double v = std::atof(s);
        if (v >= 0.0)
            return v;
    }
    return fallback;
}

/** One fault injection against one shape's hetero instance. */
struct Injection
{
    std::string label;
    ReplanRequest request;
    bool removal = false;
};

std::vector<Injection>
injections(int devices, double budget_sec)
{
    static const char *const kShapes[] = {"V", "X", "M", "NN", "K"};
    std::vector<Injection> out;
    for (const char *shape : kShapes) {
        const PlanQuery base =
            *referenceShapeQuery(shape, "hetero", devices, budget_sec);
        {
            Injection inj;
            inj.label = std::string(shape) + "/speed";
            inj.request.base = base;
            inj.request.delta.speedFactor[1] = 2.0;
            out.push_back(std::move(inj));
        }
        {
            Injection inj;
            inj.label = std::string(shape) + "/link";
            inj.request.base = base;
            LinkParams lp;
            lp.latency = 2.0;
            lp.timePerMB = 0.5;
            inj.request.delta.link[{0, 1}] = lp;
            out.push_back(std::move(inj));
        }
        {
            Injection inj;
            inj.label = std::string(shape) + "/fail";
            inj.removal = true;
            inj.request.base = base;
            std::vector<DeviceId> removed;
            HeteroShape hs = makeDegradedHeteroShapeByName(
                shape, devices, /*failed=*/1, {}, {}, &removed);
            PlanQuery degraded = base;
            degraded.label += "/fail=1";
            degraded.placement = std::move(hs.placement);
            degraded.options.edgeMB = std::move(hs.edgeMB);
            degraded.cluster =
                std::make_shared<ClusterModel>(std::move(hs.cluster));
            inj.request.delta.removedDevices = std::move(removed);
            inj.request.degraded = std::move(degraded);
            out.push_back(std::move(inj));
        }
    }
    return out;
}

struct Row
{
    std::string label;
    double coldSec = 0.0;
    double serveSec = 0.0;
    bool stale = false;
    bool identical = false;
    bool removal = false;
    bool verified = false;
    bool repeatHit = false;
};

bool
writeJson(const std::string &path, const std::vector<Row> &rows,
          double cold_sec, double serve_sec, double max_ms, bool pass)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"injections\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"label\": \"" << r.label
            << "\", \"cold_sec\": " << r.coldSec
            << ", \"serve_sec\": " << r.serveSec << ", \"stale\": "
            << (r.stale ? "true" : "false") << ", \"identical\": "
            << (r.identical ? "true" : "false") << ", \"removal\": "
            << (r.removal ? "true" : "false") << ", \"verified\": "
            << (r.verified ? "true" : "false") << ", \"repeat_hit\": "
            << (r.repeatHit ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"cold_sec\": " << cold_sec << ",\n"
        << "  \"serve_sec\": " << serve_sec << ",\n"
        << "  \"max_ms\": " << max_ms << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_replan [--json PATH]\n";
            return 2;
        }
    }

    const int devices =
        static_cast<int>(envDouble("TESSEL_REPLAN_BENCH_DEVICES", 4));
    const double budget =
        envDouble("TESSEL_REPLAN_BENCH_BUDGET_SEC", 10.0);
    const double serve_budget =
        envDouble("TESSEL_REPLAN_SERVE_BUDGET_SEC", 0.25);
    const double max_ms = envDouble("TESSEL_REPLAN_MAX_MS", 2000.0);

    std::string base_dir, cold_dir;
    if (!makeTempDir("tessel-replan-base-", &base_dir) ||
        !makeTempDir("tessel-replan-cold-", &cold_dir)) {
        std::cerr << "cannot create temp cache dirs\n";
        return 1;
    }

    // Populate the store with the unperturbed batch (all variants, so
    // neighbor seeding on the failure path has material too).
    {
        ServiceOptions opts;
        opts.cacheDir = base_dir;
        PlanningService seed_service(opts);
        seed_service.runBatch(
            referenceShapeQueries(devices, /*include_hetero=*/true,
                                  budget));
    }

    ServiceOptions replan_opts;
    replan_opts.cacheDir = base_dir;
    replan_opts.replanBudgetSec = serve_budget;
    PlanningService replan_service(replan_opts);

    // Cold: seeding off, empty directory — planning from scratch.
    ServiceOptions cold_opts;
    cold_opts.cacheDir = cold_dir;
    cold_opts.neighborSeed = false;
    PlanningService cold_service(cold_opts);

    std::vector<Row> rows;
    double cold_total = 0.0, serve_total = 0.0;
    size_t stale_count = 0;
    bool all_identical = true, all_verified = true, all_hits = true,
         all_fast = true;
    for (Injection &inj : injections(devices, budget)) {
        Row row;
        row.label = inj.label;
        row.removal = inj.removal;

        const PlanQuery drifted = makeDriftedQuery(inj.request);

        QueryReport serve_report;
        const TesselResult served =
            replan_service.replan(inj.request, &serve_report);
        row.serveSec = serve_report.wallSec;
        row.stale = serve_report.stale;

        QueryReport cold_report;
        cold_service.runOne(drifted, &cold_report);
        row.coldSec = cold_report.wallSec;

        // Every served answer — fresh, stale, or degraded — must pass
        // the oracle against the instance it was served for.
        const VerifyOutcome ok = verifyResultAgainstQuery(
            drifted.placement, drifted.effectiveOptions(), served);
        row.verified = served.found && ok.ok;
        if (!row.verified)
            std::cout << row.label << ": verification failed: "
                      << ok.reason << "\n";

        // Once the background search lands, a repeat of the injection
        // is a store hit — and for drift rows, bit-identical to cold
        // (seed only prunes; the published replan IS the cold answer).
        replan_service.waitBackgroundReplans();
        QueryReport repeat_report;
        replan_service.replan(inj.request, &repeat_report);
        const std::string repeat_source = repeat_report.source;
        row.repeatHit =
            repeat_source == "memory" || repeat_source == "disk";
        row.identical = repeat_report.planHash == cold_report.planHash;

        all_identical = all_identical && (row.removal || row.identical);
        all_verified = all_verified && row.verified;
        all_hits = all_hits && row.repeatHit;
        all_fast = all_fast &&
                   (row.removal || max_ms <= 0.0 ||
                    row.serveSec * 1e3 <= max_ms);
        stale_count += row.stale ? 1 : 0;
        cold_total += row.coldSec;
        serve_total += row.serveSec;
        rows.push_back(std::move(row));
    }

    Table table("Elastic replanning: fault injection, time to serve vs "
                "cold search (" +
                std::to_string(devices) + " devices)");
    table.setHeader({"injection", "cold (ms)", "serve (ms)", "speedup",
                     "stale", "identical", "verified", "repeat hit"});
    for (const Row &r : rows) {
        const double ratio =
            r.serveSec > 0.0 ? r.coldSec / r.serveSec : 0.0;
        table.addRow({r.label, fmtDouble(r.coldSec * 1e3, 2),
                      fmtDouble(r.serveSec * 1e3, 2),
                      fmtDouble(ratio, 1), r.stale ? "yes" : "no",
                      r.removal ? "n/a" : (r.identical ? "yes" : "NO"),
                      r.verified ? "yes" : "NO",
                      r.repeatHit ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "cold " << fmtDouble(cold_total, 3)
              << " s vs time-to-serve " << fmtDouble(serve_total, 3)
              << " s => "
              << fmtDouble(serve_total > 0.0 ? cold_total / serve_total
                                             : 0.0,
                           1)
              << "x; " << stale_count << "/" << rows.size()
              << " served stale\n";

    bool ok = all_identical && all_verified && all_hits && all_fast;
    if (!all_identical)
        std::cout << "FAIL: a published replan differs from its cold "
                     "plan (seed-only-prunes violated)\n";
    if (!all_verified)
        std::cout << "FAIL: a served plan failed oracle verification\n";
    if (!all_hits)
        std::cout << "FAIL: a repeated injection missed the store\n";
    if (!all_fast)
        std::cout << "FAIL: a drift replan served slower than "
                  << fmtDouble(max_ms, 0) << " ms\n";

    if (!json_path.empty() &&
        !writeJson(json_path, rows, cold_total, serve_total, max_ms,
                   ok)) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    return ok ? 0 : 1;
}
