/**
 * @file
 * Fig. 11 reproduction: repetend bubble rate as the number of
 * micro-batches available for repetend construction (NR) grows, for all
 * five placement shapes, with unlimited memory. The paper's headline
 * observations: every shape eventually reaches zero bubble; V-Shape
 * needs NR >= 4 (the device count) while M/NN need NR >= 6.
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    Table table("Fig. 11: repetend bubble rate vs NR (unlimited memory)");
    std::vector<std::string> header{"NR"};
    const std::vector<std::string> shapes{"V", "X", "M", "K", "NN"};
    for (const auto &s : shapes)
        header.push_back(s + "-Shape");
    table.setHeader(header);

    std::vector<int> zero_at(shapes.size(), -1);
    for (int nr = 1; nr <= 8; ++nr) {
        std::vector<std::string> row{std::to_string(nr)};
        for (size_t i = 0; i < shapes.size(); ++i) {
            TesselOptions opts = bench::searchOptions();
            opts.maxRepetendMicrobatches = nr;
            const auto r = tesselSearch(makeShapeByName(shapes[i], 4),
                                        opts);
            if (!r.found) {
                row.push_back("-");
                continue;
            }
            const double bubble = r.plan.steadyBubbleRate();
            row.push_back(fmtPercent(bubble, 1));
            if (zero_at[i] < 0 && bubble < 1e-9)
                zero_at[i] = nr;
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "Zero-bubble threshold per shape:";
    for (size_t i = 0; i < shapes.size(); ++i)
        std::cout << "  " << shapes[i] << "=" << zero_at[i];
    std::cout << "\nPaper reference: V-Shape reaches zero bubble at "
                 "NR=4; NN- and M-Shape need NR=6.\n";
    return 0;
}
