/**
 * @file
 * Fig. 12 reproduction: repetend bubble rate as the per-device memory
 * capacity M grows (forward blocks cost +1, backward blocks release -1),
 * holding NR at each shape's zero-bubble threshold from Fig. 11. Lower
 * capacity filters out schedules that run forwards ahead, raising the
 * bubble; ample capacity recovers zero bubble.
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    const std::vector<std::string> shapes{"V", "X", "M", "K", "NN"};

    // NR thresholds measured by the Fig. 11 sweep.
    std::vector<int> nr_zero(shapes.size(), 0);
    for (size_t i = 0; i < shapes.size(); ++i) {
        for (int nr = 1; nr <= 8; ++nr) {
            TesselOptions opts = bench::searchOptions();
            opts.maxRepetendMicrobatches = nr;
            const auto r =
                tesselSearch(makeShapeByName(shapes[i], 4), opts);
            if (r.found && r.plan.steadyBubbleRate() < 1e-9) {
                nr_zero[i] = nr;
                break;
            }
        }
        if (nr_zero[i] == 0)
            nr_zero[i] = 8;
    }

    Table table("Fig. 12: repetend bubble rate vs memory capacity M "
                "(mF=+1, mB=-1, NR at the zero-bubble threshold)");
    std::vector<std::string> header{"M"};
    for (size_t i = 0; i < shapes.size(); ++i)
        header.push_back(shapes[i] + "(NR=" + std::to_string(nr_zero[i]) +
                         ")");
    table.setHeader(header);

    for (Mem m = 1; m <= 17; m += 2) {
        std::vector<std::string> row{std::to_string(m)};
        for (size_t i = 0; i < shapes.size(); ++i) {
            TesselOptions opts = bench::searchOptions();
            opts.maxRepetendMicrobatches = nr_zero[i];
            opts.memLimit = m;
            const auto r =
                tesselSearch(makeShapeByName(shapes[i], 4), opts);
            row.push_back(
                r.found ? fmtPercent(r.plan.steadyBubbleRate(), 1) : "-");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Paper reference: bubble decreases monotonically with "
                 "M and reaches zero for every shape once capacity "
                 "matches the shape's in-flight requirement.\n";
    return 0;
}
