/**
 * @file
 * Fig. 10 reproduction: (a) search-time breakdown across the warmup /
 * repetend / cooldown phases, and (b) the effect of the lazy-search
 * optimization (satisfiability-only completion checks inside the
 * candidate loop, one time-optimal completion at the end, Sec. V).
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    Table breakdown(
        "Fig. 10(a): search time distribution per phase (lazy search)");
    breakdown.setHeader({"placement", "total (s)", "warmup %",
                         "repetend %", "cooldown %", "candidates"});

    Table lazy("Fig. 10(b): relative search cost without lazy search");
    lazy.setHeader({"placement", "lazy (s)", "eager (s)", "eager/lazy"});

    struct Entry
    {
        const char *label;
        Placement placement;
    };
    const Entry entries[] = {
        {"GPT (M-Shape)", makeMShape(4)},
        {"mT5 (NN-Shape)", makeNnShape(4)},
        {"Flava (K-Shape)", makeKShape(4)},
    };

    for (const Entry &entry : entries) {
        Stopwatch lazy_watch;
        const auto result =
            tesselSearch(entry.placement, bench::searchOptions());
        const double lazy_sec = lazy_watch.seconds();
        if (!result.found) {
            breakdown.addRow({entry.label, "-", "-", "-", "-", "-"});
            continue;
        }
        const auto &b = result.breakdown;
        const double total = std::max(
            b.repetendSeconds + b.warmupSeconds + b.cooldownSeconds,
            1e-9);
        breakdown.addRow(
            {entry.label, fmtDouble(lazy_sec, 3),
             fmtPercent(b.warmupSeconds / total, 1),
             fmtPercent(b.repetendSeconds / total, 1),
             fmtPercent(b.cooldownSeconds / total, 1),
             std::to_string(b.candidatesEnumerated)});

        TesselOptions eager_opts = bench::searchOptions();
        eager_opts.lazy = false;
        Stopwatch eager_watch;
        tesselSearch(entry.placement, eager_opts);
        const double eager_sec = eager_watch.seconds();
        lazy.addRow({entry.label, fmtDouble(lazy_sec, 3),
                     fmtDouble(eager_sec, 3),
                     fmtDouble(eager_sec / std::max(lazy_sec, 1e-9), 2) +
                         "x"});
    }
    breakdown.print(std::cout);
    lazy.print(std::cout);
    std::cout << "Paper reference: cooldown > warmup search time; lazy "
                 "search keeps completion cost comparable to the "
                 "repetend phase (~147 s average total with Z3).\n";
    return 0;
}
