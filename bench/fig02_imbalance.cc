/**
 * @file
 * Fig. 2 reproduction: training-time imbalance of a GPT model with a
 * 768K-vocabulary embedding under the 1F1B/Piper baseline, as the layer
 * count grows from 24 to 40 on 4 V100-32GB GPUs. The paper reports the
 * slowest stage reaching 3.4x the fastest at 40 layers; the trend (flat
 * embedding stage, growing compute stages) is what matters.
 */

#include "bench/common.h"
#include "placement/piper.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    hw.gpusPerServer = 8;
    const int gpus = 4;
    const int num_microbatches = 128;

    Table table("Fig. 2: GPT iteration time vs layer count "
                "(768K vocab, 4 GPUs, 1F1B/Piper)");
    table.setHeader({"layers", "stages", "fastest stage (s)",
                     "slowest stage (s)", "slow/fast"});

    for (int layers = 24; layers <= 40; layers += 4) {
        const GptConfig cfg = gptFig2Config(layers);
        CostModel cm(hw, 1);
        const auto layer_costs = gptLayerCosts(cfg, cm);
        const double boundary = cm.boundaryMB(cfg.hidden, cfg.seqLen);
        const double plan_cap =
            static_cast<double>(hw.usableMemMB()) - boundary * gpus * 2.0;
        const PiperResult part =
            piperPartition(layer_costs, gpus, plan_cap, hw.tpEfficiency,
                           2);
        if (!part.feasible) {
            table.addRow({std::to_string(layers), "-", "x (OOM)",
                          "x (OOM)", "-"});
            continue;
        }
        // Per-stage iteration time: stage fwd+bwd per micro-batch times
        // the number of micro-batches (the quantity Fig. 2 plots).
        const double fastest =
            part.fastestTime * num_microbatches / 1e3;
        const double slowest =
            part.bottleneckTime * num_microbatches / 1e3;
        table.addRow({std::to_string(layers),
                      std::to_string(part.stages.size()),
                      fmtDouble(fastest, 2), fmtDouble(slowest, 2),
                      fmtDouble(slowest / std::max(fastest, 1e-9), 2)});
    }
    table.print(std::cout);
    std::cout << "Paper reference: slowest/fastest reaches ~3.4x at 40 "
                 "layers; the embedding-dominated stage stays flat while "
                 "compute stages grow.\n";
    return 0;
}
