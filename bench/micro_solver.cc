/**
 * @file
 * google-benchmark microbenchmarks for the solver substrate: repetend
 * period solves, completion-phase solves, decision checks, and the
 * dominance-memo ablation. These quantify the per-candidate costs that
 * Fig. 10's breakdown aggregates.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "core/repetend.h"
#include "core/repetend_solver.h"
#include "core/search.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"
#include "support/timer.h"

namespace tessel {
namespace {

void
BM_RepetendSolveVShape(benchmark::State &state)
{
    const Placement p = makeVShape(4);
    RepetendAssignment a;
    a.r = {3, 2, 1, 0, 0, 0, 0, 0};
    a.numMicrobatches = 4;
    for (auto _ : state) {
        auto sched = solveRepetend(p, a);
        benchmark::DoNotOptimize(sched.period);
    }
}
BENCHMARK(BM_RepetendSolveVShape);

void
BM_RepetendSolveMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    const auto all = allRepetends(p, static_cast<int>(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        auto sched = solveRepetend(p, all[i++ % all.size()]);
        benchmark::DoNotOptimize(sched.feasible);
    }
}
BENCHMARK(BM_RepetendSolveMShape)->Arg(2)->Arg(4)->Arg(6);

void
BM_RepetendEnumeration(benchmark::State &state)
{
    const Placement p = makeNnShape(4);
    for (auto _ : state) {
        int count = enumerateRepetends(
            p, static_cast<int>(state.range(0)),
            [](const RepetendAssignment &) { return true; });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_RepetendEnumeration)->Arg(3)->Arg(4)->Arg(5);

void
BM_ToSolve(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_ToSolve)->Arg(2)->Arg(4)->Arg(6);

void
BM_ToSolveNoDominance(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    SolverOptions opts;
    opts.useDominance = false;
    for (auto _ : state) {
        BnbSolver solver(sp, opts);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
// Larger instances without the dominance memo run for minutes (the
// blow-up the memo exists to prevent); keep the ablation tractable.
BENCHMARK(BM_ToSolveNoDominance)->Arg(2)->Arg(3);

void
BM_DecisionCheck(benchmark::State &state)
{
    Problem prob(makeVShape(4), 4);
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.decide(21); // The known optimum for N=4.
        benchmark::DoNotOptimize(r.status);
    }
}
BENCHMARK(BM_DecisionCheck);

void
BM_FullSearchKShape(benchmark::State &state)
{
    const Placement p = makeKShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_FullSearchKShape);

/**
 * Composite end-to-end search on the GPT M-shape, single-threaded so
 * per-iteration time tracks pure solver cost (the composite bench the
 * BENCH_solver.json trajectory locks).
 */
void
BM_FullSearchMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        opts.numThreads = 1;
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_FullSearchMShape)->Unit(benchmark::kMillisecond);

/**
 * Serial-vs-parallel candidate sweep (the tentpole knob): Arg is
 * TesselOptions::numThreads. Every thread count returns the identical
 * plan, so the per-iteration time difference is pure sweep speedup.
 */
void
BM_ParallelSearchMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        opts.numThreads = static_cast<int>(state.range(0));
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_ParallelSearchMShape)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * --json mode: run the composite FullSearch workloads once each with
 * deterministic single-threaded settings and write wall time plus the
 * solver effort counters (nodes, Bellman-Ford relaxation passes) to
 * @p path in the BENCH_solver.json schema. CI archives the file per
 * commit, making solver perf regressions diffable.
 */
int
runJsonReport(const std::string &path)
{
    struct Work
    {
        const char *name;
        Placement placement;
    };
    const Work works[] = {
        {"FullSearchVShape", makeVShape(4)},
        {"FullSearchKShape", makeKShape(4)},
        {"FullSearchMShape", makeMShape(4)},
        {"FullSearchNnShape", makeNnShape(4)},
    };
    std::vector<bench::BenchJsonRow> rows;
    for (const Work &w : works) {
        TesselOptions opts;
        opts.totalBudgetSec = 60.0;
        opts.numThreads = 1;
        Stopwatch watch;
        const TesselResult r = tesselSearch(w.placement, opts);
        bench::BenchJsonRow row;
        row.bench = w.name;
        row.wallMs = watch.milliseconds();
        row.nodes = r.breakdown.solverNodes;
        row.relaxations = r.breakdown.relaxations;
        rows.push_back(row);
        std::cout << row.bench << ": wall_ms=" << row.wallMs
                  << " nodes=" << row.nodes
                  << " relaxations=" << row.relaxations
                  << " period=" << r.period << "\n";
    }
    if (!bench::writeBenchJson(path, rows)) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << path << "\n";
    return 0;
}

} // namespace
} // namespace tessel

int
main(int argc, char **argv)
{
    // Strip the Tessel-specific --json flag before handing the rest to
    // google-benchmark (which rejects unknown arguments).
    std::string json_path;
    bool explicit_filter = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        if (arg.rfind("--benchmark_filter", 0) == 0)
            explicit_filter = true;
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    // Plain `--json <path>` runs only the JSON report; the full
    // google-benchmark suite takes minutes and should stay opt-in via
    // an explicit --benchmark_filter.
    if (json_path.empty() || explicit_filter)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty())
        return tessel::runJsonReport(json_path);
    return 0;
}
