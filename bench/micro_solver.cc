/**
 * @file
 * google-benchmark microbenchmarks for the solver substrate: repetend
 * period solves, completion-phase solves, decision checks, and the
 * dominance-memo ablation. These quantify the per-candidate costs that
 * Fig. 10's breakdown aggregates.
 */

#include <benchmark/benchmark.h>

#include "core/repetend.h"
#include "core/repetend_solver.h"
#include "core/search.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"

namespace tessel {
namespace {

void
BM_RepetendSolveVShape(benchmark::State &state)
{
    const Placement p = makeVShape(4);
    RepetendAssignment a;
    a.r = {3, 2, 1, 0, 0, 0, 0, 0};
    a.numMicrobatches = 4;
    for (auto _ : state) {
        auto sched = solveRepetend(p, a);
        benchmark::DoNotOptimize(sched.period);
    }
}
BENCHMARK(BM_RepetendSolveVShape);

void
BM_RepetendSolveMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    const auto all = allRepetends(p, static_cast<int>(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        auto sched = solveRepetend(p, all[i++ % all.size()]);
        benchmark::DoNotOptimize(sched.feasible);
    }
}
BENCHMARK(BM_RepetendSolveMShape)->Arg(2)->Arg(4)->Arg(6);

void
BM_RepetendEnumeration(benchmark::State &state)
{
    const Placement p = makeNnShape(4);
    for (auto _ : state) {
        int count = enumerateRepetends(
            p, static_cast<int>(state.range(0)),
            [](const RepetendAssignment &) { return true; });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_RepetendEnumeration)->Arg(3)->Arg(4)->Arg(5);

void
BM_ToSolve(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_ToSolve)->Arg(2)->Arg(4)->Arg(6);

void
BM_ToSolveNoDominance(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    SolverOptions opts;
    opts.useDominance = false;
    for (auto _ : state) {
        BnbSolver solver(sp, opts);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
// Larger instances without the dominance memo run for minutes (the
// blow-up the memo exists to prevent); keep the ablation tractable.
BENCHMARK(BM_ToSolveNoDominance)->Arg(2)->Arg(3);

void
BM_DecisionCheck(benchmark::State &state)
{
    Problem prob(makeVShape(4), 4);
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.decide(21); // The known optimum for N=4.
        benchmark::DoNotOptimize(r.status);
    }
}
BENCHMARK(BM_DecisionCheck);

void
BM_FullSearchKShape(benchmark::State &state)
{
    const Placement p = makeKShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_FullSearchKShape);

/**
 * Serial-vs-parallel candidate sweep (the tentpole knob): Arg is
 * TesselOptions::numThreads. Every thread count returns the identical
 * plan, so the per-iteration time difference is pure sweep speedup.
 */
void
BM_ParallelSearchMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        opts.numThreads = static_cast<int>(state.range(0));
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_ParallelSearchMShape)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace tessel

BENCHMARK_MAIN();
