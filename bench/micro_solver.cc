/**
 * @file
 * google-benchmark microbenchmarks for the solver substrate: repetend
 * period solves, completion-phase solves, decision checks, and the
 * dominance-memo ablation. These quantify the per-candidate costs that
 * Fig. 10's breakdown aggregates.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "core/repetend.h"
#include "core/repetend_solver.h"
#include "core/search.h"
#include "placement/shapes.h"
#include "solver/bnb.h"
#include "solver/from_ir.h"
#include "support/timer.h"

namespace tessel {
namespace {

void
BM_RepetendSolveVShape(benchmark::State &state)
{
    const Placement p = makeVShape(4);
    RepetendAssignment a;
    a.r = {3, 2, 1, 0, 0, 0, 0, 0};
    a.numMicrobatches = 4;
    for (auto _ : state) {
        auto sched = solveRepetend(p, a);
        benchmark::DoNotOptimize(sched.period);
    }
}
BENCHMARK(BM_RepetendSolveVShape);

void
BM_RepetendSolveMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    const auto all = allRepetends(p, static_cast<int>(state.range(0)));
    size_t i = 0;
    for (auto _ : state) {
        auto sched = solveRepetend(p, all[i++ % all.size()]);
        benchmark::DoNotOptimize(sched.feasible);
    }
}
BENCHMARK(BM_RepetendSolveMShape)->Arg(2)->Arg(4)->Arg(6);

void
BM_RepetendEnumeration(benchmark::State &state)
{
    const Placement p = makeNnShape(4);
    for (auto _ : state) {
        int count = enumerateRepetends(
            p, static_cast<int>(state.range(0)),
            [](const RepetendAssignment &) { return true; });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_RepetendEnumeration)->Arg(3)->Arg(4)->Arg(5);

/**
 * The repetend constraint system of a placement under one assignment:
 * dependency edges (h = index gap, w = producer span) plus per-device
 * instance-separation pairs (h = 1) — the same static system
 * PeriodSearch roots its branch-and-bound on, here exposed raw so the
 * MCR kernel is measurable in isolation.
 */
struct KernelInstance
{
    int nodes = 0;
    std::vector<PeriodEdge> edges;
    Time hi = 0;
};

KernelInstance
kernelInstance(const Placement &p, const RepetendAssignment &a)
{
    KernelInstance k;
    k.nodes = p.numBlocks();
    for (int j = 0; j < k.nodes; ++j)
        for (int i : p.block(j).deps)
            k.edges.push_back({i, j, p.block(i).span, a.r[i] - a.r[j]});
    for (DeviceId d = 0; d < p.numDevices(); ++d) {
        const auto &on = p.blocksOnDevice(d);
        for (int b : on)
            for (int c : on)
                if (c != b)
                    k.edges.push_back({b, c, p.block(b).span, 1});
    }
    k.hi = p.totalWork();
    return k;
}

KernelInstance
kernelInstanceByShape(int shape)
{
    const Placement p = shape == 0   ? makeVShape(4)
                        : shape == 1 ? makeMShape(4)
                                     : makeNnShape(4);
    const auto all = allRepetends(p, 3);
    return kernelInstance(p, all[all.size() / 2]);
}

/** Isolated MCR kernel: Arg0 selects the shape (0=V, 1=M, 2=NN). */
void
BM_MinPeriodHoward(benchmark::State &state)
{
    const KernelInstance k =
        kernelInstanceByShape(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = solveMinPeriod(k.nodes, k.edges, 1, k.hi,
                                McrMode::Howard);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_MinPeriodHoward)->Arg(0)->Arg(1)->Arg(2);

void
BM_MinPeriodBinary(benchmark::State &state)
{
    const KernelInstance k =
        kernelInstanceByShape(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = solveMinPeriod(k.nodes, k.edges, 1, k.hi,
                                McrMode::Binary);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_MinPeriodBinary)->Arg(0)->Arg(1)->Arg(2);

/**
 * Warm kernel call on a grown system (the BnB child-probe pattern):
 * solve, append one ordering decision edge, re-solve seeded with the
 * parent's potentials + policy. Compare against BM_MinPeriodHoward for
 * the cold-vs-warm kernel gap.
 */
void
BM_MinPeriodHowardWarm(benchmark::State &state)
{
    KernelInstance k =
        kernelInstanceByShape(static_cast<int>(state.range(0)));
    const McrSolveResult parent =
        solveMinPeriod(k.nodes, k.edges, 1, k.hi, McrMode::Howard);
    k.edges.push_back({0, 1, 1, 0});
    const McrWarmStart warm{&parent.start, parent.period,
                            &parent.policy};
    for (auto _ : state) {
        auto r = solveMinPeriod(k.nodes, k.edges, parent.period, k.hi,
                                McrMode::Howard, warm);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_MinPeriodHowardWarm)->Arg(0)->Arg(1)->Arg(2);

void
BM_ToSolve(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_ToSolve)->Arg(2)->Arg(4)->Arg(6);

void
BM_ToSolveNoDominance(benchmark::State &state)
{
    Problem prob(makeVShape(4), static_cast<int>(state.range(0)));
    const SolverProblem sp = buildFullInstance(prob);
    SolverOptions opts;
    opts.useDominance = false;
    for (auto _ : state) {
        BnbSolver solver(sp, opts);
        auto r = solver.minimizeMakespan();
        benchmark::DoNotOptimize(r.makespan);
    }
}
// Larger instances without the dominance memo run for minutes (the
// blow-up the memo exists to prevent); keep the ablation tractable.
BENCHMARK(BM_ToSolveNoDominance)->Arg(2)->Arg(3);

void
BM_DecisionCheck(benchmark::State &state)
{
    Problem prob(makeVShape(4), 4);
    const SolverProblem sp = buildFullInstance(prob);
    for (auto _ : state) {
        BnbSolver solver(sp);
        auto r = solver.decide(21); // The known optimum for N=4.
        benchmark::DoNotOptimize(r.status);
    }
}
BENCHMARK(BM_DecisionCheck);

void
BM_FullSearchKShape(benchmark::State &state)
{
    const Placement p = makeKShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_FullSearchKShape);

/**
 * Composite end-to-end search on the GPT M-shape, single-threaded so
 * per-iteration time tracks pure solver cost (the composite bench the
 * BENCH_solver.json trajectory locks).
 */
void
BM_FullSearchMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        opts.numThreads = 1;
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_FullSearchMShape)->Unit(benchmark::kMillisecond);

/**
 * Serial-vs-parallel candidate sweep (the tentpole knob): Arg is
 * TesselOptions::numThreads. Every thread count returns the identical
 * plan, so the per-iteration time difference is pure sweep speedup.
 */
void
BM_ParallelSearchMShape(benchmark::State &state)
{
    const Placement p = makeMShape(4);
    for (auto _ : state) {
        TesselOptions opts;
        opts.totalBudgetSec = 30.0;
        opts.numThreads = static_cast<int>(state.range(0));
        auto r = tesselSearch(p, opts);
        benchmark::DoNotOptimize(r.period);
    }
}
BENCHMARK(BM_ParallelSearchMShape)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * --json mode: run the composite FullSearch workloads once each with
 * deterministic single-threaded settings and write wall time plus the
 * solver effort counters (nodes, Bellman-Ford relaxation passes) to
 * @p path in the BENCH_solver.json schema. CI archives the file per
 * commit, making solver perf regressions diffable.
 */
int
runJsonReport(const std::string &path)
{
    struct Work
    {
        const char *name;
        Placement placement;
    };
    const Work works[] = {
        {"FullSearchVShape", makeVShape(4)},
        {"FullSearchKShape", makeKShape(4)},
        {"FullSearchMShape", makeMShape(4)},
        {"FullSearchNnShape", makeNnShape(4)},
    };
    std::vector<bench::BenchJsonRow> rows;
    for (const Work &w : works) {
        TesselOptions opts;
        opts.totalBudgetSec = 60.0;
        opts.numThreads = 1;
        Stopwatch watch;
        const TesselResult r = tesselSearch(w.placement, opts);
        bench::BenchJsonRow row;
        row.bench = w.name;
        row.wallMs = watch.milliseconds();
        row.nodes = r.breakdown.solverNodes;
        row.relaxations = r.breakdown.relaxations;
        row.valueSweeps = r.breakdown.valueSweeps;
        row.policyImprovements = r.breakdown.policyImprovements;
        rows.push_back(row);
        std::cout << row.bench << ": wall_ms=" << row.wallMs
                  << " nodes=" << row.nodes
                  << " relaxations=" << row.relaxations
                  << " value_sweeps=" << row.valueSweeps
                  << " policy_improvements=" << row.policyImprovements
                  << " period=" << r.period << "\n";
    }
    // Isolated MCR kernel rows, both modes on the same instances; the
    // explicit mode means these rows are env-independent, so baseline
    // and fresh runs compare like for like.
    const struct
    {
        const char *name;
        int shape;
        McrMode mode;
    } kernels[] = {
        {"MinPeriodHowardMShape", 1, McrMode::Howard},
        {"MinPeriodBinaryMShape", 1, McrMode::Binary},
        {"MinPeriodHowardNnShape", 2, McrMode::Howard},
        {"MinPeriodBinaryNnShape", 2, McrMode::Binary},
    };
    for (const auto &kb : kernels) {
        const KernelInstance k = kernelInstanceByShape(kb.shape);
        constexpr int kReps = 2000;
        Stopwatch watch;
        McrSolveResult last;
        for (int i = 0; i < kReps; ++i) {
            last = solveMinPeriod(k.nodes, k.edges, 1, k.hi, kb.mode);
            benchmark::DoNotOptimize(last.period);
        }
        bench::BenchJsonRow row;
        row.bench = kb.name;
        row.wallMs = watch.milliseconds();
        row.relaxations = last.stats.relaxations;
        row.valueSweeps = last.stats.valueSweeps;
        row.policyImprovements = last.stats.policyImprovements;
        rows.push_back(row);
        std::cout << row.bench << ": wall_ms=" << row.wallMs << " ("
                  << kReps << " solves) relaxations="
                  << row.relaxations
                  << " value_sweeps=" << row.valueSweeps
                  << " policy_improvements=" << row.policyImprovements
                  << " period=" << last.period << "\n";
    }
    if (!bench::writeBenchJson(path, rows)) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << path << "\n";
    return 0;
}

} // namespace
} // namespace tessel

int
main(int argc, char **argv)
{
    // Strip the Tessel-specific --json flag before handing the rest to
    // google-benchmark (which rejects unknown arguments).
    std::string json_path;
    bool explicit_filter = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        if (arg.rfind("--benchmark_filter", 0) == 0)
            explicit_filter = true;
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    // Plain `--json <path>` runs only the JSON report; the full
    // google-benchmark suite takes minutes and should stay opt-in via
    // an explicit --benchmark_filter.
    if (json_path.empty() || explicit_filter)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty())
        return tessel::runJsonReport(json_path);
    return 0;
}
