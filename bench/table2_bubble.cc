/**
 * @file
 * Table II reproduction: asymptotic bubble rate of each training
 * schedule on the paper's three model placements (unit costs,
 * backward = 2x forward). Also includes the simple-vs-tight repetend
 * compaction ablation (Fig. 6) that DESIGN.md calls out.
 */

#include "bench/common.h"
#include "core/repetend_solver.h"

using namespace tessel;

namespace {

std::string
steadyBubbleOf(const std::optional<Schedule> &sched)
{
    if (!sched)
        return "x";
    return fmtPercent(std::max(0.0, measuredSteadyBubble(*sched)), 1);
}

} // namespace

int
main()
{
    const int n = 24;
    Table table("Table II: steady-state bubble rate per training "
                "schedule (many micro-batches)");
    table.setHeader(
        {"model (shape)", "1F1B", "Chimera-direct", "1F1B+", "Tessel"});

    struct Row
    {
        const char *label;
        Placement advanced; // The Tessel / 1F1B+ placement.
        bool plus_applicable;
    };
    const Row rows[] = {
        {"GPT (M-Shape)", makeMShape(4), true},
        {"mT5 (NN-Shape)", makeNnShape(4), true},
        {"Flava (K-Shape)", makeKShape(4), false},
    };

    for (const Row &row : rows) {
        // 1F1B runs on its own V-Shape placement; Chimera on X-Shape.
        Problem v_prob(makeVShape(4), n, kUnlimitedMem);
        const auto v = schedule1F1B(v_prob);
        Problem x_prob(makeXShape(4), n, kUnlimitedMem);
        const auto x = scheduleChimeraDirect(x_prob);

        std::string plus = "x";
        if (row.plus_applicable) {
            Problem p_prob(row.advanced, n, kUnlimitedMem);
            plus = steadyBubbleOf(schedule1F1BPlus(p_prob));
        }

        const auto tessel =
            tesselSearch(row.advanced, bench::searchOptions());
        const std::string tessel_cell =
            tessel.found ? fmtPercent(tessel.plan.steadyBubbleRate(), 1)
                         : "x";

        table.addRow({row.label, steadyBubbleOf(v), steadyBubbleOf(x),
                      plus, tessel_cell});
    }
    table.print(std::cout);
    std::cout << "Paper reference: 1F1B 0%, Chimera-direct 20%, 1F1B+ "
                 "25%/20%/x, Tessel 0%.\n\n";

    // Ablation: simple (Fig. 6a) vs tight (Fig. 6b) compaction of the
    // best repetend found for each shape.
    Table ablation("Ablation: repetend compaction (Fig. 6) - period per "
                   "micro-batch");
    ablation.setHeader({"shape", "tight period", "simple period",
                        "tight speedup"});
    for (const char *name : {"V", "X", "M", "NN", "K"}) {
        const Placement p = makeShapeByName(name, 4);
        const auto result = tesselSearch(p, bench::searchOptions());
        if (!result.found) {
            ablation.addRow({name, "-", "-", "-"});
            continue;
        }
        const Time tight = result.period;
        const Time simple = evalPeriod(p, result.plan.assignment(),
                                       result.plan.windowStart(), false);
        ablation.addRow({name, std::to_string(tight),
                         std::to_string(simple),
                         fmtDouble(static_cast<double>(simple) / tight,
                                   2) +
                             "x"});
    }
    ablation.print(std::cout);
    return 0;
}
