/**
 * @file
 * Fig. 13 reproduction: GPT end-to-end training throughput (aggregated
 * PFLOPS) at 4/8/16/32 GPUs for Tessel (M-Shape), 1F1B+ (M-Shape),
 * 1F1B (Piper V-Shape), and Chimera (X-Shape). 'x (OOM)' marks runs
 * whose parameters or activations exceed device memory — in the paper
 * Chimera OOMs everywhere on GPT.
 */

#include "bench/common.h"

using namespace tessel;

int
main()
{
    HardwareSpec hw;
    const int n = 32; // Micro-batches per iteration (global batch 128).

    Table table("Fig. 13: GPT end-to-end training throughput (PFLOPS)");
    table.setHeader(
        {"GPUs", "Tessel", "1F1B+", "1F1B", "Chimera", "Tessel/1F1B"});

    for (int gpus : {4, 8, 16, 32}) {
        const GptConfig cfg = gptConfigForGpus(gpus);
        const int batch = 1;

        const auto m = lowerGptMShape(cfg, gpus, batch, hw);
        const auto tessel = bench::runTessel(m, hw, n);
        const auto plus = bench::runBaseline(
            m, hw, n, [](const Problem &p) { return schedule1F1BPlus(p); });

        const auto v = lowerGptVShapePiper(cfg, gpus, batch, hw);
        const auto ofob = bench::runBaseline(
            v, hw, n, [](const Problem &p) { return schedule1F1B(p); });

        const auto x = lowerGptXShapeChimera(cfg, gpus, batch, hw);
        const auto chimera = bench::runBaseline(
            x, hw, n,
            [](const Problem &p) { return scheduleChimeraDirect(p); });

        std::string speedup = "-";
        if (tessel && ofob && ofob->pflops > 0)
            speedup = fmtDouble(tessel->pflops / ofob->pflops, 2) + "x";
        table.addRow({std::to_string(gpus), bench::pflopsCell(tessel),
                      bench::pflopsCell(plus), bench::pflopsCell(ofob),
                      bench::pflopsCell(chimera), speedup});
    }
    table.print(std::cout);
    std::cout << "Paper reference: Tessel up to 4.8x over 1F1B (16 "
                 "GPUs) and 1.4x over 1F1B+; Chimera OOMs at every "
                 "point.\n";
    return 0;
}
