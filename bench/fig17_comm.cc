/**
 * @file
 * Fig. 17 reproduction: end-to-end training time of Tessel's searched
 * schedules with blocking vs non-blocking communication (Sec. IV-D /
 * Fig. 7) for GPT (M-Shape) and mT5 (NN-Shape) across GPU counts.
 */

#include "bench/common.h"

using namespace tessel;

namespace {

void
sweep(Table &table, const std::string &model,
      const std::function<LoweredModel(int)> &lower,
      const HardwareSpec &hw, int n)
{
    for (int gpus : {4, 8, 16, 32}) {
        const LoweredModel m = lower(gpus);
        if (!m.fits) {
            table.addRow({model, std::to_string(gpus), "x", "x", "-"});
            continue;
        }
        const auto r = tesselSearch(
            m.placement,
            bench::searchOptions(m.memCapacityMB, m.initialMemMB));
        if (!r.found) {
            table.addRow({model, std::to_string(gpus), "-", "-", "-"});
            continue;
        }
        const Schedule sched =
            r.plan.instantiate(std::max(n, r.plan.minMicrobatches()));
        const auto blocking =
            bench::runSchedule(sched, m, hw, n, /*non_blocking=*/false);
        const auto overlap =
            bench::runSchedule(sched, m, hw, n, /*non_blocking=*/true);
        table.addRow(
            {model, std::to_string(gpus),
             fmtDouble(blocking.iterationMs / 1e3, 2),
             fmtDouble(overlap.iterationMs / 1e3, 2),
             fmtDouble(blocking.iterationMs /
                           std::max(overlap.iterationMs, 1e-9),
                       2) +
                 "x"});
    }
}

} // namespace

int
main()
{
    HardwareSpec hw;
    const int n = 32;

    Table table("Fig. 17: blocking vs non-blocking communication "
                "(iteration time, s)");
    table.setHeader(
        {"model", "GPUs", "blocking (s)", "non-blocking (s)", "speedup"});
    sweep(table, "GPT (M-Shape)",
          [&](int gpus) {
              return lowerGptMShape(gptConfigForGpus(gpus), gpus, 1, hw);
          },
          hw, n);
    sweep(table, "mT5 (NN-Shape)",
          [&](int gpus) {
              return lowerMt5NnShape(mt5ConfigForGpus(gpus), gpus, 2, hw);
          },
          hw, n);
    table.print(std::cout);
    std::cout << "Paper reference: non-blocking communication yields up "
                 "to 1.9x end-to-end speedup on these placements.\n";
    return 0;
}
