/**
 * @file
 * Fig. 17 reproduction, upgraded to a communication-overhead study: for
 * GPT (M-Shape) and mT5 (NN-Shape) across GPU counts, compare the
 * comm-oblivious search (schedules planned as if transfers were free,
 * then executed under the hardware's link model) against the comm-aware
 * search (transfers planned as link-occupying blocks, heterogeneity and
 * latency visible to the solver). The comm-aware plan's simulated
 * makespan equals its planned makespan by construction (the cross-check
 * suite asserts this); the oblivious plan pays its communication at
 * execution time, overlapped (non-blocking) or rendezvous (blocking).
 *
 * All comm-aware searches run at the runtime-faithful PerDevice transfer
 * granularity: device masks are width-generic (support/resourceset.h),
 * so TP-grouped lowerings whose device + link count exceeds 64 resources
 * need no fallback. PerEdge remains available as an explicit
 * CommOptions choice for callers who want fewer link pseudo-devices.
 *
 * A second, wide-cluster section runs 32- and 64-GPU heterogeneous
 * configurations end to end (search -> planner-fidelity simulation ->
 * runtime instantiation), all of which exceed 64 total resources; the
 * process exits nonzero if any wide run fails to produce a plan whose
 * simulated makespan equals the planned one, so CI can use this bench
 * as a mask-width regression smoke test.
 *
 * Environment knobs (for CI smoke runs):
 *   TESSEL_FIG17_SECTION    "all" (default), "main", or "wide"
 *   TESSEL_FIG17_BUDGET_SEC per-search total budget override (seconds)
 */

#include <cstdlib>

#include "bench/common.h"
#include "placement/comm.h"
#include "runtime/instantiate.h"
#include "sim/runner.h"

using namespace tessel;

namespace {

double
envBudgetSec(double fallback)
{
    if (const char *s = std::getenv("TESSEL_FIG17_BUDGET_SEC")) {
        const double v = std::atof(s);
        if (v > 0.0)
            return v;
    }
    return fallback;
}

/** Tighter budgets than bench::searchOptions: this bench runs four
 * GPU counts x two searches per model; expanded searches hit their
 * budgets rather than exhausting the candidate space. */
TesselOptions
budgetedOptions(const LoweredModel &m)
{
    TesselOptions opts =
        bench::searchOptions(m.memCapacityMB, m.initialMemMB);
    opts.totalBudgetSec = envBudgetSec(15.0);
    opts.repetendBudgetSec = std::min(1.0, opts.totalBudgetSec);
    opts.phaseBudgetSec = std::min(5.0, opts.totalBudgetSec);
    return opts;
}

void
sweep(Table &table, std::vector<bench::BenchJsonRow> &json,
      const std::string &model,
      const std::function<LoweredModel(int)> &lower, const HardwareSpec &hw,
      int n)
{
    for (int gpus : {4, 8, 16, 32}) {
        const LoweredModel m = lower(gpus);
        if (!m.fits) {
            table.addRow({model, std::to_string(gpus), "x", "x", "x", "-"});
            continue;
        }
        const int stages = m.placement.numDevices();
        const ClusterModel cluster =
            clusterModelFrom(hw, stages, std::max(1, gpus / stages));

        // Comm-oblivious: the search never sees the links.
        const auto oblivious =
            tesselSearch(m.placement, budgetedOptions(m));
        // Comm-aware: transfers become schedulable link blocks at the
        // runtime-faithful per-device granularity, whatever the total
        // resource count.
        TesselOptions aware_opts = budgetedOptions(m);
        aware_opts.cluster = &cluster;
        aware_opts.edgeMB = m.edgeMB;
        const auto aware = tesselSearch(m.placement, aware_opts);
        if (!oblivious.found || !aware.found) {
            table.addRow({model, std::to_string(gpus), "-", "-", "-", "-"});
            continue;
        }

        const int n_obl = std::max(n, oblivious.plan.minMicrobatches());
        const Schedule obl_sched = oblivious.plan.instantiate(n_obl);
        ClusterSpec overlap_cs;
        overlap_cs.memCapacityMB = m.memCapacityMB;
        overlap_cs.initialMemMB = m.initialMemMB;
        ClusterSpec blocking_cs = overlap_cs;
        blocking_cs.nonBlockingComm = false;
        const SimResult obl_overlap =
            simulateWithModel(obl_sched, m.edgeMB, cluster, overlap_cs);
        const SimResult obl_blocking =
            simulateWithModel(obl_sched, m.edgeMB, cluster, blocking_cs);

        const int n_aware = std::max(n, aware.plan.minMicrobatches());
        const double aware_ms = static_cast<double>(
            aware.plan.makespanFor(n_aware));

        table.addRow(
            {model, std::to_string(gpus),
             fmtDouble(obl_blocking.makespanMs / 1e3, 2),
             fmtDouble(obl_overlap.makespanMs / 1e3, 2),
             fmtDouble(aware_ms / 1e3, 2),
             fmtDouble(obl_blocking.makespanMs /
                           std::max(aware_ms, 1e-9),
                       2) +
                 "x"});

        // Machine-readable rows (BENCH_comm.json): the three makespans
        // as wall_ms, with each search's deterministic effort counters.
        const std::string tag = model + "/" + std::to_string(gpus) + "gpu";
        json.push_back({tag + "/oblivious_blocking",
                        obl_blocking.makespanMs,
                        oblivious.breakdown.solverNodes,
                        oblivious.breakdown.relaxations});
        json.push_back({tag + "/oblivious_overlap", obl_overlap.makespanMs,
                        oblivious.breakdown.solverNodes,
                        oblivious.breakdown.relaxations});
        json.push_back({tag + "/comm_aware", aware_ms,
                        aware.breakdown.solverNodes,
                        aware.breakdown.relaxations});
    }
}

/**
 * Wide-cluster end-to-end run: TP-grouped GPT M-Shape on a
 * heterogeneous cluster at a GPU count whose PerDevice lowering needs
 * more than 64 device-mask bits. Searches, cross-checks the planned
 * makespan against the planner-fidelity simulation, and instantiates
 * the runtime program. @return true when every leg succeeded.
 */
bool
wideRun(Table &table, std::vector<bench::BenchJsonRow> &json,
        const HardwareSpec &hw, int gpus, int n)
{
    // Reuse the 32-GPU Table III model; at 64 GPUs the same model runs
    // with twice the tensor-parallel degree per stage.
    const LoweredModel m =
        lowerGptMShape(gptConfigForGpus(32), gpus, 1, hw);
    if (!m.fits) {
        table.addRow({std::to_string(gpus), "-", "x (OOM)", "-", "-"});
        return false;
    }

    // Per-GPU link model (NVLink in-server, IB across) plus genuine
    // speed heterogeneity: every other server runs 25% slower.
    ClusterModel cluster = clusterModelFrom(hw, gpus, 1);
    for (int d = 0; d < gpus; ++d)
        if ((d / hw.gpusPerServer) % 2 == 1)
            cluster.speedFactor[d] = 1.25;

    const int resources =
        commResourceDemand(m.placement, cluster, m.edgeMB, CommOptions{});

    TesselOptions opts = budgetedOptions(m);
    opts.cluster = &cluster;
    opts.edgeMB = m.edgeMB;
    const auto r = tesselSearch(m.placement, opts);
    if (!r.found) {
        table.addRow({std::to_string(gpus), std::to_string(resources),
                      "no plan", "-", "FAIL"});
        return false;
    }

    const int n_run = std::max(n, r.plan.minMicrobatches());
    const Schedule sched = r.plan.instantiate(n_run);
    const Time planned = sched.makespan();

    // Planner-fidelity simulation must reproduce the plan exactly.
    const SimResult sim = simulateExpandedSchedule(sched);
    const bool sim_ok = sim.ok && !sim.deadlock &&
                        sim.makespanMs == static_cast<double>(planned);

    // Runtime leg: lower to device programs and free-run them.
    const Program prog = instantiate(sched, {});
    ClusterSpec free_run;
    free_run.linkLatencyMs = 0.0;
    const SimResult run = simulate(prog, free_run);
    const bool run_ok = run.ok && !run.deadlock;

    // The section exists to prove >64-resource runs work; a lowering
    // that no longer crosses the cap is itself a failure worth seeing.
    const char *status = !(sim_ok && run_ok) ? "FAIL"
                         : resources <= 64   ? "FAIL (<=64 resources)"
                                             : "yes";
    table.addRow({std::to_string(gpus), std::to_string(resources),
                  fmtDouble(static_cast<double>(planned) / 1e3, 2),
                  fmtDouble(sim.makespanMs / 1e3, 2), status});
    json.push_back({"wide/" + std::to_string(gpus) + "gpu/planned",
                    static_cast<double>(planned),
                    r.breakdown.solverNodes, r.breakdown.relaxations});
    return sim_ok && run_ok && resources > 64;
}

} // namespace

int
main(int argc, char **argv)
{
    HardwareSpec hw;
    const int n = 32;
    const char *section_env = std::getenv("TESSEL_FIG17_SECTION");
    const std::string section = section_env ? section_env : "all";

    // --json <path>: also emit the comm-overhead numbers machine-readably
    // (BENCH_comm.json, same schema CI archives for BENCH_solver.json).
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fig17_comm [--json <path>]\n";
            return 2;
        }
    }
    std::vector<bench::BenchJsonRow> json;

    if (section != "wide") {
        Table table("Fig. 17 (comm study): comm-oblivious vs comm-aware "
                    "schedules (iteration time, s)");
        table.setHeader({"model", "GPUs", "oblivious+blocking (s)",
                         "oblivious+overlap (s)", "comm-aware (s)",
                         "blocking/aware"});
        sweep(table, json, "GPT (M-Shape)",
              [&](int gpus) {
                  return lowerGptMShape(gptConfigForGpus(gpus), gpus, 1,
                                        hw);
              },
              hw, n);
        sweep(table, json, "mT5 (NN-Shape)",
              [&](int gpus) {
                  return lowerMt5NnShape(mt5ConfigForGpus(gpus), gpus, 2,
                                         hw);
              },
              hw, n);
        table.print(std::cout);
        std::cout
            << "comm-aware = planned makespan of the link-scheduling "
               "search (equals its planner-fidelity simulation);\n"
               "oblivious columns execute the comm-blind plan under the "
               "same integer link model, with rendezvous or overlapped "
               "transfers.\nPaper reference: overlapping communication "
               "yields up to 1.9x end-to-end speedup on these "
               "placements.\n";
    }

    bool wide_ok = true;
    if (section != "main") {
        Table wide("Wide clusters: PerDevice TP-grouped GPT (M-Shape) "
                   "on a hetero cluster, >64 total resources");
        wide.setHeader({"GPUs", "resources", "planned (s)",
                        "simulated (s)", "planned==sim"});
        for (int gpus : {32, 64})
            wide_ok = wideRun(wide, json, hw, gpus, n) && wide_ok;
        wide.print(std::cout);
        std::cout << "resources = devices + link pseudo-devices "
                     "(commResourceDemand); every row exceeds the old "
                     "64-bit device-mask cap.\n";
    }
    if (!json_path.empty() && !bench::writeBenchJson(json_path, json)) {
        std::cerr << "bench_fig17_comm: cannot write " << json_path
                  << "\n";
        return 1;
    }
    return wide_ok ? 0 : 1;
}
