/**
 * @file
 * Fig. 17 reproduction, upgraded to a communication-overhead study: for
 * GPT (M-Shape) and mT5 (NN-Shape) across GPU counts, compare the
 * comm-oblivious search (schedules planned as if transfers were free,
 * then executed under the hardware's link model) against the comm-aware
 * search (transfers planned as link-occupying blocks, heterogeneity and
 * latency visible to the solver). The comm-aware plan's simulated
 * makespan equals its planned makespan by construction (the cross-check
 * suite asserts this); the oblivious plan pays its communication at
 * execution time, overlapped (non-blocking) or rendezvous (blocking).
 */

#include "bench/common.h"
#include "placement/comm.h"
#include "sim/runner.h"

using namespace tessel;

namespace {

/** Tighter budgets than bench::searchOptions: this bench runs four
 * GPU counts x two searches per model; expanded searches hit their
 * budgets rather than exhausting the candidate space. */
TesselOptions
budgetedOptions(const LoweredModel &m)
{
    TesselOptions opts =
        bench::searchOptions(m.memCapacityMB, m.initialMemMB);
    opts.totalBudgetSec = 15.0;
    opts.repetendBudgetSec = 1.0;
    opts.phaseBudgetSec = 5.0;
    return opts;
}

void
sweep(Table &table, const std::string &model,
      const std::function<LoweredModel(int)> &lower, const HardwareSpec &hw,
      int n)
{
    for (int gpus : {4, 8, 16, 32}) {
        const LoweredModel m = lower(gpus);
        if (!m.fits) {
            table.addRow({model, std::to_string(gpus), "x", "x", "x", "-"});
            continue;
        }
        const int stages = m.placement.numDevices();
        const ClusterModel cluster =
            clusterModelFrom(hw, stages, std::max(1, gpus / stages));

        // Comm-oblivious: the search never sees the links.
        const auto oblivious =
            tesselSearch(m.placement, budgetedOptions(m));
        // Comm-aware: transfers become schedulable link blocks. Start
        // with the runtime-faithful per-device transfers; large
        // TP-grouped lowerings fall back to per-edge granularity to fit
        // the 64-bit device mask.
        TesselOptions aware_opts = budgetedOptions(m);
        aware_opts.cluster = &cluster;
        aware_opts.edgeMB = m.edgeMB;
        if (commResourceDemand(m.placement, cluster, m.edgeMB,
                               aware_opts.comm) > 64) {
            aware_opts.comm.granularity =
                CommOptions::Granularity::PerEdge;
        }
        if (commResourceDemand(m.placement, cluster, m.edgeMB,
                               aware_opts.comm) > 64) {
            table.addRow({model, std::to_string(gpus), "-", "-",
                          "x (mask)", "-"});
            continue;
        }
        const auto aware = tesselSearch(m.placement, aware_opts);
        if (!oblivious.found || !aware.found) {
            table.addRow({model, std::to_string(gpus), "-", "-", "-", "-"});
            continue;
        }

        const int n_obl = std::max(n, oblivious.plan.minMicrobatches());
        const Schedule obl_sched = oblivious.plan.instantiate(n_obl);
        ClusterSpec overlap_cs;
        overlap_cs.memCapacityMB = m.memCapacityMB;
        overlap_cs.initialMemMB = m.initialMemMB;
        ClusterSpec blocking_cs = overlap_cs;
        blocking_cs.nonBlockingComm = false;
        const SimResult obl_overlap =
            simulateWithModel(obl_sched, m.edgeMB, cluster, overlap_cs);
        const SimResult obl_blocking =
            simulateWithModel(obl_sched, m.edgeMB, cluster, blocking_cs);

        const int n_aware = std::max(n, aware.plan.minMicrobatches());
        const double aware_ms = static_cast<double>(
            aware.plan.makespanFor(n_aware));

        table.addRow(
            {model, std::to_string(gpus),
             fmtDouble(obl_blocking.makespanMs / 1e3, 2),
             fmtDouble(obl_overlap.makespanMs / 1e3, 2),
             fmtDouble(aware_ms / 1e3, 2),
             fmtDouble(obl_blocking.makespanMs /
                           std::max(aware_ms, 1e-9),
                       2) +
                 "x"});
    }
}

} // namespace

int
main()
{
    HardwareSpec hw;
    const int n = 32;

    Table table("Fig. 17 (comm study): comm-oblivious vs comm-aware "
                "schedules (iteration time, s)");
    table.setHeader({"model", "GPUs", "oblivious+blocking (s)",
                     "oblivious+overlap (s)", "comm-aware (s)",
                     "blocking/aware"});
    sweep(table, "GPT (M-Shape)",
          [&](int gpus) {
              return lowerGptMShape(gptConfigForGpus(gpus), gpus, 1, hw);
          },
          hw, n);
    sweep(table, "mT5 (NN-Shape)",
          [&](int gpus) {
              return lowerMt5NnShape(mt5ConfigForGpus(gpus), gpus, 2, hw);
          },
          hw, n);
    table.print(std::cout);
    std::cout
        << "comm-aware = planned makespan of the link-scheduling search "
           "(equals its planner-fidelity simulation);\n"
           "oblivious columns execute the comm-blind plan under the same "
           "integer link model, with rendezvous or overlapped "
           "transfers.\nPaper reference: overlapping communication "
           "yields up to 1.9x end-to-end speedup on these placements.\n";
    return 0;
}
