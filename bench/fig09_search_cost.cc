/**
 * @file
 * Fig. 9 reproduction: cost of the time-optimal (TO) search normalized
 * by Tessel's search time, for training and inference variants of the
 * three advanced placements, at TO micro-batch counts 2/4/6. TO runs
 * are wall-capped; capped cells report a lower bound on the ratio
 * (the paper marks one cell as exceeding 10000x).
 *
 * Also reports the parallel-sweep speedup: Tessel's search run with
 * TESSEL_THREADS workers (default: all hardware threads) against the
 * serial numThreads=1 path. Both runs return the identical plan; the
 * speedup column is wall-clock only.
 */

#include <cstdlib>

#include "bench/common.h"
#include "solver/from_ir.h"
#include "support/logging.h"
#include "support/threadpool.h"

using namespace tessel;

namespace {

int
benchThreads()
{
    if (const char *env = std::getenv("TESSEL_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return ThreadPool::hardwareThreads();
}

void
sweep(Table &table, const std::string &label, const Placement &placement)
{
    const int threads = benchThreads();

    TesselOptions serial_opts = bench::searchOptions();
    serial_opts.numThreads = 1;
    Stopwatch serial_watch;
    const auto tessel = tesselSearch(placement, serial_opts);
    const double serial_sec = std::max(serial_watch.seconds(), 1e-4);

    TesselOptions parallel_opts = bench::searchOptions();
    parallel_opts.numThreads = threads;
    Stopwatch parallel_watch;
    const auto par = tesselSearch(placement, parallel_opts);
    const double parallel_sec = std::max(parallel_watch.seconds(), 1e-4);
    if (par.found != tessel.found ||
        (par.found && par.period != tessel.period)) {
        warn("parallel sweep diverged from serial on ", label);
    }

    std::vector<std::string> row{label, fmtDouble(serial_sec, 3),
                                 fmtDouble(parallel_sec, 3),
                                 fmtDouble(serial_sec / parallel_sec, 2) +
                                     "x"};
    for (int nmb : {2, 4, 6}) {
        Problem prob(placement, nmb);
        SolverOptions opts;
        opts.timeBudgetSec = 20.0;
        Stopwatch to_watch;
        const ToBaselineResult to = solveTimeOptimal(prob, opts);
        const double to_sec = to_watch.seconds();
        const double ratio = to_sec / serial_sec;
        row.push_back((to.result.stats.budgetExhausted ? ">" : "") +
                      fmtDouble(ratio, 1) + "x");
    }
    row.push_back(tessel.found ? std::to_string(tessel.period) : "-");
    table.addRow(row);
}

std::vector<std::string>
header()
{
    return {"placement", "tessel 1t (s)",
            "tessel " + std::to_string(benchThreads()) + "t (s)",
            "speedup",  "TO nmb=2",
            "TO nmb=4", "TO nmb=6",
            "period"};
}

} // namespace

int
main()
{
    Table train("Fig. 9(a): TO search cost relative to Tessel "
                "(training)");
    train.setHeader(header());
    sweep(train, "GPT (M-Shape)", makeMShape(4));
    sweep(train, "mT5 (NN-Shape)", makeNnShape(4));
    sweep(train, "Flava (K-Shape)", makeKShape(4));
    train.print(std::cout);

    Table infer("Fig. 9(b): TO search cost relative to Tessel "
                "(inference)");
    infer.setHeader(header());
    sweep(infer, "GPT (M-Shape)", forwardOnly(makeMShape(4)));
    sweep(infer, "mT5 (NN-Shape)", forwardOnly(makeNnShape(4)));
    sweep(infer, "Flava (K-Shape)", forwardOnly(makeKShape(4)));
    infer.print(std::cout);

    std::cout << "Paper reference: TO costs grow to 10-30x (training) "
                 "and beyond 10000x (one inference cell) of Tessel's "
                 "search time as nmb grows.\n"
                 "Speedup column: serial (numThreads=1) vs "
              << benchThreads()
              << "-thread candidate sweep (set TESSEL_THREADS to "
                 "override); both return the identical plan.\n";
    return 0;
}
