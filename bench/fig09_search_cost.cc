/**
 * @file
 * Fig. 9 reproduction: cost of the time-optimal (TO) search normalized
 * by Tessel's search time, for training and inference variants of the
 * three advanced placements, at TO micro-batch counts 2/4/6. TO runs
 * are wall-capped; capped cells report a lower bound on the ratio
 * (the paper marks one cell as exceeding 10000x).
 */

#include "bench/common.h"
#include "solver/from_ir.h"

using namespace tessel;

namespace {

void
sweep(Table &table, const std::string &label, const Placement &placement)
{
    Stopwatch tessel_watch;
    const auto tessel = tesselSearch(placement, bench::searchOptions());
    const double tessel_sec = std::max(tessel_watch.seconds(), 1e-4);

    std::vector<std::string> row{label, fmtDouble(tessel_sec, 3)};
    for (int nmb : {2, 4, 6}) {
        Problem prob(placement, nmb);
        SolverOptions opts;
        opts.timeBudgetSec = 20.0;
        Stopwatch to_watch;
        const ToBaselineResult to = solveTimeOptimal(prob, opts);
        const double to_sec = to_watch.seconds();
        const double ratio = to_sec / tessel_sec;
        row.push_back((to.result.stats.budgetExhausted ? ">" : "") +
                      fmtDouble(ratio, 1) + "x");
    }
    row.push_back(tessel.found ? std::to_string(tessel.period) : "-");
    table.addRow(row);
}

} // namespace

int
main()
{
    Table train("Fig. 9(a): TO search cost relative to Tessel "
                "(training)");
    train.setHeader({"placement", "tessel (s)", "TO nmb=2", "TO nmb=4",
                     "TO nmb=6", "period"});
    sweep(train, "GPT (M-Shape)", makeMShape(4));
    sweep(train, "mT5 (NN-Shape)", makeNnShape(4));
    sweep(train, "Flava (K-Shape)", makeKShape(4));
    train.print(std::cout);

    Table infer("Fig. 9(b): TO search cost relative to Tessel "
                "(inference)");
    infer.setHeader({"placement", "tessel (s)", "TO nmb=2", "TO nmb=4",
                     "TO nmb=6", "period"});
    sweep(infer, "GPT (M-Shape)", forwardOnly(makeMShape(4)));
    sweep(infer, "mT5 (NN-Shape)", forwardOnly(makeNnShape(4)));
    sweep(infer, "Flava (K-Shape)", forwardOnly(makeKShape(4)));
    infer.print(std::cout);

    std::cout << "Paper reference: TO costs grow to 10-30x (training) "
                 "and beyond 10000x (one inference cell) of Tessel's "
                 "search time as nmb grows.\n";
    return 0;
}
