/**
 * @file
 * Plan-store cold-vs-warm study: answer the reference-shape query batch
 * once with an empty cache (every query is a full schedule search) and
 * once more through a fresh service sharing the populated cache
 * directory (every query is a verified disk hit). Reports per-tier wall
 * times, the cold/warm speedup, and certifies that the warm batch
 * returned bit-identical plans (equal resultPlanDigest per query).
 *
 * Exits nonzero when the warm batch is not answered entirely from the
 * cache or any plan differs, so CI can run this as the plan-store
 * regression smoke test. The >= 10x speedup expectation is reported and
 * enforced via TESSEL_SERVICE_MIN_SPEEDUP (default 10; set 0 to only
 * report, e.g. on wildly loaded machines).
 *
 * Env knobs:
 *   TESSEL_SERVICE_BENCH_DEVICES    devices per shape (default 4)
 *   TESSEL_SERVICE_BENCH_BUDGET_SEC per-query budget (default 10)
 *   TESSEL_SERVICE_MIN_SPEEDUP      minimum cold/warm ratio (default 10)
 */

#include <cstdlib>
#include <iostream>

#include "service/service.h"
#include "support/io.h"
#include "support/table.h"

using namespace tessel;

namespace {

double
envDouble(const char *name, double fallback)
{
    if (const char *s = std::getenv(name)) {
        const double v = std::atof(s);
        if (v >= 0.0)
            return v;
    }
    return fallback;
}

} // namespace

int
main()
{
    const int devices = static_cast<int>(
        envDouble("TESSEL_SERVICE_BENCH_DEVICES", 4));
    const double budget =
        envDouble("TESSEL_SERVICE_BENCH_BUDGET_SEC", 10.0);
    const double min_speedup =
        envDouble("TESSEL_SERVICE_MIN_SPEEDUP", 10.0);

    std::string dir;
    if (!makeTempDir("tessel-service-bench-", &dir)) {
        std::cerr << "cannot create temp cache dir\n";
        return 1;
    }

    const std::vector<PlanQuery> batch =
        referenceShapeQueries(devices, /*include_hetero=*/true, budget);

    ServiceOptions opts;
    opts.cacheDir = dir;

    PlanningService cold_service(opts);
    const BatchReport cold = cold_service.runBatch(batch);

    // Fresh service, same directory: the memory tier starts empty, so
    // every answer is a disk read + decode + oracle verification.
    PlanningService warm_service(opts);
    const BatchReport warm = warm_service.runBatch(batch);

    Table table("Plan store: cold search vs warm cache "
                "(reference shapes, " +
                std::to_string(devices) + " devices)");
    table.setHeader({"query", "cold (ms)", "warm (ms)", "warm source",
                     "plan identical"});
    bool all_identical = true;
    for (size_t q = 0; q < batch.size(); ++q) {
        const bool same =
            cold.queries[q].planHash == warm.queries[q].planHash;
        all_identical = all_identical && same;
        table.addRow({batch[q].label,
                      fmtDouble(cold.queries[q].wallSec * 1e3, 2),
                      fmtDouble(warm.queries[q].wallSec * 1e3, 3),
                      warm.queries[q].source, same ? "yes" : "NO"});
    }
    table.print(std::cout);

    const double speedup =
        warm.wallSec > 0.0 ? cold.wallSec / warm.wallSec : 0.0;
    std::cout << "cold batch " << fmtDouble(cold.wallSec, 3)
              << " s (all searched), warm batch "
              << fmtDouble(warm.wallSec, 4) << " s (verified disk hits): "
              << fmtDouble(speedup, 1) << "x\n"
              << "warm hit rate " << fmtPercent(warm.hitRate())
              << ", verify failures " << warm.cacheStats.verifyFailures
              << ", cache dir " << dir << "\n";

    bool ok = all_identical && warm.hitRate() == 1.0 &&
              warm.cacheStats.verifyFailures == 0;
    if (!ok)
        std::cout << "FAIL: warm batch not a bit-identical full cache "
                     "hit\n";
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::cout << "FAIL: speedup " << fmtDouble(speedup, 1)
                  << "x below required " << fmtDouble(min_speedup, 0)
                  << "x\n";
        ok = false;
    }
    return ok ? 0 : 1;
}
