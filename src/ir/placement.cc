#include "ir/placement.h"

#include <algorithm>

#include "support/logging.h"

namespace tessel {

Placement::Placement(std::string name, int num_devices,
                     std::vector<BlockSpec> blocks)
    : name_(std::move(name)), numDevices_(num_devices),
      blocks_(std::move(blocks))
{
    validate();
    buildDerived();
}

void
Placement::validate() const
{
    fatal_if(numDevices_ <= 0, "placement '", name_,
             "': device count must be positive");
    fatal_if(blocks_.empty(), "placement '", name_, "': no blocks");
    for (size_t i = 0; i < blocks_.size(); ++i) {
        const BlockSpec &b = blocks_[i];
        fatal_if(b.devices.empty(), "placement '", name_, "': block '",
                 b.name, "' has no devices");
        fatal_if(b.devices.anyAtOrAbove(numDevices_), "placement '", name_,
                 "': block '", b.name, "' uses device >= ", numDevices_);
        fatal_if(b.span <= 0, "placement '", name_, "': block '", b.name,
                 "' has non-positive span");
        for (int dep : b.deps) {
            fatal_if(dep < 0 || dep >= static_cast<int>(blocks_.size()),
                     "placement '", name_, "': block '", b.name,
                     "' has out-of-range dependency ", dep);
            fatal_if(dep == static_cast<int>(i), "placement '", name_,
                     "': block '", b.name, "' depends on itself");
        }
    }
}

void
Placement::buildDerived()
{
    const int k = numBlocks();

    succs_.assign(k, {});
    std::vector<int> indeg(k, 0);
    for (int i = 0; i < k; ++i) {
        for (int dep : blocks_[i].deps) {
            succs_[dep].push_back(i);
            ++indeg[i];
        }
    }

    // Kahn topological sort; also detects dependency cycles.
    topo_.clear();
    std::vector<int> ready;
    for (int i = 0; i < k; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        int i = ready.back();
        ready.pop_back();
        topo_.push_back(i);
        for (int s : succs_[i])
            if (--indeg[s] == 0)
                ready.push_back(s);
    }
    fatal_if(static_cast<int>(topo_.size()) != k, "placement '", name_,
             "': dependency graph has a cycle");

    onDevice_.assign(numDevices_, {});
    for (int i = 0; i < k; ++i)
        for (DeviceId d : blocks_[i].devices)
            onDevice_[d].push_back(i);
}

const std::vector<int> &
Placement::blocksOnDevice(DeviceId d) const
{
    panic_if(d < 0 || d >= numDevices_, "device out of range: ", d);
    return onDevice_[d];
}

Time
Placement::workOnDevice(DeviceId d) const
{
    Time total = 0;
    for (int i : blocksOnDevice(d))
        total += blocks_[i].span;
    return total;
}

Time
Placement::perMicrobatchLowerBound() const
{
    Time best = 0;
    for (DeviceId d = 0; d < numDevices_; ++d)
        best = std::max(best, workOnDevice(d));
    return best;
}

Time
Placement::criticalPath() const
{
    std::vector<Time> finish(numBlocks(), 0);
    Time best = 0;
    for (int i : topo_) {
        Time start = 0;
        for (int dep : blocks_[i].deps)
            start = std::max(start, finish[dep]);
        finish[i] = start + blocks_[i].span;
        best = std::max(best, finish[i]);
    }
    return best;
}

Time
Placement::totalWork() const
{
    Time total = 0;
    for (const BlockSpec &b : blocks_)
        total += b.span;
    return total;
}

Mem
Placement::netMemoryOnDevice(DeviceId d) const
{
    Mem total = 0;
    for (int i : blocksOnDevice(d))
        total += blocks_[i].memory;
    return total;
}

} // namespace tessel
