/**
 * @file
 * ASCII Gantt-chart rendering of schedules, mirroring the paper's figures:
 * one row per device, one column per time unit, each cell showing the
 * micro-batch index (forward blocks as digits, backward blocks bracketed).
 */

#ifndef TESSEL_IR_GANTT_H
#define TESSEL_IR_GANTT_H

#include <string>

#include "ir/schedule.h"

namespace tessel {

/** Options controlling Gantt rendering. */
struct GanttOptions
{
    /** Truncate the chart after this many time units (0 = no limit). */
    Time maxTime = 0;
    /** Mark the [repetendBegin, repetendEnd) window with '|' bars. */
    Time repetendBegin = -1;
    Time repetendEnd = -1;
};

/**
 * Render @p schedule as an ASCII chart.
 *
 * Forward blocks print the micro-batch index (mod 10), backward blocks
 * print the index wrapped in '*', idle slots print '.'.
 */
std::string renderGantt(const Schedule &schedule,
                        const GanttOptions &opts = {});

} // namespace tessel

#endif // TESSEL_IR_GANTT_H
