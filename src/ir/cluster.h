/**
 * @file
 * Heterogeneous cluster model consumed by the schedule search: per-device
 * speed factors plus a latency/bandwidth link model per device pair. The
 * default-constructed model is *trivial* (uniform speed, free links) and
 * is guaranteed to leave every search path bit-identical to the
 * homogeneous code; a non-trivial model turns cross-device dependency
 * edges into explicit communication blocks on link pseudo-devices (see
 * placement/comm.h) and scales block spans by the slowest participating
 * device.
 */

#ifndef TESSEL_IR_CLUSTER_H
#define TESSEL_IR_CLUSTER_H

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "ir/types.h"

namespace tessel {

/** Cost parameters of one device-pair link (planner time units = ms). */
struct LinkParams
{
    /** Fixed per-transfer cost; charged even for zero-byte tensors. */
    double latency = 0.0;
    /** Inverse bandwidth: time units per MB transferred. */
    double timePerMB = 0.0;

    /** @return true when transfers over this link cost nothing. */
    bool
    free() const
    {
        return latency <= 0.0 && timePerMB <= 0.0;
    }
};

/**
 * Per-device speed factors and a per-pair link model.
 *
 * Speed factors are span multipliers (1.0 = reference device, 2.0 = a
 * device running at half the reference throughput). Links are keyed by
 * the *unordered* device pair: the transfer occupies a shared medium, so
 * the planner serializes transfers of the same pair on one link
 * pseudo-device regardless of direction.
 */
struct ClusterModel
{
    /** Per-device span multiplier; empty = uniform 1.0. */
    std::vector<double> speedFactor;
    /** Link used by pairs without an explicit override. */
    LinkParams defaultLink;
    /** Per-pair overrides, keyed by (min(a,b), max(a,b)). */
    std::map<std::pair<DeviceId, DeviceId>, LinkParams> linkOverride;

    /** @return the span multiplier of device @p d (1.0 past the vector). */
    double
    speedOf(DeviceId d) const
    {
        if (d < 0 || d >= static_cast<DeviceId>(speedFactor.size()))
            return 1.0;
        return speedFactor[d];
    }

    /** @return link parameters for the pair (a, b), order-insensitive. */
    const LinkParams &
    link(DeviceId a, DeviceId b) const
    {
        const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        const auto it = linkOverride.find(key);
        return it == linkOverride.end() ? defaultLink : it->second;
    }

    /**
     * Integer span of transferring @p size_mb MB between @p a and @p b.
     *
     * Rounds *up* so every transfer with a nonzero cost occupies at least
     * one planner time unit (a transfer the planner cannot see cannot be
     * scheduled around); a free link costs exactly 0.
     */
    Time
    transferSpan(DeviceId a, DeviceId b, double size_mb) const
    {
        const LinkParams &lp = link(a, b);
        const double raw = lp.latency + size_mb * lp.timePerMB;
        if (raw <= 0.0)
            return 0;
        return static_cast<Time>(std::ceil(raw));
    }

    /**
     * Span of a block executing on @p devices, scaled by the slowest
     * participating device (tensor-parallel groups run in lockstep).
     * Rounds up; a uniform factor of 1.0 returns @p span unchanged.
     */
    Time
    scaledSpan(Time span, const DeviceMask &devices) const
    {
        double worst = 1.0;
        for (DeviceId d : devices) {
            if (d >= static_cast<DeviceId>(speedFactor.size()))
                break;
            worst = worst > speedFactor[d] ? worst : speedFactor[d];
        }
        if (worst == 1.0)
            return span;
        const Time scaled =
            static_cast<Time>(std::ceil(static_cast<double>(span) * worst));
        return scaled < 1 ? 1 : scaled;
    }

    /**
     * Model where every device pair shares @p link and devices run at
     * uniform speed — the common case when the placement's logical
     * devices are pipeline stages joined by one fabric.
     */
    static ClusterModel
    uniformLink(int num_devices, const LinkParams &link)
    {
        ClusterModel model;
        model.speedFactor.assign(num_devices > 0 ? num_devices : 0, 1.0);
        model.defaultLink = link;
        return model;
    }

    /**
     * @return true when the model cannot change any schedule over
     * @p num_devices devices: uniform unit speed and all links free.
     */
    bool
    isTrivial(int num_devices) const
    {
        for (DeviceId d = 0; d < num_devices; ++d)
            if (speedOf(d) != 1.0)
                return false;
        if (!defaultLink.free())
            return false;
        for (const auto &[pair, lp] : linkOverride) {
            if (pair.first < num_devices && pair.second < num_devices &&
                !lp.free()) {
                return false;
            }
        }
        return true;
    }
};

/**
 * An observed change to a cluster: the difference between the model a
 * plan was produced under and the cluster as it is *now*. Drives the
 * elastic-replanning path (core/search.h tesselReplan,
 * service/service.h PlanningService::replan).
 *
 * Speed and link entries carry the new *absolute* values, not ratios —
 * a monitoring agent reports "device 3 now runs at factor 2.0", and an
 * absolute delta applied twice is idempotent where a ratio would
 * compound. Keys are held in ordered maps, so two deltas touching
 * disjoint knobs compose commutatively and a delta's identity is
 * independent of insertion order.
 *
 * There is deliberately no delta-specific fingerprint: replans key
 * their store entries by fingerprintQuery() of the *applied* model
 * (applyDelta below), whose canonicalization already absorbs no-op
 * deltas (speeds re-set to 1.0, overrides equal to the default link) —
 * so "the same drifted cluster" always maps to the same entry no
 * matter which delta history produced it.
 */
struct ClusterDelta
{
    /** New absolute span multiplier per drifted device (> 0, finite). */
    std::map<DeviceId, double> speedFactor;
    /** New link parameters per drifted pair, keyed (min, max). */
    std::map<std::pair<DeviceId, DeviceId>, LinkParams> link;
    /** Devices that dropped out entirely (failure, not drift).
     * Survivors are re-indexed contiguously by applyDelta. */
    std::vector<DeviceId> removedDevices;

    /** @return true when the delta changes nothing at all. */
    bool
    empty() const
    {
        return speedFactor.empty() && link.empty() &&
               removedDevices.empty();
    }

    /** @return true when the delta removes at least one device. */
    bool
    removesDevices() const
    {
        return !removedDevices.empty();
    }
};

/**
 * The cluster after @p delta: @p base with the drifted speeds and links
 * overwritten, then the removed devices compacted out (survivor d maps
 * to d minus the number of removed devices below it; link overrides
 * touching a removed device are dropped, the rest are re-keyed; the
 * default link is unchanged). @p num_devices is the device count @p
 * base describes — needed because a trivial model stores no explicit
 * width.
 *
 * Validation is fatal (these are caller errors, not data errors):
 * indices out of [0, num_devices), non-positive or non-finite speed
 * factors, negative link parameters, duplicate removals, and removing
 * every device all abort with a message.
 */
ClusterModel applyDelta(const ClusterModel &base, const ClusterDelta &delta,
                        int num_devices);

} // namespace tessel

#endif // TESSEL_IR_CLUSTER_H
