/**
 * @file
 * Heterogeneous cluster model consumed by the schedule search: per-device
 * speed factors plus a latency/bandwidth link model per device pair. The
 * default-constructed model is *trivial* (uniform speed, free links) and
 * is guaranteed to leave every search path bit-identical to the
 * homogeneous code; a non-trivial model turns cross-device dependency
 * edges into explicit communication blocks on link pseudo-devices (see
 * placement/comm.h) and scales block spans by the slowest participating
 * device.
 */

#ifndef TESSEL_IR_CLUSTER_H
#define TESSEL_IR_CLUSTER_H

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "ir/types.h"

namespace tessel {

/** Cost parameters of one device-pair link (planner time units = ms). */
struct LinkParams
{
    /** Fixed per-transfer cost; charged even for zero-byte tensors. */
    double latency = 0.0;
    /** Inverse bandwidth: time units per MB transferred. */
    double timePerMB = 0.0;

    /** @return true when transfers over this link cost nothing. */
    bool
    free() const
    {
        return latency <= 0.0 && timePerMB <= 0.0;
    }
};

/**
 * Per-device speed factors and a per-pair link model.
 *
 * Speed factors are span multipliers (1.0 = reference device, 2.0 = a
 * device running at half the reference throughput). Links are keyed by
 * the *unordered* device pair: the transfer occupies a shared medium, so
 * the planner serializes transfers of the same pair on one link
 * pseudo-device regardless of direction.
 */
struct ClusterModel
{
    /** Per-device span multiplier; empty = uniform 1.0. */
    std::vector<double> speedFactor;
    /** Link used by pairs without an explicit override. */
    LinkParams defaultLink;
    /** Per-pair overrides, keyed by (min(a,b), max(a,b)). */
    std::map<std::pair<DeviceId, DeviceId>, LinkParams> linkOverride;

    /** @return the span multiplier of device @p d (1.0 past the vector). */
    double
    speedOf(DeviceId d) const
    {
        if (d < 0 || d >= static_cast<DeviceId>(speedFactor.size()))
            return 1.0;
        return speedFactor[d];
    }

    /** @return link parameters for the pair (a, b), order-insensitive. */
    const LinkParams &
    link(DeviceId a, DeviceId b) const
    {
        const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        const auto it = linkOverride.find(key);
        return it == linkOverride.end() ? defaultLink : it->second;
    }

    /**
     * Integer span of transferring @p size_mb MB between @p a and @p b.
     *
     * Rounds *up* so every transfer with a nonzero cost occupies at least
     * one planner time unit (a transfer the planner cannot see cannot be
     * scheduled around); a free link costs exactly 0.
     */
    Time
    transferSpan(DeviceId a, DeviceId b, double size_mb) const
    {
        const LinkParams &lp = link(a, b);
        const double raw = lp.latency + size_mb * lp.timePerMB;
        if (raw <= 0.0)
            return 0;
        return static_cast<Time>(std::ceil(raw));
    }

    /**
     * Span of a block executing on @p devices, scaled by the slowest
     * participating device (tensor-parallel groups run in lockstep).
     * Rounds up; a uniform factor of 1.0 returns @p span unchanged.
     */
    Time
    scaledSpan(Time span, const DeviceMask &devices) const
    {
        double worst = 1.0;
        for (DeviceId d : devices) {
            if (d >= static_cast<DeviceId>(speedFactor.size()))
                break;
            worst = worst > speedFactor[d] ? worst : speedFactor[d];
        }
        if (worst == 1.0)
            return span;
        const Time scaled =
            static_cast<Time>(std::ceil(static_cast<double>(span) * worst));
        return scaled < 1 ? 1 : scaled;
    }

    /**
     * Model where every device pair shares @p link and devices run at
     * uniform speed — the common case when the placement's logical
     * devices are pipeline stages joined by one fabric.
     */
    static ClusterModel
    uniformLink(int num_devices, const LinkParams &link)
    {
        ClusterModel model;
        model.speedFactor.assign(num_devices > 0 ? num_devices : 0, 1.0);
        model.defaultLink = link;
        return model;
    }

    /**
     * @return true when the model cannot change any schedule over
     * @p num_devices devices: uniform unit speed and all links free.
     */
    bool
    isTrivial(int num_devices) const
    {
        for (DeviceId d = 0; d < num_devices; ++d)
            if (speedOf(d) != 1.0)
                return false;
        if (!defaultLink.free())
            return false;
        for (const auto &[pair, lp] : linkOverride) {
            if (pair.first < num_devices && pair.second < num_devices &&
                !lp.free()) {
                return false;
            }
        }
        return true;
    }
};

} // namespace tessel

#endif // TESSEL_IR_CLUSTER_H
