/**
 * @file
 * SequenceScheduler: turns fixed per-device block orders into earliest
 * start times. This is the semi-active timing core shared by the baseline
 * schedule generators (1F1B, GPipe, Chimera, 1F1B+) and the repetend
 * expansion logic: once each device's execution order is fixed, start
 * times follow from longest paths over dependency + sequence edges.
 */

#ifndef TESSEL_IR_SEQUENCE_H
#define TESSEL_IR_SEQUENCE_H

#include <optional>
#include <vector>

#include "ir/schedule.h"

namespace tessel {

/**
 * Per-device execution orders for (a subset of) a problem's instances.
 *
 * order[d] lists instance ids in execution order on device d. A
 * tensor-parallel block must appear in the order of every device it uses.
 */
struct DeviceSequences
{
    std::vector<std::vector<int>> order;
};

/**
 * Compute earliest start times honoring dependencies and the given
 * per-device orders.
 *
 * @param problem the schedule problem.
 * @param seqs per-device instance orders covering every instance.
 * @return the timed schedule, or std::nullopt when the combined
 *         precedence graph has a cycle (i.e. the orders deadlock).
 */
std::optional<Schedule> scheduleFromSequences(const Problem &problem,
                                              const DeviceSequences &seqs);

/**
 * Extract per-device orders from an already-timed schedule.
 */
DeviceSequences sequencesOf(const Schedule &schedule);

} // namespace tessel

#endif // TESSEL_IR_SEQUENCE_H
