/**
 * @file
 * A temporal schedule: start times for every block instance of a Problem,
 * plus validation against the constraints of Eq. 1 and the performance
 * metrics (makespan, bubble rate, per-device busy/idle accounting).
 */

#ifndef TESSEL_IR_SCHEDULE_H
#define TESSEL_IR_SCHEDULE_H

#include <string>
#include <vector>

#include "ir/problem.h"

namespace tessel {

/** Result of validating a schedule against its problem constraints. */
struct ValidationResult
{
    bool ok = true;
    std::string message;

    explicit operator bool() const { return ok; }
};

/**
 * Start-time assignment for all block instances of a Problem.
 *
 * Instances not yet scheduled carry kUnscheduled. Construction takes the
 * problem by value; Problem is a small value type (the placement holds at
 * most a few dozen specs).
 */
class Schedule
{
  public:
    Schedule() = default;

    /** Create an empty (fully unscheduled) schedule for @p problem. */
    explicit Schedule(Problem problem);

    const Problem &problem() const { return problem_; }

    /** Set the start time of instance (spec, mb). */
    void setStart(BlockRef ref, Time start);

    /** @return start time of (spec, mb), or kUnscheduled. */
    Time start(BlockRef ref) const;

    /** @return finish time (start + span); panics when unscheduled. */
    Time finish(BlockRef ref) const;

    /** @return true when every instance has a start time. */
    bool complete() const;

    /** @return completion time of the last block (the objective). */
    Time makespan() const;

    /** @return earliest start among scheduled blocks (0 for empty). */
    Time earliestStart() const;

    /**
     * Validate all Eq. 1 constraints: non-negative starts, completeness,
     * per-device exclusivity, dependency ordering, and peak memory.
     */
    ValidationResult validate() const;

    /** @return total busy time of device @p d. */
    Time busyTime(DeviceId d) const;

    /**
     * Whole-run bubble rate: fraction of device time idle between time 0
     * and the makespan, averaged over devices.
     */
    double bubbleRate() const;

    /** @return peak dynamic memory usage on device @p d (incl. initial). */
    Mem peakMemory(DeviceId d) const;

    /** @return instance ids on device @p d sorted by start time. */
    std::vector<int> deviceOrder(DeviceId d) const;

    /** Shift every scheduled block by @p delta (possibly negative). */
    void shiftAll(Time delta);

    /** @return all scheduled instance ids sorted by (start, device). */
    std::vector<int> globalOrder() const;

  private:
    Problem problem_;
    std::vector<Time> starts_;
};

} // namespace tessel

#endif // TESSEL_IR_SCHEDULE_H
