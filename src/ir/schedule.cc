#include "ir/schedule.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace tessel {

Schedule::Schedule(Problem problem) : problem_(std::move(problem))
{
    starts_.assign(problem_.numInstances(), kUnscheduled);
}

void
Schedule::setStart(BlockRef ref, Time start)
{
    panic_if(ref.spec < 0 || ref.spec >= problem_.placement().numBlocks(),
             "setStart: bad spec ", ref.spec);
    panic_if(ref.mb < 0 || ref.mb >= problem_.numMicrobatches(),
             "setStart: bad micro-batch ", ref.mb);
    starts_[problem_.instanceId(ref)] = start;
}

Time
Schedule::start(BlockRef ref) const
{
    return starts_[problem_.instanceId(ref)];
}

Time
Schedule::finish(BlockRef ref) const
{
    const Time s = start(ref);
    panic_if(s == kUnscheduled, "finish() on unscheduled block");
    return s + problem_.placement().block(ref.spec).span;
}

bool
Schedule::complete() const
{
    return std::none_of(starts_.begin(), starts_.end(),
                        [](Time t) { return t == kUnscheduled; });
}

Time
Schedule::makespan() const
{
    Time last = 0;
    for (int id = 0; id < problem_.numInstances(); ++id) {
        if (starts_[id] == kUnscheduled)
            continue;
        const BlockRef ref = problem_.refOf(id);
        last = std::max(last,
                        starts_[id] + problem_.placement().block(ref.spec).span);
    }
    return last;
}

Time
Schedule::earliestStart() const
{
    Time first = 0;
    bool any = false;
    for (Time t : starts_) {
        if (t == kUnscheduled)
            continue;
        first = any ? std::min(first, t) : t;
        any = true;
    }
    return any ? first : 0;
}

std::vector<int>
Schedule::deviceOrder(DeviceId d) const
{
    std::vector<int> ids;
    const Placement &p = problem_.placement();
    for (int spec : p.blocksOnDevice(d)) {
        for (int mb = 0; mb < problem_.numMicrobatches(); ++mb) {
            const int id = problem_.instanceId({spec, mb});
            if (starts_[id] != kUnscheduled)
                ids.push_back(id);
        }
    }
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        if (starts_[a] != starts_[b])
            return starts_[a] < starts_[b];
        return a < b;
    });
    return ids;
}

std::vector<int>
Schedule::globalOrder() const
{
    std::vector<int> ids;
    for (int id = 0; id < problem_.numInstances(); ++id)
        if (starts_[id] != kUnscheduled)
            ids.push_back(id);
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        if (starts_[a] != starts_[b])
            return starts_[a] < starts_[b];
        return a < b;
    });
    return ids;
}

ValidationResult
Schedule::validate() const
{
    const Placement &p = problem_.placement();
    auto fail = [](std::string msg) {
        return ValidationResult{false, std::move(msg)};
    };

    // Completeness and non-negative starts.
    for (int id = 0; id < problem_.numInstances(); ++id) {
        const BlockRef ref = problem_.refOf(id);
        if (starts_[id] == kUnscheduled) {
            std::ostringstream os;
            os << "block " << p.block(ref.spec).name << "@" << ref.mb
               << " is unscheduled";
            return fail(os.str());
        }
        if (starts_[id] < 0) {
            std::ostringstream os;
            os << "block " << p.block(ref.spec).name << "@" << ref.mb
               << " has negative start " << starts_[id];
            return fail(os.str());
        }
    }

    // Dependency constraints (Eq. 1 item [3]), within each micro-batch.
    for (int spec = 0; spec < p.numBlocks(); ++spec) {
        for (int dep : p.block(spec).deps) {
            for (int mb = 0; mb < problem_.numMicrobatches(); ++mb) {
                const Time dep_finish = finish({dep, mb});
                const Time succ_start = start({spec, mb});
                if (dep_finish > succ_start) {
                    std::ostringstream os;
                    os << "dependency violated: " << p.block(dep).name << "@"
                       << mb << " finishes at " << dep_finish << " but "
                       << p.block(spec).name << "@" << mb << " starts at "
                       << succ_start;
                    return fail(os.str());
                }
            }
        }
    }

    // Exclusive execution (Eq. 1 item [1]) and memory (item [2]).
    for (DeviceId d = 0; d < problem_.numDevices(); ++d) {
        const std::vector<int> order = deviceOrder(d);
        Time prev_finish = 0;
        Mem used = problem_.initialMem()[d];
        Mem peak = used;
        int prev_id = -1;
        for (int id : order) {
            const BlockRef ref = problem_.refOf(id);
            const BlockSpec &b = p.block(ref.spec);
            if (starts_[id] < prev_finish) {
                std::ostringstream os;
                os << "device " << d << ": block " << b.name << "@" << ref.mb
                   << " starts at " << starts_[id] << " before previous block "
                   << (prev_id >= 0
                       ? p.block(problem_.refOf(prev_id).spec).name
                       : "?")
                   << " finishes at " << prev_finish;
                return fail(os.str());
            }
            used += b.memory;
            peak = std::max(peak, used);
            prev_finish = starts_[id] + b.span;
            prev_id = id;
        }
        if (peak > problem_.memLimit()) {
            std::ostringstream os;
            os << "device " << d << ": peak memory " << peak
               << " exceeds capacity " << problem_.memLimit();
            return fail(os.str());
        }
    }

    return ValidationResult{};
}

Time
Schedule::busyTime(DeviceId d) const
{
    Time busy = 0;
    const Placement &p = problem_.placement();
    for (int id : deviceOrder(d))
        busy += p.block(problem_.refOf(id).spec).span;
    return busy;
}

double
Schedule::bubbleRate() const
{
    const Time total = makespan();
    if (total <= 0)
        return 0.0;
    Time busy = 0;
    for (DeviceId d = 0; d < problem_.numDevices(); ++d)
        busy += busyTime(d);
    const double capacity =
        static_cast<double>(total) * problem_.numDevices();
    return 1.0 - static_cast<double>(busy) / capacity;
}

Mem
Schedule::peakMemory(DeviceId d) const
{
    const Placement &p = problem_.placement();
    Mem used = problem_.initialMem()[d];
    Mem peak = used;
    for (int id : deviceOrder(d)) {
        used += p.block(problem_.refOf(id).spec).memory;
        peak = std::max(peak, used);
    }
    return peak;
}

void
Schedule::shiftAll(Time delta)
{
    for (Time &t : starts_)
        if (t != kUnscheduled)
            t += delta;
}

} // namespace tessel
