#include "ir/cluster.h"

#include <cmath>

#include "support/logging.h"

namespace tessel {

ClusterModel
applyDelta(const ClusterModel &base, const ClusterDelta &delta,
           int num_devices)
{
    fatal_if(num_devices < 1, "applyDelta: cluster needs >= 1 device");

    ClusterModel out = base;

    for (const auto &[d, factor] : delta.speedFactor) {
        fatal_if(d < 0 || d >= num_devices, "applyDelta: speed delta for "
                 "device ", d, " outside [0, ", num_devices, ")");
        fatal_if(!std::isfinite(factor) || factor <= 0.0,
                 "applyDelta: speed factor for device ", d,
                 " must be finite and > 0, got ", factor);
        if (static_cast<DeviceId>(out.speedFactor.size()) <= d)
            out.speedFactor.resize(static_cast<size_t>(d) + 1, 1.0);
        out.speedFactor[d] = factor;
    }

    for (const auto &[pair, lp] : delta.link) {
        const DeviceId a = pair.first, b = pair.second;
        fatal_if(a < 0 || a >= num_devices || b < 0 || b >= num_devices,
                 "applyDelta: link delta (", a, ", ", b, ") outside [0, ",
                 num_devices, ")");
        fatal_if(a == b, "applyDelta: link delta needs two distinct "
                 "devices, got (", a, ", ", b, ")");
        fatal_if(!std::isfinite(lp.latency) || lp.latency < 0.0 ||
                     !std::isfinite(lp.timePerMB) || lp.timePerMB < 0.0,
                 "applyDelta: link parameters for (", a, ", ", b,
                 ") must be finite and >= 0");
        const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        out.linkOverride[key] = lp;
    }

    if (delta.removedDevices.empty())
        return out;

    std::vector<char> removed(static_cast<size_t>(num_devices), 0);
    for (DeviceId d : delta.removedDevices) {
        fatal_if(d < 0 || d >= num_devices, "applyDelta: removed device ",
                 d, " outside [0, ", num_devices, ")");
        fatal_if(removed[d], "applyDelta: device ", d, " removed twice");
        removed[d] = 1;
    }
    fatal_if(static_cast<int>(delta.removedDevices.size()) >= num_devices,
             "applyDelta: cannot remove every device");

    // Compact survivors: device d maps to d minus the removals below it,
    // so the survivor model indexes the same physical hardware the
    // degraded placement's devices name.
    std::vector<DeviceId> new_index(static_cast<size_t>(num_devices), -1);
    DeviceId next = 0;
    for (DeviceId d = 0; d < num_devices; ++d)
        if (!removed[d])
            new_index[d] = next++;

    ClusterModel survivors;
    survivors.defaultLink = out.defaultLink;
    survivors.speedFactor.reserve(static_cast<size_t>(next));
    for (DeviceId d = 0; d < num_devices; ++d)
        if (!removed[d])
            survivors.speedFactor.push_back(out.speedOf(d));
    for (const auto &[pair, lp] : out.linkOverride) {
        // Pre-existing overrides may name out-of-range devices (the
        // fingerprint canonicalizer drops those too); skip them along
        // with anything touching a removed device.
        if (pair.first < 0 || pair.first >= num_devices || pair.second < 0 ||
            pair.second >= num_devices)
            continue;
        if (removed[pair.first] || removed[pair.second])
            continue;
        const DeviceId a = new_index[pair.first];
        const DeviceId b = new_index[pair.second];
        survivors.linkOverride[a < b ? std::make_pair(a, b)
                                     : std::make_pair(b, a)] = lp;
    }
    return survivors;
}

} // namespace tessel
