#include "ir/sequence.h"

#include <algorithm>

#include "support/logging.h"

namespace tessel {

std::optional<Schedule>
scheduleFromSequences(const Problem &problem, const DeviceSequences &seqs)
{
    const Placement &p = problem.placement();
    const int num_inst = problem.numInstances();

    fatal_if(static_cast<int>(seqs.order.size()) != problem.numDevices(),
             "sequence count does not match device count");

    // Adjacency: dependency edges within micro-batches plus consecutive
    // sequence edges on every device.
    std::vector<std::vector<int>> succ(num_inst);
    std::vector<int> indeg(num_inst, 0);
    auto add_edge = [&](int from, int to) {
        succ[from].push_back(to);
        ++indeg[to];
    };

    std::vector<int> appearances(num_inst, 0);
    for (DeviceId d = 0; d < problem.numDevices(); ++d) {
        const auto &order = seqs.order[d];
        for (size_t k = 0; k < order.size(); ++k) {
            const int id = order[k];
            panic_if(id < 0 || id >= num_inst, "sequence id out of range");
            const BlockRef ref = problem.refOf(id);
            panic_if(!p.block(ref.spec).devices.test(d),
                     "block ", p.block(ref.spec).name,
                     " sequenced on foreign device ", d);
            ++appearances[id];
            if (k > 0)
                add_edge(order[k - 1], id);
        }
    }
    for (int id = 0; id < num_inst; ++id) {
        const BlockRef ref = problem.refOf(id);
        const int expected = popcountMask(p.block(ref.spec).devices);
        if (appearances[id] != expected)
            return std::nullopt; // Missing or duplicated instance.
    }
    for (int spec = 0; spec < p.numBlocks(); ++spec)
        for (int dep : p.block(spec).deps)
            for (int mb = 0; mb < problem.numMicrobatches(); ++mb)
                add_edge(problem.instanceId({dep, mb}),
                         problem.instanceId({spec, mb}));

    // Longest-path relaxation in topological order (Kahn).
    Schedule sched(problem);
    std::vector<Time> start(num_inst, 0);
    std::vector<int> ready;
    for (int id = 0; id < num_inst; ++id)
        if (indeg[id] == 0)
            ready.push_back(id);
    int processed = 0;
    while (!ready.empty()) {
        const int id = ready.back();
        ready.pop_back();
        ++processed;
        const BlockRef ref = problem.refOf(id);
        const Time fin = start[id] + p.block(ref.spec).span;
        sched.setStart(ref, start[id]);
        for (int s : succ[id]) {
            start[s] = std::max(start[s], fin);
            if (--indeg[s] == 0)
                ready.push_back(s);
        }
    }
    if (processed != num_inst)
        return std::nullopt; // Cycle: the sequences deadlock.
    return sched;
}

DeviceSequences
sequencesOf(const Schedule &schedule)
{
    DeviceSequences seqs;
    seqs.order.resize(schedule.problem().numDevices());
    for (DeviceId d = 0; d < schedule.problem().numDevices(); ++d)
        seqs.order[d] = schedule.deviceOrder(d);
    return seqs;
}

} // namespace tessel
