#include "ir/problem.h"

#include "support/logging.h"

namespace tessel {

Problem::Problem(Placement placement, int num_microbatches, Mem mem_limit)
    : placement_(std::move(placement)), n_(num_microbatches),
      memLimit_(mem_limit)
{
    fatal_if(n_ <= 0, "problem: micro-batch count must be positive");
    fatal_if(memLimit_ <= 0, "problem: memory limit must be positive");
    initialMem_.assign(placement_.numDevices(), 0);
}

void
Problem::setInitialMem(std::vector<Mem> usage)
{
    fatal_if(static_cast<int>(usage.size()) != placement_.numDevices(),
             "initial memory vector size mismatch");
    initialMem_ = std::move(usage);
}

} // namespace tessel
