/**
 * @file
 * Fundamental scalar types shared across the Tessel IR, following the
 * paper's notation (Table I): integer execution times and memory costs so
 * the encoding matches what the authors fed to the SMT solver.
 */

#ifndef TESSEL_IR_TYPES_H
#define TESSEL_IR_TYPES_H

#include <cstdint>
#include <limits>

#include "support/bits.h"

namespace tessel {

/** Integer time unit (t_B, s_B in the paper). */
using Time = int64_t;

/** Integer memory unit (m_B in the paper; negative = release). */
using Mem = int64_t;

/** Device index in [0, D). */
using DeviceId = int32_t;

/** Bitmask of devices a block runs on (tensor parallelism => >1 bit). */
using DeviceMask = uint64_t;

/** Sentinel for "not scheduled yet". */
constexpr Time kUnscheduled = -1;

/** Effectively-unlimited memory capacity. */
constexpr Mem kUnlimitedMem = std::numeric_limits<Mem>::max() / 4;

/** Kind of computation a block performs. */
enum class BlockKind {
    Forward,  ///< forward computation; usually allocates activations
    Backward, ///< backward computation; usually releases activations
    Other,    ///< e.g. optimizer step or standalone inference op
    Comm,     ///< cross-device transfer occupying a link pseudo-device
};

/** @return a one-letter tag for rendering ('F', 'B', 'O', 'C'). */
constexpr char
blockKindTag(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Forward:
        return 'F';
      case BlockKind::Backward:
        return 'B';
      case BlockKind::Comm:
        return 'C';
      default:
        return 'O';
    }
}

/** @return number of set bits in a device mask. */
constexpr int
popcountMask(DeviceMask mask)
{
    return popcount64(mask);
}

/** @return index of the lowest set bit (0 for an empty mask). */
constexpr DeviceId
lowestDevice(DeviceMask mask)
{
    return static_cast<DeviceId>(lowestBit64(mask));
}

/** @return a mask with the @p count low device bits set. */
constexpr DeviceMask
allDevices(int count)
{
    return count >= 64 ? ~DeviceMask{0} : ((DeviceMask{1} << count) - 1);
}

/** @return a mask containing only device @p d. */
constexpr DeviceMask
oneDevice(DeviceId d)
{
    return DeviceMask{1} << d;
}

} // namespace tessel

#endif // TESSEL_IR_TYPES_H
