/**
 * @file
 * Fundamental scalar types shared across the Tessel IR, following the
 * paper's notation (Table I): integer execution times and memory costs so
 * the encoding matches what the authors fed to the SMT solver.
 */

#ifndef TESSEL_IR_TYPES_H
#define TESSEL_IR_TYPES_H

#include <cstdint>
#include <limits>

#include "support/resourceset.h"

namespace tessel {

/** Integer time unit (t_B, s_B in the paper). */
using Time = int64_t;

/** Integer memory unit (m_B in the paper; negative = release). */
using Mem = int64_t;

/** Device index in [0, D). */
using DeviceId = int32_t;

/**
 * Set of devices a block runs on (tensor parallelism => >1 bit), plus —
 * after comm lowering — link pseudo-devices at indices past the real
 * device count. Width-generic: clusters of up to 64 total resources stay
 * on the inline one-word fast path, wider clusters (32+ GPUs with
 * per-device comm lowering) grow transparently past 64 bits.
 */
using DeviceMask = ResourceSet;

/** Sentinel for "not scheduled yet". */
constexpr Time kUnscheduled = -1;

/** Effectively-unlimited memory capacity. */
constexpr Mem kUnlimitedMem = std::numeric_limits<Mem>::max() / 4;

/** Kind of computation a block performs. */
enum class BlockKind {
    Forward,  ///< forward computation; usually allocates activations
    Backward, ///< backward computation; usually releases activations
    Other,    ///< e.g. optimizer step or standalone inference op
    Comm,     ///< cross-device transfer occupying a link pseudo-device
};

/** @return a one-letter tag for rendering ('F', 'B', 'O', 'C'). */
constexpr char
blockKindTag(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Forward:
        return 'F';
      case BlockKind::Backward:
        return 'B';
      case BlockKind::Comm:
        return 'C';
      default:
        return 'O';
    }
}

/** @return number of devices in a mask. */
inline int
popcountMask(const DeviceMask &mask)
{
    return mask.count();
}

/** @return index of the lowest device (0 for an empty mask). */
inline DeviceId
lowestDevice(const DeviceMask &mask)
{
    return static_cast<DeviceId>(mask.lowest());
}

/** @return a mask of exactly the @p count low devices; panics when
 * @p count is negative. No 64-resource saturation: the result always
 * represents precisely @p count bits. */
inline DeviceMask
allDevices(int count)
{
    return ResourceSet::firstN(count);
}

/** @return a mask containing only device @p d. */
inline DeviceMask
oneDevice(DeviceId d)
{
    return ResourceSet::ofBit(d);
}

} // namespace tessel

#endif // TESSEL_IR_TYPES_H
