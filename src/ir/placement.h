/**
 * @file
 * Operator placement strategy: the per-micro-batch block DAG with device
 * assignment, time, and memory costs. This is Tessel's primary input
 * (Fig. 1 of the paper shows V/X/M/K-shaped instances of this structure).
 */

#ifndef TESSEL_IR_PLACEMENT_H
#define TESSEL_IR_PLACEMENT_H

#include <string>
#include <vector>

#include "ir/types.h"

namespace tessel {

/**
 * One execution block of a single micro-batch (B_i in the paper).
 *
 * A block covers a contiguous set of model operators placed on one device
 * or on a tensor-parallel group of devices. Dependencies reference other
 * blocks of the *same* micro-batch; blocks of different micro-batches are
 * independent by construction (Eq. 2).
 */
struct BlockSpec
{
    /** Human-readable name, e.g. "f0", "embF". */
    std::string name;
    /** Forward / backward / other. */
    BlockKind kind = BlockKind::Forward;
    /** Devices executing this block (multiple => tensor parallel). */
    DeviceMask devices;
    /** Execution time t_B (> 0). */
    Time span = 1;
    /** Per-device memory delta m_B applied when the block starts. */
    Mem memory = 0;
    /** Indices of same-micro-batch blocks this block depends on. */
    std::vector<int> deps;

    /**
     * Field-wise equality, display name included (plan-store
     * round-trip exactness checks). Device masks compare canonically
     * regardless of capacity history.
     */
    bool
    operator==(const BlockSpec &other) const
    {
        return name == other.name && structurallyEquals(other);
    }

    bool operator!=(const BlockSpec &other) const { return !(*this == other); }

    /** Equality of everything the schedule search can observe — the
     * display name is cosmetic and ignored. */
    bool
    structurallyEquals(const BlockSpec &other) const
    {
        return kind == other.kind && devices == other.devices &&
               span == other.span && memory == other.memory &&
               deps == other.deps;
    }
};

/**
 * An operator placement strategy: K block specs over D devices.
 *
 * Validated invariants: K > 0, every block has at least one device below
 * numDevices(), spans are positive, and the dependency graph is acyclic.
 */
class Placement
{
  public:
    Placement() = default;

    /**
     * @param name strategy name, e.g. "V-Shape".
     * @param num_devices number of devices D.
     * @param blocks block specs; dependency indices refer into this vector.
     */
    Placement(std::string name, int num_devices,
              std::vector<BlockSpec> blocks);

    const std::string &name() const { return name_; }
    int numDevices() const { return numDevices_; }
    int numBlocks() const { return static_cast<int>(blocks_.size()); }
    const BlockSpec &block(int i) const { return blocks_[i]; }
    const std::vector<BlockSpec> &blocks() const { return blocks_; }

    /** @return spec indices in a topological order of the dependency DAG. */
    const std::vector<int> &topoOrder() const { return topo_; }

    /** @return spec indices that execute (at least partly) on device d. */
    const std::vector<int> &blocksOnDevice(DeviceId d) const;

    /** @return sum of spans of blocks on device @p d for one micro-batch. */
    Time workOnDevice(DeviceId d) const;

    /** @return max over devices of workOnDevice: the repetend lower bound
     * used by Algorithm 1's GetLowerBound. */
    Time perMicrobatchLowerBound() const;

    /** @return length of the longest dependency chain (by span). */
    Time criticalPath() const;

    /** @return sum of all block spans (serial execution time). */
    Time totalWork() const;

    /** @return net per-device memory delta of one whole micro-batch. */
    Mem netMemoryOnDevice(DeviceId d) const;

    /** @return direct successors of spec @p i in the dependency DAG. */
    const std::vector<int> &successors(int i) const { return succs_[i]; }

    /**
     * Field-wise equality: names, device count, and the block list.
     * Derived tables are functions of those, so they need no
     * comparison.
     */
    bool
    operator==(const Placement &other) const
    {
        return name_ == other.name_ && numDevices_ == other.numDevices_ &&
               blocks_ == other.blocks_;
    }

    bool
    operator!=(const Placement &other) const
    {
        return !(*this == other);
    }

    /**
     * Equality of everything the schedule search can observe: device
     * count and per-block kind/devices/span/memory/deps, ignoring the
     * placement and block display names. This is the fingerprint's
     * notion of placement identity (store/fingerprint.h), so the plan
     * store verifies loaded entries against it — a query differing only
     * in names must be answerable by the same cache entry.
     */
    bool
    structurallyEquals(const Placement &other) const
    {
        if (numDevices_ != other.numDevices_ ||
            blocks_.size() != other.blocks_.size()) {
            return false;
        }
        for (size_t i = 0; i < blocks_.size(); ++i)
            if (!blocks_[i].structurallyEquals(other.blocks_[i]))
                return false;
        return true;
    }

  private:
    void validate() const;
    void buildDerived();

    std::string name_;
    int numDevices_ = 0;
    std::vector<BlockSpec> blocks_;
    std::vector<int> topo_;
    std::vector<std::vector<int>> onDevice_;
    std::vector<std::vector<int>> succs_;
};

} // namespace tessel

#endif // TESSEL_IR_PLACEMENT_H
