#include "ir/gantt.h"

#include <algorithm>
#include <sstream>

namespace tessel {

namespace {

/** Render one block cell: width-3 representation of kind + micro-batch. */
std::string
cellText(const BlockSpec &spec, int mb)
{
    std::string idx = std::to_string(mb % 100);
    switch (spec.kind) {
      case BlockKind::Forward:
        return " " + idx + " ";
      case BlockKind::Backward:
        return "*" + idx + "*";
      default:
        return "(" + idx + ")";
    }
}

} // namespace

std::string
renderGantt(const Schedule &schedule, const GanttOptions &opts)
{
    const Problem &problem = schedule.problem();
    const Placement &p = problem.placement();
    Time horizon = schedule.makespan();
    if (opts.maxTime > 0)
        horizon = std::min(horizon, opts.maxTime);

    constexpr int cell_width = 4;
    std::ostringstream os;

    // Header: time axis (each column is one time unit).
    os << "       ";
    for (Time t = 0; t < horizon; ++t) {
        std::string label = std::to_string(t);
        label.resize(cell_width, ' ');
        os << label;
    }
    os << "\n";

    for (DeviceId d = 0; d < problem.numDevices(); ++d) {
        std::string row(static_cast<size_t>(horizon) * cell_width, '.');
        for (int id : schedule.deviceOrder(d)) {
            const BlockRef ref = problem.refOf(id);
            const BlockSpec &spec = p.block(ref.spec);
            const Time s = schedule.start(ref);
            if (s >= horizon)
                continue;
            const Time e = std::min<Time>(s + spec.span, horizon);
            // Fill the span with '=', center the label in it.
            for (Time t = s; t < e; ++t)
                for (int c = 0; c < cell_width; ++c)
                    row[t * cell_width + c] = '=';
            row[(e * cell_width) - 1] = ' ';
            const std::string text = cellText(spec, ref.mb);
            const size_t span_chars = (e - s) * cell_width - 1;
            const size_t off =
                s * cell_width + (span_chars - std::min(span_chars,
                                                        text.size())) / 2;
            for (size_t c = 0; c < text.size() && c < span_chars; ++c)
                row[off + c] = text[c];
        }
        std::string label = "dev" + std::to_string(d);
        label.resize(6, ' ');
        os << label << " " << row << "\n";
    }

    if (opts.repetendBegin >= 0 && opts.repetendEnd > opts.repetendBegin) {
        std::string marker(static_cast<size_t>(horizon) * cell_width + 7,
                           ' ');
        auto mark = [&](Time t) {
            const size_t pos = 7 + t * cell_width;
            if (pos < marker.size())
                marker[pos] = '^';
        };
        mark(opts.repetendBegin);
        if (opts.repetendEnd < horizon)
            mark(opts.repetendEnd);
        os << marker << "  (repetend window)\n";
    }
    return os.str();
}

} // namespace tessel
