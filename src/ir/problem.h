/**
 * @file
 * A schedule problem instance: a placement strategy executed over N
 * micro-batches on devices with a memory capacity (Sec. III-A, Eq. 1).
 */

#ifndef TESSEL_IR_PROBLEM_H
#define TESSEL_IR_PROBLEM_H

#include <vector>

#include "ir/placement.h"
#include "ir/types.h"

namespace tessel {

/**
 * Reference to a concrete block instance: spec index x micro-batch index.
 */
struct BlockRef
{
    int spec = -1;
    int mb = -1;

    bool
    operator==(const BlockRef &other) const
    {
        return spec == other.spec && mb == other.mb;
    }
};

/**
 * A full schedule problem: placement x micro-batch count x memory cap.
 *
 * Block instances are flattened to ids `spec * N + mb` for dense storage.
 */
class Problem
{
  public:
    Problem() = default;

    /**
     * @param placement the operator placement strategy.
     * @param num_microbatches N >= 1.
     * @param mem_limit per-device memory capacity M (kUnlimitedMem = off).
     */
    Problem(Placement placement, int num_microbatches,
            Mem mem_limit = kUnlimitedMem);

    const Placement &placement() const { return placement_; }
    int numMicrobatches() const { return n_; }
    Mem memLimit() const { return memLimit_; }
    int numDevices() const { return placement_.numDevices(); }

    /** Total number of block instances (K x N). */
    int
    numInstances() const
    {
        return placement_.numBlocks() * n_;
    }

    /** Flatten a (spec, mb) reference to a dense instance id. */
    int
    instanceId(BlockRef ref) const
    {
        return ref.spec * n_ + ref.mb;
    }

    /** Inverse of instanceId. */
    BlockRef
    refOf(int instance) const
    {
        return BlockRef{instance / n_, instance % n_};
    }

    /** Per-device memory already in use before any block runs. */
    const std::vector<Mem> &initialMem() const { return initialMem_; }

    /** Set per-device initial memory usage (e.g. parameter storage). */
    void setInitialMem(std::vector<Mem> usage);

  private:
    Placement placement_;
    int n_ = 0;
    Mem memLimit_ = kUnlimitedMem;
    std::vector<Mem> initialMem_;
};

} // namespace tessel

#endif // TESSEL_IR_PROBLEM_H
