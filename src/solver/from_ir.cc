#include "solver/from_ir.h"

#include "solver/bnb.h"
#include "support/logging.h"

namespace tessel {

SolverProblem
buildFullInstance(const Problem &problem)
{
    const Placement &p = problem.placement();
    const int n = problem.numMicrobatches();

    SolverProblem sp;
    sp.numDevices = p.numDevices();
    sp.memLimit = problem.memLimit();
    sp.initialMem = problem.initialMem();
    sp.blocks.resize(problem.numInstances());

    for (int spec = 0; spec < p.numBlocks(); ++spec) {
        const BlockSpec &b = p.block(spec);
        for (int mb = 0; mb < n; ++mb) {
            const int id = problem.instanceId({spec, mb});
            SolverBlock &sb = sp.blocks[id];
            sb.span = b.span;
            sb.devices = b.devices;
            sb.memory = b.memory;
            sb.tag = id;
            for (int dep : b.deps)
                sb.deps.push_back(problem.instanceId({dep, mb}));
            if (mb > 0)
                sb.orderAfter = problem.instanceId({spec, mb - 1});
        }
    }
    return sp;
}

std::vector<Time>
startsFromSchedule(const Problem &problem, const Schedule &schedule)
{
    panic_if(!schedule.complete(),
             "startsFromSchedule: schedule is incomplete");
    std::vector<Time> starts(problem.numInstances());
    for (int id = 0; id < problem.numInstances(); ++id)
        starts[id] = schedule.start(problem.refOf(id));
    return starts;
}

Schedule
liftSchedule(const Problem &problem, const std::vector<SolverBlock> &blocks,
             const std::vector<Time> &starts)
{
    panic_if(blocks.size() != starts.size(),
             "liftSchedule: size mismatch");
    Schedule sched(problem);
    for (size_t i = 0; i < blocks.size(); ++i) {
        const int tag = blocks[i].tag;
        panic_if(tag < 0 || tag >= problem.numInstances(),
                 "liftSchedule: bad tag ", tag);
        sched.setStart(problem.refOf(tag), starts[i]);
    }
    return sched;
}

ToBaselineResult
solveTimeOptimal(const Problem &problem, const SolverOptions &options)
{
    const SolverProblem sp = buildFullInstance(problem);
    BnbSolver solver(sp, options);
    ToBaselineResult out;
    out.result = solver.minimizeMakespan();
    if (out.result.feasible())
        out.schedule = liftSchedule(problem, sp.blocks, out.result.starts);
    return out;
}

} // namespace tessel
