/**
 * @file
 * Exact branch-and-bound scheduler over semi-active dispatch orders.
 *
 * Why this is exact: on a device, execution is exclusive, so a device's
 * memory profile is a prefix sum over its *order* of blocks, independent
 * of absolute times. Any feasible schedule, sorted by start time, yields a
 * dispatch order whose earliest-start (semi-active) timing is pointwise no
 * later than the original and keeps identical per-device orders — hence
 * identical memory feasibility. Enumerating dispatch orders therefore
 * covers an optimal schedule.
 *
 * Pruning:
 *  - workload + critical-path lower bounds against the incumbent;
 *  - dominance memo keyed on the scheduled set, comparing device
 *    availability, open dependency finish times, and partial makespan;
 *    with SolverOptions::persistentMemo the memo additionally survives
 *    across decide() rounds, reusing entries whose subtrees were proven
 *    empty at a covering deadline (see MemoEntry in bnb.cc);
 *  - Property 4.1 symmetry chains (micro-batch interchangeability).
 *
 * Hot-path mechanics: dispatchable candidates come from a ready list
 * maintained incrementally on dispatch/undo, and all per-node scratch
 * (candidate buffers, save/restore rows, dominance vectors) lives in
 * per-depth arenas (support/arena.h), so steady-state search performs
 * zero heap allocation.
 */

#ifndef TESSEL_SOLVER_BNB_H
#define TESSEL_SOLVER_BNB_H

#include <memory>

#include "solver/problem.h"

namespace tessel {

/**
 * Branch-and-bound solver for SolverProblem instances.
 *
 * A solver object is single-use per call but reusable across calls; each
 * call re-derives its internal state from the problem.
 */
class BnbSolver
{
  public:
    /**
     * @param problem instance to schedule; must stay alive during calls.
     * @param options search knobs.
     */
    explicit BnbSolver(const SolverProblem &problem,
                       SolverOptions options = {});
    ~BnbSolver();

    BnbSolver(const BnbSolver &) = delete;
    BnbSolver &operator=(const BnbSolver &) = delete;

    /** Minimize the makespan (Eq. 1 objective). */
    SolveResult minimizeMakespan();

    /**
     * Decision procedure: find any schedule with makespan <= @p deadline.
     * This mirrors the paper's use of Z3 satisfiability checks inside the
     * binary-search / lazy-search loops.
     */
    SolveResult decide(Time deadline);

    /**
     * Convenience: binary-search the optimal makespan using decide(),
     * exactly the strategy Sec. V describes for the Z3 encoding. Provided
     * for parity experiments; minimizeMakespan() is normally faster.
     * With SolverOptions::persistentMemo (the default) the dominance
     * memo carries proven-empty subtrees from round to round, so later
     * decide() rounds expand strictly fewer nodes than cold re-solves.
     */
    SolveResult binarySearchMakespan();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace tessel

#endif // TESSEL_SOLVER_BNB_H
