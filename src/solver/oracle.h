/**
 * @file
 * Differential-testing oracle for the exact solvers: a standalone
 * schedule checker, a brute-force permutation solver for tiny instances,
 * and a seeded random-instance generator. The brute force enumerates all
 * dispatch permutations with semi-active timing — the same completeness
 * argument as the branch-and-bound solver, with none of its pruning — so
 * any disagreement between the two implicates a pruning rule (bounds,
 * dominance memo, or symmetry chains).
 */

#ifndef TESSEL_SOLVER_ORACLE_H
#define TESSEL_SOLVER_ORACLE_H

#include <string>
#include <vector>

#include "solver/problem.h"
#include "support/rng.h"

namespace tessel {

/** Outcome of verifySolverSchedule: ok + a human-readable reason. */
struct OracleVerdict
{
    bool ok = true;
    std::string message;

    explicit operator bool() const { return ok; }
};

/**
 * Check @p starts against every constraint of @p problem: non-negative
 * starts, release times, per-device initial availability, dependency
 * ordering, exclusive execution on every device bit (link pseudo-devices
 * included, so this is also the link-exclusivity check), and per-device
 * peak memory over the start-time order.
 */
OracleVerdict verifySolverSchedule(const SolverProblem &problem,
                                   const std::vector<Time> &starts);

/**
 * Exact minimal makespan by exhaustive dispatch-order enumeration.
 * Refuses instances with more than @p max_blocks blocks (default 8:
 * 8! = 40320 permutations). Ignores orderAfter symmetry chains — they
 * prune equivalent schedules only, so the optimum must match.
 */
SolveResult bruteForceMinMakespan(const SolverProblem &problem,
                                  int max_blocks = 8);

/** Shape of the instances randomInstance() generates. */
struct RandomInstanceParams
{
    /** Block count range (inclusive). */
    int minBlocks = 2;
    int maxBlocks = 7;
    /** Real device count range (inclusive). */
    int minDevices = 1;
    int maxDevices = 3;
    /** Probability of a dependency edge between two eligible blocks. */
    double depProb = 0.35;
    /** Probability a block is tensor-parallel (occupies >1 device). */
    double tpProb = 0.2;
    /** Probability of a nonzero release time on a block. */
    double releaseProb = 0.25;
    /** Probability a block pair becomes an alloc/release memory pair;
     * when any pair exists a finite memory limit is drawn. */
    double memPairProb = 0.4;
    /** Probability of a nonzero per-device initial availability. */
    double initialAvailProb = 0.25;
    /** Probability of an orderAfter symmetry chain between blocks of a
     * device. */
    double orderAfterProb = 0.2;
    /** Maximum block span. */
    Time maxSpan = 5;
    /**
     * When true, some cross-device dependency edges are rewritten
     * through a zero-memory comm block on a dedicated link
     * pseudo-device, mirroring the comm-aware search's lowering.
     */
    bool withComm = false;
};

/**
 * Generate a random solver instance from @p rng. Deterministic for a
 * given generator state; instances may be memory-infeasible on purpose
 * (the differential suite compares infeasibility verdicts too).
 */
SolverProblem randomInstance(Rng &rng, const RandomInstanceParams &params);

} // namespace tessel

#endif // TESSEL_SOLVER_ORACLE_H
