#include "solver/oracle.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/logging.h"

namespace tessel {

namespace {

std::string
describe(const char *what, int block, std::ostringstream &&detail)
{
    std::ostringstream os;
    os << what << " violated at block " << block << ": " << detail.str();
    return os.str();
}

} // namespace

OracleVerdict
verifySolverSchedule(const SolverProblem &problem,
                     const std::vector<Time> &starts)
{
    const int nb = static_cast<int>(problem.blocks.size());
    const int nd = problem.numDevices;
    auto fail = [](std::string msg) {
        return OracleVerdict{false, std::move(msg)};
    };

    if (static_cast<int>(starts.size()) != nb)
        return fail("start vector size mismatch");

    // Per-block constraints: non-negative, release, initial availability.
    for (int i = 0; i < nb; ++i) {
        const SolverBlock &b = problem.blocks[i];
        if (starts[i] < 0) {
            std::ostringstream os;
            os << "start " << starts[i] << " < 0";
            return fail(describe("non-negativity", i, std::move(os)));
        }
        if (starts[i] < b.release) {
            std::ostringstream os;
            os << "start " << starts[i] << " < release " << b.release;
            return fail(describe("release time", i, std::move(os)));
        }
        if (b.devices.anyAtOrAbove(nd)) {
            std::ostringstream os;
            os << "devices " << b.devices << " exceed count " << nd;
            return fail(describe("device range", i, std::move(os)));
        }
        for (DeviceId d : b.devices) {
            const Time base = problem.initialAvail.empty()
                                  ? 0
                                  : problem.initialAvail[d];
            if (starts[i] < base) {
                std::ostringstream os;
                os << "start " << starts[i] << " < device " << d
                   << " availability " << base;
                return fail(describe("initial availability", i,
                                     std::move(os)));
            }
        }
    }

    // Dependencies.
    for (int j = 0; j < nb; ++j) {
        for (int i : problem.blocks[j].deps) {
            if (i < 0 || i >= nb)
                return fail("dependency index out of range");
            const Time fin = starts[i] + problem.blocks[i].span;
            if (starts[j] < fin) {
                std::ostringstream os;
                os << "depends on block " << i << " finishing at " << fin
                   << " but starts at " << starts[j];
                return fail(describe("dependency", j, std::move(os)));
            }
        }
    }

    // Exclusive execution per device bit (covers link pseudo-devices)
    // and per-device peak memory over the start-time order. Exclusivity
    // guarantees start times on a device are distinct, so the memory
    // prefix order is unambiguous.
    for (DeviceId d = 0; d < nd; ++d) {
        std::vector<int> on;
        for (int i = 0; i < nb; ++i)
            if (problem.blocks[i].devices.test(d))
                on.push_back(i);
        std::sort(on.begin(), on.end(), [&](int a, int b) {
            if (starts[a] != starts[b])
                return starts[a] < starts[b];
            return a < b;
        });
        Mem used = problem.initialMem.empty() ? 0 : problem.initialMem[d];
        if (used > problem.memLimit) {
            std::ostringstream os;
            os << "device " << d << " initial memory " << used
               << " exceeds limit " << problem.memLimit;
            return fail(os.str());
        }
        Time prev_finish = 0;
        int prev = -1;
        for (int i : on) {
            if (prev >= 0 && starts[i] < prev_finish) {
                std::ostringstream os;
                os << "overlaps block " << prev << " on device " << d
                   << " (previous finish " << prev_finish << ", start "
                   << starts[i] << ")";
                return fail(describe("exclusivity", i, std::move(os)));
            }
            used += problem.blocks[i].memory;
            if (used > problem.memLimit) {
                std::ostringstream os;
                os << "device " << d << " memory " << used
                   << " exceeds limit " << problem.memLimit;
                return fail(describe("memory", i, std::move(os)));
            }
            prev_finish = starts[i] + problem.blocks[i].span;
            prev = i;
        }
    }

    return OracleVerdict{};
}

SolveResult
bruteForceMinMakespan(const SolverProblem &problem, int max_blocks)
{
    const int nb = static_cast<int>(problem.blocks.size());
    const int nd = problem.numDevices;
    fatal_if(nb > max_blocks, "bruteForceMinMakespan: ", nb,
             " blocks exceed the cap of ", max_blocks);

    SolveResult res;

    // Mirror the solver's root feasibility check.
    for (DeviceId d = 0; d < nd; ++d) {
        const Mem base = problem.initialMem.empty()
                             ? 0
                             : problem.initialMem[d];
        if (base > problem.memLimit) {
            res.status = SolveStatus::Infeasible;
            return res;
        }
    }

    std::vector<int> perm(nb);
    std::iota(perm.begin(), perm.end(), 0);

    std::vector<Time> finish(nb), starts(nb);
    std::vector<char> dispatched(nb);
    std::vector<Time> avail(nd);
    std::vector<Mem> mem(nd);

    bool any = false;
    do {
        ++res.stats.nodes;
        std::fill(dispatched.begin(), dispatched.end(), 0);
        for (DeviceId d = 0; d < nd; ++d) {
            avail[d] =
                problem.initialAvail.empty() ? 0 : problem.initialAvail[d];
            mem[d] = problem.initialMem.empty() ? 0 : problem.initialMem[d];
        }
        Time makespan = 0;
        bool valid = true;
        for (int i : perm) {
            const SolverBlock &b = problem.blocks[i];
            Time est = b.release;
            for (int dep : b.deps) {
                if (!dispatched[dep]) {
                    valid = false;
                    break;
                }
                est = std::max(est, finish[dep]);
            }
            if (!valid)
                break;
            if (b.memory > 0) {
                for (DeviceId d : b.devices) {
                    if (mem[d] + b.memory > problem.memLimit) {
                        valid = false;
                        break;
                    }
                }
                if (!valid)
                    break;
            }
            for (DeviceId d : b.devices)
                est = std::max(est, avail[d]);
            starts[i] = est;
            finish[i] = est + b.span;
            dispatched[i] = 1;
            for (DeviceId d : b.devices) {
                avail[d] = finish[i];
                mem[d] += b.memory;
            }
            makespan = std::max(makespan, finish[i]);
        }
        if (valid && (!any || makespan < res.makespan)) {
            any = true;
            res.makespan = makespan;
            res.starts = starts;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));

    res.status = any ? SolveStatus::Optimal : SolveStatus::Infeasible;
    return res;
}

SolverProblem
randomInstance(Rng &rng, const RandomInstanceParams &params)
{
    fatal_if(params.minBlocks < 1 || params.maxBlocks < params.minBlocks ||
                 params.minDevices < 1 ||
                 params.maxDevices < params.minDevices,
             "randomInstance: bad params");

    SolverProblem sp;
    const int nd =
        static_cast<int>(rng.range(params.minDevices, params.maxDevices));
    const int nb =
        static_cast<int>(rng.range(params.minBlocks, params.maxBlocks));
    sp.numDevices = nd;

    for (int i = 0; i < nb; ++i) {
        SolverBlock b;
        b.span = rng.range(1, params.maxSpan);
        b.devices = oneDevice(static_cast<DeviceId>(rng.range(0, nd - 1)));
        if (nd > 1 && rng.chance(params.tpProb))
            b.devices.set(static_cast<DeviceId>(rng.range(0, nd - 1)));
        if (rng.chance(params.releaseProb))
            b.release = rng.range(0, 4);
        for (int j = 0; j < i; ++j)
            if (rng.chance(params.depProb))
                b.deps.push_back(j);
        b.tag = i;
        sp.blocks.push_back(std::move(b));
    }

    // Alloc/release memory pairs with a dependency from the allocation
    // to the release, plus a finite limit most of the time (instances
    // that are memory-infeasible are valuable differential cases too).
    bool has_memory = false;
    if (nb >= 2 && rng.chance(params.memPairProb)) {
        const int a = static_cast<int>(rng.range(0, nb - 2));
        const int r = static_cast<int>(rng.range(a + 1, nb - 1));
        const Mem m = rng.range(1, 3);
        sp.blocks[a].memory += m;
        sp.blocks[r].memory -= m;
        auto &rdeps = sp.blocks[r].deps;
        if (std::find(rdeps.begin(), rdeps.end(), a) == rdeps.end())
            rdeps.push_back(a);
        has_memory = true;
    }
    if (has_memory && rng.chance(0.7)) {
        sp.memLimit = rng.range(1, 6);
        if (rng.chance(0.5)) {
            sp.initialMem.assign(nd, 0);
            for (DeviceId d = 0; d < nd; ++d)
                sp.initialMem[d] = rng.range(0, 2);
        }
    }

    for (DeviceId d = 0; d < nd; ++d) {
        if (rng.chance(params.initialAvailProb)) {
            if (sp.initialAvail.empty())
                sp.initialAvail.assign(nd, 0);
            sp.initialAvail[d] = rng.range(0, 3);
        }
    }

    // Comm lowering: reroute some cross-device dependency edges through
    // a zero-memory transfer block on a fresh link pseudo-device,
    // exactly the shape expandWithComm() produces.
    if (params.withComm) {
        const int base = static_cast<int>(sp.blocks.size());
        for (int j = 0; j < base; ++j) {
            if (static_cast<int>(sp.blocks.size()) >= params.maxBlocks)
                break;
            for (int idx = 0;
                 idx < static_cast<int>(sp.blocks[j].deps.size()); ++idx) {
                const int i = sp.blocks[j].deps[idx];
                if (i >= base ||
                    sp.blocks[i].devices == sp.blocks[j].devices ||
                    !rng.chance(0.5)) {
                    continue;
                }
                SolverBlock c;
                c.span = rng.range(1, 3);
                c.devices = oneDevice(static_cast<DeviceId>(sp.numDevices));
                ++sp.numDevices;
                c.deps = {i};
                c.tag = static_cast<int>(sp.blocks.size());
                sp.blocks[j].deps.push_back(
                    static_cast<int>(sp.blocks.size()));
                sp.blocks.push_back(std::move(c));
                break; // At most one comm block per consumer.
            }
        }
        if (!sp.initialMem.empty())
            sp.initialMem.resize(sp.numDevices, 0);
        if (!sp.initialAvail.empty())
            sp.initialAvail.resize(sp.numDevices, 0);
    }

    // Property 4.1-style symmetry chain: clone the final block and
    // require the clone to dispatch after the original. This runs
    // *last* so no later rewrite (comm lowering above) can give the
    // original extra dependencies — the pair must stay interchangeable
    // (identical fields, clone without consumers) or the chain would
    // unsoundly prune real schedules, which is exactly the class of bug
    // the first run of this suite caught.
    if (static_cast<int>(sp.blocks.size()) < params.maxBlocks &&
        rng.chance(params.orderAfterProb)) {
        SolverBlock clone = sp.blocks.back();
        clone.orderAfter = static_cast<int>(sp.blocks.size()) - 1;
        clone.tag = static_cast<int>(sp.blocks.size());
        sp.blocks.push_back(std::move(clone));
    }

    return sp;
}

} // namespace tessel
