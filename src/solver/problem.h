/**
 * @file
 * Generic block-scheduling instance consumed by the exact solver.
 *
 * This is the substitution for the paper's Z3 encoding: block start times
 * are the decision variables; exclusivity, dependency, release-time, and
 * peak-memory constraints match Eq. 1. Tessel's repetend, warmup, and
 * cooldown searches all lower onto this structure, as does the
 * time-optimal (TO) baseline of Figs. 3 and 9.
 */

#ifndef TESSEL_SOLVER_PROBLEM_H
#define TESSEL_SOLVER_PROBLEM_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "ir/types.h"
#include "support/cancel.h"

namespace tessel {

/** One schedulable block in a solver instance. */
struct SolverBlock
{
    /** Execution time (> 0). */
    Time span = 1;
    /** Devices occupied while executing (>= 1 bit). */
    DeviceMask devices;
    /** Per-device memory delta applied at start. */
    Mem memory = 0;
    /** Indices of blocks that must finish before this one starts. */
    std::vector<int> deps;
    /** Earliest permitted start time (stitching with earlier phases). */
    Time release = 0;
    /**
     * Symmetry chain (Property 4.1): this block may only be dispatched
     * after block `orderAfter` has been dispatched. Used to deduplicate
     * schedules that differ only by permuting equivalent micro-batches.
     * -1 disables.
     */
    int orderAfter = -1;
    /** Caller-defined tag for mapping results back (e.g. instance id). */
    int tag = -1;
};

/** A complete solver instance. */
struct SolverProblem
{
    int numDevices = 1;
    /** Per-device memory capacity. */
    Mem memLimit = kUnlimitedMem;
    /** Per-device memory already allocated at time 0 (empty = zeros). */
    std::vector<Mem> initialMem;
    /** Per-device earliest availability (empty = zeros). */
    std::vector<Time> initialAvail;
    std::vector<SolverBlock> blocks;
};

/** Outcome classification of a solve. */
enum class SolveStatus {
    Optimal,    ///< best possible schedule found and proven
    Feasible,   ///< a schedule was found but the budget cut the proof
    Infeasible, ///< proven that no schedule satisfies the constraints
    Unknown,    ///< budget exhausted before any schedule was found
};

/** Search-effort counters reported with every solve. */
struct SolveStats
{
    uint64_t nodes = 0;
    double seconds = 0.0;
    bool budgetExhausted = false;
    bool cancelled = false; ///< a CancelToken stopped the solve
    uint64_t memoHits = 0;
    uint64_t boundPrunes = 0;
    /** Bellman-Ford relaxation passes (PeriodSearch binary-mode
     *  feasibility probes); warm-started solves need strictly fewer of
     *  these than cold ones on the same instance. Zero in Howard mode,
     *  whose sweeps count under `valueSweeps` instead. */
    uint64_t relaxations = 0;
    /** Howard-mode policy-evaluation sweeps (McrMode::Howard); the
     *  probe-equivalent of `relaxations`, kept separate so the two
     *  modes' effort stays individually comparable. */
    uint64_t valueSweeps = 0;
    /** Howard-mode policy improvements: period raises driven by a
     *  violated policy cycle's exact ratio ceiling. */
    uint64_t policyImprovements = 0;
    /** Insertions into the incrementally maintained ready list (BnB);
     *  proportional to dependency-edge work, not node count x blocks. */
    uint64_t readyPushes = 0;
    /** Dominance prunes served by memo entries proven exhausted in an
     *  earlier decide() round on the same solver (persistent-memo
     *  reuse inside binarySearchMakespan). */
    uint64_t memoReused = 0;
    /** Bound prunes taken while the solve's cutoff was still inherited
     *  from a warm-start seed (RepetendSolveOptions::cutoffFromSeed)
     *  rather than from a candidate the enclosing search accepted
     *  itself — the seed's share of the pruning work. */
    uint64_t seedPrunes = 0;

    /**
     * Fold @p other into this accumulator. Commutative and associative,
     * so per-worker counters can be merged in any order after a
     * parallel sweep.
     */
    SolveStats &
    merge(const SolveStats &other)
    {
        nodes += other.nodes;
        seconds += other.seconds;
        budgetExhausted |= other.budgetExhausted;
        cancelled |= other.cancelled;
        memoHits += other.memoHits;
        boundPrunes += other.boundPrunes;
        relaxations += other.relaxations;
        valueSweeps += other.valueSweeps;
        policyImprovements += other.policyImprovements;
        readyPushes += other.readyPushes;
        memoReused += other.memoReused;
        seedPrunes += other.seedPrunes;
        return *this;
    }
};

/** Result of a solve: status, objective, and per-block start times. */
struct SolveResult
{
    SolveStatus status = SolveStatus::Unknown;
    Time makespan = -1;
    std::vector<Time> starts;
    SolveStats stats;

    bool
    feasible() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }
};

/** Knobs controlling the branch-and-bound search. */
struct SolverOptions
{
    /** Wall-clock budget in seconds (<= 0: unlimited). */
    double timeBudgetSec = 0.0;
    /** Node expansion cap (0: unlimited). */
    uint64_t nodeLimit = 0;
    /** Enable the dominance memo (ablation knob for the solver bench). */
    bool useDominance = true;
    /** Honor SolverBlock::orderAfter symmetry chains. */
    bool useSymmetry = true;
    /** Maximum number of memo entries kept before insertion stops. */
    size_t memoCap = size_t{1} << 22;
    /**
     * Keep the dominance memo alive across decide() calls on the same
     * solver (binarySearchMakespan's rounds). Sound because an entry is
     * only reused across rounds once its subtree was exhaustively
     * explored under some deadline L without finding a schedule — a
     * proof that no completion with makespan <= L exists below it,
     * which prunes any later round whose deadline is <= L. Entries cut
     * short by a budget trip or an early SAT stop never earn a proof
     * level and cannot prune later rounds. false clears the memo every
     * round (the cold baseline for the counter-regression tests).
     */
    bool persistentMemo = true;
    /** Cooperative cancellation, polled alongside the time budget. A
     *  cancelled solve reports stats.cancelled and never claims
     *  Infeasible. */
    CancelToken cancel;
    /**
     * Live external incumbent (e.g. the parallel search's shared best
     * period): states are pruned unless they can *strictly* beat its
     * current value, re-read on every bound check instead of being
     * frozen at solve start. nullptr disables.
     */
    const std::atomic<Time> *liveCutoff = nullptr;
    /**
     * Per-block dispatch priority for decide() first dives, indexed by
     * block position in SolverProblem::blocks: candidates sort by
     * ascending priority before the usual (est, tail, index) keys, so
     * the first leaf reached follows the suggested order. Consulted in
     * decide mode ONLY — a decide() verdict is an order-independent
     * boolean, while minimize-mode incumbents depend on expansion order
     * and would stop being bit-identical across seeded/unseeded runs.
     * Ignored when the size does not match; nullptr disables.
     */
    const std::vector<Time> *seedPriority = nullptr;
};

} // namespace tessel

#endif // TESSEL_SOLVER_PROBLEM_H
