#include "solver/bnb.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/arena.h"
#include "support/bitset.h"
#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

namespace {

/** Per-key cap on dominance entries; beyond this, insertion stops. */
constexpr size_t kMaxEntriesPerKey = 24;

} // namespace

struct BnbSolver::Impl
{
    const SolverProblem &prob;
    SolverOptions opts;
    int nb = 0;
    int nd = 0;

    // Static derived data.
    std::vector<std::vector<int>> succs;
    std::vector<Time> tail; // Longest dependency path incl. own span.
    std::vector<int> topo;
    // Per-block device indices, CSR layout: block i occupies devices
    // devList[devBegin[i] .. devBegin[i+1]). Precomputed so the hot
    // dispatch/undo/bound loops never touch mask bits.
    std::vector<int> devList;
    std::vector<int> devBegin;

    // Dynamic search state.
    std::vector<char> scheduled;
    std::vector<int> depsLeft;
    std::vector<int> openSuccs; // Unscheduled successors per block.
    std::vector<Time> startOf;
    std::vector<Time> finishOf;
    std::vector<Time> avail;   // Per-device next free time.
    std::vector<Mem> memUsed;  // Per-device current usage.
    std::vector<Time> remWork; // Per-device unscheduled work.
    BlockSet schedSet;
    Time curMakespan = 0;
    int numScheduled = 0;

    // Ready list: the unscheduled blocks whose dependencies are all
    // scheduled, maintained incrementally by dispatch()/undo() so a
    // node never scans all nb blocks for candidates. List order is
    // arbitrary; the candidate sort's full tie-break restores the
    // exact cold-path expansion order.
    std::vector<int> readyList;
    std::vector<int> readyPos; // Index into readyList, -1 if absent.

    // Per-depth scratch (depth == numScheduled <= nb): dispatch
    // save/restore rows and candidate buffers, allocated once per
    // solve so steady-state search does zero heap allocation.
    DepthArena<Time> savedAvail;
    DepthArena<Mem> savedMem;
    struct Cand
    {
        int block;
        Time est;
    };
    FramePool<std::vector<Cand>> candPool;

    // Incumbent.
    Time bestMakespan = 0;
    bool haveIncumbent = false;
    std::vector<Time> bestStarts;

    // Mode / control.
    bool decideMode = false;
    Time deadline = 0;
    bool stop = false;
    bool provenInfeasibleDisabled = false; // Set when budget tripped.
    TimeBudget budget{0.0};
    SolveStats stats;

    using DomVec = std::vector<Time>;

    /**
     * One dominance-memo entry. `epoch` stamps the run() that last
     * inserted it: same-epoch entries prune duplicates within a round
     * exactly as before. `exhaustedAt` is a cross-round proof level —
     * the entry's subtree was exhaustively explored in some decide()
     * round with deadline `exhaustedAt` without finding a schedule, so
     * no completion with makespan <= exhaustedAt exists below it and
     * any later round with deadline <= exhaustedAt may prune dominated
     * states outright. Entries whose exploration was cut short (early
     * SAT stop, budget trip) keep exhaustedAt = -1 and never prune
     * across rounds.
     */
    struct MemoEntry
    {
        DomVec v;
        Time exhaustedAt = -1;
        uint32_t epoch = 0;
    };
    std::unordered_map<BlockSet, std::vector<MemoEntry>, BlockSetHash>
        memo;
    uint32_t memoEpoch = 0;
    DomVec domScratch; // Current node's vector (reused across nodes).

    explicit Impl(const SolverProblem &p, SolverOptions o)
        : prob(p), opts(o)
    {
        nb = static_cast<int>(prob.blocks.size());
        nd = prob.numDevices;
        fatal_if(nb == 0, "solver: empty problem");
        fatal_if(nd <= 0, "solver: bad device count ", nd);
        buildStatic();
    }

    /** Devices of block @p i (CSR slice). */
    struct DevRange
    {
        const int *first;
        const int *last;
        const int *begin() const { return first; }
        const int *end() const { return last; }
    };

    DevRange
    devicesOf(int i) const
    {
        return {devList.data() + devBegin[i],
                devList.data() + devBegin[i + 1]};
    }

    void
    buildStatic()
    {
        succs.assign(nb, {});
        devBegin.assign(nb + 1, 0);
        std::vector<int> indeg(nb, 0);
        for (int i = 0; i < nb; ++i) {
            const SolverBlock &b = prob.blocks[i];
            fatal_if(b.span <= 0, "solver: block ", i,
                     " has non-positive span");
            fatal_if(b.devices.empty(), "solver: block ", i,
                     " has no devices");
            fatal_if(b.devices.anyAtOrAbove(nd), "solver: block ", i,
                     " uses out-of-range device");
            for (int d : b.devices)
                devList.push_back(d);
            devBegin[i + 1] = static_cast<int>(devList.size());
            for (int dep : b.deps) {
                fatal_if(dep < 0 || dep >= nb || dep == i,
                         "solver: block ", i, " has bad dependency ", dep);
                succs[dep].push_back(i);
                ++indeg[i];
            }
            fatal_if(b.orderAfter >= nb,
                     "solver: block ", i, " has bad orderAfter");
        }
        // Topological order (Kahn) for tail computation.
        topo.clear();
        std::vector<int> ready;
        for (int i = 0; i < nb; ++i)
            if (indeg[i] == 0)
                ready.push_back(i);
        while (!ready.empty()) {
            int i = ready.back();
            ready.pop_back();
            topo.push_back(i);
            for (int s : succs[i])
                if (--indeg[s] == 0)
                    ready.push_back(s);
        }
        fatal_if(static_cast<int>(topo.size()) != nb,
                 "solver: dependency cycle");
        tail.assign(nb, 0);
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            const int i = *it;
            Time t = 0;
            for (int s : succs[i])
                t = std::max(t, tail[s]);
            tail[i] = t + prob.blocks[i].span;
        }
    }

    void
    resetDynamic()
    {
        scheduled.assign(nb, 0);
        depsLeft.assign(nb, 0);
        openSuccs.assign(nb, 0);
        startOf.assign(nb, kUnscheduled);
        finishOf.assign(nb, kUnscheduled);
        for (int i = 0; i < nb; ++i) {
            depsLeft[i] = static_cast<int>(prob.blocks[i].deps.size());
            openSuccs[i] = static_cast<int>(succs[i].size());
        }
        avail.assign(nd, 0);
        if (!prob.initialAvail.empty()) {
            panic_if(static_cast<int>(prob.initialAvail.size()) != nd,
                     "initialAvail size mismatch");
            for (int d = 0; d < nd; ++d)
                avail[d] = prob.initialAvail[d];
        }
        memUsed.assign(nd, 0);
        if (!prob.initialMem.empty()) {
            panic_if(static_cast<int>(prob.initialMem.size()) != nd,
                     "initialMem size mismatch");
            for (int d = 0; d < nd; ++d)
                memUsed[d] = prob.initialMem[d];
        }
        remWork.assign(nd, 0);
        for (int i = 0; i < nb; ++i)
            for (int d : devicesOf(i))
                remWork[d] += prob.blocks[i].span;
        schedSet = BlockSet{};
        curMakespan = 0;
        for (int d = 0; d < nd; ++d)
            curMakespan = std::max(curMakespan, avail[d]);
        numScheduled = 0;
        haveIncumbent = false;
        bestMakespan = 0;
        bestStarts.clear();
        stop = false;
        provenInfeasibleDisabled = false;
        stats = SolveStats{};
        if (!opts.persistentMemo)
            memo.clear();
        ++memoEpoch;
        savedAvail.reset(nb + 1, nd);
        savedMem.reset(nb + 1, nd);
        readyList.clear();
        readyPos.assign(nb, -1);
        for (int i = 0; i < nb; ++i)
            if (depsLeft[i] == 0)
                readyAdd(i);
    }

    void
    readyAdd(int i)
    {
        readyPos[i] = static_cast<int>(readyList.size());
        readyList.push_back(i);
        ++stats.readyPushes;
    }

    void
    readyRemove(int i)
    {
        const int pos = readyPos[i];
        const int last = readyList.back();
        readyList[pos] = last;
        readyPos[last] = pos;
        readyList.pop_back();
        readyPos[i] = -1;
    }

    /** Earliest start of a dispatchable block in the current state. */
    Time
    estOf(int i) const
    {
        const SolverBlock &b = prob.blocks[i];
        Time est = b.release;
        for (int dep : b.deps)
            est = std::max(est, finishOf[dep]);
        for (int d : devicesOf(i))
            est = std::max(est, avail[d]);
        return est;
    }

    /** Admissible lower bound on the completed makespan of this state. */
    Time
    lowerBound()
    {
        Time lb = curMakespan;
        for (int d = 0; d < nd; ++d)
            lb = std::max(lb, avail[d] + remWork[d]);
        for (int i : readyList)
            lb = std::max(lb, estOf(i) + tail[i]);
        return lb;
    }

    /** Upper limit a node must beat to keep exploring. */
    Time
    currentLimit() const
    {
        Time limit = kUnlimitedMem; // Effectively +inf.
        if (decideMode)
            limit = deadline;
        else if (haveIncumbent)
            limit = bestMakespan - 1;
        // A concurrently improving external incumbent tightens the
        // bound mid-solve; only strictly better completions matter.
        // Decide mode answers "is the deadline reachable" and must not
        // be clamped by an unrelated optimization incumbent.
        if (opts.liveCutoff && !decideMode) {
            const Time live =
                opts.liveCutoff->load(std::memory_order_acquire);
            limit = std::min(limit, live - 1);
        }
        return limit;
    }

    /** Build the dominance vector for the current state into @p v. */
    void
    buildDomVector(DomVec &v) const
    {
        v.clear();
        for (int d = 0; d < nd; ++d)
            v.push_back(avail[d]);
        for (int i = 0; i < nb; ++i)
            if (scheduled[i] && openSuccs[i] > 0)
                v.push_back(finishOf[i]);
        v.push_back(curMakespan);
    }

    static bool
    dominates(const DomVec &a, const DomVec &b)
    {
        // Same scheduled set implies same layout, hence same length.
        for (size_t k = 0; k < a.size(); ++k)
            if (a[k] > b[k])
                return false;
        return true;
    }

    /**
     * @return true when the current state is dominated (prune it).
     * Otherwise inserts the state and points @p slot at the new entry
     * (left null when the entry caps forbid insertion) so search() can
     * record the exhaustion proof level on clean backtrack.
     *
     * A dominating entry prunes when it is from the current round
     * (visited-duplicate semantics, unchanged) or when its recorded
     * proof level covers the current @p limit (cross-round reuse).
     * Entry references stay valid for the whole subtree: rehashing
     * never invalidates unordered_map references, and the bucket
     * vector only mutates on same-key visits, which share this node's
     * depth and therefore cannot occur inside its subtree.
     */
    bool
    checkAndInsertMemo(Time limit, MemoEntry *&slot)
    {
        if (!opts.useDominance)
            return false;
        auto &entries = memo[schedSet];
        buildDomVector(domScratch);
        MemoEntry *refresh = nullptr;
        for (MemoEntry &e : entries) {
            if (!dominates(e.v, domScratch))
                continue;
            if (e.epoch == memoEpoch) {
                ++stats.memoHits;
                return true;
            }
            if (e.exhaustedAt >= 0 && limit <= e.exhaustedAt) {
                ++stats.memoHits;
                ++stats.memoReused;
                return true;
            }
            if (!refresh && dominates(domScratch, e.v))
                refresh = &e;
        }
        if (refresh) {
            // Equal-vector stale entry: adopt it in place instead of
            // drop-and-reinsert, keeping any exhaustion proof it holds
            // (the proof is a fact about the state, not the round) in
            // case this round's re-exploration is cut short.
            refresh->epoch = memoEpoch;
            slot = refresh;
            return false;
        }
        // Drop entries the current state dominates (stale equal states
        // are refreshed this way) plus dead old-epoch ones — an entry
        // from an earlier round that never earned a proof level can
        // never prune again and must not clog the per-key cap. Then
        // insert, reusing storage.
        size_t w = 0;
        for (size_t r = 0; r < entries.size(); ++r) {
            if (dominates(domScratch, entries[r].v))
                continue;
            if (entries[r].epoch != memoEpoch &&
                entries[r].exhaustedAt < 0)
                continue;
            if (w != r)
                entries[w] = std::move(entries[r]);
            ++w;
        }
        entries.resize(w);
        if (entries.size() < kMaxEntriesPerKey &&
            memo.size() < opts.memoCap) {
            entries.emplace_back();
            entries.back().v = domScratch;
            entries.back().epoch = memoEpoch;
            slot = &entries.back();
        }
        return false;
    }

    bool
    budgetTripped()
    {
        if ((stats.nodes & 1023) == 0) {
            if (budget.expired() ||
                (opts.nodeLimit && stats.nodes >= opts.nodeLimit)) {
                stats.budgetExhausted = true;
                provenInfeasibleDisabled = true;
                stop = true;
            } else if (opts.cancel.cancelled()) {
                stats.cancelled = true;
                provenInfeasibleDisabled = true;
                stop = true;
            }
        }
        return stop;
    }

    void
    dispatch(int i, Time est, Time *saved_avail, Mem *saved_mem)
    {
        const SolverBlock &b = prob.blocks[i];
        scheduled[i] = 1;
        schedSet.set(i);
        ++numScheduled;
        startOf[i] = est;
        finishOf[i] = est + b.span;
        for (int d : devicesOf(i)) {
            saved_avail[d] = avail[d];
            saved_mem[d] = memUsed[d];
            avail[d] = finishOf[i];
            memUsed[d] += b.memory;
            remWork[d] -= b.span;
        }
        readyRemove(i);
        for (int s : succs[i])
            if (--depsLeft[s] == 0)
                readyAdd(s);
        for (int dep : b.deps)
            --openSuccs[dep];
    }

    void
    undo(int i, Time saved_makespan, const Time *saved_avail,
         const Mem *saved_mem)
    {
        const SolverBlock &b = prob.blocks[i];
        scheduled[i] = 0;
        schedSet.reset(i);
        --numScheduled;
        startOf[i] = kUnscheduled;
        finishOf[i] = kUnscheduled;
        for (int d : devicesOf(i)) {
            avail[d] = saved_avail[d];
            memUsed[d] = saved_mem[d];
            remWork[d] += b.span;
        }
        for (int s : succs[i])
            if (depsLeft[s]++ == 0)
                readyRemove(s);
        readyAdd(i);
        for (int dep : b.deps)
            ++openSuccs[dep];
        curMakespan = saved_makespan;
    }

    void
    search()
    {
        if (stop || budgetTripped())
            return;
        ++stats.nodes;

        if (numScheduled == nb) {
            // Leaf: complete schedule.
            if (decideMode) {
                if (curMakespan <= deadline) {
                    bestMakespan = curMakespan;
                    bestStarts = startOf;
                    haveIncumbent = true;
                    stop = true;
                }
            } else if (!haveIncumbent || curMakespan < bestMakespan) {
                bestMakespan = curMakespan;
                bestStarts = startOf;
                haveIncumbent = true;
            }
            return;
        }

        const Time limit = currentLimit();
        if (lowerBound() > limit) {
            ++stats.boundPrunes;
            return;
        }
        MemoEntry *slot = nullptr;
        if (checkAndInsertMemo(limit, slot))
            return;

        // Gather dispatchable candidates from the ready list. The
        // list's order is arbitrary, but the filters are per-block and
        // the sort below breaks every tie, so the expansion order (and
        // hence the search tree) is identical to a full index scan.
        const int depth = numScheduled;
        std::vector<Cand> &cands = candPool.at(depth);
        cands.clear();
        for (int i : readyList) {
            const SolverBlock &b = prob.blocks[i];
            if (opts.useSymmetry && b.orderAfter >= 0 &&
                !scheduled[b.orderAfter]) {
                continue;
            }
            if (b.memory > 0) {
                bool mem_ok = true;
                for (int d : devicesOf(i))
                    if (memUsed[d] + b.memory > prob.memLimit) {
                        mem_ok = false;
                        break;
                    }
                if (!mem_ok)
                    continue; // May become dispatchable after a release.
            }
            const Time est = estOf(i);
            if (est + tail[i] > limit) {
                ++stats.boundPrunes;
                continue;
            }
            cands.push_back({i, est});
        }
        if (!cands.empty()) {
            // Seed ordering (decide mode only): follow the suggested
            // dispatch order first so the first dive replays a known
            // schedule. The verdict is unaffected — decide() returns an
            // order-independent boolean — and minimize mode never sees
            // the priority (its incumbent depends on expansion order).
            const std::vector<Time> *prio =
                decideMode && opts.seedPriority &&
                        opts.seedPriority->size() == prob.blocks.size()
                    ? opts.seedPriority
                    : nullptr;
            std::sort(cands.begin(), cands.end(),
                      [&](const Cand &a, const Cand &b) {
                          if (prio && (*prio)[a.block] != (*prio)[b.block])
                              return (*prio)[a.block] < (*prio)[b.block];
                          if (a.est != b.est)
                              return a.est < b.est;
                          if (tail[a.block] != tail[b.block])
                              return tail[a.block] > tail[b.block];
                          return a.block < b.block;
                      });

            Time *saved_avail = savedAvail.row(depth);
            Mem *saved_mem = savedMem.row(depth);
            for (const Cand &c : cands) {
                if (stop)
                    return; // Unwinding: leave the entry unexhausted.
                const Time saved_makespan = curMakespan;
                dispatch(c.block, c.est, saved_avail, saved_mem);
                curMakespan = std::max(curMakespan, finishOf[c.block]);
                search();
                undo(c.block, saved_makespan, saved_avail, saved_mem);
            }
        }
        // Subtree exhausted without a stop: in decide mode that proves
        // no completion with makespan <= deadline exists below this
        // state (bound prunes are admissible at `limit`, memo prunes
        // certify inductively), so later rounds with deadlines <= limit
        // may prune dominated states from this entry. An empty
        // candidate set (memory deadlock / all pruned) is exhausted
        // too. Minimize mode keeps no proof level: its limit tightens
        // mid-subtree with the incumbent and liveCutoff.
        if (slot && decideMode && !stop)
            slot->exhaustedAt = std::max(slot->exhaustedAt, limit);
    }

    SolveResult
    run(bool decide_mode, Time decide_deadline)
    {
        resetDynamic();
        decideMode = decide_mode;
        deadline = decide_deadline;
        budget = TimeBudget(opts.timeBudgetSec);

        // Initial-state feasibility.
        bool initial_ok = true;
        for (int d = 0; d < nd; ++d)
            if (memUsed[d] > prob.memLimit)
                initial_ok = false;

        if (initial_ok)
            search();

        SolveResult res;
        stats.seconds = budget.elapsed();
        res.stats = stats;
        if (haveIncumbent) {
            res.makespan = bestMakespan;
            res.starts = bestStarts;
            const bool proof_cut = stats.budgetExhausted || stats.cancelled;
            res.status = (proof_cut && !decideMode) ? SolveStatus::Feasible
                                                    : SolveStatus::Optimal;
            if (decideMode)
                res.status = SolveStatus::Optimal; // Deadline met: SAT.
        } else {
            res.status = provenInfeasibleDisabled ? SolveStatus::Unknown
                                                  : SolveStatus::Infeasible;
        }
        return res;
    }

    /** Static lower bound used to seed the binary search. */
    Time
    staticLowerBound() const
    {
        Time lb = 0;
        std::vector<Time> work(nd, 0);
        for (int i = 0; i < nb; ++i)
            for (int d : devicesOf(i))
                work[d] += prob.blocks[i].span;
        for (int d = 0; d < nd; ++d) {
            const Time base =
                prob.initialAvail.empty() ? 0 : prob.initialAvail[d];
            lb = std::max(lb, base + work[d]);
        }
        // Critical path with release times.
        std::vector<Time> head(nb, 0);
        for (int i : topo) {
            Time h = prob.blocks[i].release;
            for (int dep : prob.blocks[i].deps)
                h = std::max(h, head[dep]);
            head[i] = h + prob.blocks[i].span;
            lb = std::max(lb, head[i]);
        }
        return lb;
    }
};

BnbSolver::BnbSolver(const SolverProblem &problem, SolverOptions options)
    : impl_(std::make_unique<Impl>(problem, options))
{
}

BnbSolver::~BnbSolver() = default;

SolveResult
BnbSolver::minimizeMakespan()
{
    return impl_->run(false, 0);
}

SolveResult
BnbSolver::decide(Time deadline)
{
    SolveResult res = impl_->run(true, deadline);
    // In decide mode a found schedule means SAT; classify accordingly.
    return res;
}

SolveResult
BnbSolver::binarySearchMakespan()
{
    const Time lb = impl_->staticLowerBound();
    // First find any feasible schedule to bound the search from above.
    SolveResult any = decide(kUnlimitedMem);
    if (!any.feasible())
        return any;
    SolveStats total = any.stats;
    Time lo = lb;
    Time hi = any.makespan;
    SolveResult best = any;
    while (lo < hi) {
        const Time mid = lo + (hi - lo) / 2;
        SolveResult r = decide(mid);
        total.merge(r.stats);
        if (r.feasible()) {
            best = r;
            hi = r.makespan;
        } else if (r.status == SolveStatus::Infeasible) {
            lo = mid + 1;
        } else {
            // Budget exhausted: return the best found so far, unproven.
            best.status = SolveStatus::Feasible;
            total.budgetExhausted = true;
            break;
        }
    }
    best.stats = total;
    return best;
}

} // namespace tessel
