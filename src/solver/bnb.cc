#include "solver/bnb.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/bitset.h"
#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

namespace {

/** Per-key cap on dominance entries; beyond this, insertion stops. */
constexpr size_t kMaxEntriesPerKey = 24;

} // namespace

struct BnbSolver::Impl
{
    const SolverProblem &prob;
    SolverOptions opts;
    int nb = 0;
    int nd = 0;

    // Static derived data.
    std::vector<std::vector<int>> succs;
    std::vector<Time> tail; // Longest dependency path incl. own span.
    std::vector<int> topo;
    // Per-block device indices, CSR layout: block i occupies devices
    // devList[devBegin[i] .. devBegin[i+1]). Precomputed so the hot
    // dispatch/undo/bound loops never touch mask bits.
    std::vector<int> devList;
    std::vector<int> devBegin;

    // Dynamic search state.
    std::vector<char> scheduled;
    std::vector<int> depsLeft;
    std::vector<int> openSuccs; // Unscheduled successors per block.
    std::vector<Time> startOf;
    std::vector<Time> finishOf;
    std::vector<Time> avail;   // Per-device next free time.
    std::vector<Mem> memUsed;  // Per-device current usage.
    std::vector<Time> remWork; // Per-device unscheduled work.
    BlockSet schedSet;
    Time curMakespan = 0;
    int numScheduled = 0;

    // Incumbent.
    Time bestMakespan = 0;
    bool haveIncumbent = false;
    std::vector<Time> bestStarts;

    // Mode / control.
    bool decideMode = false;
    Time deadline = 0;
    bool stop = false;
    bool provenInfeasibleDisabled = false; // Set when budget tripped.
    TimeBudget budget{0.0};
    SolveStats stats;

    using DomVec = std::vector<Time>;
    std::unordered_map<BlockSet, std::vector<DomVec>, BlockSetHash> memo;

    explicit Impl(const SolverProblem &p, SolverOptions o)
        : prob(p), opts(o)
    {
        nb = static_cast<int>(prob.blocks.size());
        nd = prob.numDevices;
        fatal_if(nb == 0, "solver: empty problem");
        fatal_if(nd <= 0, "solver: bad device count ", nd);
        buildStatic();
    }

    /** Devices of block @p i (CSR slice). */
    struct DevRange
    {
        const int *first;
        const int *last;
        const int *begin() const { return first; }
        const int *end() const { return last; }
    };

    DevRange
    devicesOf(int i) const
    {
        return {devList.data() + devBegin[i],
                devList.data() + devBegin[i + 1]};
    }

    void
    buildStatic()
    {
        succs.assign(nb, {});
        devBegin.assign(nb + 1, 0);
        std::vector<int> indeg(nb, 0);
        for (int i = 0; i < nb; ++i) {
            const SolverBlock &b = prob.blocks[i];
            fatal_if(b.span <= 0, "solver: block ", i,
                     " has non-positive span");
            fatal_if(b.devices.empty(), "solver: block ", i,
                     " has no devices");
            fatal_if(b.devices.anyAtOrAbove(nd), "solver: block ", i,
                     " uses out-of-range device");
            for (int d : b.devices)
                devList.push_back(d);
            devBegin[i + 1] = static_cast<int>(devList.size());
            for (int dep : b.deps) {
                fatal_if(dep < 0 || dep >= nb || dep == i,
                         "solver: block ", i, " has bad dependency ", dep);
                succs[dep].push_back(i);
                ++indeg[i];
            }
            fatal_if(b.orderAfter >= nb,
                     "solver: block ", i, " has bad orderAfter");
        }
        // Topological order (Kahn) for tail computation.
        topo.clear();
        std::vector<int> ready;
        for (int i = 0; i < nb; ++i)
            if (indeg[i] == 0)
                ready.push_back(i);
        while (!ready.empty()) {
            int i = ready.back();
            ready.pop_back();
            topo.push_back(i);
            for (int s : succs[i])
                if (--indeg[s] == 0)
                    ready.push_back(s);
        }
        fatal_if(static_cast<int>(topo.size()) != nb,
                 "solver: dependency cycle");
        tail.assign(nb, 0);
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            const int i = *it;
            Time t = 0;
            for (int s : succs[i])
                t = std::max(t, tail[s]);
            tail[i] = t + prob.blocks[i].span;
        }
    }

    void
    resetDynamic()
    {
        scheduled.assign(nb, 0);
        depsLeft.assign(nb, 0);
        openSuccs.assign(nb, 0);
        startOf.assign(nb, kUnscheduled);
        finishOf.assign(nb, kUnscheduled);
        for (int i = 0; i < nb; ++i) {
            depsLeft[i] = static_cast<int>(prob.blocks[i].deps.size());
            openSuccs[i] = static_cast<int>(succs[i].size());
        }
        avail.assign(nd, 0);
        if (!prob.initialAvail.empty()) {
            panic_if(static_cast<int>(prob.initialAvail.size()) != nd,
                     "initialAvail size mismatch");
            for (int d = 0; d < nd; ++d)
                avail[d] = prob.initialAvail[d];
        }
        memUsed.assign(nd, 0);
        if (!prob.initialMem.empty()) {
            panic_if(static_cast<int>(prob.initialMem.size()) != nd,
                     "initialMem size mismatch");
            for (int d = 0; d < nd; ++d)
                memUsed[d] = prob.initialMem[d];
        }
        remWork.assign(nd, 0);
        for (int i = 0; i < nb; ++i)
            for (int d : devicesOf(i))
                remWork[d] += prob.blocks[i].span;
        schedSet = BlockSet{};
        curMakespan = 0;
        for (int d = 0; d < nd; ++d)
            curMakespan = std::max(curMakespan, avail[d]);
        numScheduled = 0;
        haveIncumbent = false;
        bestMakespan = 0;
        bestStarts.clear();
        stop = false;
        provenInfeasibleDisabled = false;
        stats = SolveStats{};
        memo.clear();
    }

    /** Earliest start of a dispatchable block in the current state. */
    Time
    estOf(int i) const
    {
        const SolverBlock &b = prob.blocks[i];
        Time est = b.release;
        for (int dep : b.deps)
            est = std::max(est, finishOf[dep]);
        for (int d : devicesOf(i))
            est = std::max(est, avail[d]);
        return est;
    }

    /** Admissible lower bound on the completed makespan of this state. */
    Time
    lowerBound()
    {
        Time lb = curMakespan;
        for (int d = 0; d < nd; ++d)
            lb = std::max(lb, avail[d] + remWork[d]);
        for (int i = 0; i < nb; ++i) {
            if (scheduled[i] || depsLeft[i] != 0)
                continue;
            lb = std::max(lb, estOf(i) + tail[i]);
        }
        return lb;
    }

    /** Upper limit a node must beat to keep exploring. */
    Time
    currentLimit() const
    {
        Time limit = kUnlimitedMem; // Effectively +inf.
        if (decideMode)
            limit = deadline;
        else if (haveIncumbent)
            limit = bestMakespan - 1;
        // A concurrently improving external incumbent tightens the
        // bound mid-solve; only strictly better completions matter.
        // Decide mode answers "is the deadline reachable" and must not
        // be clamped by an unrelated optimization incumbent.
        if (opts.liveCutoff && !decideMode) {
            const Time live =
                opts.liveCutoff->load(std::memory_order_acquire);
            limit = std::min(limit, live - 1);
        }
        return limit;
    }

    /** Build the dominance vector for the current state. */
    DomVec
    domVector() const
    {
        DomVec v;
        v.reserve(nd + 4);
        for (int d = 0; d < nd; ++d)
            v.push_back(avail[d]);
        for (int i = 0; i < nb; ++i)
            if (scheduled[i] && openSuccs[i] > 0)
                v.push_back(finishOf[i]);
        v.push_back(curMakespan);
        return v;
    }

    static bool
    dominates(const DomVec &a, const DomVec &b)
    {
        // Same scheduled set implies same layout, hence same length.
        for (size_t k = 0; k < a.size(); ++k)
            if (a[k] > b[k])
                return false;
        return true;
    }

    /** @return true when the current state is dominated (prune it). */
    bool
    checkAndInsertMemo()
    {
        if (!opts.useDominance)
            return false;
        auto &entries = memo[schedSet];
        const DomVec cur = domVector();
        for (const DomVec &e : entries) {
            if (dominates(e, cur)) {
                ++stats.memoHits;
                return true;
            }
        }
        // Drop entries the current state dominates, then insert.
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [&](const DomVec &e) {
                                         return dominates(cur, e);
                                     }),
                      entries.end());
        if (entries.size() < kMaxEntriesPerKey &&
            memo.size() < opts.memoCap) {
            entries.push_back(cur);
        }
        return false;
    }

    bool
    budgetTripped()
    {
        if ((stats.nodes & 1023) == 0) {
            if (budget.expired() ||
                (opts.nodeLimit && stats.nodes >= opts.nodeLimit)) {
                stats.budgetExhausted = true;
                provenInfeasibleDisabled = true;
                stop = true;
            } else if (opts.cancel.cancelled()) {
                stats.cancelled = true;
                provenInfeasibleDisabled = true;
                stop = true;
            }
        }
        return stop;
    }

    void
    dispatch(int i, Time est, Time *saved_avail, Mem *saved_mem)
    {
        const SolverBlock &b = prob.blocks[i];
        scheduled[i] = 1;
        schedSet.set(i);
        ++numScheduled;
        startOf[i] = est;
        finishOf[i] = est + b.span;
        for (int d : devicesOf(i)) {
            saved_avail[d] = avail[d];
            saved_mem[d] = memUsed[d];
            avail[d] = finishOf[i];
            memUsed[d] += b.memory;
            remWork[d] -= b.span;
        }
        for (int s : succs[i])
            --depsLeft[s];
        for (int dep : b.deps)
            --openSuccs[dep];
    }

    void
    undo(int i, Time saved_makespan, const Time *saved_avail,
         const Mem *saved_mem)
    {
        const SolverBlock &b = prob.blocks[i];
        scheduled[i] = 0;
        schedSet.reset(i);
        --numScheduled;
        startOf[i] = kUnscheduled;
        finishOf[i] = kUnscheduled;
        for (int d : devicesOf(i)) {
            avail[d] = saved_avail[d];
            memUsed[d] = saved_mem[d];
            remWork[d] += b.span;
        }
        for (int s : succs[i])
            ++depsLeft[s];
        for (int dep : b.deps)
            ++openSuccs[dep];
        curMakespan = saved_makespan;
    }

    void
    search()
    {
        if (stop || budgetTripped())
            return;
        ++stats.nodes;

        if (numScheduled == nb) {
            // Leaf: complete schedule.
            if (decideMode) {
                if (curMakespan <= deadline) {
                    bestMakespan = curMakespan;
                    bestStarts = startOf;
                    haveIncumbent = true;
                    stop = true;
                }
            } else if (!haveIncumbent || curMakespan < bestMakespan) {
                bestMakespan = curMakespan;
                bestStarts = startOf;
                haveIncumbent = true;
            }
            return;
        }

        const Time limit = currentLimit();
        if (lowerBound() > limit) {
            ++stats.boundPrunes;
            return;
        }
        if (checkAndInsertMemo())
            return;

        // Gather dispatchable candidates.
        struct Cand
        {
            int block;
            Time est;
        };
        std::vector<Cand> cands;
        cands.reserve(8);
        for (int i = 0; i < nb; ++i) {
            if (scheduled[i] || depsLeft[i] != 0)
                continue;
            const SolverBlock &b = prob.blocks[i];
            if (opts.useSymmetry && b.orderAfter >= 0 &&
                !scheduled[b.orderAfter]) {
                continue;
            }
            if (b.memory > 0) {
                bool mem_ok = true;
                for (int d : devicesOf(i))
                    if (memUsed[d] + b.memory > prob.memLimit) {
                        mem_ok = false;
                        break;
                    }
                if (!mem_ok)
                    continue; // May become dispatchable after a release.
            }
            const Time est = estOf(i);
            if (est + tail[i] > limit) {
                ++stats.boundPrunes;
                continue;
            }
            cands.push_back({i, est});
        }
        if (cands.empty())
            return; // Memory deadlock or all candidates pruned.

        std::sort(cands.begin(), cands.end(),
                  [&](const Cand &a, const Cand &b) {
                      if (a.est != b.est)
                          return a.est < b.est;
                      if (tail[a.block] != tail[b.block])
                          return tail[a.block] > tail[b.block];
                      return a.block < b.block;
                  });

        std::vector<Time> saved_avail(nd);
        std::vector<Mem> saved_mem(nd);
        for (const Cand &c : cands) {
            if (stop)
                return;
            const Time saved_makespan = curMakespan;
            dispatch(c.block, c.est, saved_avail.data(), saved_mem.data());
            curMakespan = std::max(curMakespan, finishOf[c.block]);
            search();
            undo(c.block, saved_makespan, saved_avail.data(),
                 saved_mem.data());
        }
    }

    SolveResult
    run(bool decide_mode, Time decide_deadline)
    {
        resetDynamic();
        decideMode = decide_mode;
        deadline = decide_deadline;
        budget = TimeBudget(opts.timeBudgetSec);

        // Initial-state feasibility.
        bool initial_ok = true;
        for (int d = 0; d < nd; ++d)
            if (memUsed[d] > prob.memLimit)
                initial_ok = false;

        if (initial_ok)
            search();

        SolveResult res;
        stats.seconds = budget.elapsed();
        res.stats = stats;
        if (haveIncumbent) {
            res.makespan = bestMakespan;
            res.starts = bestStarts;
            const bool proof_cut = stats.budgetExhausted || stats.cancelled;
            res.status = (proof_cut && !decideMode) ? SolveStatus::Feasible
                                                    : SolveStatus::Optimal;
            if (decideMode)
                res.status = SolveStatus::Optimal; // Deadline met: SAT.
        } else {
            res.status = provenInfeasibleDisabled ? SolveStatus::Unknown
                                                  : SolveStatus::Infeasible;
        }
        return res;
    }

    /** Static lower bound used to seed the binary search. */
    Time
    staticLowerBound() const
    {
        Time lb = 0;
        std::vector<Time> work(nd, 0);
        for (int i = 0; i < nb; ++i)
            for (int d : devicesOf(i))
                work[d] += prob.blocks[i].span;
        for (int d = 0; d < nd; ++d) {
            const Time base =
                prob.initialAvail.empty() ? 0 : prob.initialAvail[d];
            lb = std::max(lb, base + work[d]);
        }
        // Critical path with release times.
        std::vector<Time> head(nb, 0);
        for (int i : topo) {
            Time h = prob.blocks[i].release;
            for (int dep : prob.blocks[i].deps)
                h = std::max(h, head[dep]);
            head[i] = h + prob.blocks[i].span;
            lb = std::max(lb, head[i]);
        }
        return lb;
    }
};

BnbSolver::BnbSolver(const SolverProblem &problem, SolverOptions options)
    : impl_(std::make_unique<Impl>(problem, options))
{
}

BnbSolver::~BnbSolver() = default;

SolveResult
BnbSolver::minimizeMakespan()
{
    return impl_->run(false, 0);
}

SolveResult
BnbSolver::decide(Time deadline)
{
    SolveResult res = impl_->run(true, deadline);
    // In decide mode a found schedule means SAT; classify accordingly.
    return res;
}

SolveResult
BnbSolver::binarySearchMakespan()
{
    const Time lb = impl_->staticLowerBound();
    // First find any feasible schedule to bound the search from above.
    SolveResult any = decide(kUnlimitedMem);
    if (!any.feasible())
        return any;
    SolveStats total = any.stats;
    Time lo = lb;
    Time hi = any.makespan;
    SolveResult best = any;
    while (lo < hi) {
        const Time mid = lo + (hi - lo) / 2;
        SolveResult r = decide(mid);
        total.nodes += r.stats.nodes;
        total.seconds += r.stats.seconds;
        total.memoHits += r.stats.memoHits;
        total.boundPrunes += r.stats.boundPrunes;
        if (r.feasible()) {
            best = r;
            hi = r.makespan;
        } else if (r.status == SolveStatus::Infeasible) {
            lo = mid + 1;
        } else {
            // Budget exhausted: return the best found so far, unproven.
            best.status = SolveStatus::Feasible;
            total.budgetExhausted = true;
            break;
        }
    }
    best.stats = total;
    return best;
}

} // namespace tessel
