/**
 * @file
 * Lowering from the Tessel IR to solver instances and lifting results
 * back. `buildFullInstance` encodes a whole N-micro-batch problem, which
 * is exactly the paper's "time-optimal (TO)" baseline search (Sec. III-B,
 * Figs. 3 and 9): optimal but exponentially expensive in N.
 */

#ifndef TESSEL_SOLVER_FROM_IR_H
#define TESSEL_SOLVER_FROM_IR_H

#include "ir/problem.h"
#include "ir/schedule.h"
#include "solver/problem.h"

namespace tessel {

/**
 * Encode the complete problem (all K x N block instances).
 *
 * Solver block index = problem instance id (spec * N + mb). Property 4.1
 * symmetry chains are added: instance (spec, mb) may only dispatch after
 * (spec, mb-1).
 */
SolverProblem buildFullInstance(const Problem &problem);

/**
 * Inverse of liftSchedule: extract per-solver-block start times from a
 * complete IR schedule, aligned with buildFullInstance's block order
 * (solver block index == problem instance id). Used by the differential
 * oracle to run verifySolverSchedule() against plans produced by the
 * search, warmup, and cooldown phases.
 */
std::vector<Time> startsFromSchedule(const Problem &problem,
                                     const Schedule &schedule);

/**
 * Lift solver start times into an IR schedule.
 *
 * @param problem the IR problem the instance was built from.
 * @param starts per-solver-block start times; solver block tags must hold
 *        instance ids (buildFullInstance guarantees this).
 * @param blocks the solver blocks (for their tags).
 */
Schedule liftSchedule(const Problem &problem,
                      const std::vector<SolverBlock> &blocks,
                      const std::vector<Time> &starts);

/**
 * Solve the full instance to optimality (the TO baseline).
 *
 * @param problem IR problem.
 * @param options solver budget knobs (Fig. 3 runs with a wall budget).
 * @return solve result plus the lifted schedule when feasible.
 */
struct ToBaselineResult
{
    SolveResult result;
    Schedule schedule; // Valid only when result.feasible().
};

ToBaselineResult solveTimeOptimal(const Problem &problem,
                                  const SolverOptions &options = {});

} // namespace tessel

#endif // TESSEL_SOLVER_FROM_IR_H
