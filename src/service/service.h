/**
 * @file
 * Planning service: a batch query front-end over the plan store.
 *
 * A batch is a list of named queries (placement x cluster config x
 * option sweep). The service fingerprints every query canonically
 * (store/fingerprint.h), deduplicates identical instances, answers what
 * it can from the two-tier plan cache, and fans the remaining unique
 * searches out over a ThreadPool with per-query budgets and cooperative
 * cancellation. Fresh results are admitted to the cache, so a repeated
 * batch — same process or a later one sharing the cache directory — is
 * answered entirely from storage with bit-identical plans.
 */

#ifndef TESSEL_SERVICE_SERVICE_H
#define TESSEL_SERVICE_SERVICE_H

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "store/store.h"
#include "support/metrics.h"
#include "support/threadpool.h"

namespace tessel {

/** One named planning query. */
struct PlanQuery
{
    /** Display label ("GPT-M/hetero/mem=6"); not part of the identity. */
    std::string label;
    Placement placement;
    /**
     * Search options. options.cluster may point at an external model
     * the caller keeps alive; queries that own their model set
     * `cluster` below instead and leave options.cluster null.
     */
    TesselOptions options;
    /**
     * Owned cluster model (shared so PlanQuery stays copyable and the
     * pointer handed to the search outlives the batch). When set, it
     * overrides options.cluster.
     */
    std::shared_ptr<const ClusterModel> cluster;

    /** @return options with the owned cluster model bound. */
    TesselOptions
    effectiveOptions() const
    {
        TesselOptions opts = options;
        if (cluster)
            opts.cluster = cluster.get();
        return opts;
    }
};

/** Per-query row of a batch report. */
struct QueryReport
{
    std::string label;
    /** Canonical instance fingerprint (hex). */
    std::string fingerprint;
    /** Digest of the serialized result: bit-identical plans <=> equal. */
    std::string planHash;
    /** "memory", "disk", or "search". */
    const char *source = "search";
    bool found = false;
    Time period = -1;
    /** Wall seconds to answer the *unique* instance this query mapped
     * to (deduplicated copies share the value). */
    double wallSec = 0.0;
    /**
     * Fingerprint (hex) of the stored neighbor whose adapted plan
     * warm-started this search; empty when the search ran cold or the
     * query was answered from the cache.
     */
    std::string seededFrom;
    /** Makespan of the adapted seed plan (-1 when unseeded). */
    Time seedMakespan = -1;
    /** Solver nodes pruned under the seed-derived bound before the
     * search accepted its first own candidate — the nodes a cold run
     * would have had to expand or bound some other way. */
    uint64_t seedNodesPruned = 0;
    /** Howard-kernel effort behind this answer (zero for cache hits
     * and under TESSEL_MCR=binary; see SolveStats for semantics). */
    uint64_t valueSweeps = 0;
    uint64_t policyImprovements = 0;
    /** Answered through PlanningService::replan (drift or failure). */
    bool replanned = false;
    /**
     * The served answer is the *old* plan retimed under the drifted
     * costs — oracle-verified feasible but not necessarily optimal;
     * the seeded search continues in the background and publishes the
     * fresh plan to the store when done. Source reads "stale".
     */
    bool stale = false;
    /** Answered on a survivor placement after a device failure. */
    bool degraded = false;
};

/**
 * Batch outcome: per-query rows plus aggregate cache behaviour.
 *
 * Accounting definitions (each name has exactly one): `queries` holds
 * one row per *submitted* query, deduplicated copies included, and
 * `throughputQps` divides that same count by `wallSec` — it is the
 * client-visible answer rate. `uniqueInstances`, `memoryHits`,
 * `diskHits`, and `searches` all count *unique* instances (after
 * fingerprint deduplication; copies count once), and memoryHits +
 * diskHits + searches == uniqueInstances always. hitRate() is defined
 * over unique instances (below) and is the rate the CI
 * `--min-hit-rate` gate enforces; the lifetime store-level rate,
 * defined over raw lookups instead, lives in
 * `cacheStats.hitRate()` (store/store.h).
 */
struct BatchReport
{
    std::vector<QueryReport> queries;
    size_t uniqueInstances = 0; ///< after fingerprint deduplication
    size_t memoryHits = 0;      ///< unique instances served from memory
    size_t diskHits = 0;        ///< unique instances served from disk
    size_t searches = 0;        ///< unique instances freshly searched
    double wallSec = 0.0;
    /** Submitted queries (dedup copies included) per wall second. */
    double throughputQps = 0.0;
    /** Cache counters accumulated over the service lifetime. */
    StoreStats cacheStats;

    /**
     * @return fraction of *unique* instances answered from either
     * cache tier: (memoryHits + diskHits) / uniqueInstances.
     * Deduplicated copies count once — a batch of one cold search plus
     * 99 copies scores 0, not 0.99. This is the documented definition
     * behind `tessel_service --min-hit-rate`.
     */
    double
    hitRate() const
    {
        const size_t total = memoryHits + diskHits + searches;
        return total == 0 ? 0.0
                          : static_cast<double>(memoryHits + diskHits) /
                                static_cast<double>(total);
    }
};

/** Service construction knobs. */
struct ServiceOptions
{
    /** Cache directory (created on first store). */
    std::string cacheDir;
    /** Memory-tier capacity (results). */
    size_t memoryCapacity = 256;
    /** Verify disk entries via the oracle before serving them. */
    bool verifyOnLoad = true;
    /**
     * Workers for the cache-lookup and miss fan-outs; 0 picks
     * hardware_concurrency(), 1 runs everything inline. Only when two
     * or more misses actually fan out over the pool is each pooled
     * search forced serial (numThreads = 1), so batch parallelism is
     * not multiplied by per-search parallelism; a lone miss keeps the
     * search's own multi-threaded sweep. Plans are identical either
     * way by the search's determinism contract.
     */
    int numThreads = 0;
    /** > 0 overrides every query's totalBudgetSec. */
    double perQueryBudgetSec = 0.0;
    /**
     * On a store miss, consult the neighbor index and warm-start the
     * search from an adapted nearby plan (store/adapt.h). Never changes
     * any answer — the seed only prunes, so plans stay bit-identical to
     * cold searches — only how fast misses resolve.
     */
    bool neighborSeed = true;
    /** How many nearest neighbors to try adapting per miss. */
    size_t neighborK = 4;
    /**
     * Latency budget replan() gives the seeded foreground search
     * before falling back to the stale retimed answer (<= 0: always
     * wait for the fresh plan — no stale answers). The budget gates
     * only *waiting*: the search always runs to completion with the
     * query's own fingerprinted budgets and publishes to the store,
     * in the background when the caller stopped waiting.
     */
    double replanBudgetSec = 1.0;
    /** Batch-wide cancellation, linked into every search. */
    CancelToken cancel;
};

/**
 * One elastic-replanning request: a previously served query plus the
 * cluster change observed since its plan was produced.
 */
struct ReplanRequest
{
    /** The query whose served plan is to be adapted. */
    PlanQuery base;
    /** What changed: speed/link drift and/or device removal. */
    ClusterDelta delta;
    /**
     * Survivor query for the removal case (required when `delta`
     * removes devices; ignored otherwise). The base placement cannot
     * run with a device missing, so failure implies re-placement —
     * placement/shapes.h makeDegradedShape / makeDegradedHeteroShape-
     * ByName build these.
     */
    std::optional<PlanQuery> degraded;
};

/**
 * The query replan() actually answers: the base query with the drifted
 * cluster bound (applyDelta) for pure drift, or the survivor query for
 * removals. Exposed so benches and tests can run the *same* instance
 * cold — the drifted query fingerprints like any other, which is what
 * keys replans in the store. Fatal when the delta removes devices but
 * `degraded` is unset (caller contract; the trace layer validates
 * daemon input before building a ReplanRequest).
 */
PlanQuery makeDriftedQuery(const ReplanRequest &request);

class PlanningService
{
  public:
    explicit PlanningService(ServiceOptions options);

    /**
     * Answer @p queries (dedup -> cache -> parallel search). Both
     * fan-out phases run on one persistent ThreadPool owned by the
     * service (created lazily on the first parallel batch and reused
     * for the service's lifetime), so a long-running daemon does not
     * spawn and join a worker set per batch. Not re-entrant: one batch
     * at a time per service (concurrent runOne() calls are fine — the
     * daemon path uses those).
     *
     * Results whose search observed a cancellation are NOT admitted to
     * the cache: cancellation is not part of the fingerprint, so a
     * truncated answer must never be served to an uncancelled query.
     */
    BatchReport runBatch(const std::vector<PlanQuery> &queries);

    /** Convenience single-query path. Safe to call concurrently from
     * any number of threads (the ServiceLoop workers do). */
    TesselResult runOne(const PlanQuery &query, QueryReport *report = nullptr);

    /**
     * Elastic replan: answer the base query's instance under the
     * cluster change in @p request. Keyed in the store by the *drifted*
     * instance's fingerprint, so a repeated drift (or one a peer saw
     * first) is a plain cache hit. Otherwise: fetch the served base
     * plan, retime it under the drifted costs (prepareReplanSeed), run
     * the seeded search — bit-identical to a cold search on the
     * drifted cluster — and, when the search outlasts
     * ServiceOptions::replanBudgetSec, serve the verified retimed plan
     * flagged `stale` while the search finishes in the background and
     * publishes to the store. Removal deltas answer on the survivor
     * query (`degraded` flagged); with no served base plan the replan
     * degenerates to a normal neighbor-seeded miss. Every served
     * answer — fresh, stale, or degraded — passed the verification
     * oracle. Thread-safe like runOne.
     */
    TesselResult replan(const ReplanRequest &request,
                        QueryReport *report = nullptr);

    /** Join every background replan a stale answer handed off (the
     * destructor does this too). Completed searches have already
     * published to the store by the time this returns. */
    void waitBackgroundReplans();

    ~PlanningService();

    PlanCache &cache() { return cache_; }
    const ServiceOptions &options() const { return options_; }

  private:
    /** Query options with service-level budget/cancel/threading applied. */
    TesselOptions resolveOptions(const PlanQuery &query) const;

    /** Whether misses fan out over a pool (forces serial searches). */
    bool parallelBatch() const;

    /** The persistent batch fan-out pool (lazily constructed). */
    ThreadPool &pool();

    /** Miss pipeline shared by runOne and replan: neighbor seeding,
     * the search, conditional cache admission, report seed fields. */
    TesselResult searchMiss(const PlanQuery &query,
                            const TesselOptions &eff, const Hash128 &fp,
                            QueryReport *report);

    /** Join background replans whose search already finished. */
    void reapBackgroundReplans();

    /** Record one answered query into `service.answer_ms{source=...}`
     * (and the stale/degraded counters when flagged). */
    void observeAnswer(const QueryReport &report) const;

    ServiceOptions options_;
    PlanCache cache_;

    /** Registry handles (`service.*`), registered once in the
     * constructor so every series exists before the first snapshot. */
    struct ServiceMetrics
    {
        Histogram *answerMemory = nullptr;
        Histogram *answerDisk = nullptr;
        Histogram *answerSearch = nullptr;
        Histogram *answerStale = nullptr;
        Counter *staleServed = nullptr;
        Counter *degradedServed = nullptr;
    };
    ServiceMetrics metrics_;

    std::mutex poolMu_; ///< guards lazy pool construction
    std::unique_ptr<ThreadPool> pool_;

    /** A replan search still running after its caller stopped waiting
     * (the caller got the stale answer; the search publishes to the
     * store on completion). */
    struct BackgroundReplan
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::mutex bgMu_; ///< guards bg_
    std::vector<BackgroundReplan> bg_;
};

/**
 * The five reference shapes (V/X/M/NN/K, placement/shapes.h) as a named
 * query batch: per shape a homogeneous query, a memory-capped variant,
 * and (optionally) the heterogeneous comm-aware variant. Shared by the
 * service tool, the cold/warm bench, the CI smoke job, and the tests so
 * they all exercise the same instances.
 *
 * @param num_devices device count per shape (K needs it even, >= 2).
 * @param include_hetero add makeHeteroShapeByName comm-aware variants.
 * @param budget_sec per-query total search budget (<= 0: unlimited).
 */
std::vector<PlanQuery> referenceShapeQueries(int num_devices,
                                             bool include_hetero = true,
                                             double budget_sec = 20.0);

/**
 * One reference query by name: @p shape in {V, X, M, NN, K}, @p variant
 * in {homogeneous, mem-capped, hetero}. Exactly the construction
 * referenceShapeQueries() uses for the same coordinates, so a streamed
 * trace line ("V", "hetero", 4 devices, budget 5) fingerprints — and
 * therefore plans — identically to the corresponding batch query.
 * @return nullopt for an unknown shape/variant or invalid device count.
 */
std::optional<PlanQuery> referenceShapeQuery(const std::string &shape,
                                             const std::string &variant,
                                             int num_devices,
                                             double budget_sec);

} // namespace tessel

#endif // TESSEL_SERVICE_SERVICE_H
