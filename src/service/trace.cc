#include "service/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "placement/shapes.h"

namespace tessel {

namespace {

/**
 * Minimal flat-JSON-object scanner. The trace format is one object per
 * line with scalar values only, so a full JSON library would be dead
 * weight (and the container bans new dependencies); this accepts the
 * documented subset and rejects everything else with a message.
 */
struct Scanner
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    explicit Scanner(const std::string &line) : s(line) {}

    void
    skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    fail(const std::string &what)
    {
        err = what + " at offset " + std::to_string(i);
        return false;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return fail(std::string("expected '") + c + "'");
        ++i;
        return true;
    }

    /** Parse a JSON string (no \u escapes; traces are ASCII). */
    bool
    parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (i < s.size() && s[i] != '"') {
            char c = s[i++];
            if (c == '\\') {
                if (i >= s.size())
                    return fail("unterminated escape");
                char e = s[i++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                default:
                    return fail("unsupported escape");
                }
            }
            out->push_back(c);
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i; // closing quote
        return true;
    }

    /** One scalar value: string, number, true/false/null. */
    bool
    parseValue(std::string *str, double *num, bool *isString)
    {
        skipWs();
        if (i >= s.size())
            return fail("expected value");
        if (s[i] == '"') {
            *isString = true;
            return parseString(str);
        }
        if (s[i] == '{' || s[i] == '[')
            return fail("nested values not supported");
        *isString = false;
        if (s.compare(i, 4, "true") == 0) {
            i += 4;
            *num = 1.0;
            return true;
        }
        if (s.compare(i, 5, "false") == 0) {
            i += 5;
            *num = 0.0;
            return true;
        }
        if (s.compare(i, 4, "null") == 0) {
            i += 4;
            *num = 0.0;
            return true;
        }
        const size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '-' || s[i] == '+'))
            ++i;
        if (i == start)
            return fail("expected value");
        try {
            *num = std::stod(s.substr(start, i - start));
        } catch (...) {
            return fail("bad number");
        }
        return true;
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

bool
parseTraceLine(const std::string &line, TraceQuery *out, std::string *err)
{
    TraceQuery q;
    Scanner sc(line);
    auto bail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    if (!sc.expect('{'))
        return bail(sc.err);
    sc.skipWs();
    bool sawShape = false;
    if (sc.i < sc.s.size() && sc.s[sc.i] != '}') {
        for (;;) {
            std::string key;
            if (!sc.parseString(&key))
                return bail(sc.err);
            if (!sc.expect(':'))
                return bail(sc.err);
            std::string sval;
            double nval = 0.0;
            bool isString = false;
            if (!sc.parseValue(&sval, &nval, &isString))
                return bail(sc.err);

            auto wantString = [&](std::string *dst) {
                if (!isString)
                    return bail("key \"" + key + "\" wants a string");
                *dst = sval;
                return true;
            };
            auto wantNumber = [&](double *dst) {
                if (isString)
                    return bail("key \"" + key + "\" wants a number");
                *dst = nval;
                return true;
            };

            double tmp = 0.0;
            if (key == "id") {
                if (!wantString(&q.id))
                    return false;
            } else if (key == "cmd") {
                if (!wantString(&q.cmd))
                    return false;
            } else if (key == "shape") {
                if (!wantString(&q.shape))
                    return false;
                sawShape = true;
            } else if (key == "variant") {
                if (!wantString(&q.variant))
                    return false;
            } else if (key == "tenant") {
                if (!wantString(&q.tenant))
                    return false;
            } else if (key == "devices") {
                if (!wantNumber(&tmp))
                    return false;
                q.devices = static_cast<int>(tmp);
            } else if (key == "budget_sec") {
                if (!wantNumber(&q.budgetSec))
                    return false;
            } else if (key == "nr_cap") {
                if (!wantNumber(&tmp))
                    return false;
                q.nrCap = static_cast<int>(tmp);
            } else if (key == "mem_limit") {
                if (!wantNumber(&tmp))
                    return false;
                q.memLimit = static_cast<long long>(tmp);
            } else if (key == "drift_device") {
                if (!wantNumber(&tmp))
                    return false;
                q.driftDevice = static_cast<int>(tmp);
            } else if (key == "drift_speed") {
                if (!wantNumber(&q.driftSpeed))
                    return false;
            } else if (key == "drift_src") {
                if (!wantNumber(&tmp))
                    return false;
                q.driftSrc = static_cast<int>(tmp);
            } else if (key == "drift_dst") {
                if (!wantNumber(&tmp))
                    return false;
                q.driftDst = static_cast<int>(tmp);
            } else if (key == "drift_latency") {
                if (!wantNumber(&q.driftLatency))
                    return false;
            } else if (key == "drift_time_per_mb") {
                if (!wantNumber(&q.driftTimePerMB))
                    return false;
            } else if (key == "fail_device") {
                if (!wantNumber(&tmp))
                    return false;
                q.failDevice = static_cast<int>(tmp);
            }
            // Unknown keys: parsed and dropped (forward compatibility).

            sc.skipWs();
            if (sc.i < sc.s.size() && sc.s[sc.i] == ',') {
                ++sc.i;
                continue;
            }
            break;
        }
    }
    if (!sc.expect('}'))
        return bail(sc.err);
    sc.skipWs();
    if (sc.i != sc.s.size())
        return bail("trailing characters after object");
    if (!sawShape && !q.isControl())
        return bail("missing required key \"shape\"");
    *out = std::move(q);
    return true;
}

std::string
formatTraceLine(const TraceQuery &q)
{
    std::ostringstream os;
    os << '{';
    if (!q.id.empty())
        os << "\"id\": \"" << jsonEscape(q.id) << "\", ";
    if (q.isControl()) {
        os << "\"cmd\": \"" << jsonEscape(q.cmd) << "\"}";
        return os.str();
    }
    os << "\"shape\": \"" << jsonEscape(q.shape) << "\""
       << ", \"variant\": \"" << jsonEscape(q.variant) << "\""
       << ", \"devices\": " << q.devices
       << ", \"budget_sec\": " << jsonNumber(q.budgetSec);
    if (q.nrCap > 0)
        os << ", \"nr_cap\": " << q.nrCap;
    if (q.memLimit > 0)
        os << ", \"mem_limit\": " << q.memLimit;
    if (q.driftDevice >= 0) {
        os << ", \"drift_device\": " << q.driftDevice
           << ", \"drift_speed\": " << jsonNumber(q.driftSpeed);
    }
    if (q.driftSrc >= 0 || q.driftDst >= 0) {
        os << ", \"drift_src\": " << q.driftSrc
           << ", \"drift_dst\": " << q.driftDst
           << ", \"drift_latency\": " << jsonNumber(q.driftLatency)
           << ", \"drift_time_per_mb\": " << jsonNumber(q.driftTimePerMB);
    }
    if (q.failDevice >= 0)
        os << ", \"fail_device\": " << q.failDevice;
    if (!q.tenant.empty())
        os << ", \"tenant\": \"" << jsonEscape(q.tenant) << "\"";
    os << '}';
    return os.str();
}

std::optional<PlanQuery>
makeTraceQuery(const TraceQuery &q, std::string *err)
{
    std::optional<PlanQuery> plan =
        referenceShapeQuery(q.shape, q.variant, q.devices, q.budgetSec);
    if (!plan) {
        if (err)
            *err = "unknown query coordinates: shape \"" + q.shape +
                   "\" variant \"" + q.variant + "\" devices " +
                   std::to_string(q.devices);
        return std::nullopt;
    }
    if (q.nrCap > 0) {
        plan->options.maxRepetendMicrobatches = q.nrCap;
        plan->label += "/nr=" + std::to_string(q.nrCap);
    }
    if (q.memLimit > 0) {
        plan->options.memLimit = static_cast<Mem>(q.memLimit);
        plan->label += "/mem=" + std::to_string(q.memLimit);
    }
    return plan;
}

std::optional<ReplanRequest>
makeTraceReplan(const TraceQuery &q, std::string *err)
{
    auto bail = [&](const std::string &what) {
        if (err)
            *err = what;
        return std::nullopt;
    };
    if (!q.isReplan())
        return bail("not a replan line (no drift/fail knobs)");
    std::optional<PlanQuery> base = makeTraceQuery(q, err);
    if (!base)
        return std::nullopt;
    ReplanRequest req;
    req.base = std::move(*base);

    if (q.hasFailure()) {
        // The service-level checks for these are fatal (programming
        // errors there); from a trace they are daemon *input*, so they
        // must come back as per-line errors.
        if (q.hasDrift())
            return bail("fail_device cannot be combined with drift knobs");
        if (q.failDevice >= q.devices)
            return bail("fail_device " + std::to_string(q.failDevice) +
                        " outside 0.." + std::to_string(q.devices - 1));
        if (q.devices < (q.shape == "K" ? 4 : 3))
            return bail("too few devices to survive a failure of shape " +
                        q.shape);
        PlanQuery degraded = req.base; // keeps budgets / mem-cap / label
        std::vector<DeviceId> removed;
        if (q.variant == "hetero") {
            HeteroShape hs = makeDegradedHeteroShapeByName(
                q.shape, q.devices, q.failDevice, {}, {}, &removed);
            degraded.placement = std::move(hs.placement);
            degraded.options.edgeMB = std::move(hs.edgeMB);
            degraded.cluster =
                std::make_shared<ClusterModel>(std::move(hs.cluster));
        } else {
            DegradedShape ds =
                makeDegradedShape(q.shape, q.devices, q.failDevice);
            degraded.placement = std::move(ds.placement);
            removed = std::move(ds.removedDevices);
        }
        degraded.label += "/fail=" + std::to_string(q.failDevice);
        req.delta.removedDevices = std::move(removed);
        req.degraded = std::move(degraded);
        return req;
    }

    if (q.driftDevice >= 0) {
        if (q.driftDevice >= q.devices)
            return bail("drift_device " + std::to_string(q.driftDevice) +
                        " outside 0.." + std::to_string(q.devices - 1));
        if (!(q.driftSpeed > 0.0) || !std::isfinite(q.driftSpeed))
            return bail("drift_speed must be a positive finite factor");
        req.delta.speedFactor[q.driftDevice] = q.driftSpeed;
    }
    if (q.driftSrc >= 0 || q.driftDst >= 0) {
        if (q.driftSrc < 0 || q.driftDst < 0)
            return bail("drift_src and drift_dst must both be set");
        if (q.driftSrc >= q.devices || q.driftDst >= q.devices)
            return bail("drift link endpoints outside 0.." +
                        std::to_string(q.devices - 1));
        if (q.driftSrc == q.driftDst)
            return bail("drift link endpoints must differ");
        if (q.driftLatency < 0.0 || q.driftTimePerMB < 0.0 ||
            !std::isfinite(q.driftLatency) ||
            !std::isfinite(q.driftTimePerMB))
            return bail("drift_latency and drift_time_per_mb must both "
                        "be >= 0");
        LinkParams link;
        link.latency = q.driftLatency;
        link.timePerMB = q.driftTimePerMB;
        req.delta.link[{std::min(q.driftSrc, q.driftDst),
                        std::max(q.driftSrc, q.driftDst)}] = link;
    }
    return req;
}

std::string
formatResponseLine(const std::string &id, const ServiceLoop::Response &resp)
{
    std::ostringstream os;
    os << '{';
    if (!id.empty())
        os << "\"id\": \"" << jsonEscape(id) << "\", ";
    os << "\"admission\": \"" << admissionName(resp.admission) << "\""
       << ", \"label\": \"" << jsonEscape(resp.report.label) << "\"";
    if (resp.admission == Admission::Accepted) {
        os << ", \"fingerprint\": \"" << resp.report.fingerprint << "\""
           << ", \"plan_hash\": \"" << resp.report.planHash << "\""
           << ", \"source\": \"" << resp.report.source << "\""
           << ", \"found\": " << (resp.report.found ? "true" : "false")
           << ", \"period\": " << resp.report.period
           << ", \"wall_sec\": " << jsonNumber(resp.report.wallSec)
           << ", \"value_sweeps\": " << resp.report.valueSweeps
           << ", \"policy_improvements\": "
           << resp.report.policyImprovements;
        if (resp.report.replanned)
            os << ", \"replanned\": true";
        if (resp.report.stale)
            os << ", \"stale\": true";
        if (resp.report.degraded)
            os << ", \"degraded\": true";
    }
    if (resp.cancelled)
        os << ", \"cancelled\": true";
    if (!resp.error.empty())
        os << ", \"error\": \"" << jsonEscape(resp.error) << "\"";
    os << '}';
    return os.str();
}

} // namespace tessel
