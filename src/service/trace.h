/**
 * @file
 * Line-delimited JSON trace format for the planning daemon.
 *
 * `tessel_service --serve` reads one JSON object per line on stdin and
 * emits one JSON response object per answered (or rejected) query on
 * stdout; bench_service_load replays the same objects in-process. A
 * trace query names a reference-shape instance by coordinates instead
 * of shipping a placement, so traces are both human-writable and
 * guaranteed to fingerprint identically to the batch front-end's
 * queries for the same coordinates:
 *
 *   {"id": "q1", "shape": "V", "variant": "hetero", "devices": 4,
 *    "budget_sec": 5, "tenant": "team-a"}
 *
 * Optional perturbation knobs make cold (guaranteed-miss) traffic
 * expressible in a trace: "nr_cap" overrides maxRepetendMicrobatches
 * and "mem_limit" overrides memLimit — each changes the canonical
 * fingerprint, so a perturbed line exercises the miss/neighbor-seed
 * path against its stored base instance.
 *
 * The parser accepts exactly the flat-object subset the format needs
 * (string / number / bool values, no nesting) and rejects anything
 * malformed with a per-line error instead of crashing the daemon;
 * unknown keys are ignored for forward compatibility.
 */

#ifndef TESSEL_SERVICE_TRACE_H
#define TESSEL_SERVICE_TRACE_H

#include <optional>
#include <string>

#include "service/loop.h"

namespace tessel {

/** One parsed trace line (defaults match the batch front-end). */
struct TraceQuery
{
    std::string id;      ///< echoed verbatim in the response line
    /**
     * Control verb instead of a query: a line `{"cmd": "stats"}` asks
     * the daemon for a live metrics snapshot in-band (answered on
     * stdout like any response). When set, "shape" is not required and
     * every query/replan knob is ignored.
     */
    std::string cmd;
    std::string shape;   ///< V / X / M / NN / K (required)
    std::string variant = "homogeneous"; ///< homogeneous/mem-capped/hetero
    std::string tenant;  ///< admission bucket; empty = anonymous tenant
    int devices = 4;
    double budgetSec = 5.0;
    /** > 0 overrides maxRepetendMicrobatches (perturbation knob). */
    int nrCap = 0;
    /** > 0 overrides memLimit (perturbation knob). */
    long long memLimit = 0;

    // Fault-injection knobs: any of these turns the line into a replan
    // request (ServiceLoop's ReplanRequest overload) against the base
    // instance the remaining coordinates name.
    /** >= 0 drifts this device's speed factor to driftSpeed. */
    int driftDevice = -1;
    double driftSpeed = 0.0;
    /** driftSrc/driftDst >= 0 drift that link's parameters. */
    int driftSrc = -1;
    int driftDst = -1;
    double driftLatency = -1.0;
    double driftTimePerMB = -1.0;
    /** >= 0 fails this device: replan onto the survivor placement. */
    int failDevice = -1;

    bool
    hasDrift() const
    {
        return driftDevice >= 0 || driftSrc >= 0 || driftDst >= 0;
    }
    bool
    hasFailure() const
    {
        return failDevice >= 0;
    }
    bool
    isReplan() const
    {
        return hasDrift() || hasFailure();
    }
    bool
    isControl() const
    {
        return !cmd.empty();
    }
};

/**
 * Parse one trace line. @return false with @p err set on malformed
 * JSON, a non-scalar value, a wrong value type for a known key, or a
 * missing/unknown "shape". Unknown keys are ignored.
 */
bool parseTraceLine(const std::string &line, TraceQuery *out,
                    std::string *err);

/** Serialize @p q as one trace line (no trailing newline). */
std::string formatTraceLine(const TraceQuery &q);

/**
 * Build the PlanQuery a trace line describes: the reference-shape
 * query for (shape, variant, devices, budget) with any perturbation
 * knobs applied (and recorded in the label for readability).
 * @return nullopt with @p err set for unknown coordinates.
 */
std::optional<PlanQuery> makeTraceQuery(const TraceQuery &q,
                                        std::string *err);

/**
 * Build the ReplanRequest a fault-injecting trace line describes: the
 * base query from the plain coordinates plus a ClusterDelta from the
 * drift knobs, or (for fail_device) the degraded survivor query. The
 * trace layer validates here — mixing drift with failure, out-of-range
 * devices, or non-positive drift values — so the daemon answers a
 * malformed line with a per-line error instead of dying on the
 * service's fatal checks. @return nullopt with @p err set on any such
 * problem or when the line is not a replan (isReplan() false).
 */
std::optional<ReplanRequest> makeTraceReplan(const TraceQuery &q,
                                             std::string *err);

/**
 * Serialize one daemon response as a JSON line (no trailing newline):
 * id, label, admission verdict, fingerprint, plan hash, source,
 * found/period/wall_sec, and the error message when any.
 */
std::string formatResponseLine(const std::string &id,
                               const ServiceLoop::Response &resp);

} // namespace tessel

#endif // TESSEL_SERVICE_TRACE_H
