/**
 * @file
 * Line-delimited JSON trace format for the planning daemon.
 *
 * `tessel_service --serve` reads one JSON object per line on stdin and
 * emits one JSON response object per answered (or rejected) query on
 * stdout; bench_service_load replays the same objects in-process. A
 * trace query names a reference-shape instance by coordinates instead
 * of shipping a placement, so traces are both human-writable and
 * guaranteed to fingerprint identically to the batch front-end's
 * queries for the same coordinates:
 *
 *   {"id": "q1", "shape": "V", "variant": "hetero", "devices": 4,
 *    "budget_sec": 5, "tenant": "team-a"}
 *
 * Optional perturbation knobs make cold (guaranteed-miss) traffic
 * expressible in a trace: "nr_cap" overrides maxRepetendMicrobatches
 * and "mem_limit" overrides memLimit — each changes the canonical
 * fingerprint, so a perturbed line exercises the miss/neighbor-seed
 * path against its stored base instance.
 *
 * The parser accepts exactly the flat-object subset the format needs
 * (string / number / bool values, no nesting) and rejects anything
 * malformed with a per-line error instead of crashing the daemon;
 * unknown keys are ignored for forward compatibility.
 */

#ifndef TESSEL_SERVICE_TRACE_H
#define TESSEL_SERVICE_TRACE_H

#include <optional>
#include <string>

#include "service/loop.h"

namespace tessel {

/** One parsed trace line (defaults match the batch front-end). */
struct TraceQuery
{
    std::string id;      ///< echoed verbatim in the response line
    std::string shape;   ///< V / X / M / NN / K (required)
    std::string variant = "homogeneous"; ///< homogeneous/mem-capped/hetero
    std::string tenant;  ///< admission bucket; empty = anonymous tenant
    int devices = 4;
    double budgetSec = 5.0;
    /** > 0 overrides maxRepetendMicrobatches (perturbation knob). */
    int nrCap = 0;
    /** > 0 overrides memLimit (perturbation knob). */
    long long memLimit = 0;
};

/**
 * Parse one trace line. @return false with @p err set on malformed
 * JSON, a non-scalar value, a wrong value type for a known key, or a
 * missing/unknown "shape". Unknown keys are ignored.
 */
bool parseTraceLine(const std::string &line, TraceQuery *out,
                    std::string *err);

/** Serialize @p q as one trace line (no trailing newline). */
std::string formatTraceLine(const TraceQuery &q);

/**
 * Build the PlanQuery a trace line describes: the reference-shape
 * query for (shape, variant, devices, budget) with any perturbation
 * knobs applied (and recorded in the label for readability).
 * @return nullopt with @p err set for unknown coordinates.
 */
std::optional<PlanQuery> makeTraceQuery(const TraceQuery &q,
                                        std::string *err);

/**
 * Serialize one daemon response as a JSON line (no trailing newline):
 * id, label, admission verdict, fingerprint, plan hash, source,
 * found/period/wall_sec, and the error message when any.
 */
std::string formatResponseLine(const std::string &id,
                               const ServiceLoop::Response &resp);

} // namespace tessel

#endif // TESSEL_SERVICE_TRACE_H
