#include "service/loop.h"

#include <algorithm>
#include <cmath>

#include "support/timer.h"

namespace tessel {

const char *
admissionName(Admission a)
{
    switch (a) {
    case Admission::Accepted:
        return "accepted";
    case Admission::QueueFull:
        return "queue-full";
    case Admission::Throttled:
        return "throttled";
    case Admission::ShuttingDown:
        return "shutting-down";
    }
    return "unknown";
}

namespace {

ServiceOptions
withLoopCancel(ServiceOptions opts, const CancelSource &source)
{
    // Every query resolved by the service links options_.cancel; with
    // the loop's source folded in here, shutdown(cancel) reaches every
    // in-flight search without any per-query wiring.
    opts.cancel = opts.cancel.linked(source.token());
    return opts;
}

} // namespace

ServiceLoop::ServiceLoop(ServiceLoopOptions options)
    : options_(std::move(options)),
      service_(withLoopCancel(options_.service, cancelSource_))
{
    options_.queueDepth = std::max<size_t>(1, options_.queueDepth);
    options_.workers = std::max(1, options_.workers);
    MetricsRegistry &reg = MetricsRegistry::instance();
    metrics_.submitted = reg.counter("loop.submitted");
    metrics_.accepted = reg.counter("loop.accepted");
    metrics_.rejectedQueueFull =
        reg.counter("loop.rejected", "verdict", "queue-full");
    metrics_.rejectedThrottled =
        reg.counter("loop.rejected", "verdict", "throttled");
    metrics_.rejectedShutdown =
        reg.counter("loop.rejected", "verdict", "shutting-down");
    metrics_.completed = reg.counter("loop.completed");
    metrics_.workerBusyUs = reg.counter("loop.worker_busy_us");
    metrics_.queueDepth = reg.gauge("loop.queue_depth");
    metrics_.queueHighWater = reg.gauge("loop.queue_high_water");
    metrics_.inFlight = reg.gauge("loop.in_flight");
    if (options_.revalidateIntervalSec > 0.0)
        service_.cache().startRevalidation(options_.revalidateIntervalSec);
    workers_.reserve(static_cast<size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ServiceLoop::~ServiceLoop()
{
    shutdown(/*cancel_in_flight=*/false);
}

bool
ServiceLoop::tenantAdmit(const std::string &tenant)
{
    // Caller holds mu_.
    const auto now =
        options_.clock ? options_.clock() : std::chrono::steady_clock::now();
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
        Bucket bucket;
        const auto cfg = options_.tenantBudgets.find(tenant);
        bucket.budget = cfg != options_.tenantBudgets.end()
                            ? cfg->second
                            : options_.defaultBudget;
        bucket.tokens = std::max(1.0, bucket.budget.burst);
        bucket.last = now;
        it = buckets_.emplace(tenant, bucket).first;
    }
    Bucket &bucket = it->second;
    if (bucket.budget.ratePerSec <= 0.0)
        return true; // unlimited tenant
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last).count();
    bucket.last = now;
    // Saturating refill: steady_clock is monotonic on paper, but
    // suspend/resume and virtualized clocks have been observed stepping
    // it backwards. A negative elapsed must refill nothing (old code
    // *drained* tokens with it, locking the tenant out for as long as
    // the jump was large) — the anchor still resets above, so the lost
    // interval is forgotten rather than double-counted later.
    if (elapsed > 0.0 && std::isfinite(elapsed)) {
        bucket.tokens =
            std::min(std::max(1.0, bucket.budget.burst),
                     bucket.tokens + elapsed * bucket.budget.ratePerSec);
    }
    if (bucket.tokens < 1.0)
        return false;
    bucket.tokens -= 1.0;
    return true;
}

Admission
ServiceLoop::enqueue(Item item, const std::string &tenant,
                     const std::string &label)
{
    Admission verdict = Admission::Accepted;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
        metrics_.submitted->inc();
        if (stop_) {
            verdict = Admission::ShuttingDown;
            ++rejectedShutdown_;
            metrics_.rejectedShutdown->inc();
        } else if (queue_.size() >= options_.queueDepth) {
            verdict = Admission::QueueFull;
            ++rejectedQueueFull_;
            metrics_.rejectedQueueFull->inc();
        } else if (!tenantAdmit(tenant)) {
            verdict = Admission::Throttled;
            ++rejectedThrottled_;
            metrics_.rejectedThrottled->inc();
            Bucket &bucket = buckets_[tenant];
            ++bucket.throttled;
            if (bucket.throttledMetric == nullptr)
                bucket.throttledMetric = MetricsRegistry::instance()
                                             .counter("loop.tenant_throttled",
                                                      "tenant", tenant);
            bucket.throttledMetric->inc();
        } else {
            ++accepted_;
            metrics_.accepted->inc();
        }
    }
    if (verdict != Admission::Accepted) {
        // Rejections surface as a clean per-query response, never as a
        // silent drop: the callback fires inline with the verdict.
        if (item.done) {
            Response resp;
            resp.admission = verdict;
            resp.report.label = label;
            resp.report.source = "rejected";
            resp.error = std::string("rejected: ") + admissionName(verdict) +
                         (verdict == Admission::Throttled
                              ? " (tenant '" + tenant + "' over budget)"
                              : "");
            item.done(resp);
        }
        return verdict;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(item));
        queueHighWater_ = std::max(queueHighWater_, queue_.size());
        metrics_.queueDepth->set(static_cast<int64_t>(queue_.size()));
        metrics_.queueHighWater->setMax(
            static_cast<int64_t>(queue_.size()));
    }
    workCv_.notify_one();
    return verdict;
}

Admission
ServiceLoop::submit(PlanQuery query, const std::string &tenant,
                    Callback done)
{
    const std::string label = query.label;
    Item item;
    item.query = std::move(query);
    item.done = std::move(done);
    return enqueue(std::move(item), tenant, label);
}

Admission
ServiceLoop::submit(ReplanRequest request, const std::string &tenant,
                    Callback done)
{
    // A removal request answers the degraded query; anything else the
    // drifted base. Either way the label reported on rejection is the
    // one the accepted path would have served under.
    const std::string label = request.delta.removesDevices() &&
                                      request.degraded
                                  ? request.degraded->label
                                  : request.base.label;
    Item item;
    item.replan = std::move(request);
    item.done = std::move(done);
    return enqueue(std::move(item), tenant, label);
}

void
ServiceLoop::workerLoop()
{
    for (;;) {
        Item item;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            item = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
            metrics_.queueDepth->set(static_cast<int64_t>(queue_.size()));
            metrics_.inFlight->set(static_cast<int64_t>(inFlight_));
        }

        Response resp;
        resp.admission = Admission::Accepted;
        const Stopwatch busy;
        if (item.replan)
            service_.replan(*item.replan, &resp.report);
        else
            service_.runOne(item.query, &resp.report);
        metrics_.workerBusyUs->inc(
            static_cast<uint64_t>(busy.seconds() * 1e6));
        resp.cancelled = cancelSource_.cancelled();
        if (resp.cancelled)
            resp.error = "cancelled by shutdown";
        if (item.done)
            item.done(resp);

        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            ++completed_;
            metrics_.completed->inc();
            metrics_.inFlight->set(static_cast<int64_t>(inFlight_));
        }
        idleCv_.notify_all();
    }
}

void
ServiceLoop::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ServiceLoop::shutdown(bool cancel_in_flight)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ && workers_.empty())
            return; // already shut down
        stop_ = true;
    }
    if (cancel_in_flight)
        cancelSource_.cancel();
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    service_.cache().stopRevalidation();
    // Budget-missed replans may still be searching in the background;
    // a daemon shutdown waits them out (they publish to the store, so
    // the work is not wasted — the next process serves them as hits).
    service_.waitBackgroundReplans();
}

bool
ServiceLoop::accepting() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !stop_;
}

LoopStats
ServiceLoop::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    LoopStats out;
    out.submitted = submitted_;
    out.accepted = accepted_;
    out.rejectedQueueFull = rejectedQueueFull_;
    out.rejectedThrottled = rejectedThrottled_;
    out.rejectedShutdown = rejectedShutdown_;
    out.completed = completed_;
    out.queueDepth = queue_.size();
    out.queueHighWater = queueHighWater_;
    out.inFlight = inFlight_;
    for (const auto &kv : buckets_) {
        if (kv.second.throttled > 0)
            out.throttledByTenant[kv.first] = kv.second.throttled;
    }
    return out;
}

} // namespace tessel
