/**
 * @file
 * Planning daemon core: a long-running service loop decoupled from
 * process lifetime.
 *
 * The batch front-end (service/service.h) answers one batch and
 * returns; a production planner instead runs for the process lifetime
 * and drains a *stream* of queries. ServiceLoop owns that stream: a
 * bounded admission queue, a fixed team of dispatch workers pulling
 * from it (each answering through PlanningService::runOne, so the
 * cache/seeding/verification pipeline is byte-for-byte the batch one —
 * daemon-served plans are bit-identical to batch answers for the same
 * query), per-tenant token-bucket budgets, and a shutdown path that
 * either drains gracefully or cancels in-flight searches through the
 * same CancelToken plumbing the batch path uses.
 *
 * Admission control: submit() never blocks and never silently drops.
 * A query is either accepted (its callback will fire exactly once with
 * the answer) or rejected *synchronously* with a typed verdict — queue
 * full, tenant over budget, or loop shutting down — and the callback
 * fires immediately with that verdict and a human-readable error, so
 * every submitted query gets exactly one response either way.
 *
 * Token buckets: each tenant holds `burst` tokens refilled at
 * `ratePerSec`; a submission costs one token. A rate of 0 disables
 * throttling for that tenant (the default — admission control is then
 * queue-depth only).
 *
 * Cancellation semantics: shutdown(cancel_in_flight = true) trips the
 * loop's CancelSource, which resolveOptions() has linked into every
 * query's search. In-flight searches return early with their best
 * truncated answer; cancelled answers are delivered (flagged) but
 * never cached (see PlanningService::runBatch docs). Queued-but-
 * unstarted queries still run — against a tripped token their search
 * returns immediately — so the exactly-one-response contract survives
 * shutdown.
 */

#ifndef TESSEL_SERVICE_LOOP_H
#define TESSEL_SERVICE_LOOP_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "support/metrics.h"

namespace tessel {

/** Typed admission verdict for one streamed query. */
enum class Admission
{
    Accepted,     ///< enqueued; the callback will fire with the answer
    QueueFull,    ///< rejected: admission queue at capacity
    Throttled,    ///< rejected: tenant token bucket empty
    ShuttingDown, ///< rejected: loop no longer accepts work
};

/** Stable lowercase name of @p a ("accepted", "queue-full", ...). */
const char *admissionName(Admission a);

/** Per-tenant token-bucket budget. */
struct TenantBudget
{
    /** Sustained queries per second; <= 0 disables throttling. */
    double ratePerSec = 0.0;
    /** Bucket capacity: how many queries may arrive back-to-back. */
    double burst = 8.0;
};

/** Daemon construction knobs. */
struct ServiceLoopOptions
{
    /** Underlying planning-service knobs (cache dir, verification,
     * per-query budget override, neighbor seeding...). The loop links
     * its own CancelSource into `service.cancel`. */
    ServiceOptions service;
    /** Admission queue capacity; submissions beyond it are rejected
     * with Admission::QueueFull (clamped to >= 1). */
    size_t queueDepth = 64;
    /** Dispatch workers answering queries concurrently (>= 1). Each
     * runs complete queries through PlanningService::runOne. */
    int workers = 2;
    /** Budget applied to tenants without an explicit entry. */
    TenantBudget defaultBudget;
    /** Per-tenant budget overrides (keyed by tenant name). */
    std::map<std::string, TenantBudget> tenantBudgets;
    /** > 0 starts the cache's background revalidation thread with this
     * sweep interval (seconds). */
    double revalidateIntervalSec = 0.0;
    /** Clock the token buckets refill against; empty uses the real
     * steady clock. Injectable so tests can replay pathological clock
     * behavior (suspend/resume, virtualized clocks stepping backwards)
     * deterministically. */
    std::function<std::chrono::steady_clock::time_point()> clock;
};

/** Aggregate daemon counters (monotonic over the loop lifetime). */
struct LoopStats
{
    uint64_t submitted = 0;         ///< every submit() call
    uint64_t accepted = 0;          ///< admitted to the queue
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedThrottled = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t completed = 0;         ///< callbacks fired with an answer
    size_t queueDepth = 0;          ///< currently queued (snapshot)
    size_t queueHighWater = 0;      ///< max queueDepth ever observed
    size_t inFlight = 0;            ///< currently being answered
    /** Throttled rejections by tenant (sums to rejectedThrottled). */
    std::map<std::string, uint64_t> throttledByTenant;
};

class ServiceLoop
{
  public:
    /** One streamed answer (or a synchronous rejection). */
    struct Response
    {
        Admission admission = Admission::Accepted;
        /** Filled for accepted queries (fingerprint, plan hash, source,
         * period, wall time); only `label` is set on rejections. */
        QueryReport report;
        /** The loop's CancelSource had tripped by completion time: the
         * answer may be truncated and was not cached. */
        bool cancelled = false;
        /** Human-readable cause; empty on a clean answer. */
        std::string error;
    };

    /**
     * Completion callback. Fires exactly once per submit(): inline for
     * rejections, from a dispatch worker for accepted queries — so it
     * must be thread-safe against other queries' callbacks.
     */
    using Callback = std::function<void(const Response &)>;

    /** Starts the workers (and revalidation, if configured). */
    explicit ServiceLoop(ServiceLoopOptions options);

    /** Graceful shutdown: drains the queue, joins the workers. */
    ~ServiceLoop();

    ServiceLoop(const ServiceLoop &) = delete;
    ServiceLoop &operator=(const ServiceLoop &) = delete;

    /**
     * Admit one query for @p tenant. Never blocks: returns the verdict
     * immediately, and @p done always fires exactly once (inline, with
     * the verdict, when not Accepted).
     */
    Admission submit(PlanQuery query, const std::string &tenant,
                     Callback done);

    /**
     * Admit one replan request (cluster drift or device failure) for
     * @p tenant. Same admission contract as the query overload; an
     * accepted request is answered through PlanningService::replan, so
     * the response report may carry `stale` (budget-missed, old plan
     * conservatively retimed) or `degraded` (survivor placement after
     * a failure) — both are verified, servable answers, never errors.
     */
    Admission submit(ReplanRequest request, const std::string &tenant,
                     Callback done);

    /** Block until the queue is empty and no query is in flight. */
    void drain();

    /**
     * Stop admitting work and join the workers. Queued and in-flight
     * queries still receive their callbacks. With @p cancel_in_flight,
     * the loop's CancelSource trips first, so running searches return
     * early (truncated answers are flagged `cancelled` and not
     * cached) instead of running to completion. Idempotent.
     */
    void shutdown(bool cancel_in_flight = false);

    /** @return whether submit() can still accept work. */
    bool accepting() const;

    LoopStats stats() const;

    PlanningService &service() { return service_; }

  private:
    struct Item
    {
        PlanQuery query;
        /** Set for replan submissions; workers then dispatch through
         * PlanningService::replan instead of runOne (query is unused). */
        std::optional<ReplanRequest> replan;
        Callback done;
    };

    /** Shared admission path for both submit overloads. */
    Admission enqueue(Item item, const std::string &tenant,
                      const std::string &label);

    /** Token bucket state for one tenant (guarded by mu_). */
    struct Bucket
    {
        TenantBudget budget;
        double tokens = 0.0;
        std::chrono::steady_clock::time_point last;
        uint64_t throttled = 0; ///< rejections charged to this tenant
        /** `loop.tenant_throttled{tenant=...}` handle, registered on
         * the first throttle (rejections are off the accept path). */
        Counter *throttledMetric = nullptr;
    };

    /** Refill and charge @p tenant's bucket; false when throttled. */
    bool tenantAdmit(const std::string &tenant);

    void workerLoop();

    ServiceLoopOptions options_;
    CancelSource cancelSource_;
    PlanningService service_;

    /** Registry handles (`loop.*`), registered once in the constructor.
     * Unlike the store mirror these are fed at the event sites — the
     * admission path already serializes on mu_, and a registry update
     * is a wait-free relaxed atomic op on top. */
    struct LoopMetrics
    {
        Counter *submitted = nullptr;
        Counter *accepted = nullptr;
        Counter *rejectedQueueFull = nullptr;
        Counter *rejectedThrottled = nullptr;
        Counter *rejectedShutdown = nullptr;
        Counter *completed = nullptr;
        Counter *workerBusyUs = nullptr;
        Gauge *queueDepth = nullptr;
        Gauge *queueHighWater = nullptr;
        Gauge *inFlight = nullptr;
    };
    LoopMetrics metrics_;

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< queue non-empty or stopping
    std::condition_variable idleCv_; ///< queue empty and nothing in flight
    std::deque<Item> queue_;
    std::map<std::string, Bucket> buckets_;
    bool stop_ = false;
    size_t inFlight_ = 0;
    size_t queueHighWater_ = 0;
    uint64_t submitted_ = 0;
    uint64_t accepted_ = 0;
    uint64_t rejectedQueueFull_ = 0;
    uint64_t rejectedThrottled_ = 0;
    uint64_t rejectedShutdown_ = 0;
    uint64_t completed_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace tessel

#endif // TESSEL_SERVICE_LOOP_H
