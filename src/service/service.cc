#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <unordered_map>

#include "placement/shapes.h"
#include "store/adapt.h"
#include "store/serialize.h"
#include "support/logging.h"
#include "support/threadpool.h"
#include "support/timer.h"
#include "support/tracing.h"

#include <cstring>

namespace tessel {

PlanningService::PlanningService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheDir,
             PlanCacheOptions{options_.memoryCapacity,
                              options_.verifyOnLoad})
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    metrics_.answerMemory =
        reg.histogram("service.answer_ms", "source", "memory");
    metrics_.answerDisk =
        reg.histogram("service.answer_ms", "source", "disk");
    metrics_.answerSearch =
        reg.histogram("service.answer_ms", "source", "search");
    metrics_.answerStale =
        reg.histogram("service.answer_ms", "source", "stale");
    metrics_.staleServed = reg.counter("service.stale_served");
    metrics_.degradedServed = reg.counter("service.degraded_served");
}

void
PlanningService::observeAnswer(const QueryReport &report) const
{
    const double ms = report.wallSec * 1e3;
    if (std::strcmp(report.source, "memory") == 0)
        metrics_.answerMemory->observe(ms);
    else if (std::strcmp(report.source, "disk") == 0)
        metrics_.answerDisk->observe(ms);
    else if (std::strcmp(report.source, "stale") == 0)
        metrics_.answerStale->observe(ms);
    else
        metrics_.answerSearch->observe(ms);
    if (report.stale)
        metrics_.staleServed->inc();
    if (report.degraded)
        metrics_.degradedServed->inc();
}

PlanningService::~PlanningService()
{
    waitBackgroundReplans();
}

namespace {

/** Resolution of one unique instance within a batch. */
struct UniqueInstance
{
    Hash128 fingerprint;
    TesselOptions effective; ///< budget/cancel/threads applied
    int firstQuery = 0;      ///< index of the first query mapping here
    PlanCache::Source source = PlanCache::Source::Miss;
    bool searched = false;
    double wallSec = 0.0;
    TesselResult result;
    /** Warm-start seed adapted from a neighbor; referenced by the
     * search options, so it must outlive the solve (it does: instances
     * live in a vector that no longer grows once solving starts). */
    SearchSeed seed;
    bool seeded = false;
    std::string seededFrom; ///< neighbor fingerprint (hex) when seeded
    /** Solver work the adaptation itself spent (retime path). */
    SearchBreakdown seedWork;
};

/**
 * Try to warm-start a missed instance from the store's neighbor index:
 * rank stored instances by similarity, fetch each candidate raw, and
 * keep the first one that adapts into a verified plan for this query.
 * On success inst.seed carries the virtual incumbent (period + window
 * order) for the search. Failures are free beyond the adaptation
 * attempt itself — the search simply runs cold.
 */
bool
trySeedFromNeighbors(PlanCache &cache, const Placement &placement,
                     UniqueInstance &inst, size_t k)
{
    const InstanceMeta meta =
        computeInstanceMeta(placement, inst.effective);
    for (const NeighborIndex::Neighbor &near : cache.neighbors(meta, k)) {
        const std::optional<TesselResult> stored =
            cache.peek(near.fingerprint);
        if (!stored)
            continue;
        // Exact phase reuse is licensed only when the stored instance's
        // phase-relevant options (budgets, memory model) digest equals
        // the query's — adaptation then proves placement identity on
        // its own before trusting the attestation.
        InstanceMeta stored_meta;
        const bool phases_allowed =
            cache.neighborMeta(near.fingerprint, &stored_meta) &&
            stored_meta.phaseOptions == meta.phaseOptions;
        AdaptOutcome adapted = adaptResultToQuery(
            placement, inst.effective, *stored, phases_allowed);
        inst.seedWork.merge(adapted.breakdown);
        if (!adapted.ok)
            continue;
        inst.seed = std::move(adapted.seed);
        inst.seeded = true;
        inst.seededFrom = near.fingerprint.hex();
        return true;
    }
    return false;
}

const char *
sourceName(PlanCache::Source source, bool searched)
{
    if (searched)
        return "search";
    return source == PlanCache::Source::Memory ? "memory" : "disk";
}

} // namespace

bool
PlanningService::parallelBatch() const
{
    return options_.numThreads != 1 &&
           (options_.numThreads > 1 || ThreadPool::hardwareThreads() > 1);
}

ThreadPool &
PlanningService::pool()
{
    // One persistent pool per service: the daemon loop answers batches
    // for the process lifetime, and constructing/joining a worker set
    // per phase (the pre-daemon behavior) costs two thread-team
    // spawn/join cycles per batch. Lazy so a serial service (or one
    // that only ever takes the inline path) never spawns workers.
    std::lock_guard<std::mutex> lock(poolMu_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(options_.numThreads);
    return *pool_;
}

TesselOptions
PlanningService::resolveOptions(const PlanQuery &query) const
{
    TesselOptions eff = query.effectiveOptions();
    if (options_.perQueryBudgetSec > 0.0)
        eff.totalBudgetSec = options_.perQueryBudgetSec;
    eff.cancel = eff.cancel.linked(options_.cancel);
    return eff;
}

BatchReport
PlanningService::runBatch(const std::vector<PlanQuery> &queries)
{
    const Stopwatch batch_watch;
    BatchReport report;
    report.queries.resize(queries.size());

    // Phase 1: fingerprint + dedup. Identical instances (whatever their
    // labels) share one UniqueInstance slot.
    std::vector<UniqueInstance> unique;
    std::unordered_map<Hash128, size_t, Hash128Hasher> slot_of;
    std::vector<size_t> query_slot(queries.size());
    const bool parallel_batch = parallelBatch();
    for (size_t q = 0; q < queries.size(); ++q) {
        TesselOptions eff = resolveOptions(queries[q]);
        const Hash128 fp = fingerprintQuery(queries[q].placement, eff);
        const auto it = slot_of.find(fp);
        if (it != slot_of.end()) {
            query_slot[q] = it->second;
            continue;
        }
        UniqueInstance inst;
        inst.fingerprint = fp;
        inst.effective = std::move(eff);
        inst.firstQuery = static_cast<int>(q);
        slot_of.emplace(fp, unique.size());
        query_slot[q] = unique.size();
        unique.push_back(std::move(inst));
    }
    report.uniqueInstances = unique.size();

    // Phase 2: answer from the cache (memory, then verified disk). The
    // expensive part of a disk hit — decode, comm-expansion recompute,
    // oracle verification — runs outside the cache lock, so lookups of
    // distinct entries fan out over the pool on warm batches. Each slot
    // is written by exactly one task; `hit[u]` records the outcome.
    std::vector<uint8_t> hit(unique.size(), 0);
    auto lookup = [&](size_t u) {
        UniqueInstance &inst = unique[u];
        const Stopwatch watch;
        std::optional<TesselResult> cached =
            cache_.get(inst.fingerprint,
                       queries[inst.firstQuery].placement, inst.effective,
                       &inst.source);
        inst.wallSec = watch.seconds();
        if (cached) {
            inst.result = std::move(*cached);
            hit[u] = 1;
        }
    };
    if (parallel_batch && unique.size() > 1) {
        ThreadPool &p = pool();
        for (size_t u = 0; u < unique.size(); ++u)
            p.submit([&lookup, u] { lookup(u); });
        p.wait();
    } else {
        for (size_t u = 0; u < unique.size(); ++u)
            lookup(u);
    }
    std::vector<size_t> missing;
    for (size_t u = 0; u < unique.size(); ++u)
        if (!hit[u])
            missing.push_back(u);

    // Phase 3: fan the misses out. A pooled solve runs its own search
    // serially (numThreads = 1) so batch parallelism is not multiplied
    // by per-search parallelism; with a single miss (or a serial
    // service) the search keeps its own multi-threaded sweep. Plans are
    // identical either way by the search's determinism contract, and
    // numThreads is excluded from the fingerprint for the same reason.
    auto solve = [&](size_t u, bool pooled) {
        UniqueInstance &inst = unique[u];
        TesselOptions opts = inst.effective;
        if (pooled)
            opts.numThreads = 1;
        // Adaptation time is charged to the query's wall clock: the
        // warm/cold comparisons the bench and CI make are only honest
        // if the cost of obtaining the seed is part of the warm path.
        const Stopwatch watch;
        if (options_.neighborSeed &&
            trySeedFromNeighbors(cache_, queries[inst.firstQuery].placement,
                                 inst, options_.neighborK)) {
            opts.seed = &inst.seed;
        }
        inst.result =
            tesselSearch(queries[inst.firstQuery].placement, opts);
        inst.wallSec = watch.seconds();
        inst.searched = true;
        inst.result.breakdown.merge(inst.seedWork);
        // A search that observed a cancellation (daemon shutdown, batch
        // abort) may have been truncated mid-sweep; its answer is valid
        // for *this* caller but must not be cached — cancellation is
        // not part of the fingerprint, so an uncancelled future query
        // would be served the truncated plan as if fully searched.
        if (!inst.effective.cancel.cancelled()) {
            cache_.put(inst.fingerprint,
                       queries[inst.firstQuery].placement, inst.effective,
                       inst.result);
        }
    };
    if (parallel_batch && missing.size() > 1) {
        ThreadPool &p = pool();
        for (size_t u : missing)
            p.submit([&solve, u] { solve(u, true); });
        p.wait();
    } else {
        for (size_t u : missing)
            solve(u, false);
    }

    // Phase 4: per-query rows (deduplicated queries share the unique
    // instance's answer and timing).
    for (size_t q = 0; q < queries.size(); ++q) {
        const UniqueInstance &inst = unique[query_slot[q]];
        QueryReport &row = report.queries[q];
        row.label = queries[q].label;
        row.fingerprint = inst.fingerprint.hex();
        row.planHash = resultPlanDigest(inst.result).hex();
        row.source = sourceName(inst.source, inst.searched);
        row.found = inst.result.found;
        row.period = inst.result.period;
        row.wallSec = inst.wallSec;
        row.valueSweeps = inst.result.breakdown.valueSweeps;
        row.policyImprovements =
            inst.result.breakdown.policyImprovements;
        if (inst.seeded) {
            row.seededFrom = inst.seededFrom;
            row.seedMakespan = inst.result.breakdown.seedMakespan;
            row.seedNodesPruned = inst.result.breakdown.seededNodesPruned;
        }
    }
    for (const UniqueInstance &inst : unique) {
        if (inst.searched)
            ++report.searches;
        else if (inst.source == PlanCache::Source::Memory)
            ++report.memoryHits;
        else
            ++report.diskHits;
    }

    report.wallSec = batch_watch.seconds();
    report.throughputQps =
        report.wallSec > 0.0
            ? static_cast<double>(queries.size()) / report.wallSec
            : 0.0;
    report.cacheStats = cache_.stats();
    return report;
}

TesselResult
PlanningService::searchMiss(const PlanQuery &query, const TesselOptions &eff,
                            const Hash128 &fp, QueryReport *report)
{
    UniqueInstance inst;
    inst.fingerprint = fp;
    inst.effective = eff;
    TesselOptions opts = eff;
    if (options_.neighborSeed) {
        TraceSpan span("seed-adapt");
        if (trySeedFromNeighbors(cache_, query.placement, inst,
                                 options_.neighborK)) {
            opts.seed = &inst.seed;
            span.setLabel(inst.seededFrom);
        }
    }
    TesselResult result = tesselSearch(query.placement, opts);
    result.breakdown.merge(inst.seedWork);
    // Same cancellation guard as the batch path: truncated-by-cancel
    // results answer the caller but never enter the store.
    if (!eff.cancel.cancelled())
        cache_.put(fp, query.placement, eff, result);
    if (report) {
        report->source = "search";
        if (inst.seeded) {
            report->seededFrom = inst.seededFrom;
            report->seedMakespan = result.breakdown.seedMakespan;
            report->seedNodesPruned = result.breakdown.seededNodesPruned;
        }
    }
    return result;
}

TesselResult
PlanningService::runOne(const PlanQuery &query, QueryReport *report)
{
    TraceSpan span("query");
    span.setLabel(query.label);
    const TesselOptions eff = resolveOptions(query);
    const Hash128 fp = fingerprintQuery(query.placement, eff);
    const Stopwatch watch;
    if (report) {
        report->label = query.label;
        report->fingerprint = fp.hex();
    }
    PlanCache::Source source = PlanCache::Source::Miss;
    std::optional<TesselResult> cached =
        cache_.get(fp, query.placement, eff, &source);
    TesselResult result;
    if (cached) {
        result = std::move(*cached);
        if (report)
            report->source = sourceName(source, false);
    } else {
        result = searchMiss(query, eff, fp, report);
    }
    // Solver effort rides on the span so a Perfetto timeline shows what
    // each query cost, not just how long it took (zeros for cache hits).
    span.setArg("value_sweeps", result.breakdown.valueSweeps);
    span.setArg("policy_improvements", result.breakdown.policyImprovements);
    span.setArg("seed_nodes_pruned", result.breakdown.seededNodesPruned);
    if (report) {
        report->planHash = resultPlanDigest(result).hex();
        report->found = result.found;
        report->period = result.period;
        report->wallSec = watch.seconds();
        report->valueSweeps = result.breakdown.valueSweeps;
        report->policyImprovements = result.breakdown.policyImprovements;
        observeAnswer(*report);
    }
    return result;
}

PlanQuery
makeDriftedQuery(const ReplanRequest &request)
{
    if (request.delta.removesDevices()) {
        fatal_if(!request.degraded,
                 "replan: a device-removal delta needs a degraded "
                 "survivor query (the old placement references the dead "
                 "device)");
        return *request.degraded;
    }
    PlanQuery drifted = request.base;
    ClusterModel base_model;
    if (drifted.cluster)
        base_model = *drifted.cluster;
    else if (drifted.options.cluster)
        base_model = *drifted.options.cluster;
    drifted.cluster = std::make_shared<ClusterModel>(applyDelta(
        base_model, request.delta, drifted.placement.numDevices()));
    drifted.options.cluster = nullptr; // superseded by the owning field
    if (!request.delta.empty())
        drifted.label += "/drift";
    return drifted;
}

namespace {

/**
 * State a replan search needs to outlive the serving thread: when the
 * latency budget expires, the caller walks away with the retimed stale
 * answer while the search keeps running in the background — everything
 * it references (the drifted query owning the cluster model, the
 * effective options pointing into it, the seed and shared lowering)
 * rides along in one shared_ptr.
 */
struct ReplanTask
{
    PlanQuery query;
    TesselOptions effective;
    Hash128 fingerprint;
    ReplanSeed seed;
};

} // namespace

TesselResult
PlanningService::replan(const ReplanRequest &request, QueryReport *report)
{
    reapBackgroundReplans();

    const Stopwatch watch;
    const bool removal = request.delta.removesDevices();
    const PlanQuery drifted = makeDriftedQuery(request);
    TraceSpan span("replan");
    span.setLabel(drifted.label);
    const TesselOptions eff = resolveOptions(drifted);
    const Hash128 fp = fingerprintQuery(drifted.placement, eff);
    if (report) {
        report->label = drifted.label;
        report->fingerprint = fp.hex();
        report->replanned = true;
        report->degraded = removal;
    }
    auto finish = [&](TesselResult result) {
        span.setArg("value_sweeps", result.breakdown.valueSweeps);
        span.setArg("policy_improvements",
                    result.breakdown.policyImprovements);
        span.setArg("seed_nodes_pruned",
                    result.breakdown.seededNodesPruned);
        if (report) {
            report->planHash = resultPlanDigest(result).hex();
            report->found = result.found;
            report->period = result.period;
            report->wallSec = watch.seconds();
            report->valueSweeps = result.breakdown.valueSweeps;
            report->policyImprovements =
                result.breakdown.policyImprovements;
            observeAnswer(*report);
        }
        return result;
    };

    // Replans key by the *drifted* instance's fingerprint: a repeat of
    // the same drift — or a background replan that already published —
    // is a plain cache hit, fresh by construction.
    PlanCache::Source source = PlanCache::Source::Miss;
    if (std::optional<TesselResult> cached =
            cache_.get(fp, drifted.placement, eff, &source)) {
        if (report)
            report->source = sourceName(source, false);
        return finish(std::move(*cached));
    }

    // Fetch the plan currently served for the base instance. A removal
    // changed the placement itself, so there is nothing to retime (the
    // old plan schedules blocks on a device that no longer exists); a
    // missing or infeasible base plan leaves nothing either. Both fall
    // through to the ordinary miss pipeline — neighbor seeding still
    // applies, so a degraded query close to a stored instance stays
    // cheap.
    std::optional<TesselResult> served;
    bool phases_ok = false;
    if (!removal) {
        const TesselOptions base_eff = resolveOptions(request.base);
        const Hash128 base_fp =
            fingerprintQuery(request.base.placement, base_eff);
        served =
            cache_.get(base_fp, request.base.placement, base_eff, nullptr);
        // Cluster drift leaves every phase-relevant knob untouched, but
        // the exact-phase license is computed, never assumed.
        phases_ok =
            phaseOptionsDigest(base_eff) == phaseOptionsDigest(eff);
        if (served && report)
            report->seededFrom = base_fp.hex();
    }
    if (!served || !served->found)
        return finish(searchMiss(drifted, eff, fp, report));

    // Retime the served plan under the drifted costs in the foreground:
    // the retimed plan is both the search's opening incumbent and the
    // conservative answer handed out if the search misses the budget.
    auto task = std::make_shared<ReplanTask>();
    task->query = drifted; // owns the drifted cluster eff points into
    task->effective = eff;
    task->fingerprint = fp;
    task->seed = prepareReplanSeed(drifted.placement, task->effective,
                                   *served, &request.delta, phases_ok);
    if (!task->seed.ok)
        return finish(searchMiss(drifted, eff, fp, report));
    if (report)
        report->seedMakespan = task->seed.seed.makespan;

    // The full replan runs with the query's own (fingerprinted) budgets
    // — replanBudgetSec bounds only how long this caller *waits*, never
    // how hard the search tries, so the published plan is bit-identical
    // to a cold search of the drifted instance.
    auto promise = std::make_shared<std::promise<TesselResult>>();
    std::future<TesselResult> future = promise->get_future();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread worker([this, task, promise, done] {
        TesselOptions opts = task->effective;
        opts.seed = &task->seed.seed;
        if (task->seed.lowered)
            opts.lowered = &*task->seed.lowered;
        TesselResult result = tesselSearch(task->query.placement, opts);
        result.breakdown.merge(task->seed.work);
        if (!opts.cancel.cancelled()) {
            cache_.put(task->fingerprint, task->query.placement,
                       task->effective, result);
        }
        promise->set_value(std::move(result));
        done->store(true, std::memory_order_release);
    });

    const double budget = options_.replanBudgetSec;
    bool ready = true;
    {
        // The race: seeded search vs. the caller's latency budget.
        TraceSpan race("race");
        if (budget > 0.0) {
            ready =
                future.wait_for(std::chrono::duration<double>(budget)) ==
                std::future_status::ready;
        } else {
            future.wait();
        }
        race.setArg("search_won", ready ? 1 : 0);
    }
    if (ready) {
        worker.join();
        if (report)
            report->source = "search";
        return finish(future.get());
    }

    // Budget missed: hand the search to the background (it publishes to
    // the store on completion) and serve the old plan retimed under the
    // drifted costs — oracle-verified feasible by prepareReplanSeed,
    // conservatively suboptimal, flagged stale. Never cached: the store
    // only ever holds the search's own answer for this fingerprint.
    {
        std::lock_guard<std::mutex> lock(bgMu_);
        bg_.push_back(BackgroundReplan{std::move(worker), done});
    }
    if (report) {
        report->stale = true;
        report->source = "stale";
    }
    return finish(task->seed.retimedResult);
}

void
PlanningService::reapBackgroundReplans()
{
    std::vector<std::thread> finished;
    {
        std::lock_guard<std::mutex> lock(bgMu_);
        std::vector<BackgroundReplan> keep;
        for (BackgroundReplan &bg : bg_) {
            if (bg.done->load(std::memory_order_acquire))
                finished.push_back(std::move(bg.thread));
            else
                keep.push_back(std::move(bg));
        }
        bg_.swap(keep);
    }
    for (std::thread &t : finished)
        if (t.joinable())
            t.join();
}

void
PlanningService::waitBackgroundReplans()
{
    std::vector<BackgroundReplan> pending;
    {
        std::lock_guard<std::mutex> lock(bgMu_);
        pending.swap(bg_);
    }
    for (BackgroundReplan &bg : pending)
        if (bg.thread.joinable())
            bg.thread.join();
}

std::optional<PlanQuery>
referenceShapeQuery(const std::string &shape, const std::string &variant,
                    int num_devices, double budget_sec)
{
    static const char *const kShapes[] = {"V", "X", "M", "NN", "K"};
    const bool known =
        std::find_if(std::begin(kShapes), std::end(kShapes),
                     [&](const char *s) { return shape == s; }) !=
        std::end(kShapes);
    if (!known || num_devices < 2 || num_devices % 2 != 0)
        return std::nullopt;

    TesselOptions base;
    base.totalBudgetSec = budget_sec;
    base.repetendBudgetSec =
        budget_sec > 0.0 ? std::min(1.0, budget_sec) : 1.0;
    base.phaseBudgetSec =
        budget_sec > 0.0 ? std::min(5.0, budget_sec) : 5.0;

    PlanQuery query;
    query.label = shape + "/" + variant;
    query.options = base;
    if (variant == "homogeneous") {
        query.placement = makeShapeByName(shape.c_str(), num_devices);
    } else if (variant == "mem-capped") {
        query.placement = makeShapeByName(shape.c_str(), num_devices);
        // Unit-memory shapes hold at most one activation per in-flight
        // micro-batch and device; a cap of 4 forces the memory pruning
        // paths without making any shape infeasible.
        query.options.memLimit = 4;
    } else if (variant == "hetero") {
        HeteroShape hs = makeHeteroShapeByName(shape.c_str(), num_devices);
        query.placement = std::move(hs.placement);
        query.options.edgeMB = std::move(hs.edgeMB);
        query.cluster =
            std::make_shared<ClusterModel>(std::move(hs.cluster));
    } else {
        return std::nullopt;
    }
    return query;
}

std::vector<PlanQuery>
referenceShapeQueries(int num_devices, bool include_hetero,
                      double budget_sec)
{
    std::vector<PlanQuery> out;
    const char *shapes[] = {"V", "X", "M", "NN", "K"};
    for (const char *shape : shapes) {
        out.push_back(*referenceShapeQuery(shape, "homogeneous",
                                           num_devices, budget_sec));
        out.push_back(*referenceShapeQuery(shape, "mem-capped",
                                           num_devices, budget_sec));
        if (include_hetero)
            out.push_back(*referenceShapeQuery(shape, "hetero",
                                               num_devices, budget_sec));
    }
    return out;
}

} // namespace tessel
