#include "core/repetend.h"

#include <algorithm>

#include "support/logging.h"

namespace tessel {

int
enumerateRepetends(
    const Placement &placement, int nr,
    const std::function<bool(const RepetendAssignment &)> &yield)
{
    fatal_if(nr < 1, "enumerateRepetends: nr must be >= 1");
    const int k = placement.numBlocks();
    const std::vector<int> &topo = placement.topoOrder();

    std::vector<int> r(k, -1);
    int produced = 0;
    bool stopped = false;

    // DFS over specs in topological order; each spec's index is bounded
    // above by the minimum index among its dependencies (Property 4.2).
    std::function<void(int)> recurse = [&](int pos) {
        if (stopped)
            return;
        if (pos == k) {
            int lo = nr, hi = -1;
            for (int v : r) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            if (lo != 0 || hi != nr - 1)
                return; // Canonical form violation.
            RepetendAssignment a;
            a.r = r;
            a.numMicrobatches = nr;
            ++produced;
            if (!yield(a))
                stopped = true;
            return;
        }
        const int spec = topo[pos];
        int ub = nr - 1;
        for (int dep : placement.block(spec).deps)
            ub = std::min(ub, r[dep]);
        for (int v = ub; v >= 0 && !stopped; --v) {
            r[spec] = v;
            recurse(pos + 1);
        }
        r[spec] = -1;
    };
    recurse(0);
    return produced;
}

std::vector<RepetendAssignment>
allRepetends(const Placement &placement, int nr)
{
    std::vector<RepetendAssignment> out;
    enumerateRepetends(placement, nr, [&](const RepetendAssignment &a) {
        out.push_back(a);
        return true;
    });
    return out;
}

std::vector<Mem>
repetendEntryMem(const Placement &placement,
                 const RepetendAssignment &assign)
{
    std::vector<Mem> entry(placement.numDevices(), 0);
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const BlockSpec &b = placement.block(i);
        for (DeviceId d : b.devices)
            entry[d] += static_cast<Mem>(assign.r[i]) * b.memory;
    }
    return entry;
}

std::vector<BlockRef>
warmupBlocks(const Placement &placement, const RepetendAssignment &assign)
{
    std::vector<BlockRef> out;
    for (int i = 0; i < placement.numBlocks(); ++i)
        for (int n = 0; n < assign.r[i]; ++n)
            out.push_back({i, n});
    return out;
}

std::vector<BlockRef>
cooldownBlocks(const Placement &placement, const RepetendAssignment &assign)
{
    std::vector<BlockRef> out;
    for (int i = 0; i < placement.numBlocks(); ++i)
        for (int n = assign.r[i] + 1; n < assign.numMicrobatches; ++n)
            out.push_back({i, n});
    return out;
}

int
calMaxInflight(const Placement &placement, Mem mem_limit,
               const std::vector<Mem> &initial_mem, int hard_cap)
{
    fatal_if(hard_cap < 1, "calMaxInflight: hard_cap must be >= 1");
    if (mem_limit >= kUnlimitedMem)
        return hard_cap;

    int max_inflight = hard_cap;
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        // Memory one in-flight micro-batch retains on this device: all
        // its forward allocations before any backward release.
        Mem hold = 0;
        for (int i : placement.blocksOnDevice(d)) {
            const Mem m = placement.block(i).memory;
            if (m > 0)
                hold += m;
        }
        if (hold <= 0)
            continue;
        const Mem base =
            initial_mem.empty() ? 0 : initial_mem[d];
        const Mem avail = mem_limit - base;
        if (avail < hold)
            return 1; // Even one in-flight micro-batch barely fits.
        max_inflight = std::min<int>(
            max_inflight, static_cast<int>(avail / hold));
    }
    return std::max(1, max_inflight);
}

} // namespace tessel
