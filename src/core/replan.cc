/**
 * @file
 * Elastic replanning core: adapt a served plan to a drifted cluster and
 * seed the fresh search with it (core/search.h ReplanSeed /
 * tesselReplan).
 *
 * Adaptation itself is store/adapt.h's pipeline — the served plan is
 * treated as its own best neighbor: structural correspondence is
 * trivially satisfied (same placement), so the work reduces to
 * re-lowering under the new costs (incrementally, via relowerWithComm,
 * when the delta permits), re-deriving or re-solving the repetend
 * timing, and oracle verification. The verified retimed plan doubles
 * as the conservative `stale` answer the service can hand out when a
 * replan misses its latency budget.
 *
 * This file lives in core/ because replanning is a search-level
 * operation (ISSUE 9 places the API in core/search), but it reuses the
 * adaptation machinery one layer up; the dependency is source-level
 * only (everything links into one library).
 */

#include <utility>

#include "core/search.h"
#include "store/adapt.h"
#include "support/tracing.h"

namespace tessel {

ReplanSeed
prepareReplanSeed(const Placement &placement, const TesselOptions &drifted,
                  const TesselResult &served, const ClusterDelta *delta,
                  bool exactPhasesAllowed)
{
    ReplanSeed out;
    if (delta && delta->removesDevices()) {
        out.reason =
            "delta removes devices; replan onto a survivor placement";
        return out;
    }

    const bool comm_aware =
        drifted.cluster &&
        !drifted.cluster->isTrivial(placement.numDevices());

    TesselOptions eff = drifted;
    if (comm_aware) {
        TraceSpan span("relower");
        if (delta && served.commAware && served.expansion) {
            bool patched = false;
            out.lowered = relowerWithComm(
                placement, *drifted.cluster, drifted.edgeMB, drifted.comm,
                *served.expansion, *delta, &patched);
            out.incrementalLower = patched;
        } else {
            out.lowered = expandWithComm(placement, *drifted.cluster,
                                         drifted.edgeMB, drifted.comm);
        }
        span.setArg("incremental", out.incrementalLower ? 1 : 0);
        eff.lowered = &*out.lowered;
    }

    // Pure speed drift can flip a trivial cluster non-trivial without
    // creating a single comm block (every link still free). The served
    // plan is then structurally a plan of the drifted solve placement —
    // zero comm specs, identity assignment extension — so re-brand it
    // comm-aware instead of failing adaptation's awareness check; the
    // oracle still decides whether its timing survived the new spans.
    const TesselResult *adapt_from = &served;
    TesselResult shim;
    if (comm_aware && !served.commAware && out.lowered->numLinks == 0) {
        shim = served;
        shim.commAware = true;
        adapt_from = &shim;
    }

    TraceSpan span("retime");
    AdaptOutcome adapted =
        adaptResultToQuery(placement, eff, *adapt_from, exactPhasesAllowed);
    span.setArg("ok", adapted.ok ? 1 : 0);
    out.work.merge(adapted.breakdown);
    if (!adapted.ok) {
        out.reason = std::move(adapted.reason);
        return out;
    }
    out.ok = true;
    out.retimed = adapted.retimed;
    out.seed = std::move(adapted.seed);
    out.retimedResult = std::move(adapted.adapted);
    return out;
}

TesselResult
tesselReplan(const Placement &placement, const TesselOptions &drifted,
             const TesselResult &served, const ClusterDelta *delta,
             bool exactPhasesAllowed, ReplanSeed *info)
{
    ReplanSeed seed = prepareReplanSeed(placement, drifted, served, delta,
                                        exactPhasesAllowed);
    TesselOptions opts = drifted;
    if (seed.ok)
        opts.seed = &seed.seed;
    if (seed.lowered)
        opts.lowered = &*seed.lowered;
    TesselResult result = tesselSearch(placement, opts);
    result.breakdown.merge(seed.work);
    if (info)
        *info = std::move(seed);
    return result;
}

} // namespace tessel
