#include "core/search.h"

#include <algorithm>
#include <functional>
#include <map>

#include "solver/bnb.h"
#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

namespace {

/** A phase (warmup or cooldown) lowered onto the generic solver. */
struct PhaseInstance
{
    SolverProblem sp;
    std::vector<BlockRef> refs; // Index-aligned with sp.blocks.
};

/**
 * Build a solver instance for a phase block set. Dependencies that point
 * outside the set become release times via @p external_finish (pass
 * nullptr to drop them, which is sound for satisfiability-only checks:
 * memory feasibility depends only on per-device order).
 */
PhaseInstance
buildPhase(const Placement &placement, const std::vector<BlockRef> &refs,
           const std::vector<Mem> &entry_mem, Mem mem_limit,
           const std::vector<Time> *initial_avail,
           const std::function<Time(BlockRef)> *external_finish)
{
    PhaseInstance inst;
    inst.refs = refs;
    inst.sp.numDevices = placement.numDevices();
    inst.sp.memLimit = mem_limit;
    inst.sp.initialMem = entry_mem;
    if (initial_avail)
        inst.sp.initialAvail = *initial_avail;

    std::map<std::pair<int, int>, int> index;
    for (size_t i = 0; i < refs.size(); ++i)
        index[{refs[i].spec, refs[i].mb}] = static_cast<int>(i);

    inst.sp.blocks.resize(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
        const BlockSpec &spec = placement.block(refs[i].spec);
        SolverBlock &sb = inst.sp.blocks[i];
        sb.span = spec.span;
        sb.devices = spec.devices;
        sb.memory = spec.memory;
        sb.tag = static_cast<int>(i);
        for (int dep : spec.deps) {
            auto it = index.find({dep, refs[i].mb});
            if (it != index.end()) {
                sb.deps.push_back(it->second);
            } else if (external_finish) {
                sb.release = std::max(
                    sb.release, (*external_finish)({dep, refs[i].mb}));
            }
        }
        // Property 4.1 symmetry chain within the phase.
        auto prev = index.find({refs[i].spec, refs[i].mb - 1});
        if (prev != index.end())
            sb.orderAfter = prev->second;
    }
    return inst;
}

/** Per-device entry memory after warmup plus one window instance. */
std::vector<Mem>
postWindowMem(const Placement &placement, const RepetendAssignment &assign,
              const std::vector<Mem> &initial_mem)
{
    std::vector<Mem> mem(placement.numDevices(), 0);
    if (!initial_mem.empty())
        mem = initial_mem;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const BlockSpec &b = placement.block(i);
        for (DeviceId d = 0; d < placement.numDevices(); ++d)
            if (b.devices & oneDevice(d))
                mem[d] += static_cast<Mem>(assign.r[i] + 1) * b.memory;
    }
    return mem;
}

/** Satisfiability check: does any valid schedule of the phase exist? */
bool
phaseSatisfiable(const Placement &placement,
                 const std::vector<BlockRef> &refs,
                 const std::vector<Mem> &entry_mem, Mem mem_limit,
                 double budget_sec)
{
    if (refs.empty())
        return true;
    PhaseInstance inst =
        buildPhase(placement, refs, entry_mem, mem_limit, nullptr, nullptr);
    SolverOptions so;
    so.timeBudgetSec = budget_sec;
    BnbSolver solver(inst.sp, so);
    return solver.decide(kUnlimitedMem).feasible();
}

/** Anchor offset of window instance 0 behind the warmup (extra = 0). */
Time
computeTheta0(const Placement &placement, const RepetendAssignment &assign,
              const std::vector<Time> &window_start,
              const std::map<std::pair<int, int>, Time> &warmup_finish,
              const std::vector<Time> &avail_after_warmup)
{
    Time theta0 = 0;
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        Time min_s = -1;
        for (int i : placement.blocksOnDevice(d))
            min_s = min_s < 0 ? window_start[i]
                              : std::min(min_s, window_start[i]);
        if (min_s >= 0)
            theta0 = std::max(theta0, avail_after_warmup[d] - min_s);
    }
    for (int j = 0; j < placement.numBlocks(); ++j) {
        for (int i : placement.block(j).deps) {
            if (assign.r[i] - assign.r[j] < 1)
                continue;
            auto it = warmup_finish.find({i, assign.r[j]});
            if (it != warmup_finish.end())
                theta0 =
                    std::max(theta0, it->second - window_start[j]);
        }
    }
    return theta0;
}

/**
 * Time-optimal completion (Algorithm 1 lines 14-18): solve warmup, anchor
 * the window, solve cooldown against the window context, assemble the
 * plan. Returns nullopt when a phase solve fails within its budget.
 */
std::optional<TesselPlan>
completePlan(const Placement &placement, const RepetendAssignment &assign,
             const RepetendSchedule &rsched, const TesselOptions &options,
             SearchBreakdown &breakdown)
{
    std::vector<Mem> entry = options.initialMem;
    if (entry.empty())
        entry.assign(placement.numDevices(), 0);

    const auto warm_refs = warmupBlocks(placement, assign);
    std::vector<Time> warm_starts;
    std::map<std::pair<int, int>, Time> warmup_finish;
    std::vector<Time> avail_after_warmup(placement.numDevices(), 0);
    {
        Stopwatch watch;
        if (!warm_refs.empty()) {
            PhaseInstance inst = buildPhase(placement, warm_refs, entry,
                                            options.memLimit, nullptr,
                                            nullptr);
            SolverOptions so;
            so.timeBudgetSec = options.phaseBudgetSec;
            BnbSolver solver(inst.sp, so);
            const SolveResult r = solver.minimizeMakespan();
            breakdown.warmupSeconds += watch.seconds();
            if (!r.feasible())
                return std::nullopt;
            warm_starts = r.starts;
            for (size_t i = 0; i < warm_refs.size(); ++i) {
                const Time fin =
                    r.starts[i] + placement.block(warm_refs[i].spec).span;
                warmup_finish[{warm_refs[i].spec, warm_refs[i].mb}] = fin;
                for (DeviceId d = 0; d < placement.numDevices(); ++d)
                    if (placement.block(warm_refs[i].spec).devices &
                        oneDevice(d)) {
                        avail_after_warmup[d] =
                            std::max(avail_after_warmup[d], fin);
                    }
            }
        } else {
            breakdown.warmupSeconds += watch.seconds();
        }
    }

    const Time theta0 = computeTheta0(placement, assign, rsched.start,
                                      warmup_finish, avail_after_warmup);

    std::vector<Time> avail_after_window = avail_after_warmup;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const Time fin =
            theta0 + rsched.start[i] + placement.block(i).span;
        for (DeviceId d = 0; d < placement.numDevices(); ++d)
            if (placement.block(i).devices & oneDevice(d))
                avail_after_window[d] =
                    std::max(avail_after_window[d], fin);
    }

    const auto cool_refs = cooldownBlocks(placement, assign);
    std::vector<Time> cool_starts;
    {
        Stopwatch watch;
        if (!cool_refs.empty()) {
            std::function<Time(BlockRef)> external =
                [&](BlockRef ref) -> Time {
                if (ref.mb == assign.r[ref.spec])
                    return theta0 + rsched.start[ref.spec] +
                           placement.block(ref.spec).span;
                auto it = warmup_finish.find({ref.spec, ref.mb});
                panic_if(it == warmup_finish.end(),
                         "cooldown dependency outside warmup/window");
                return it->second;
            };
            PhaseInstance inst = buildPhase(
                placement, cool_refs,
                postWindowMem(placement, assign, options.initialMem),
                options.memLimit, &avail_after_window, &external);
            SolverOptions so;
            so.timeBudgetSec = options.phaseBudgetSec;
            BnbSolver solver(inst.sp, so);
            const SolveResult r = solver.minimizeMakespan();
            breakdown.cooldownSeconds += watch.seconds();
            if (!r.feasible())
                return std::nullopt;
            cool_starts = r.starts;
        } else {
            breakdown.cooldownSeconds += watch.seconds();
        }
    }

    return TesselPlan(
        placement, assign, rsched.start, rsched.period, rsched.windowSpan,
        warm_refs, warm_starts, cool_refs, cool_starts, options.memLimit,
        options.initialMem.empty()
            ? std::vector<Mem>(placement.numDevices(), 0)
            : options.initialMem);
}

} // namespace

TesselResult
tesselSearch(const Placement &placement, const TesselOptions &options)
{
    TesselResult result;
    result.lowerBound = placement.perMicrobatchLowerBound();

    TimeBudget total_budget(options.totalBudgetSec);

    // Algorithm 1, lines 1-6.
    Time optimal = placement.totalWork() + 1;
    const int max_inflight =
        calMaxInflight(placement, options.memLimit, options.initialMem,
                       options.maxRepetendMicrobatches);

    struct Best
    {
        RepetendAssignment assign;
        RepetendSchedule sched;
    };
    std::optional<Best> best;
    std::optional<TesselPlan> best_plan; // Kept only without lazy search.

    std::vector<Mem> entry = options.initialMem;
    if (entry.empty())
        entry.assign(placement.numDevices(), 0);

    // Lines 7-20. Under lazy search (Sec. V) the per-candidate
    // time-optimal completions become satisfiability checks.
    for (int nr = 1; nr <= max_inflight; ++nr) {
        if (result.breakdown.earlyExit || result.breakdown.budgetExhausted)
            break;
        enumerateRepetends(
            placement, nr, [&](const RepetendAssignment &assign) {
                ++result.breakdown.candidatesEnumerated;
                if (total_budget.expired()) {
                    result.breakdown.budgetExhausted = true;
                    return false;
                }
                RepetendSolveOptions rso;
                rso.memLimit = options.memLimit;
                rso.initialMem = options.initialMem;
                rso.cutoff = optimal;
                rso.timeBudgetSec = options.repetendBudgetSec;
                Stopwatch watch;
                const RepetendSchedule sched =
                    solveRepetend(placement, assign, rso);
                result.breakdown.repetendSeconds += watch.seconds();
                ++result.breakdown.candidatesSolved;
                if (!sched.feasible || sched.period >= optimal)
                    return true;

                const auto warm = warmupBlocks(placement, assign);
                const auto cool = cooldownBlocks(placement, assign);
                if (options.lazy) {
                    Stopwatch w_watch;
                    ++result.breakdown.satChecks;
                    const bool sat_w = phaseSatisfiable(
                        placement, warm, entry, options.memLimit,
                        options.phaseBudgetSec);
                    result.breakdown.warmupSeconds += w_watch.seconds();
                    if (!sat_w)
                        return true;
                    Stopwatch c_watch;
                    ++result.breakdown.satChecks;
                    const bool sat_c = phaseSatisfiable(
                        placement, cool,
                        postWindowMem(placement, assign,
                                      options.initialMem),
                        options.memLimit, options.phaseBudgetSec);
                    result.breakdown.cooldownSeconds += c_watch.seconds();
                    if (!sat_c)
                        return true;
                } else {
                    // Full time-optimal completion per improving
                    // candidate (Algorithm 1 lines 16-17 verbatim).
                    auto plan = completePlan(placement, assign, sched,
                                             options, result.breakdown);
                    if (!plan)
                        return true;
                    best_plan = std::move(plan);
                }

                optimal = sched.period;
                best = Best{assign, sched};
                if (sched.period == result.lowerBound) {
                    result.breakdown.earlyExit = true;
                    return false; // Algorithm 1, lines 19-20.
                }
                return true;
            });
    }

    if (!best)
        return result;

    if (options.lazy || !best_plan) {
        best_plan = completePlan(placement, best->assign, best->sched,
                                 options, result.breakdown);
        if (!best_plan)
            return result;
    }

    result.found = true;
    result.period = best->sched.period;
    result.nrUsed = best->assign.numMicrobatches;
    result.plan = std::move(*best_plan);
    return result;
}

} // namespace tessel
