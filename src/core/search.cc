#include "core/search.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <mutex>

#include "solver/bnb.h"
#include "support/cancel.h"
#include "support/logging.h"
#include "support/threadpool.h"
#include "support/timer.h"
#include "support/tracing.h"

namespace tessel {

namespace {

/** A phase (warmup or cooldown) lowered onto the generic solver. */
struct PhaseInstance
{
    SolverProblem sp;
    std::vector<BlockRef> refs; // Index-aligned with sp.blocks.
};

/**
 * Build a solver instance for a phase block set. Dependencies that point
 * outside the set become release times via @p external_finish (pass
 * nullptr to drop them, which is sound for satisfiability-only checks:
 * memory feasibility depends only on per-device order).
 */
PhaseInstance
buildPhase(const Placement &placement, const std::vector<BlockRef> &refs,
           const std::vector<Mem> &entry_mem, Mem mem_limit,
           const std::vector<Time> *initial_avail,
           const std::function<Time(BlockRef)> *external_finish)
{
    PhaseInstance inst;
    inst.refs = refs;
    inst.sp.numDevices = placement.numDevices();
    inst.sp.memLimit = mem_limit;
    inst.sp.initialMem = entry_mem;
    if (initial_avail)
        inst.sp.initialAvail = *initial_avail;

    std::map<std::pair<int, int>, int> index;
    for (size_t i = 0; i < refs.size(); ++i)
        index[{refs[i].spec, refs[i].mb}] = static_cast<int>(i);

    inst.sp.blocks.resize(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
        const BlockSpec &spec = placement.block(refs[i].spec);
        SolverBlock &sb = inst.sp.blocks[i];
        sb.span = spec.span;
        sb.devices = spec.devices;
        sb.memory = spec.memory;
        sb.tag = static_cast<int>(i);
        for (int dep : spec.deps) {
            auto it = index.find({dep, refs[i].mb});
            if (it != index.end()) {
                sb.deps.push_back(it->second);
            } else if (external_finish) {
                sb.release = std::max(
                    sb.release, (*external_finish)({dep, refs[i].mb}));
            }
        }
        // Property 4.1 symmetry chain within the phase.
        auto prev = index.find({refs[i].spec, refs[i].mb - 1});
        if (prev != index.end())
            sb.orderAfter = prev->second;
    }
    return inst;
}

/** Per-device entry memory after warmup plus one window instance. */
std::vector<Mem>
postWindowMem(const Placement &placement, const RepetendAssignment &assign,
              const std::vector<Mem> &initial_mem)
{
    std::vector<Mem> mem(placement.numDevices(), 0);
    if (!initial_mem.empty())
        mem = initial_mem;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const BlockSpec &b = placement.block(i);
        for (DeviceId d : b.devices)
            mem[d] += static_cast<Mem>(assign.r[i] + 1) * b.memory;
    }
    return mem;
}

/** Fold one inner solve's effort counters into the breakdown. */
void
addSolveStats(SearchBreakdown &breakdown, const SolveStats &stats)
{
    breakdown.solverNodes += stats.nodes;
    breakdown.relaxations += stats.relaxations;
    breakdown.valueSweeps += stats.valueSweeps;
    breakdown.policyImprovements += stats.policyImprovements;
    breakdown.memoReused += stats.memoReused;
    breakdown.seededNodesPruned += stats.seedPrunes;
}

/**
 * Project the seed's steady-state layout onto a phase block set: block
 * (spec, mb) is suggested at windowStart[spec] + mb * period, the start
 * it would have in an infinite repetend. Guides the decide() first dive
 * toward a dispatch order known to work; empty when unseeded.
 */
std::vector<Time>
seedPhasePriority(const SearchSeed *seed, const std::vector<BlockRef> &refs)
{
    std::vector<Time> prio;
    if (!seed)
        return prio;
    prio.reserve(refs.size());
    for (const BlockRef &ref : refs)
        prio.push_back(seed->windowStart[ref.spec] +
                       static_cast<Time>(ref.mb) * seed->period);
    return prio;
}

/** Satisfiability check: does any valid schedule of the phase exist?
 * @p seed orders the first dive only; the verdict is seed-invariant. */
bool
phaseSatisfiable(const Placement &placement,
                 const std::vector<BlockRef> &refs,
                 const std::vector<Mem> &entry_mem, Mem mem_limit,
                 double budget_sec, const CancelToken &cancel,
                 const SearchSeed *seed, SearchBreakdown &breakdown)
{
    if (refs.empty())
        return true;
    PhaseInstance inst =
        buildPhase(placement, refs, entry_mem, mem_limit, nullptr, nullptr);
    const std::vector<Time> prio = seedPhasePriority(seed, refs);
    SolverOptions so;
    so.timeBudgetSec = budget_sec;
    so.cancel = cancel;
    if (!prio.empty())
        so.seedPriority = &prio;
    BnbSolver solver(inst.sp, so);
    const SolveResult r = solver.decide(kUnlimitedMem);
    addSolveStats(breakdown, r.stats);
    return r.feasible();
}

/** Anchor offset of window instance 0 behind the warmup (extra = 0). */
Time
computeTheta0(const Placement &placement, const RepetendAssignment &assign,
              const std::vector<Time> &window_start,
              const std::map<std::pair<int, int>, Time> &warmup_finish,
              const std::vector<Time> &avail_after_warmup)
{
    Time theta0 = 0;
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        Time min_s = -1;
        for (int i : placement.blocksOnDevice(d))
            min_s = min_s < 0 ? window_start[i]
                              : std::min(min_s, window_start[i]);
        if (min_s >= 0)
            theta0 = std::max(theta0, avail_after_warmup[d] - min_s);
    }
    for (int j = 0; j < placement.numBlocks(); ++j) {
        for (int i : placement.block(j).deps) {
            if (assign.r[i] - assign.r[j] < 1)
                continue;
            auto it = warmup_finish.find({i, assign.r[j]});
            if (it != warmup_finish.end())
                theta0 =
                    std::max(theta0, it->second - window_start[j]);
        }
    }
    return theta0;
}

/** Best candidate found so far: its assignment and window schedule. */
struct BestCandidate
{
    RepetendAssignment assign;
    RepetendSchedule sched;
};

} // namespace

/** Time-optimal completion (Algorithm 1 lines 14-18); see search.h. */
std::optional<TesselPlan>
completeRepetendPlan(const Placement &placement,
                     const RepetendAssignment &assign,
                     const RepetendSchedule &rsched,
                     const TesselOptions &options,
                     SearchBreakdown &breakdown, const CancelToken &cancel)
{
    std::vector<Mem> entry = options.initialMem;
    if (entry.empty())
        entry.assign(placement.numDevices(), 0);

    const auto warm_refs = warmupBlocks(placement, assign);
    std::vector<Time> warm_starts;
    std::map<std::pair<int, int>, Time> warmup_finish;
    std::vector<Time> avail_after_warmup(placement.numDevices(), 0);
    {
        Stopwatch watch;
        if (!warm_refs.empty()) {
            PhaseInstance inst = buildPhase(placement, warm_refs, entry,
                                            options.memLimit, nullptr,
                                            nullptr);
            SolverOptions so;
            so.timeBudgetSec = options.phaseBudgetSec;
            so.cancel = cancel;
            BnbSolver solver(inst.sp, so);
            const SolveResult r = solver.minimizeMakespan();
            breakdown.warmupSeconds += watch.seconds();
            addSolveStats(breakdown, r.stats);
            if (!r.feasible())
                return std::nullopt;
            warm_starts = r.starts;
            for (size_t i = 0; i < warm_refs.size(); ++i) {
                const Time fin =
                    r.starts[i] + placement.block(warm_refs[i].spec).span;
                warmup_finish[{warm_refs[i].spec, warm_refs[i].mb}] = fin;
                for (DeviceId d :
                     placement.block(warm_refs[i].spec).devices) {
                    avail_after_warmup[d] =
                        std::max(avail_after_warmup[d], fin);
                }
            }
        } else {
            breakdown.warmupSeconds += watch.seconds();
        }
    }

    const Time theta0 = computeTheta0(placement, assign, rsched.start,
                                      warmup_finish, avail_after_warmup);

    std::vector<Time> avail_after_window = avail_after_warmup;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const Time fin =
            theta0 + rsched.start[i] + placement.block(i).span;
        for (DeviceId d : placement.block(i).devices)
            avail_after_window[d] =
                std::max(avail_after_window[d], fin);
    }

    const auto cool_refs = cooldownBlocks(placement, assign);
    std::vector<Time> cool_starts;
    {
        Stopwatch watch;
        if (!cool_refs.empty()) {
            std::function<Time(BlockRef)> external =
                [&](BlockRef ref) -> Time {
                if (ref.mb == assign.r[ref.spec])
                    return theta0 + rsched.start[ref.spec] +
                           placement.block(ref.spec).span;
                auto it = warmup_finish.find({ref.spec, ref.mb});
                panic_if(it == warmup_finish.end(),
                         "cooldown dependency outside warmup/window");
                return it->second;
            };
            PhaseInstance inst = buildPhase(
                placement, cool_refs,
                postWindowMem(placement, assign, options.initialMem),
                options.memLimit, &avail_after_window, &external);
            SolverOptions so;
            so.timeBudgetSec = options.phaseBudgetSec;
            so.cancel = cancel;
            BnbSolver solver(inst.sp, so);
            const SolveResult r = solver.minimizeMakespan();
            breakdown.cooldownSeconds += watch.seconds();
            addSolveStats(breakdown, r.stats);
            if (!r.feasible())
                return std::nullopt;
            cool_starts = r.starts;
        } else {
            breakdown.cooldownSeconds += watch.seconds();
        }
    }

    return TesselPlan(
        placement, assign, rsched.start, rsched.period, rsched.windowSpan,
        warm_refs, warm_starts, cool_refs, cool_starts, options.memLimit,
        options.initialMem.empty()
            ? std::vector<Mem>(placement.numDevices(), 0)
            : options.initialMem);
}

namespace {

/**
 * Completion with exact seed reuse. When the seed certifies its phase
 * schedules (SearchSeed::phasesExact — store/adapt.cc only sets it
 * after proving the stored instance's solve placement, memory model,
 * and phase-relevant options are identical to this query's) and the
 * winning candidate's (assignment, window start, period) equals the
 * seed plan's, then the per-phase minimizes completeRepetendPlan would
 * run are the *same* deterministic solves that produced the seed plan
 * — so the seed plan IS the completion, returned without paying the
 * phase budgets again. Any mismatch falls through to the real
 * completion; the answer is bit-identical either way.
 */
std::optional<TesselPlan>
completeOrReusePlan(const Placement &placement,
                    const RepetendAssignment &assign,
                    const RepetendSchedule &rsched,
                    const TesselOptions &options,
                    SearchBreakdown &breakdown, const CancelToken &cancel)
{
    const SearchSeed *seed = options.seed;
    if (seed && seed->phasesExact && seed->plan &&
        seed->plan->period() == rsched.period &&
        seed->plan->windowStart() == rsched.start &&
        seed->plan->assignment() == assign &&
        seed->plan->memLimit() == options.memLimit) {
        return *seed->plan;
    }
    return completeRepetendPlan(placement, assign, rsched, options,
                                breakdown, cancel);
}

/**
 * Shared state of one parallel candidate sweep.
 *
 * Determinism: every candidate carries its global enumeration index and
 * the incumbent is the lexicographic minimum of (period, index) over
 * accepted candidates, which is exactly what the serial loop converges
 * to (the serial winner is the lowest-index candidate achieving the
 * minimal period). Workers prune against the *inclusive* shared period
 * bound, so an equal-period candidate with a smaller index is never
 * masked by a higher-index one that happened to publish first. The
 * Algorithm 1 early exit becomes an index bar: once some candidate hits
 * the lower bound, only lower-index candidates (which could still win
 * the tie-break) keep running; everything above the bar is cancelled.
 *
 * Seeding: a warm-start seed initializes the shared bound as a virtual
 * incumbent at (seed period, index +infinity) — bestPeriod_ starts at
 * the seed period while bestIndex_ stays at its unset maximum, so every
 * real candidate's frozen cutoff allows periods <= the seed's and every
 * real candidate wins the index tie-break. hasBest() stays false until
 * a real candidate publishes, exactly as in a cold sweep.
 */
class SweepState
{
  public:
    SweepState(const Placement &placement, const TesselOptions &options,
               const TimeBudget &total_budget, Time lower_bound,
               Time optimal_init, std::vector<Mem> entry)
        : placement_(placement), options_(options),
          totalBudget_(total_budget), lowerBound_(lower_bound),
          entry_(std::move(entry)), incumbent_(optimal_init),
          bestPeriod_(optimal_init)
    {
    }

    /** Evaluate one candidate end-to-end (runs on a pool worker). */
    void
    runCandidate(uint64_t index, const RepetendAssignment &assign)
    {
        SearchBreakdown local;
        if (!options_.cancel.cancelled() && !globalCancel_.cancelled() &&
            index <= lbBar_.load(std::memory_order_relaxed)) {
            if (totalBudget_.expired()) {
                local.budgetExhausted = true;
                globalCancel_.cancel();
            } else {
                solveCandidate(index, assign, local);
            }
        }
        mergeStats(local);
    }

    /** Snapshot of the winner, taken after the pool went quiescent. */
    bool hasBest() const { return best_.has_value(); }
    const BestCandidate &best() const { return *best_; }
    std::optional<TesselPlan> takeBestPlan() { return std::move(bestPlan_); }
    Time bestPeriod() const { return bestPeriod_; }

    /** Fold @p local into the sweep-wide breakdown. */
    void
    mergeStats(const SearchBreakdown &local)
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_.merge(local);
    }

    SearchBreakdown &stats() { return stats_; }

  private:
    bool
    lexBetterLocked(Time period, uint64_t index) const
    {
        return period < bestPeriod_ ||
               (period == bestPeriod_ && index < bestIndex_);
    }

    bool
    couldImprove(Time period, uint64_t index)
    {
        std::lock_guard<std::mutex> lock(winnerMu_);
        return lexBetterLocked(period, index);
    }

    void
    solveCandidate(uint64_t index, const RepetendAssignment &assign,
                   SearchBreakdown &local)
    {
        // A per-task source lets the early-exit bar kill this solve
        // mid-flight without touching lower-index tasks.
        CancelToken token;
        {
            std::lock_guard<std::mutex> lock(runningMu_);
            running_.emplace_back(index, CancelSource{});
            token = options_.cancel.linked(globalCancel_.token())
                        .linked(running_.back().second.token());
        }

        Time snap_period;
        uint64_t snap_index;
        {
            std::lock_guard<std::mutex> lock(winnerMu_);
            snap_period = bestPeriod_;
            snap_index = bestIndex_;
        }

        RepetendSolveOptions rso;
        rso.memLimit = options_.memLimit;
        rso.initialMem = options_.initialMem;
        // Like the serial loop, freeze a strict cutoff at solve start:
        // a higher-index candidate loses a period tie with the current
        // incumbent, so periods >= it are prunable outright. A
        // lower-index candidate could still win the tie-break, so only
        // strictly worse periods may be cut. The inclusive live bound
        // then keeps tightening mid-solve as siblings publish.
        rso.cutoff = index > snap_index ? snap_period : snap_period + 1;
        rso.liveCutoff = incumbent_.raw();
        // Until a real candidate publishes, the bound is the seed's.
        rso.cutoffFromSeed =
            options_.seed != nullptr &&
            snap_index == std::numeric_limits<uint64_t>::max();
        rso.timeBudgetSec = options_.repetendBudgetSec;
        rso.mcr = options_.mcr;
        rso.cancel = token;
        Stopwatch watch;
        const RepetendSchedule sched =
            solveRepetend(placement_, assign, rso);
        local.repetendSeconds += watch.seconds();
        ++local.candidatesSolved;
        addSolveStats(local, sched.stats);
        if (sched.stats.cancelled)
            ++local.candidatesCancelled;

        if (sched.feasible && couldImprove(sched.period, index)) {
            std::optional<TesselPlan> plan;
            bool accept = true;
            if (options_.lazy) {
                Stopwatch w_watch;
                ++local.satChecks;
                accept = phaseSatisfiable(
                    placement_, warmupBlocks(placement_, assign), entry_,
                    options_.memLimit, options_.phaseBudgetSec, token,
                    options_.seed, local);
                local.warmupSeconds += w_watch.seconds();
                if (accept) {
                    Stopwatch c_watch;
                    ++local.satChecks;
                    accept = phaseSatisfiable(
                        placement_, cooldownBlocks(placement_, assign),
                        postWindowMem(placement_, assign,
                                      options_.initialMem),
                        options_.memLimit, options_.phaseBudgetSec, token,
                        options_.seed, local);
                    local.cooldownSeconds += c_watch.seconds();
                }
            } else {
                // Full time-optimal completion per improving candidate
                // (Algorithm 1 lines 16-17 verbatim).
                plan = completeOrReusePlan(placement_, assign, sched,
                                           options_, local, token);
                accept = plan.has_value();
            }
            if (accept)
                publish(index, assign, sched, std::move(plan));
        }

        std::lock_guard<std::mutex> lock(runningMu_);
        running_.erase(std::remove_if(running_.begin(), running_.end(),
                                      [&](const auto &entry) {
                                          return entry.first == index;
                                      }),
                       running_.end());
    }

    void
    publish(uint64_t index, const RepetendAssignment &assign,
            const RepetendSchedule &sched, std::optional<TesselPlan> plan)
    {
        {
            std::lock_guard<std::mutex> lock(winnerMu_);
            if (!lexBetterLocked(sched.period, index))
                return;
            bestPeriod_ = sched.period;
            bestIndex_ = index;
            best_ = BestCandidate{assign, sched};
            bestPlan_ = std::move(plan);
            incumbent_.tryImprove(sched.period);
        }
        if (sched.period == lowerBound_) {
            // Algorithm 1, lines 19-20: lower the early-exit bar and
            // cancel every in-flight solve that can no longer win.
            uint64_t cur = lbBar_.load(std::memory_order_relaxed);
            while (index < cur &&
                   !lbBar_.compare_exchange_weak(cur, index)) {
            }
            const uint64_t bar = lbBar_.load(std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(runningMu_);
            for (auto &entry : running_)
                if (entry.first > bar)
                    entry.second.cancel();
        }
    }

    const Placement &placement_;
    const TesselOptions &options_;
    const TimeBudget &totalBudget_;
    const Time lowerBound_;
    const std::vector<Mem> entry_;

    SharedIncumbent incumbent_;
    std::atomic<uint64_t> lbBar_{std::numeric_limits<uint64_t>::max()};
    CancelSource globalCancel_;

    std::mutex winnerMu_;
    Time bestPeriod_;
    uint64_t bestIndex_ = std::numeric_limits<uint64_t>::max();
    std::optional<BestCandidate> best_;
    std::optional<TesselPlan> bestPlan_; // Kept only without lazy search.

    std::mutex runningMu_;
    std::vector<std::pair<uint64_t, CancelSource>> running_;

    std::mutex statsMu_;
    SearchBreakdown stats_;
};

/** Legacy single-thread sweep (exact original control flow).
 *
 * Candidates are enumerated on @p enum_placement (the caller's original
 * placement) and solved on @p placement; for a comm-aware search the two
 * differ and @p expansion extends each assignment onto the comm blocks.
 * In the homogeneous case they alias and @p expansion is null.
 */
void
serialSweep(const Placement &enum_placement, const CommExpansion *expansion,
            const Placement &placement, const TesselOptions &options,
            const TimeBudget &total_budget, int max_inflight,
            const std::vector<Mem> &entry, TesselResult &result,
            std::optional<BestCandidate> &best,
            std::optional<TesselPlan> &best_plan)
{
    Time optimal = placement.totalWork() + 1;
    // A seed acts as a virtual accepted candidate at index +infinity:
    // the strict cutoff below it admits every period <= the seed's, so
    // any candidate the cold loop would have accepted as final winner
    // (its period is <= the seed's, the seed plan being a feasible
    // witness) is still accepted here — only the doomed prefix of
    // strictly-worse candidates is skipped.
    if (options.seed)
        optimal = std::min(optimal, options.seed->period + 1);

    // Lines 7-20. Under lazy search (Sec. V) the per-candidate
    // time-optimal completions become satisfiability checks.
    for (int nr = 1; nr <= max_inflight; ++nr) {
        if (result.breakdown.earlyExit || result.breakdown.budgetExhausted)
            break;
        enumerateRepetends(
            enum_placement, nr, [&](const RepetendAssignment &enum_assign) {
                ++result.breakdown.candidatesEnumerated;
                if (options.cancel.cancelled())
                    return false;
                if (total_budget.expired()) {
                    result.breakdown.budgetExhausted = true;
                    return false;
                }
                const RepetendAssignment assign =
                    expansion ? expansion->extendAssignment(enum_assign)
                              : enum_assign;
                RepetendSolveOptions rso;
                rso.memLimit = options.memLimit;
                rso.initialMem = options.initialMem;
                rso.cutoff = optimal;
                rso.cutoffFromSeed =
                    options.seed != nullptr && !best.has_value();
                rso.timeBudgetSec = options.repetendBudgetSec;
                rso.mcr = options.mcr;
                rso.cancel = options.cancel;
                Stopwatch watch;
                const RepetendSchedule sched =
                    solveRepetend(placement, assign, rso);
                result.breakdown.repetendSeconds += watch.seconds();
                ++result.breakdown.candidatesSolved;
                addSolveStats(result.breakdown, sched.stats);
                if (!sched.feasible || sched.period >= optimal)
                    return true;

                if (options.lazy) {
                    Stopwatch w_watch;
                    ++result.breakdown.satChecks;
                    const bool sat_w = phaseSatisfiable(
                        placement, warmupBlocks(placement, assign), entry,
                        options.memLimit, options.phaseBudgetSec,
                        options.cancel, options.seed, result.breakdown);
                    result.breakdown.warmupSeconds += w_watch.seconds();
                    if (!sat_w)
                        return true;
                    Stopwatch c_watch;
                    ++result.breakdown.satChecks;
                    const bool sat_c = phaseSatisfiable(
                        placement, cooldownBlocks(placement, assign),
                        postWindowMem(placement, assign,
                                      options.initialMem),
                        options.memLimit, options.phaseBudgetSec,
                        options.cancel, options.seed, result.breakdown);
                    result.breakdown.cooldownSeconds += c_watch.seconds();
                    if (!sat_c)
                        return true;
                } else {
                    // Full time-optimal completion per improving
                    // candidate (Algorithm 1 lines 16-17 verbatim).
                    auto plan = completeOrReusePlan(
                        placement, assign, sched, options,
                        result.breakdown, options.cancel);
                    if (!plan)
                        return true;
                    best_plan = std::move(plan);
                }

                optimal = sched.period;
                best = BestCandidate{assign, sched};
                if (sched.period == result.lowerBound) {
                    result.breakdown.earlyExit = true;
                    return false; // Algorithm 1, lines 19-20.
                }
                return true;
            });
    }
}

/** Pool-backed sweep: candidates of each NR solve concurrently. Takes
 * the same (enumeration placement, expansion, solve placement) triple as
 * serialSweep. */
void
parallelSweep(const Placement &enum_placement,
              const CommExpansion *expansion, const Placement &placement,
              const TesselOptions &options, const TimeBudget &total_budget,
              Time lower_bound, int max_inflight,
              const std::vector<Mem> &entry, int threads,
              TesselResult &result, std::optional<BestCandidate> &best,
              std::optional<TesselPlan> &best_plan)
{
    // The cold virtual incumbent sits just above the serial upper bound
    // (inclusive live bound + strict frozen cutoff = "anything goes");
    // a seed tightens it to the seed period, which every real candidate
    // may still match (seed index = +infinity loses all tie-breaks).
    Time optimal_init = placement.totalWork() + 1;
    if (options.seed)
        optimal_init = std::min(optimal_init, options.seed->period);
    SweepState state(placement, options, total_budget, lower_bound,
                     optimal_init, entry);
    // The submitting thread helps drain the queues inside wait(), so it
    // counts as one of the requested workers.
    ThreadPool pool(std::max(1, threads - 1));

    uint64_t next_index = 0;
    for (int nr = 1; nr <= max_inflight; ++nr) {
        std::vector<RepetendAssignment> candidates;
        SearchBreakdown enum_stats;
        enumerateRepetends(
            enum_placement, nr, [&](const RepetendAssignment &assign) {
                ++enum_stats.candidatesEnumerated;
                if (options.cancel.cancelled())
                    return false;
                if (total_budget.expired()) {
                    enum_stats.budgetExhausted = true;
                    return false;
                }
                candidates.push_back(
                    expansion ? expansion->extendAssignment(assign)
                              : assign);
                return true;
            });
        state.mergeStats(enum_stats);

        const uint64_t base = next_index;
        next_index += candidates.size();
        for (size_t i = 0; i < candidates.size(); ++i) {
            pool.submit([&state, &candidates, base, i] {
                state.runCandidate(base + i, candidates[i]);
            });
        }
        pool.wait();

        // hasBest() guards the seeded case: bestPeriod_ may start AT the
        // lower bound (a seed already that tight) without any candidate
        // having published — the sweep must still run to find one.
        if (state.hasBest() && state.bestPeriod() == lower_bound) {
            SearchBreakdown early;
            early.earlyExit = true;
            state.mergeStats(early);
        }
        if (state.stats().earlyExit || state.stats().budgetExhausted ||
            options.cancel.cancelled())
            break;
    }

    result.breakdown.merge(state.stats());
    if (state.hasBest()) {
        best = state.best();
        best_plan = state.takeBestPlan();
    }
}

} // namespace

TesselResult
tesselSearch(const Placement &placement, const TesselOptions &options)
{
    TesselResult result;

    // Comm-aware path: lower the placement onto the cluster model once
    // and run the identical sweep machinery on the expanded placement.
    // A null or trivial model takes the exact homogeneous path below,
    // so zero-comm/uniform-speed plans stay bit-identical.
    const bool comm_aware =
        options.cluster &&
        !options.cluster->isTrivial(placement.numDevices());
    std::optional<CommExpansion> expansion;
    const Placement *solve_placement = &placement;
    TesselOptions eff = options;
    if (comm_aware) {
        // A caller-provided lowering (TesselOptions::lowered) is
        // guaranteed equal to what expandWithComm would build here —
        // the replan path computes it once via relowerWithComm and
        // shares it between adaptation and search.
        TraceSpan span("lower");
        expansion = eff.lowered ? *eff.lowered
                                : expandWithComm(placement, *options.cluster,
                                                 options.edgeMB,
                                                 options.comm);
        span.setArg("reused", eff.lowered ? 1 : 0);
        span.setArg("links", expansion->numLinks);
        solve_placement = &expansion->placement;
        // Link pseudo-devices hold no parameters: pad with zeros.
        if (!eff.initialMem.empty())
            eff.initialMem.resize(solve_placement->numDevices(), 0);
    }

    result.lowerBound = solve_placement->perMicrobatchLowerBound();

    // Validate the warm-start seed once so the sweeps can trust it
    // blindly: it must carry a plausible period and a window aligned
    // with the placement actually being solved. An unusable seed is
    // dropped, never an error — the search simply runs cold.
    if (eff.seed) {
        const SearchSeed &seed = *eff.seed;
        if (seed.period < 1 ||
            seed.windowStart.size() !=
                static_cast<size_t>(solve_placement->numBlocks())) {
            eff.seed = nullptr;
        } else {
            result.breakdown.seedMakespan = seed.makespan;
        }
    }

    TimeBudget total_budget(eff.totalBudgetSec);

    // Algorithm 1, lines 1-6. Memory headroom depends only on real
    // devices, so the in-flight cap is computed on the original
    // placement in both paths.
    const int max_inflight =
        calMaxInflight(placement, options.memLimit, options.initialMem,
                       options.maxRepetendMicrobatches);

    std::vector<Mem> entry = eff.initialMem;
    if (entry.empty())
        entry.assign(solve_placement->numDevices(), 0);

    int threads = eff.numThreads;
    if (threads <= 0)
        threads = ThreadPool::hardwareThreads();
    result.breakdown.threadsUsed = threads;

    const CommExpansion *exp_ptr = expansion ? &*expansion : nullptr;
    std::optional<BestCandidate> best;
    std::optional<TesselPlan> best_plan; // Kept only without lazy search.
    {
        TraceSpan span("repetend-sweep");
        if (threads == 1) {
            serialSweep(placement, exp_ptr, *solve_placement, eff,
                        total_budget, max_inflight, entry, result, best,
                        best_plan);
        } else {
            parallelSweep(placement, exp_ptr, *solve_placement, eff,
                          total_budget, result.lowerBound, max_inflight,
                          entry, threads, result, best, best_plan);
        }
        span.setArg("value_sweeps", result.breakdown.valueSweeps);
        span.setArg("policy_improvements",
                    result.breakdown.policyImprovements);
        span.setArg("seed_nodes_pruned",
                    result.breakdown.seededNodesPruned);
        span.setArg("candidates", result.breakdown.candidatesEnumerated);
    }

    result.commAware = comm_aware;
    result.expansion = std::move(expansion);
    if (comm_aware)
        solve_placement = &result.expansion->placement;
    if (!best)
        return result;

    if (eff.lazy || !best_plan) {
        TraceSpan span("phase-solve");
        best_plan = completeOrReusePlan(*solve_placement, best->assign,
                                        best->sched, eff,
                                        result.breakdown, eff.cancel);
        span.setArg("sat_checks", result.breakdown.satChecks);
        span.setArg("solver_nodes", result.breakdown.solverNodes);
        if (!best_plan)
            return result;
    }

    result.found = true;
    result.period = best->sched.period;
    result.nrUsed = best->assign.numMicrobatches;
    result.plan = std::move(*best_plan);
    return result;
}

} // namespace tessel
