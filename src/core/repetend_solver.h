/**
 * @file
 * Exact minimal-period search for one repetend candidate (Sec. IV-B).
 *
 * The repetend window holds one instance of every block spec (Eq. 3).
 * At steady state the window repeats with all micro-batch indices
 * advanced by one and start times shifted by the period P. Feasibility of
 * a period requires:
 *   - per-device non-overlap of consecutive instances: P >= E_d, the
 *     device's span inside the window;
 *   - cross-instance dependencies: an edge i -> j with index gap
 *     delta = r_i - r_j >= 1 links instance k's consumer to instance
 *     k - delta's producer, i.e. P >= ceil((f_i - s_j) / delta);
 * so the minimal feasible period for a fixed window schedule is the max
 * of those terms — exactly tR = max_d(E_d + W_d) of Eq. 4 under the tight
 * compaction of Fig. 6(b). The solver enumerates window schedules
 * (dispatch orders, semi-active timing) and minimizes that period.
 *
 * Memory: a steady-state instance starts with sum_i r_i * m_i already
 * held per device (the in-flight warmup allocations); the window's
 * per-device prefix sums must stay within capacity.
 */

#ifndef TESSEL_CORE_REPETEND_SOLVER_H
#define TESSEL_CORE_REPETEND_SOLVER_H

#include <vector>

#include "core/repetend.h"
#include "solver/problem.h"

namespace tessel {

/** Options for one repetend period solve. */
struct RepetendSolveOptions
{
    /** Per-device memory capacity. */
    Mem memLimit = kUnlimitedMem;
    /** Per-device baseline usage (parameters etc.); empty = zeros. */
    std::vector<Mem> initialMem;
    /** Prune any candidate whose period would reach this value
     *  (Algorithm 1 passes the incumbent; -1 disables). */
    Time cutoff = -1;
    /**
     * Marks `cutoff`/`liveCutoff` as inherited from a warm-start seed
     * rather than from a candidate the enclosing sweep accepted itself.
     * Purely attributional: bound prunes taken under a seed-derived
     * bound are additionally counted in SolveStats::seedPrunes so the
     * seed's share of the pruning work is observable. Never changes
     * which nodes are pruned.
     */
    bool cutoffFromSeed = false;
    /** Wall-clock budget (<= 0: unlimited). */
    double timeBudgetSec = 0.0;
    /** Node cap (0: unlimited). */
    uint64_t nodeLimit = 0;
    /**
     * Warm-start the cyclic-feasibility relaxations from inherited
     * fixed points instead of relaxing from all-zero starts at every
     * probe. Exact: resuming Bellman-Ford from any vector pointwise
     * below the least fixed point converges to that same least fixed
     * point, so periods and start vectors stay bit-identical to the
     * cold path — only stats.relaxations shrinks. false restores the
     * cold O(k*E) probes (the counter-regression baseline).
     */
    bool warmStart = true;
    /** Cooperative cancellation; a cancelled solve reports
     *  stats.cancelled and comes back infeasible/unproven. */
    CancelToken cancel;
    /**
     * Live incumbent period shared with concurrently running solves,
     * re-read at every bound check. Unlike `cutoff` this is
     * *inclusive*: periods equal to the live value are still returned,
     * because the parallel search breaks period ties by enumeration
     * index and an equal-period candidate with a smaller index must
     * not be masked. nullptr disables.
     */
    const std::atomic<Time> *liveCutoff = nullptr;
};

/** Result of a repetend period solve. */
struct RepetendSchedule
{
    bool feasible = false;
    /** Whether optimality was proven (budget did not trip). */
    bool proven = false;
    /** Minimal steady-state period tR (Eq. 4). */
    Time period = -1;
    /** Window start time per spec, normalized to min = 0. */
    std::vector<Time> start;
    /** Window extent: max finish - min start over all blocks. */
    Time windowSpan = 0;
    SolveStats stats;
};

/**
 * Solve the minimal period for @p assign on @p placement.
 */
RepetendSchedule solveRepetend(const Placement &placement,
                               const RepetendAssignment &assign,
                               const RepetendSolveOptions &options = {});

/**
 * Evaluate the period of a *given* window schedule (used by tests and by
 * the simple-vs-tight compaction ablation).
 *
 * @param tight when false, uses the simple compaction of Fig. 6(a): the
 *        next instance starts only after the whole window ends
 *        (P = window span), still honoring cross dependencies.
 */
Time evalPeriod(const Placement &placement,
                const RepetendAssignment &assign,
                const std::vector<Time> &start, bool tight = true);

} // namespace tessel

#endif // TESSEL_CORE_REPETEND_SOLVER_H
