/**
 * @file
 * Exact minimal-period search for one repetend candidate (Sec. IV-B).
 *
 * The repetend window holds one instance of every block spec (Eq. 3).
 * At steady state the window repeats with all micro-batch indices
 * advanced by one and start times shifted by the period P. Feasibility of
 * a period requires:
 *   - per-device non-overlap of consecutive instances: P >= E_d, the
 *     device's span inside the window;
 *   - cross-instance dependencies: an edge i -> j with index gap
 *     delta = r_i - r_j >= 1 links instance k's consumer to instance
 *     k - delta's producer, i.e. P >= ceil((f_i - s_j) / delta);
 * so the minimal feasible period for a fixed window schedule is the max
 * of those terms — exactly tR = max_d(E_d + W_d) of Eq. 4 under the tight
 * compaction of Fig. 6(b). The solver enumerates window schedules
 * (dispatch orders, semi-active timing) and minimizes that period.
 *
 * Memory: a steady-state instance starts with sum_i r_i * m_i already
 * held per device (the in-flight warmup allocations); the window's
 * per-device prefix sums must stay within capacity.
 */

#ifndef TESSEL_CORE_REPETEND_SOLVER_H
#define TESSEL_CORE_REPETEND_SOLVER_H

#include <functional>
#include <vector>

#include "core/repetend.h"
#include "solver/problem.h"

namespace tessel {

/**
 * How the per-node minimal feasible period (a maximum cycle ratio) is
 * computed inside PeriodSearch.
 */
enum class McrMode {
    /**
     * Howard-style policy iteration: the Bellman-Ford predecessor
     * forest is the policy; each round evaluates the node potentials at
     * the current period (one warm value sweep in the common case) and,
     * when a policy cycle proves the period infeasible, improves the
     * period to that cycle's exact ratio ceiling. Improvements never
     * overshoot the true maximum cycle ratio, so the converged period
     * and its least-fixed-point potentials are bit-identical to the
     * binary-search path.
     */
    Howard,
    /**
     * Binary search over candidate periods with one Bellman-Ford
     * feasibility probe per step (the PR 4 path; O(log range) probes
     * per node). Kept as a differential-testing fallback and the cold
     * perf baseline.
     */
    Binary,
};

/**
 * Process-wide default MCR mode: Howard unless the TESSEL_MCR
 * environment variable says "binary". Re-read on every call so tests
 * can flip it; anything other than "binary"/"howard" falls back to
 * Howard.
 */
McrMode defaultMcrMode();

/**
 * One difference-constraint edge of a parametric period system:
 * s[to] >= s[from] + w - h * P, with h >= 0 counting period crossings.
 * Feasibility of a period P is the absence of a positive cycle under
 * the adjusted weights w - h * P; the minimal feasible P is the
 * maximum cycle ratio ceil(sum_w / sum_h) over cycles with sum_h > 0.
 */
struct PeriodEdge
{
    int from;
    int to;
    Time w;
    int h;
};

/** Effort counters of the MCR kernel (see SolveStats for semantics). */
struct McrStats
{
    /** Bellman-Ford passes spent by Binary-mode probes. */
    uint64_t relaxations = 0;
    /** Value-evaluation sweeps spent by Howard-mode rounds. */
    uint64_t valueSweeps = 0;
    /** Howard policy improvements (period raises from a cycle). */
    uint64_t policyImprovements = 0;
};

/**
 * Warm-start handle for McrCore::minPeriod: a borrowed ancestor
 * solution of a *weaker* system (a subset of the probe's edges).
 * All pointees are optional and must outlive the call.
 */
struct McrWarmStart
{
    /** Ancestor least fixed point; the resume vector for potentials. */
    const std::vector<Time> *s = nullptr;
    /** Period @ref s was evaluated at (validity gate: Howard resumes
     *  from it only while probing periods <= this, Binary treats it as
     *  an anchor computed at some period >= the probe range). */
    Time period = -1;
    /** Ancestor improving-edge forest (indices into the ancestor's
     *  edge array, which must be a prefix of the probe's). Howard
     *  seeds its policy graph from it when probing exactly at
     *  @ref period — the composed relaxation histories stay a valid
     *  single history at one period, so seeded policy cycles still
     *  certify genuine positive cycles. Ignored by Binary. */
    const std::vector<int> *policy = nullptr;
};

/**
 * Reusable minimal-period / maximum-cycle-ratio kernel. One instance
 * owns the persistent scratch (adjusted weights, policy edges, walk
 * stamps), so repeated calls allocate nothing in steady state.
 * PeriodSearch drives it once per branch-and-bound node; tests and
 * benches use it standalone through solveMinPeriod().
 */
class McrCore
{
  public:
    /** Size the scratch for systems of @p num_nodes nodes. */
    void reset(int num_nodes);

    /**
     * Minimal feasible period of the system within [lo, hi]; -1 when
     * infeasible in that range (including "infeasible at any period":
     * a positive cycle with sum_h == 0). On success fills @p s with the
     * least fixed point of the adjusted system at the returned period —
     * the unique start vector both modes agree on bit for bit.
     *
     * Warm starts (exactness argument in the .cc): see McrWarmStart.
     * Binary mode additionally fills @p anchor (required in that mode)
     * with this call's LFP at @p hi; Howard mode fills @p policy_out
     * (when non-null) with the converged improving-edge forest — the
     * seed descendants probing the same period should inherit.
     *
     * @p stop is polled once per sweep (Howard mode only — Binary keeps
     * the PR 4 behavior of polling per search node, not per probe);
     * returning true abandons the solve with -1 and the caller must
     * treat the result as unproven rather than infeasible.
     */
    Time minPeriod(const PeriodEdge *edges, size_t num_edges, Time lo,
                   Time hi, McrMode mode, const McrWarmStart &warm,
                   std::vector<Time> &s, std::vector<Time> *anchor,
                   std::vector<int> *policy_out, McrStats &stats,
                   const std::function<bool()> &stop);

  private:
    enum class Sweep { Fixpoint, PositiveCycle, Stopped };

    Sweep evaluate(Time period, std::vector<Time> &s, McrMode mode,
                   bool keep_policy, McrStats &stats,
                   const std::function<bool()> &stop);
    int policyCycleNode();
    void policyCycleReps(std::vector<int> &reps);

    int k_ = 0;
    const PeriodEdge *edges_ = nullptr; // Borrowed for one call.
    size_t ne_ = 0;
    std::vector<Time> wp_;      // Per-probe adjusted edge weights.
    std::vector<int> policy_;   // Improving in-edge per node (-1: ground).
    std::vector<int> reps_;     // Policy-cycle representatives scratch.
    std::vector<Time> probe_;   // Binary-search probe buffer.
    std::vector<uint64_t> mark_; // policyCycleNode() walk stamps.
    uint64_t stamp_ = 0;
    uint64_t baseStamp_ = 1;
    uint32_t sweepPoll_ = 0; // Throttles the per-sweep stop callback.
    Time cycleW_ = 0; // Violated-cycle weight/height sums, valid after
    Time cycleH_ = 0; // evaluate() returns PositiveCycle.
};

/** Standalone result of solveMinPeriod (tests and kernel benches). */
struct McrSolveResult
{
    /** Minimal feasible period in [lo, hi]; -1 when infeasible. */
    Time period = -1;
    /** Least fixed point at `period` (empty when infeasible). */
    std::vector<Time> start;
    /** Howard mode: converged improving-edge forest at `period`,
     *  reusable as McrWarmStart::policy for a grown edge system. */
    std::vector<int> policy;
    McrStats stats;
};

/**
 * One-shot wrapper over McrCore for a self-contained edge system.
 * @p warm (optional pointees) must obey the validity rules documented
 * on McrWarmStart: a least fixed point of a subset of @p edges
 * computed at a period >= the periods this call probes.
 */
McrSolveResult solveMinPeriod(int num_nodes,
                              const std::vector<PeriodEdge> &edges,
                              Time lo, Time hi, McrMode mode,
                              const McrWarmStart &warm = {});

/** Options for one repetend period solve. */
struct RepetendSolveOptions
{
    /** Per-device memory capacity. */
    Mem memLimit = kUnlimitedMem;
    /** Per-device baseline usage (parameters etc.); empty = zeros. */
    std::vector<Mem> initialMem;
    /** Prune any candidate whose period would reach this value
     *  (Algorithm 1 passes the incumbent; -1 disables). */
    Time cutoff = -1;
    /**
     * Marks `cutoff`/`liveCutoff` as inherited from a warm-start seed
     * rather than from a candidate the enclosing sweep accepted itself.
     * Purely attributional: bound prunes taken under a seed-derived
     * bound are additionally counted in SolveStats::seedPrunes so the
     * seed's share of the pruning work is observable. Never changes
     * which nodes are pruned.
     */
    bool cutoffFromSeed = false;
    /** Wall-clock budget (<= 0: unlimited). */
    double timeBudgetSec = 0.0;
    /** Node cap (0: unlimited). */
    uint64_t nodeLimit = 0;
    /**
     * Warm-start the cyclic-feasibility relaxations from inherited
     * fixed points instead of relaxing from all-zero starts at every
     * probe. Exact: resuming Bellman-Ford from any vector pointwise
     * below the least fixed point converges to that same least fixed
     * point, so periods and start vectors stay bit-identical to the
     * cold path — only stats.relaxations shrinks. false restores the
     * cold O(k*E) probes (the counter-regression baseline).
     */
    bool warmStart = true;
    /**
     * Inner minimal-period solver (see McrMode). Plan-invariant: both
     * modes return identical periods and start vectors, so the knob is
     * excluded from instance fingerprints exactly like warmStart and
     * numThreads. Defaults to Howard, overridable process-wide via the
     * TESSEL_MCR environment variable ("binary" restores the PR 4
     * binary-search path for differential testing).
     */
    McrMode mcr = defaultMcrMode();
    /** Cooperative cancellation; a cancelled solve reports
     *  stats.cancelled and comes back infeasible/unproven. */
    CancelToken cancel;
    /**
     * Live incumbent period shared with concurrently running solves,
     * re-read at every bound check. Unlike `cutoff` this is
     * *inclusive*: periods equal to the live value are still returned,
     * because the parallel search breaks period ties by enumeration
     * index and an equal-period candidate with a smaller index must
     * not be masked. nullptr disables.
     */
    const std::atomic<Time> *liveCutoff = nullptr;
};

/** Result of a repetend period solve. */
struct RepetendSchedule
{
    bool feasible = false;
    /** Whether optimality was proven (budget did not trip). */
    bool proven = false;
    /** Minimal steady-state period tR (Eq. 4). */
    Time period = -1;
    /** Window start time per spec, normalized to min = 0. */
    std::vector<Time> start;
    /** Window extent: max finish - min start over all blocks. */
    Time windowSpan = 0;
    SolveStats stats;
};

/**
 * Solve the minimal period for @p assign on @p placement.
 */
RepetendSchedule solveRepetend(const Placement &placement,
                               const RepetendAssignment &assign,
                               const RepetendSolveOptions &options = {});

/**
 * Evaluate the period of a *given* window schedule (used by tests and by
 * the simple-vs-tight compaction ablation).
 *
 * @param tight when false, uses the simple compaction of Fig. 6(a): the
 *        next instance starts only after the whole window ends
 *        (P = window span), still honoring cross dependencies.
 */
Time evalPeriod(const Placement &placement,
                const RepetendAssignment &assign,
                const std::vector<Time> &start, bool tight = true);

} // namespace tessel

#endif // TESSEL_CORE_REPETEND_SOLVER_H
