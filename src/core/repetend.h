/**
 * @file
 * Repetend construction (Sec. IV-B): candidate enumeration under the
 * paper's pruning properties and derivation of the warmup/cooldown block
 * sets (Eqs. 5/6).
 *
 * A repetend assigns each block spec i a micro-batch index r_i in
 * [0, NR). Property 4.1 (micro-batch symmetry) lets us demand monotone
 * micro-batch indices per spec, which induces Property 4.2: along any
 * dependency edge i -> j (j consumes i's output), r_i >= r_j. We add the
 * canonical form min r = 0 (a uniform shift only shrinks the warmup) and
 * max r = NR-1 (otherwise the candidate already occurs at a smaller NR).
 */

#ifndef TESSEL_CORE_REPETEND_H
#define TESSEL_CORE_REPETEND_H

#include <functional>
#include <vector>

#include "ir/placement.h"
#include "ir/problem.h"

namespace tessel {

/** A candidate repetend: one micro-batch index per block spec. */
struct RepetendAssignment
{
    /** r_i for each spec i. */
    std::vector<int> r;
    /** Number of micro-batches NR spanned (max r + 1). */
    int numMicrobatches = 0;

    bool
    operator==(const RepetendAssignment &other) const
    {
        return numMicrobatches == other.numMicrobatches && r == other.r;
    }

    bool
    operator!=(const RepetendAssignment &other) const
    {
        return !(*this == other);
    }
};

/**
 * Enumerate all canonical repetend assignments for @p placement at a
 * given NR. Properties 4.1/4.2 plus the canonical min/max constraints
 * prune the (NR)^K raw space.
 *
 * @param placement the operator placement strategy.
 * @param nr number of micro-batches in the repetend (>= 1).
 * @param yield invoked for each candidate; return false to stop early.
 * @return number of candidates produced.
 */
int enumerateRepetends(
    const Placement &placement, int nr,
    const std::function<bool(const RepetendAssignment &)> &yield);

/** Convenience: materialize all candidates at @p nr. */
std::vector<RepetendAssignment> allRepetends(const Placement &placement,
                                             int nr);

/**
 * Per-device memory already held when a steady-state repetend instance
 * begins: the warmup has executed micro-batches [0, r_i) of every spec i
 * (Sec. IV-B, "memory usage at the entry of the repetend").
 *
 * @return per-device entry usage, excluding Problem::initialMem.
 */
std::vector<Mem> repetendEntryMem(const Placement &placement,
                                  const RepetendAssignment &assign);

/**
 * Warmup block set (Eq. 5): all instances (spec i, mb n) with n < r_i.
 */
std::vector<BlockRef> warmupBlocks(const Placement &placement,
                                   const RepetendAssignment &assign);

/**
 * Cooldown block set (Eq. 6): all instances (spec i, mb n) with
 * r_i < n < NR.
 */
std::vector<BlockRef> cooldownBlocks(const Placement &placement,
                                     const RepetendAssignment &assign);

/**
 * Maximum number of in-flight micro-batches under the memory budget
 * (Algorithm 1's CalMaxInflight): limits the NR sweep.
 *
 * @param placement the strategy.
 * @param mem_limit per-device capacity.
 * @param initial_mem per-device pre-allocated memory (may be empty).
 * @param hard_cap upper clamp regardless of memory.
 */
int calMaxInflight(const Placement &placement, Mem mem_limit,
                   const std::vector<Mem> &initial_mem, int hard_cap);

} // namespace tessel

#endif // TESSEL_CORE_REPETEND_H
