#include "core/plan.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace tessel {

TesselPlan::TesselPlan(Placement placement, RepetendAssignment assign,
                       std::vector<Time> window_start, Time period,
                       Time window_span, std::vector<BlockRef> warmup_refs,
                       std::vector<Time> warmup_start,
                       std::vector<BlockRef> cooldown_refs,
                       std::vector<Time> cooldown_start, Mem mem_limit,
                       std::vector<Mem> initial_mem)
    : placement_(std::move(placement)), assign_(std::move(assign)),
      windowStart_(std::move(window_start)), period_(period),
      windowSpan_(window_span), warmupRefs_(std::move(warmup_refs)),
      warmupStart_(std::move(warmup_start)),
      cooldownRefs_(std::move(cooldown_refs)),
      cooldownStart_(std::move(cooldown_start)), memLimit_(mem_limit),
      initialMem_(std::move(initial_mem))
{
    panic_if(warmupRefs_.size() != warmupStart_.size(),
             "plan: warmup size mismatch");
    panic_if(cooldownRefs_.size() != cooldownStart_.size(),
             "plan: cooldown size mismatch");
    panic_if(static_cast<int>(windowStart_.size()) !=
                 placement_.numBlocks(),
             "plan: window size mismatch");
}

double
TesselPlan::steadyBubbleRate() const
{
    if (period_ <= 0)
        return 0.0;
    double busy = 0.0;
    for (DeviceId d = 0; d < placement_.numDevices(); ++d)
        busy += static_cast<double>(placement_.workOnDevice(d));
    const double cap =
        static_cast<double>(period_) * placement_.numDevices();
    return 1.0 - busy / cap;
}

double
TesselPlan::worstDeviceBubbleRate() const
{
    if (period_ <= 0)
        return 0.0;
    double worst = 0.0;
    for (DeviceId d = 0; d < placement_.numDevices(); ++d) {
        const double idle =
            1.0 - static_cast<double>(placement_.workOnDevice(d)) /
                      static_cast<double>(period_);
        worst = std::max(worst, idle);
    }
    return worst;
}

Problem
TesselPlan::problemFor(int n) const
{
    Problem prob(placement_, n, memLimit_);
    if (!initialMem_.empty())
        prob.setInitialMem(initialMem_);
    return prob;
}

Schedule
TesselPlan::instantiate(int n) const
{
    const int nr = assign_.numMicrobatches;
    fatal_if(n < nr, "plan: need at least NR=", nr, " micro-batches, got ",
             n);
    std::string error;
    std::optional<Schedule> sched = tryInstantiate(n, &error);
    panic_if(!sched, "plan: instantiated schedule invalid: ", error);
    return std::move(*sched);
}

std::optional<Schedule>
TesselPlan::tryInstantiate(int n, std::string *error) const
{
    const auto fail = [&](const std::string &why) -> std::optional<Schedule> {
        if (error)
            *error = why;
        return std::nullopt;
    };
    const int nr = assign_.numMicrobatches;
    if (n < nr)
        return fail("need at least NR micro-batches");
    const int k = placement_.numBlocks();
    const int extra = n - nr; // Window instances beyond the first.

    Problem prob = problemFor(n);
    Schedule sched(prob);

    // Phase 1: warmup at its solved absolute times.
    std::vector<Time> avail_after_warmup(placement_.numDevices(), 0);
    for (size_t w = 0; w < warmupRefs_.size(); ++w) {
        const BlockRef ref = warmupRefs_[w];
        sched.setStart(ref, warmupStart_[w]);
        const Time fin =
            warmupStart_[w] + placement_.block(ref.spec).span;
        for (DeviceId d : placement_.block(ref.spec).devices)
            avail_after_warmup[d] =
                std::max(avail_after_warmup[d], fin);
    }

    // Phase 2: anchor offset theta0 for the first window instance.
    Time theta0 = 0;
    for (DeviceId d = 0; d < placement_.numDevices(); ++d) {
        Time min_s = -1;
        for (int i : placement_.blocksOnDevice(d))
            min_s = min_s < 0 ? windowStart_[i]
                              : std::min(min_s, windowStart_[i]);
        if (min_s >= 0)
            theta0 = std::max(theta0, avail_after_warmup[d] - min_s);
    }
    // Warmup-to-window dependencies: instance k of consumer j needs the
    // producer (i, r_j + k), which lives in the warmup while k < delta.
    for (int j = 0; j < k; ++j) {
        for (int i : placement_.block(j).deps) {
            const int delta = assign_.r[i] - assign_.r[j];
            for (int inst = 0; inst < delta && inst <= extra; ++inst) {
                const BlockRef producer{i, assign_.r[j] + inst};
                const Time fin = sched.start(producer) +
                                 placement_.block(i).span;
                theta0 = std::max(theta0,
                                  fin - windowStart_[j] -
                                      static_cast<Time>(inst) * period_);
            }
        }
    }

    // Phase 3: lay out the window instances at stride P.
    for (int inst = 0; inst <= extra; ++inst)
        for (int i = 0; i < k; ++i)
            sched.setStart({i, assign_.r[i] + inst},
                           theta0 + static_cast<Time>(inst) * period_ +
                               windowStart_[i]);

    // Phase 4: cooldown, retimed to earliest start while keeping the
    // solved per-device order. Micro-batch indices shift by `extra`.
    std::vector<size_t> order(cooldownRefs_.size());
    for (size_t c = 0; c < order.size(); ++c)
        order[c] = c;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cooldownStart_[a] != cooldownStart_[b])
            return cooldownStart_[a] < cooldownStart_[b];
        return a < b;
    });

    std::vector<Time> avail(placement_.numDevices(), 0);
    for (DeviceId d = 0; d < placement_.numDevices(); ++d) {
        for (int i : placement_.blocksOnDevice(d)) {
            // Last window instance finish per device.
            const Time fin = theta0 + static_cast<Time>(extra) * period_ +
                             windowStart_[i] + placement_.block(i).span;
            avail[d] = std::max(avail[d], fin);
        }
    }
    for (DeviceId d = 0; d < placement_.numDevices(); ++d)
        avail[d] = std::max(avail[d], avail_after_warmup[d]);

    for (size_t idx : order) {
        const BlockRef base = cooldownRefs_[idx];
        const BlockRef ref{base.spec, base.mb + extra};
        const BlockSpec &spec = placement_.block(base.spec);
        Time est = 0;
        for (int dep : spec.deps) {
            const Time dep_start = sched.start({dep, ref.mb});
            if (dep_start == kUnscheduled)
                return fail("cooldown dependency not yet scheduled");
            est = std::max(est, dep_start + placement_.block(dep).span);
        }
        for (DeviceId d : spec.devices)
            est = std::max(est, avail[d]);
        sched.setStart(ref, est);
        for (DeviceId d : spec.devices)
            avail[d] = est + spec.span;
    }

    const ValidationResult check = sched.validate();
    if (!check.ok)
        return fail(check.message);
    return sched;
}

Time
TesselPlan::makespanFor(int n) const
{
    return instantiate(n).makespan();
}

} // namespace tessel
