#include "core/repetend_solver.h"

#include <algorithm>

#include "support/arena.h"
#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

namespace {

/**
 * The minimal-period problem is a cyclic scheduling instance: constraints
 * are differences s_j - s_i >= w - h * P, where h counts period
 * crossings. Three families are order-independent:
 *   - intra-window dependencies (h = 0, w = t_i);
 *   - cross-instance dependencies (h = delta, w = t_i);
 *   - window-width bounds E_d <= P, expressed pairwise as
 *     s_a - s_b >= t_b - P for every ordered pair (b, a) on a device.
 * Device exclusivity is disjunctive (either a before b or b before a) and
 * memory feasibility constrains per-device *orders*; both are resolved by
 * branching. For a fixed set of resolved decisions, the minimal feasible
 * P is the maximum cycle ratio of the constraint graph, found by binary
 * search with Bellman-Ford positive-cycle detection. Adding decisions
 * only raises P, so the relaxation is an admissible bound.
 */
struct Edge
{
    int from;
    int to;
    Time w;
    int h;
};

class PeriodSearch
{
  public:
    PeriodSearch(const Placement &placement,
                 const RepetendAssignment &assign,
                 const RepetendSolveOptions &opts)
        : p_(placement), assign_(assign), opts_(opts),
          budget_(opts.timeBudgetSec)
    {
        k_ = p_.numBlocks();
        nd_ = p_.numDevices();
        panic_if(static_cast<int>(assign.r.size()) != k_,
                 "assignment size mismatch");
        buildStatic();
    }

    RepetendSchedule
    solve()
    {
        RepetendSchedule out;
        if (!entryFeasible()) {
            out.feasible = false;
            out.proven = true;
            return out;
        }
        recurse(0, 0, nullptr);
        out.stats = stats_;
        out.stats.seconds = budget_.elapsed();
        out.proven = !stats_.budgetExhausted;
        if (bestPeriod_ < 0) {
            out.feasible = false;
            return out;
        }
        out.feasible = true;
        out.period = bestPeriod_;
        Time lo = bestStart_[0];
        for (Time t : bestStart_)
            lo = std::min(lo, t);
        out.start.resize(k_);
        Time hi = 0;
        for (int i = 0; i < k_; ++i) {
            out.start[i] = bestStart_[i] - lo;
            hi = std::max(hi, out.start[i] + p_.block(i).span);
        }
        out.windowSpan = hi;
        return out;
    }

  private:
    void
    buildStatic()
    {
        // Flat span/memory tables: the branching loops below read these
        // per candidate pair, and the flat copies stay cache-resident
        // where the full BlockSpec records would not.
        spans_.resize(k_);
        memory_.resize(k_);
        for (int i = 0; i < k_; ++i) {
            spans_[i] = p_.block(i).span;
            memory_[i] = p_.block(i).memory;
        }
        // Order-independent constraint edges. Decision edges taken
        // during branching are pushed/popped behind them in the same
        // array, so a relaxation pass is one contiguous sweep.
        for (int j = 0; j < k_; ++j) {
            for (int i : p_.block(j).deps) {
                const int delta = assign_.r[i] - assign_.r[j];
                panic_if(delta < 0, "Property 4.2 violated in assignment");
                edges_.push_back({i, j, p_.block(i).span, delta});
            }
        }
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (int b : on)
                for (int a : on)
                    if (a != b)
                        edges_.push_back({b, a, p_.block(b).span, 1});
        }
        edges_.reserve(edges_.size() + 64);

        serialUb_ = p_.totalWork();
        globalLb_ = std::max<Time>(1, p_.perMicrobatchLowerBound());

        probe_.reserve(k_);
        order_.reserve(k_);
        wp_.reserve(edges_.size() + 64);
        pred_.assign(k_, -1);
        mark_.assign(k_, 0);

        entryMem_ = repetendEntryMem(p_, assign_);
        if (!opts_.initialMem.empty()) {
            panic_if(static_cast<int>(opts_.initialMem.size()) != nd_,
                     "initialMem size mismatch");
            for (int d = 0; d < nd_; ++d)
                entryMem_[d] += opts_.initialMem[d];
        }
    }

    bool
    entryFeasible() const
    {
        if (opts_.memLimit >= kUnlimitedMem)
            return true;
        for (int d = 0; d < nd_; ++d) {
            if (entryMem_[d] > opts_.memLimit)
                return false;
            // Positive per-instance net memory cannot reach steady state.
            if (p_.netMemoryOnDevice(d) > 0)
                return false;
        }
        return true;
    }

    /**
     * Bellman-Ford feasibility for a fixed period, resuming relaxation
     * from the current contents of @p s: returns true and leaves @p s
     * at the least fixed point >= its initial value when the graph with
     * edge weights (w - h * P) has no positive cycle.
     *
     * Warm-start exactness: relaxation from s0 converges to the least
     * fixed point above s0, and whenever s0 is pointwise below the
     * all-zeros least fixed point L the two coincide (every max-weight
     * path contribution through s0 >= 0 is also >= the zero-source
     * contribution, and L itself bounds the result from above). Any
     * fixed point of a *weaker* system — fewer decision edges, larger
     * or equal period, both of which only lower the fixed point — is
     * such an s0, so resuming from an ancestor's solution reproduces
     * the cold result bit for bit. The iteration bound is unchanged:
     * max-weight paths stay simple when no positive cycle exists, so
     * k passes still suffice from any starting vector.
     *
     * Infeasible probes terminate early through predecessor-cycle
     * detection rather than always exhausting all k+1 passes: a cycle
     * in the predecessor graph implies a strictly positive constraint
     * cycle (every pred edge was set by a strict improvement, and the
     * cycle's latest-set edge guarantees at least one of the summed
     * inequalities is strict), while a feasible system can never grow
     * one — so verdicts, and hence results, are unchanged.
     */
    bool
    relaxToFixpoint(Time period, std::vector<Time> &s)
    {
        // The adjusted weights w - h * P are probe constants; hoisting
        // them drops a multiply per edge from every pass.
        const size_t ne = edges_.size();
        wp_.resize(ne);
        for (size_t i = 0; i < ne; ++i)
            wp_[i] = edges_[i].w -
                     static_cast<Time>(edges_[i].h) * period;
        std::fill(pred_.begin(), pred_.end(), -1);
        auto relax_once = [&]() {
            ++stats_.relaxations;
            bool changed = false;
            for (size_t i = 0; i < ne; ++i) {
                const Edge &e = edges_[i];
                const Time need = s[e.from] + wp_[i];
                if (need > s[e.to]) {
                    s[e.to] = need;
                    pred_[e.to] = e.from;
                    changed = true;
                }
            }
            return changed;
        };
        for (int iter = 0; iter < k_; ++iter) {
            if (!relax_once())
                return true;
            if (predHasCycle())
                return false;
        }
        return !relax_once();
    }

    /** @return true when the predecessor graph contains a cycle. */
    bool
    predHasCycle()
    {
        // One stamped walk per start node; every node is visited at
        // most once per check, so the whole scan is O(k).
        for (int v = 0; v < k_; ++v) {
            if (mark_[v] >= baseStamp_)
                continue;
            const uint64_t walk = ++stamp_;
            int u = v;
            while (u >= 0 && mark_[u] < baseStamp_) {
                mark_[u] = walk;
                u = pred_[u];
            }
            if (u >= 0 && mark_[u] == walk) {
                baseStamp_ = ++stamp_; // Age marks for the next check.
                return true;
            }
        }
        // Age all walk marks at once for the next check.
        baseStamp_ = ++stamp_;
        return false;
    }

    /** Per-depth scratch frame (allocated once per depth, reused). */
    struct Frame
    {
        /** Start vector of this node: least fixed point at the period
         *  minPeriod() returned. */
        std::vector<Time> s;
        /** Least fixed point at this node's largest-period probe; the
         *  valid warm-start base for every descendant probe (periods
         *  only shrink and edges only grow down the tree, both of
         *  which raise fixed points). */
        std::vector<Time> anchor;
        /** Memory-violating prefix found by findMemoryViolation(). */
        std::vector<int> prefix;
        /** Membership marks for `prefix`, cleared after branching. */
        std::vector<char> inPrefix;
    };

    /**
     * Minimal feasible period for the current decision set within
     * [lb_hint, limit]; returns -1 when infeasible within the range.
     * Fills f.s with the least-fixed-point start vector of the
     * returned period. @p warm_base is the nearest ancestor anchor
     * (nullptr at the root); on return @p anchor_out points at the
     * anchor descendants must warm-start from.
     *
     * The final f.s needs no trailing re-probe: the initial probe and
     * every accepted binary-search probe leave f.s synced with the
     * current `hi`, so when the search converges f.s already is the
     * fixed point of the answer.
     *
     * The parent period only tightens `lb_hint`; probing it outright
     * first (betting the child's period is unchanged) was measured and
     * rejected — an infeasible probe never benefits from the warm
     * vector the way a feasible one does, and on the reference shapes
     * those extra failed probes outweighed the binary searches they
     * skipped. Keeping the cold probe schedule keeps warm cost below
     * cold on every successful probe (same fixed point, higher start)
     * and comparable on failed ones (bounded by the same k+1 passes).
     */
    Time
    minPeriod(Time lb_hint, Time limit, Frame &f,
              const std::vector<Time> *warm_base,
              const std::vector<Time> *&anchor_out)
    {
        Time lo = std::max(globalLb_, lb_hint);
        Time hi = std::min(serialUb_, limit);
        if (lo > hi)
            return -1;
        const bool warm = opts_.warmStart && warm_base != nullptr;
        // Largest-period probe: establishes feasibility of the range
        // and this node's anchor.
        if (warm)
            f.anchor = *warm_base;
        else
            f.anchor.assign(k_, 0);
        if (!relaxToFixpoint(hi, f.anchor))
            return -1;
        anchor_out = &f.anchor;
        f.s = f.anchor;
        while (lo < hi) {
            const Time mid = lo + (hi - lo) / 2;
            // mid < hi, so f.s (the fixed point at hi) is below the
            // fixed point at mid and remains a valid warm base.
            if (warm)
                probe_ = f.s;
            else
                probe_.assign(k_, 0);
            if (relaxToFixpoint(mid, probe_)) {
                f.s.swap(probe_);
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        return hi;
    }

    /** Find any overlapping same-device pair; -1s when conflict-free. */
    std::pair<int, int>
    findOverlap(const std::vector<Time> &s) const
    {
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (size_t x = 0; x < on.size(); ++x) {
                for (size_t y = x + 1; y < on.size(); ++y) {
                    const int a = on[x], b = on[y];
                    const Time fa = s[a] + spans_[a];
                    const Time fb = s[b] + spans_[b];
                    if (s[a] < fb && s[b] < fa)
                        return {a, b};
                }
            }
        }
        return {-1, -1};
    }

    /**
     * First memory violation: fills @p prefix with the earliest
     * per-device start-order prefix exceeding the capacity and returns
     * its device, or -1 when feasible. Sorting happens in a persistent
     * scratch buffer, so the probe allocates nothing in steady state.
     */
    int
    findMemoryViolation(const std::vector<Time> &s,
                        std::vector<int> &prefix)
    {
        prefix.clear();
        if (opts_.memLimit >= kUnlimitedMem)
            return -1;
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            order_.assign(on.begin(), on.end());
            std::sort(order_.begin(), order_.end(), [&](int a, int b) {
                return s[a] < s[b];
            });
            Mem used = entryMem_[d];
            for (size_t pos = 0; pos < order_.size(); ++pos) {
                used += memory_[order_[pos]];
                if (used > opts_.memLimit) {
                    prefix.assign(order_.begin(),
                                  order_.begin() + pos + 1);
                    return d;
                }
            }
        }
        return -1;
    }

    bool
    budgetTripped()
    {
        if (stopped_)
            return true;
        if (opts_.nodeLimit && stats_.nodes >= opts_.nodeLimit) {
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        // Clock and cancel-flag reads per node are measurable on deep
        // trees; poll them every 1024 checks like the BnB solver. The
        // gate starts open so a pre-cancelled solve still stops on its
        // very first node.
        if ((pollGate_++ & 1023) != 0)
            return false;
        if (budget_.expired()) {
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        if (opts_.cancel.cancelled()) {
            stats_.cancelled = true;
            stats_.budgetExhausted = true; // Result is likewise unproven.
            return stopped_ = true;
        }
        return false;
    }

    Time
    incumbentLimit() const
    {
        Time limit = serialUb_;
        if (opts_.cutoff >= 0)
            limit = std::min(limit, opts_.cutoff - 1);
        // The shared incumbent is inclusive: equal periods stay visible
        // so the caller's (period, index) tie-break is deterministic.
        if (opts_.liveCutoff)
            limit = std::min(
                limit, opts_.liveCutoff->load(std::memory_order_acquire));
        if (bestPeriod_ >= 0)
            limit = std::min(limit, bestPeriod_ - 1);
        return limit;
    }

    /**
     * One search node at recursion @p depth. @p warm_base is the
     * nearest ancestor's anchor fixed point (nullptr at the root);
     * all scratch lives in per-depth frames, so steady-state search
     * allocates nothing.
     */
    void
    recurse(int depth, Time parent_period,
            const std::vector<Time> *warm_base)
    {
        if (budgetTripped())
            return;
        ++stats_.nodes;

        Frame &f = frames_.at(static_cast<size_t>(depth), [&](Frame &fr) {
            fr.s.reserve(k_);
            fr.anchor.reserve(k_);
            fr.prefix.reserve(k_);
            fr.inPrefix.assign(k_, 0);
        });
        const std::vector<Time> *child_base = warm_base;
        const Time period =
            minPeriod(parent_period, incumbentLimit(), f, warm_base,
                      child_base);
        if (period < 0) {
            ++stats_.boundPrunes;
            // Attribute the prune to the warm-start seed while the
            // caller's bound is still seed-derived and this solve has
            // not yet found a solution of its own to bound against.
            if (opts_.cutoffFromSeed && bestPeriod_ < 0)
                ++stats_.seedPrunes;
            return;
        }

        const auto [a, b] = findOverlap(f.s);
        if (a >= 0) {
            // Branch on the two orderings of the conflicting pair.
            edges_.push_back({a, b, spans_[a], 0});
            recurse(depth + 1, period, child_base);
            edges_.pop_back();
            edges_.push_back({b, a, spans_[b], 0});
            recurse(depth + 1, period, child_base);
            edges_.pop_back();
            return;
        }

        const int dev = findMemoryViolation(f.s, f.prefix);
        if (dev >= 0) {
            // Some allocating block in the violating prefix must move
            // after some releasing block currently outside it; branch
            // over all such reorderings (complete cover).
            for (int x : f.prefix)
                f.inPrefix[x] = 1;
            bool stopped = false;
            for (int y : p_.blocksOnDevice(dev)) {
                if (f.inPrefix[y] || memory_[y] >= 0)
                    continue;
                for (int x : f.prefix) {
                    if (memory_[x] <= 0)
                        continue;
                    edges_.push_back({y, x, spans_[y], 0});
                    recurse(depth + 1, period, child_base);
                    edges_.pop_back();
                    if (budgetTripped()) {
                        stopped = true;
                        break;
                    }
                }
                if (stopped)
                    break;
            }
            for (int x : f.prefix)
                f.inPrefix[x] = 0;
            return;
        }

        // Conflict-free and memory-feasible: a complete solution.
        if (bestPeriod_ < 0 || period < bestPeriod_) {
            bestPeriod_ = period;
            bestStart_ = f.s;
        }
    }

    const Placement &p_;
    const RepetendAssignment &assign_;
    const RepetendSolveOptions &opts_;
    TimeBudget budget_;
    int k_ = 0;
    int nd_ = 0;

    std::vector<Edge> edges_; // Base constraints + decision tail.
    std::vector<Time> spans_;
    std::vector<Mem> memory_;
    std::vector<Mem> entryMem_;
    Time serialUb_ = 0;
    Time globalLb_ = 1;

    // Persistent scratch (see Frame for the per-depth pieces).
    FramePool<Frame> frames_;
    std::vector<Time> probe_; // Binary-search probe buffer.
    std::vector<int> order_;  // findMemoryViolation sort buffer.
    std::vector<Time> wp_;    // Per-probe adjusted edge weights.
    std::vector<int> pred_;   // Bellman-Ford predecessor graph.
    std::vector<uint64_t> mark_; // predHasCycle() walk stamps.
    uint64_t stamp_ = 0;
    uint64_t baseStamp_ = 1;
    uint64_t pollGate_ = 0;   // Throttles clock/cancel polling.
    bool stopped_ = false;    // Sticky budget/cancel trip.

    Time bestPeriod_ = -1;
    std::vector<Time> bestStart_;
    SolveStats stats_;
};

} // namespace

RepetendSchedule
solveRepetend(const Placement &placement, const RepetendAssignment &assign,
              const RepetendSolveOptions &options)
{
    PeriodSearch search(placement, assign, options);
    return search.solve();
}

Time
evalPeriod(const Placement &placement, const RepetendAssignment &assign,
           const std::vector<Time> &start, bool tight)
{
    const int k = placement.numBlocks();
    panic_if(static_cast<int>(start.size()) != k, "start size mismatch");

    Time period = 0;
    // Per-device span E_d.
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        Time lo = -1, hi = 0;
        for (int i : placement.blocksOnDevice(d)) {
            const Time s = start[i];
            const Time f = s + placement.block(i).span;
            lo = lo < 0 ? s : std::min(lo, s);
            hi = std::max(hi, f);
        }
        if (lo >= 0)
            period = std::max(period, hi - lo);
    }
    if (!tight) {
        // Simple compaction (Fig. 6a): next instance after the window.
        Time lo = -1, hi = 0;
        for (int i = 0; i < k; ++i) {
            lo = lo < 0 ? start[i] : std::min(lo, start[i]);
            hi = std::max(hi, start[i] + placement.block(i).span);
        }
        period = std::max(period, hi - lo);
    }
    // Cross-instance dependencies.
    for (int j = 0; j < k; ++j) {
        for (int i : placement.block(j).deps) {
            const int delta = assign.r[i] - assign.r[j];
            if (delta <= 0)
                continue;
            const Time gap =
                (start[i] + placement.block(i).span) - start[j];
            if (gap > 0)
                period = std::max(period, (gap + delta - 1) / delta);
        }
    }
    return period;
}

} // namespace tessel
