#include "core/repetend_solver.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/arena.h"
#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

McrMode
defaultMcrMode()
{
    // Re-read per call (a libc hash lookup, trivially cheaper than any
    // solve) so tests can flip the mode and the CI fallback leg
    // (TESSEL_MCR=binary over the full suite) needs no rebuild.
    const char *env = std::getenv("TESSEL_MCR");
    if (env && std::strcmp(env, "binary") == 0)
        return McrMode::Binary;
    return McrMode::Howard;
}

// ----------------------------------------------------------- MCR kernel
//
// The minimal-period problem is a cyclic scheduling instance: constraints
// are differences s_j - s_i >= w - h * P, where h counts period
// crossings. Three families are order-independent:
//   - intra-window dependencies (h = 0, w = t_i);
//   - cross-instance dependencies (h = delta, w = t_i);
//   - window-width bounds E_d <= P, expressed pairwise as
//     s_a - s_b >= t_b - P for every ordered pair (b, a) on a device.
// Device exclusivity is disjunctive (either a before b or b before a) and
// memory feasibility constrains per-device *orders*; both are resolved by
// branching. For a fixed set of resolved decisions, the minimal feasible
// P is the maximum cycle ratio of the constraint graph. Binary mode
// finds it by binary search with Bellman-Ford positive-cycle detection;
// Howard mode by policy iteration (see minPeriod below). Adding
// decisions only raises P, so the relaxation is an admissible bound.

namespace {

/** ceil(w / h) for w > 0, h > 0 (the only case a violated cycle with
 *  sum_h > 0 can produce: w - P*h > 0 with P >= 0 forces w > 0). */
inline Time
ceilRatio(Time w, Time h)
{
    return (w + h - 1) / h;
}

} // namespace

void
McrCore::reset(int num_nodes)
{
    k_ = num_nodes;
    policy_.assign(k_, -1);
    mark_.assign(k_, 0);
    stamp_ = 0;
    baseStamp_ = 1;
    probe_.reserve(k_);
    reps_.reserve(k_);
    sweepPoll_ = 0;
}

/**
 * One policy-evaluation round at @p period, resuming relaxation from
 * the current contents of @p s: returns Fixpoint and leaves @p s at the
 * least fixed point >= its initial value when the graph with edge
 * weights (w - h * period) has no positive cycle, or PositiveCycle with
 * cycleW_/cycleH_ holding a violated cycle's weight/height sums.
 *
 * Warm-start exactness: relaxation from s0 converges to the least
 * fixed point above s0, and whenever s0 is pointwise below the
 * all-zeros least fixed point L the two coincide (every max-weight
 * path contribution through s0 >= 0 is also >= the zero-source
 * contribution, and L itself bounds the result from above). Any
 * fixed point of a *weaker* system — fewer decision edges, larger
 * or equal period, both of which only lower the fixed point — is
 * such an s0, so resuming from an ancestor's solution reproduces
 * the cold result bit for bit. The iteration bound is unchanged:
 * max-weight paths stay simple when no positive cycle exists, so
 * k passes still suffice from any starting vector.
 *
 * Infeasible probes terminate early through policy-cycle detection
 * rather than always exhausting all k+1 passes: a cycle in the policy
 * graph (the Bellman-Ford predecessor forest) implies a strictly
 * positive constraint cycle (every policy edge was set by a strict
 * improvement, and the cycle's earliest-set edge guarantees at least
 * one of the summed inequalities is strict — its source node improved
 * again later, or the cycle could not have closed), while a feasible
 * system can never grow one — so verdicts, and hence results, are
 * unchanged.
 *
 * @p keep_policy resumes with the pre-seeded contents of policy_
 * (an ancestor's converged forest) instead of clearing it. Sound at
 * an unchanged period: the ancestor's sweeps relaxed a subset of
 * this system's edges under the same adjusted weights, so ancestor +
 * this call form one valid relaxation history, and the cycle lemma
 * above only needs that. The payoff is detection speed — one firing
 * of a violated decision edge closes a cycle through the ancestor's
 * already-present tight-path edges instead of waiting for the
 * improvement wave to walk the whole cycle.
 */
McrCore::Sweep
McrCore::evaluate(Time period, std::vector<Time> &s, McrMode mode,
                  bool keep_policy, McrStats &stats,
                  const std::function<bool()> &stop)
{
    if (!keep_policy)
        std::fill(policy_.begin(), policy_.end(), -1);
    const bool howard = mode == McrMode::Howard;
    // The adjusted weights w - h * P are probe constants. They are
    // computed fused into the first sweep (stored for later sweeps)
    // rather than in a separate pass: Howard evaluations converge or
    // detect in very few sweeps, so a standalone O(E) precompute pass
    // would rival the cost of the sweeps themselves.
    wp_.resize(ne_);
    bool first_sweep = true;
    auto sweep_once = [&]() {
        if (howard)
            ++stats.valueSweeps;
        else
            ++stats.relaxations;
        bool changed = false;
        if (first_sweep) {
            first_sweep = false;
            for (size_t i = 0; i < ne_; ++i) {
                const PeriodEdge &e = edges_[i];
                const Time w =
                    e.w - static_cast<Time>(e.h) * period;
                wp_[i] = w;
                const Time need = s[e.from] + w;
                if (need > s[e.to]) {
                    s[e.to] = need;
                    policy_[e.to] = static_cast<int>(i);
                    changed = true;
                }
            }
            return changed;
        }
        for (size_t i = 0; i < ne_; ++i) {
            const PeriodEdge &e = edges_[i];
            const Time need = s[e.from] + wp_[i];
            if (need > s[e.to]) {
                s[e.to] = need;
                policy_[e.to] = static_cast<int>(i);
                changed = true;
            }
        }
        return changed;
    };
    auto best_violated_cycle = [&]() {
        // Walk every detected policy cycle, summing the real (w, h) of
        // its edges, and keep the one demanding the largest period —
        // each cycle is genuine (the lemma above applies to any policy
        // cycle), so the max of their exact ratio ceilings is still a
        // lower bound on the answer while jumping further per round
        // than any single cycle. A cycle with sum_h == 0 is infeasible
        // at every period and trumps everything.
        cycleW_ = 0;
        cycleH_ = 0;
        bool have = false;
        for (const int v : reps_) {
            Time w = 0, h = 0;
            int u = v;
            do {
                const PeriodEdge &e = edges_[policy_[u]];
                w += e.w;
                h += e.h;
                u = e.from;
            } while (u != v);
            if (h == 0) {
                cycleW_ = w;
                cycleH_ = 0;
                return;
            }
            if (!have || ceilRatio(w, h) > ceilRatio(cycleW_, cycleH_)) {
                cycleW_ = w;
                cycleH_ = h;
                have = true;
            }
        }
    };
    for (int iter = 0; iter < k_; ++iter) {
        // Budget/cancel polling covers the value-sweep loop (Howard
        // mode only; Binary keeps the per-node cadence of PR 4). Most
        // evaluations finish in one or two sweeps, so the indirect
        // std::function call is throttled by a cheap local counter
        // before the callback's own every-1024-checks gate; a runaway
        // evaluation still gets polled.
        if (howard && stop && ((++sweepPoll_ & 63u) == 0) && stop())
            return Sweep::Stopped;
        if (!sweep_once())
            return Sweep::Fixpoint;
        if (howard) {
            policyCycleReps(reps_);
            if (!reps_.empty()) {
                best_violated_cycle();
                return Sweep::PositiveCycle;
            }
        } else if (policyCycleNode() >= 0) {
            return Sweep::PositiveCycle;
        }
    }
    if (!sweep_once())
        return Sweep::Fixpoint;
    // A change on pass k+1 proves a positive cycle exists. The policy
    // graph normally contains it by now; if this pass's overwrites
    // happened to break every closed walk, fall back to a +1 raise
    // certificate — still exact (the period is proven infeasible, so
    // the answer is >= period + 1), merely less of a jump.
    if (howard) {
        policyCycleReps(reps_);
        if (!reps_.empty()) {
            best_violated_cycle();
        } else {
            cycleW_ = period + 1;
            cycleH_ = 1;
        }
    }
    return Sweep::PositiveCycle;
}

/** @return a node on a policy-graph cycle, or -1 when acyclic. */
int
McrCore::policyCycleNode()
{
    // One stamped walk per start node; every node is visited at
    // most once per check, so the whole scan is O(k).
    for (int v = 0; v < k_; ++v) {
        if (mark_[v] >= baseStamp_)
            continue;
        const uint64_t walk = ++stamp_;
        int u = v;
        while (u >= 0 && mark_[u] < baseStamp_) {
            mark_[u] = walk;
            u = policy_[u] >= 0 ? edges_[policy_[u]].from : -1;
        }
        if (u >= 0 && mark_[u] == walk) {
            baseStamp_ = ++stamp_; // Age marks for the next check.
            return u;
        }
    }
    // Age all walk marks at once for the next check.
    baseStamp_ = ++stamp_;
    return -1;
}

/** Collect one representative node per distinct policy cycle. Same
 *  stamped O(k) scan as policyCycleNode, but exhaustive: Howard's
 *  improvement step raises to the *largest* demand among all cycles
 *  present, which converges in fewer rounds than chasing them one at
 *  a time (each round pays a from-zeros re-evaluation). */
void
McrCore::policyCycleReps(std::vector<int> &reps)
{
    reps.clear();
    for (int v = 0; v < k_; ++v) {
        if (mark_[v] >= baseStamp_)
            continue;
        const uint64_t walk = ++stamp_;
        int u = v;
        while (u >= 0 && mark_[u] < baseStamp_) {
            mark_[u] = walk;
            u = policy_[u] >= 0 ? edges_[policy_[u]].from : -1;
        }
        if (u >= 0 && mark_[u] == walk)
            reps.push_back(u);
    }
    baseStamp_ = ++stamp_;
}

/**
 * Minimal feasible period within [lo, hi]; see the header for the
 * contract and warm-start validity rules.
 *
 * Binary mode: probe hi (establishing range feasibility and the
 * caller's anchor), then classic binary search; every accepted probe
 * keeps @p s synced with the current upper bound, so the converged
 * @p s needs no trailing re-probe.
 *
 * Howard mode: policy iteration. Start at lo (the inherited lower
 * bound); evaluate the potentials there — in the warm case one sweep
 * from the parent's converged potentials. If the evaluation converges,
 * lo is feasible and, because improvements below never overshoot, it
 * IS the answer. Otherwise the violated policy cycle (W, H) proves
 * every period below ceil(W / H) infeasible: improve the period to
 * max(P + 1, ceil(W / H)) — at most the true maximum cycle ratio
 * ceiling, since the cycle is real — and re-evaluate. The first
 * period whose evaluation reaches a fixed point is therefore exactly
 * max(lo, ceil(max cycle ratio)), the same value the binary search
 * returns, and @p s is the least fixed point there, the same vector
 * the binary search leaves behind. A violated cycle with H == 0 has
 * W > 0 at any period: infeasible outright, matching the binary
 * path's failed hi probe.
 */
Time
McrCore::minPeriod(const PeriodEdge *edges, size_t num_edges, Time lo,
                   Time hi, McrMode mode, const McrWarmStart &warm,
                   std::vector<Time> &s, std::vector<Time> *anchor,
                   std::vector<int> *policy_out, McrStats &stats,
                   const std::function<bool()> &stop)
{
    if (lo > hi)
        return -1;
    edges_ = edges;
    ne_ = num_edges;

    if (mode == McrMode::Binary) {
        panic_if(anchor == nullptr, "binary MCR mode needs an anchor");
        // Largest-period probe: establishes feasibility of the range
        // and this node's anchor.
        if (warm.s)
            *anchor = *warm.s;
        else
            anchor->assign(k_, 0);
        if (evaluate(hi, *anchor, mode, false, stats, stop) !=
            Sweep::Fixpoint)
            return -1;
        s = *anchor;
        while (lo < hi) {
            const Time mid = lo + (hi - lo) / 2;
            // mid < hi, so s (the fixed point at hi) is below the
            // fixed point at mid and remains a valid warm base.
            if (warm.s)
                probe_ = s;
            else
                probe_.assign(k_, 0);
            if (evaluate(mid, probe_, mode, false, stats, stop) ==
                Sweep::Fixpoint) {
                s.swap(probe_);
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        return hi;
    }

    Time period = lo;
    bool first = true;
    for (;;) {
        // The ancestor's converged potentials are a least fixed point
        // of a weaker system at warm.period; they stay a valid resume
        // vector only while the probed period does not exceed it
        // (larger periods lower fixed points), and its policy forest
        // is only inheritable at exactly that period (the composed-
        // history argument on evaluate() needs one set of adjusted
        // weights). Improvement rounds probe above it and restart
        // from zeros.
        bool keep_policy = false;
        if (first && warm.s && period <= warm.period) {
            s = *warm.s;
            if (warm.policy && period == warm.period) {
                policy_ = *warm.policy;
                keep_policy = true;
            }
        } else {
            s.assign(k_, 0);
        }
        first = false;
        switch (evaluate(period, s, mode, keep_policy, stats, stop)) {
        case Sweep::Fixpoint:
            if (policy_out)
                *policy_out = policy_;
            return period;
        case Sweep::Stopped:
            return -1;
        case Sweep::PositiveCycle:
            break;
        }
        if (cycleH_ == 0)
            return -1; // Positive at every period.
        const Time next = std::max(period + 1, ceilRatio(cycleW_, cycleH_));
        ++stats.policyImprovements;
        if (next > hi)
            return -1;
        period = next;
    }
}

McrSolveResult
solveMinPeriod(int num_nodes, const std::vector<PeriodEdge> &edges,
               Time lo, Time hi, McrMode mode, const McrWarmStart &warm)
{
    panic_if(num_nodes < 0, "solveMinPeriod: negative node count");
    panic_if(lo < 0, "solveMinPeriod: negative lower bound");
    const int ne = static_cast<int>(edges.size());
    for (const PeriodEdge &e : edges) {
        panic_if(e.from < 0 || e.from >= num_nodes || e.to < 0 ||
                     e.to >= num_nodes,
                 "solveMinPeriod: edge endpoint out of range");
        panic_if(e.h < 0, "solveMinPeriod: negative edge height");
    }
    panic_if(warm.s && static_cast<int>(warm.s->size()) != num_nodes,
             "solveMinPeriod: warm base size mismatch");
    if (warm.policy) {
        panic_if(static_cast<int>(warm.policy->size()) != num_nodes,
                 "solveMinPeriod: warm policy size mismatch");
        for (const int e : *warm.policy)
            panic_if(e < -1 || e >= ne,
                     "solveMinPeriod: warm policy edge out of range");
    }
    McrCore core;
    core.reset(num_nodes);
    McrSolveResult out;
    std::vector<Time> anchor;
    out.period = core.minPeriod(
        edges.data(), edges.size(), lo, hi, mode, warm, out.start,
        mode == McrMode::Binary ? &anchor : nullptr, &out.policy,
        out.stats, std::function<bool()>{});
    if (out.period < 0) {
        out.start.clear();
        out.policy.clear();
    }
    return out;
}

namespace {

class PeriodSearch
{
  public:
    PeriodSearch(const Placement &placement,
                 const RepetendAssignment &assign,
                 const RepetendSolveOptions &opts)
        : p_(placement), assign_(assign), opts_(opts),
          budget_(opts.timeBudgetSec)
    {
        k_ = p_.numBlocks();
        nd_ = p_.numDevices();
        panic_if(static_cast<int>(assign.r.size()) != k_,
                 "assignment size mismatch");
        buildStatic();
    }

    RepetendSchedule
    solve()
    {
        RepetendSchedule out;
        if (!entryFeasible()) {
            out.feasible = false;
            out.proven = true;
            return out;
        }
        recurse(0, 0, McrWarmStart{});
        stats_.relaxations = mcrStats_.relaxations;
        stats_.valueSweeps = mcrStats_.valueSweeps;
        stats_.policyImprovements = mcrStats_.policyImprovements;
        out.stats = stats_;
        out.stats.seconds = budget_.elapsed();
        out.proven = !stats_.budgetExhausted;
        if (bestPeriod_ < 0) {
            out.feasible = false;
            return out;
        }
        out.feasible = true;
        out.period = bestPeriod_;
        Time lo = bestStart_[0];
        for (Time t : bestStart_)
            lo = std::min(lo, t);
        out.start.resize(k_);
        Time hi = 0;
        for (int i = 0; i < k_; ++i) {
            out.start[i] = bestStart_[i] - lo;
            hi = std::max(hi, out.start[i] + p_.block(i).span);
        }
        out.windowSpan = hi;
        return out;
    }

  private:
    void
    buildStatic()
    {
        // Flat span/memory tables: the branching loops below read these
        // per candidate pair, and the flat copies stay cache-resident
        // where the full BlockSpec records would not.
        spans_.resize(k_);
        memory_.resize(k_);
        for (int i = 0; i < k_; ++i) {
            spans_[i] = p_.block(i).span;
            memory_[i] = p_.block(i).memory;
        }
        // Order-independent constraint edges. Decision edges taken
        // during branching are pushed/popped behind them in the same
        // array, so a relaxation pass is one contiguous sweep.
        for (int j = 0; j < k_; ++j) {
            for (int i : p_.block(j).deps) {
                const int delta = assign_.r[i] - assign_.r[j];
                panic_if(delta < 0, "Property 4.2 violated in assignment");
                edges_.push_back({i, j, p_.block(i).span, delta});
            }
        }
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (int b : on)
                for (int a : on)
                    if (a != b)
                        edges_.push_back({b, a, p_.block(b).span, 1});
        }
        edges_.reserve(edges_.size() + 64);

        serialUb_ = p_.totalWork();
        globalLb_ = std::max<Time>(1, p_.perMicrobatchLowerBound());

        order_.reserve(k_);
        mcr_.reset(k_);
        stopCb_ = [this]() { return sweepStop(); };

        entryMem_ = repetendEntryMem(p_, assign_);
        if (!opts_.initialMem.empty()) {
            panic_if(static_cast<int>(opts_.initialMem.size()) != nd_,
                     "initialMem size mismatch");
            for (int d = 0; d < nd_; ++d)
                entryMem_[d] += opts_.initialMem[d];
        }
    }

    bool
    entryFeasible() const
    {
        if (opts_.memLimit >= kUnlimitedMem)
            return true;
        for (int d = 0; d < nd_; ++d) {
            if (entryMem_[d] > opts_.memLimit)
                return false;
            // Positive per-instance net memory cannot reach steady state.
            if (p_.netMemoryOnDevice(d) > 0)
                return false;
        }
        return true;
    }

    /** Per-depth scratch frame (allocated once per depth, reused). */
    struct Frame
    {
        /** Start vector of this node: least fixed point at the period
         *  minPeriod() returned. In Howard mode doubles as the
         *  descendants' warm base (children inherit this node's period
         *  as their lower bound, and at an unchanged period the parent
         *  fixed point is a valid resume vector; see McrCore). */
        std::vector<Time> s;
        /** Binary mode only: least fixed point at this node's
         *  largest-period probe; the valid warm-start base for every
         *  descendant probe (periods only shrink and edges only grow
         *  down the tree, both of which raise fixed points). */
        std::vector<Time> anchor;
        /** Howard mode only: converged improving-edge forest at this
         *  node's period; descendants probing the same period seed
         *  their policy graph from it (see McrWarmStart::policy). */
        std::vector<int> policy;
        /** Memory-violating prefix found by findMemoryViolation(). */
        std::vector<int> prefix;
        /** Membership marks for `prefix`, cleared after branching. */
        std::vector<char> inPrefix;
    };

    /**
     * Minimal feasible period for the current decision set within
     * [lb_hint, limit]; returns -1 when infeasible within the range
     * (or when a mid-solve budget trip abandoned the solve — check
     * `stopped_`). Fills f.s with the least-fixed-point start vector
     * of the returned period and @p child_out with the warm-start
     * handle descendants must inherit.
     *
     * The parent period only tightens `lb_hint` in Binary mode;
     * probing it outright first (betting the child's period is
     * unchanged) was measured and rejected there — an infeasible probe
     * never benefits from the warm vector the way a feasible one does,
     * and on the reference shapes those extra failed probes outweighed
     * the binary searches they skipped. Howard mode is that bet made
     * safe: its first evaluation *is* at the parent period, but an
     * infeasible evaluation still pays for itself by producing the
     * violated cycle that jumps the period to the answer.
     */
    Time
    minPeriod(Time lb_hint, Time limit, Frame &f,
              const McrWarmStart &warm, McrWarmStart &child_out)
    {
        const Time lo = std::max(globalLb_, lb_hint);
        const Time hi = std::min(serialUb_, limit);
        const bool binary = opts_.mcr == McrMode::Binary;
        const Time period = mcr_.minPeriod(
            edges_.data(), edges_.size(), lo, hi, opts_.mcr,
            opts_.warmStart ? warm : McrWarmStart{}, f.s,
            binary ? &f.anchor : nullptr,
            binary ? nullptr : &f.policy, mcrStats_, stopCb_);
        if (period < 0)
            return -1;
        if (binary)
            child_out = {&f.anchor, hi, nullptr};
        else
            child_out = {&f.s, period, &f.policy};
        return period;
    }

    /** Find any overlapping same-device pair; -1s when conflict-free. */
    std::pair<int, int>
    findOverlap(const std::vector<Time> &s) const
    {
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (size_t x = 0; x < on.size(); ++x) {
                for (size_t y = x + 1; y < on.size(); ++y) {
                    const int a = on[x], b = on[y];
                    const Time fa = s[a] + spans_[a];
                    const Time fb = s[b] + spans_[b];
                    if (s[a] < fb && s[b] < fa)
                        return {a, b};
                }
            }
        }
        return {-1, -1};
    }

    /**
     * First memory violation: fills @p prefix with the earliest
     * per-device start-order prefix exceeding the capacity and returns
     * its device, or -1 when feasible. Sorting happens in a persistent
     * scratch buffer, so the probe allocates nothing in steady state.
     */
    int
    findMemoryViolation(const std::vector<Time> &s,
                        std::vector<int> &prefix)
    {
        prefix.clear();
        if (opts_.memLimit >= kUnlimitedMem)
            return -1;
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            order_.assign(on.begin(), on.end());
            std::sort(order_.begin(), order_.end(), [&](int a, int b) {
                return s[a] < s[b];
            });
            Mem used = entryMem_[d];
            for (size_t pos = 0; pos < order_.size(); ++pos) {
                used += memory_[order_[pos]];
                if (used > opts_.memLimit) {
                    prefix.assign(order_.begin(),
                                  order_.begin() + pos + 1);
                    return d;
                }
            }
        }
        return -1;
    }

    bool
    budgetTripped()
    {
        if (stopped_)
            return true;
        if (opts_.nodeLimit && stats_.nodes >= opts_.nodeLimit) {
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        // Clock and cancel-flag reads per node are measurable on deep
        // trees; poll them every 1024 checks like the BnB solver. The
        // gate starts open so a pre-cancelled solve still stops on its
        // very first node.
        if ((pollGate_++ & 1023) != 0)
            return false;
        if (budget_.expired()) {
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        if (opts_.cancel.cancelled()) {
            stats_.cancelled = true;
            stats_.budgetExhausted = true; // Result is likewise unproven.
            return stopped_ = true;
        }
        return false;
    }

    /**
     * Per-sweep stop poll for the Howard value loop: clock and cancel
     * only, through the same every-1024 gate as budgetTripped(). The
     * node limit is deliberately absent — node counts change only at
     * node boundaries, so checking it mid-solve could never trip and
     * would make nodeLimit accounting depend on sweep counts.
     */
    bool
    sweepStop()
    {
        if (stopped_)
            return true;
        if ((pollGate_++ & 1023) != 0)
            return false;
        if (budget_.expired()) {
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        if (opts_.cancel.cancelled()) {
            stats_.cancelled = true;
            stats_.budgetExhausted = true;
            return stopped_ = true;
        }
        return false;
    }

    Time
    incumbentLimit() const
    {
        Time limit = serialUb_;
        if (opts_.cutoff >= 0)
            limit = std::min(limit, opts_.cutoff - 1);
        // The shared incumbent is inclusive: equal periods stay visible
        // so the caller's (period, index) tie-break is deterministic.
        if (opts_.liveCutoff)
            limit = std::min(
                limit, opts_.liveCutoff->load(std::memory_order_acquire));
        if (bestPeriod_ >= 0)
            limit = std::min(limit, bestPeriod_ - 1);
        return limit;
    }

    /**
     * One search node at recursion @p depth. @p warm is the nearest
     * ancestor's warm-start handle (empty at the root); all scratch
     * lives in per-depth frames, so steady-state search allocates
     * nothing.
     */
    void
    recurse(int depth, Time parent_period, const McrWarmStart &warm)
    {
        if (budgetTripped())
            return;
        ++stats_.nodes;

        Frame &f = frames_.at(static_cast<size_t>(depth), [&](Frame &fr) {
            fr.s.reserve(k_);
            fr.anchor.reserve(k_);
            fr.policy.reserve(k_);
            fr.prefix.reserve(k_);
            fr.inPrefix.assign(k_, 0);
        });
        McrWarmStart child_base = warm;
        const Time period =
            minPeriod(parent_period, incumbentLimit(), f, warm,
                      child_base);
        if (period < 0) {
            // A mid-solve clock/cancel trip is not a proven prune.
            if (stopped_)
                return;
            ++stats_.boundPrunes;
            // Attribute the prune to the warm-start seed while the
            // caller's bound is still seed-derived and this solve has
            // not yet found a solution of its own to bound against.
            if (opts_.cutoffFromSeed && bestPeriod_ < 0)
                ++stats_.seedPrunes;
            return;
        }

        const auto [a, b] = findOverlap(f.s);
        if (a >= 0) {
            // Branch on the two orderings of the conflicting pair.
            edges_.push_back({a, b, spans_[a], 0});
            recurse(depth + 1, period, child_base);
            edges_.pop_back();
            edges_.push_back({b, a, spans_[b], 0});
            recurse(depth + 1, period, child_base);
            edges_.pop_back();
            return;
        }

        const int dev = findMemoryViolation(f.s, f.prefix);
        if (dev >= 0) {
            // Some allocating block in the violating prefix must move
            // after some releasing block currently outside it; branch
            // over all such reorderings (complete cover).
            for (int x : f.prefix)
                f.inPrefix[x] = 1;
            bool stopped = false;
            for (int y : p_.blocksOnDevice(dev)) {
                if (f.inPrefix[y] || memory_[y] >= 0)
                    continue;
                for (int x : f.prefix) {
                    if (memory_[x] <= 0)
                        continue;
                    edges_.push_back({y, x, spans_[y], 0});
                    recurse(depth + 1, period, child_base);
                    edges_.pop_back();
                    if (budgetTripped()) {
                        stopped = true;
                        break;
                    }
                }
                if (stopped)
                    break;
            }
            for (int x : f.prefix)
                f.inPrefix[x] = 0;
            return;
        }

        // Conflict-free and memory-feasible: a complete solution.
        if (bestPeriod_ < 0 || period < bestPeriod_) {
            bestPeriod_ = period;
            bestStart_ = f.s;
        }
    }

    const Placement &p_;
    const RepetendAssignment &assign_;
    const RepetendSolveOptions &opts_;
    TimeBudget budget_;
    int k_ = 0;
    int nd_ = 0;

    std::vector<PeriodEdge> edges_; // Base constraints + decision tail.
    std::vector<Time> spans_;
    std::vector<Mem> memory_;
    std::vector<Mem> entryMem_;
    Time serialUb_ = 0;
    Time globalLb_ = 1;

    // Persistent scratch (see Frame for the per-depth pieces).
    FramePool<Frame> frames_;
    std::vector<int> order_;  // findMemoryViolation sort buffer.
    McrCore mcr_;             // Minimal-period kernel + its scratch.
    McrStats mcrStats_;
    std::function<bool()> stopCb_;
    uint64_t pollGate_ = 0;   // Throttles clock/cancel polling.
    bool stopped_ = false;    // Sticky budget/cancel trip.

    Time bestPeriod_ = -1;
    std::vector<Time> bestStart_;
    SolveStats stats_;
};

} // namespace

RepetendSchedule
solveRepetend(const Placement &placement, const RepetendAssignment &assign,
              const RepetendSolveOptions &options)
{
    PeriodSearch search(placement, assign, options);
    return search.solve();
}

Time
evalPeriod(const Placement &placement, const RepetendAssignment &assign,
           const std::vector<Time> &start, bool tight)
{
    const int k = placement.numBlocks();
    panic_if(static_cast<int>(start.size()) != k, "start size mismatch");

    Time period = 0;
    // Per-device span E_d.
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        Time lo = -1, hi = 0;
        for (int i : placement.blocksOnDevice(d)) {
            const Time s = start[i];
            const Time f = s + placement.block(i).span;
            lo = lo < 0 ? s : std::min(lo, s);
            hi = std::max(hi, f);
        }
        if (lo >= 0)
            period = std::max(period, hi - lo);
    }
    if (!tight) {
        // Simple compaction (Fig. 6a): next instance after the window.
        Time lo = -1, hi = 0;
        for (int i = 0; i < k; ++i) {
            lo = lo < 0 ? start[i] : std::min(lo, start[i]);
            hi = std::max(hi, start[i] + placement.block(i).span);
        }
        period = std::max(period, hi - lo);
    }
    // Cross-instance dependencies.
    for (int j = 0; j < k; ++j) {
        for (int i : placement.block(j).deps) {
            const int delta = assign.r[i] - assign.r[j];
            if (delta <= 0)
                continue;
            const Time gap =
                (start[i] + placement.block(i).span) - start[j];
            if (gap > 0)
                period = std::max(period, (gap + delta - 1) / delta);
        }
    }
    return period;
}

} // namespace tessel
