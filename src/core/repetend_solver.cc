#include "core/repetend_solver.h"

#include <algorithm>
#include <set>

#include "support/logging.h"
#include "support/timer.h"

namespace tessel {

namespace {

/**
 * The minimal-period problem is a cyclic scheduling instance: constraints
 * are differences s_j - s_i >= w - h * P, where h counts period
 * crossings. Three families are order-independent:
 *   - intra-window dependencies (h = 0, w = t_i);
 *   - cross-instance dependencies (h = delta, w = t_i);
 *   - window-width bounds E_d <= P, expressed pairwise as
 *     s_a - s_b >= t_b - P for every ordered pair (b, a) on a device.
 * Device exclusivity is disjunctive (either a before b or b before a) and
 * memory feasibility constrains per-device *orders*; both are resolved by
 * branching. For a fixed set of resolved decisions, the minimal feasible
 * P is the maximum cycle ratio of the constraint graph, found by binary
 * search with Bellman-Ford positive-cycle detection. Adding decisions
 * only raises P, so the relaxation is an admissible bound.
 */
struct Edge
{
    int from;
    int to;
    Time w;
    int h;
};

class PeriodSearch
{
  public:
    PeriodSearch(const Placement &placement,
                 const RepetendAssignment &assign,
                 const RepetendSolveOptions &opts)
        : p_(placement), assign_(assign), opts_(opts),
          budget_(opts.timeBudgetSec)
    {
        k_ = p_.numBlocks();
        nd_ = p_.numDevices();
        panic_if(static_cast<int>(assign.r.size()) != k_,
                 "assignment size mismatch");
        buildStatic();
    }

    RepetendSchedule
    solve()
    {
        RepetendSchedule out;
        if (!entryFeasible()) {
            out.feasible = false;
            out.proven = true;
            return out;
        }
        recurse();
        out.stats = stats_;
        out.stats.seconds = budget_.elapsed();
        out.proven = !stats_.budgetExhausted;
        if (bestPeriod_ < 0) {
            out.feasible = false;
            return out;
        }
        out.feasible = true;
        out.period = bestPeriod_;
        Time lo = bestStart_[0];
        for (Time t : bestStart_)
            lo = std::min(lo, t);
        out.start.resize(k_);
        Time hi = 0;
        for (int i = 0; i < k_; ++i) {
            out.start[i] = bestStart_[i] - lo;
            hi = std::max(hi, out.start[i] + p_.block(i).span);
        }
        out.windowSpan = hi;
        return out;
    }

  private:
    void
    buildStatic()
    {
        // Flat span/memory tables: the branching loops below read these
        // per candidate pair, and the flat copies stay cache-resident
        // where the full BlockSpec records would not.
        spans_.resize(k_);
        memory_.resize(k_);
        for (int i = 0; i < k_; ++i) {
            spans_[i] = p_.block(i).span;
            memory_[i] = p_.block(i).memory;
        }
        // Order-independent constraint edges.
        for (int j = 0; j < k_; ++j) {
            for (int i : p_.block(j).deps) {
                const int delta = assign_.r[i] - assign_.r[j];
                panic_if(delta < 0, "Property 4.2 violated in assignment");
                base_.push_back({i, j, p_.block(i).span, delta});
            }
        }
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (int b : on)
                for (int a : on)
                    if (a != b)
                        base_.push_back({b, a, p_.block(b).span, 1});
        }

        serialUb_ = p_.totalWork();
        globalLb_ = std::max<Time>(1, p_.perMicrobatchLowerBound());

        entryMem_ = repetendEntryMem(p_, assign_);
        if (!opts_.initialMem.empty()) {
            panic_if(static_cast<int>(opts_.initialMem.size()) != nd_,
                     "initialMem size mismatch");
            for (int d = 0; d < nd_; ++d)
                entryMem_[d] += opts_.initialMem[d];
        }
    }

    bool
    entryFeasible() const
    {
        if (opts_.memLimit >= kUnlimitedMem)
            return true;
        for (int d = 0; d < nd_; ++d) {
            if (entryMem_[d] > opts_.memLimit)
                return false;
            // Positive per-instance net memory cannot reach steady state.
            if (p_.netMemoryOnDevice(d) > 0)
                return false;
        }
        return true;
    }

    /**
     * Bellman-Ford feasibility for a fixed period: returns true and
     * fills @p s with feasible start times when the graph with edge
     * weights (w - h * P) has no positive cycle.
     */
    bool
    feasibleAt(Time period, std::vector<Time> &s) const
    {
        s.assign(k_, 0);
        auto relax_once = [&]() {
            bool changed = false;
            for (const Edge &e : base_) {
                const Time need =
                    s[e.from] + e.w - static_cast<Time>(e.h) * period;
                if (need > s[e.to]) {
                    s[e.to] = need;
                    changed = true;
                }
            }
            for (const Edge &e : decisions_) {
                const Time need =
                    s[e.from] + e.w - static_cast<Time>(e.h) * period;
                if (need > s[e.to]) {
                    s[e.to] = need;
                    changed = true;
                }
            }
            return changed;
        };
        for (int iter = 0; iter < k_; ++iter)
            if (!relax_once())
                return true;
        return !relax_once();
    }

    /**
     * Minimal feasible period for the current decision set within
     * [lb_hint, limit]; returns -1 when infeasible within the range.
     */
    Time
    minPeriod(Time lb_hint, Time limit, std::vector<Time> &s) const
    {
        Time lo = std::max(globalLb_, lb_hint);
        Time hi = std::min(serialUb_, limit);
        if (lo > hi)
            return -1;
        if (!feasibleAt(hi, s))
            return -1;
        std::vector<Time> probe;
        while (lo < hi) {
            const Time mid = lo + (hi - lo) / 2;
            if (feasibleAt(mid, probe)) {
                s = probe;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // Ensure s corresponds to the final period hi.
        if (!feasibleAt(hi, s))
            return -1;
        return hi;
    }

    /** Find any overlapping same-device pair; -1s when conflict-free. */
    std::pair<int, int>
    findOverlap(const std::vector<Time> &s) const
    {
        for (DeviceId d = 0; d < nd_; ++d) {
            const auto &on = p_.blocksOnDevice(d);
            for (size_t x = 0; x < on.size(); ++x) {
                for (size_t y = x + 1; y < on.size(); ++y) {
                    const int a = on[x], b = on[y];
                    const Time fa = s[a] + spans_[a];
                    const Time fb = s[b] + spans_[b];
                    if (s[a] < fb && s[b] < fa)
                        return {a, b};
                }
            }
        }
        return {-1, -1};
    }

    /**
     * First memory violation: returns (device, position) of the earliest
     * prefix exceeding the capacity, or device -1 when feasible.
     */
    std::pair<int, std::vector<int>>
    findMemoryViolation(const std::vector<Time> &s) const
    {
        if (opts_.memLimit >= kUnlimitedMem)
            return {-1, {}};
        for (DeviceId d = 0; d < nd_; ++d) {
            std::vector<int> order = p_.blocksOnDevice(d);
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                return s[a] < s[b];
            });
            Mem used = entryMem_[d];
            for (size_t pos = 0; pos < order.size(); ++pos) {
                used += memory_[order[pos]];
                if (used > opts_.memLimit) {
                    order.resize(pos + 1);
                    return {d, order};
                }
            }
        }
        return {-1, {}};
    }

    bool
    budgetTripped()
    {
        if (budget_.expired() ||
            (opts_.nodeLimit && stats_.nodes >= opts_.nodeLimit)) {
            stats_.budgetExhausted = true;
            return true;
        }
        if (opts_.cancel.cancelled()) {
            stats_.cancelled = true;
            stats_.budgetExhausted = true; // Result is likewise unproven.
            return true;
        }
        return false;
    }

    Time
    incumbentLimit() const
    {
        Time limit = serialUb_;
        if (opts_.cutoff >= 0)
            limit = std::min(limit, opts_.cutoff - 1);
        // The shared incumbent is inclusive: equal periods stay visible
        // so the caller's (period, index) tie-break is deterministic.
        if (opts_.liveCutoff)
            limit = std::min(
                limit, opts_.liveCutoff->load(std::memory_order_acquire));
        if (bestPeriod_ >= 0)
            limit = std::min(limit, bestPeriod_ - 1);
        return limit;
    }

    void
    recurse(Time parent_period = 0)
    {
        if (budgetTripped())
            return;
        ++stats_.nodes;

        std::vector<Time> s;
        const Time period = minPeriod(parent_period, incumbentLimit(), s);
        if (period < 0) {
            ++stats_.boundPrunes;
            return;
        }

        const auto [a, b] = findOverlap(s);
        if (a >= 0) {
            // Branch on the two orderings of the conflicting pair.
            decisions_.push_back({a, b, spans_[a], 0});
            recurse(period);
            decisions_.pop_back();
            decisions_.push_back({b, a, spans_[b], 0});
            recurse(period);
            decisions_.pop_back();
            return;
        }

        const auto [dev, prefix] = findMemoryViolation(s);
        if (dev >= 0) {
            // Some allocating block in the violating prefix must move
            // after some releasing block currently outside it; branch
            // over all such reorderings (complete cover).
            std::set<int> in_prefix(prefix.begin(), prefix.end());
            for (int y : p_.blocksOnDevice(dev)) {
                if (in_prefix.count(y) || memory_[y] >= 0)
                    continue;
                for (int x : prefix) {
                    if (memory_[x] <= 0)
                        continue;
                    decisions_.push_back({y, x, spans_[y], 0});
                    recurse(period);
                    decisions_.pop_back();
                    if (budgetTripped())
                        return;
                }
            }
            return;
        }

        // Conflict-free and memory-feasible: a complete solution.
        if (bestPeriod_ < 0 || period < bestPeriod_) {
            bestPeriod_ = period;
            bestStart_ = s;
        }
    }

    const Placement &p_;
    const RepetendAssignment &assign_;
    const RepetendSolveOptions &opts_;
    TimeBudget budget_;
    int k_ = 0;
    int nd_ = 0;

    std::vector<Edge> base_;
    std::vector<Edge> decisions_;
    std::vector<Time> spans_;
    std::vector<Mem> memory_;
    std::vector<Mem> entryMem_;
    Time serialUb_ = 0;
    Time globalLb_ = 1;

    Time bestPeriod_ = -1;
    std::vector<Time> bestStart_;
    SolveStats stats_;
};

} // namespace

RepetendSchedule
solveRepetend(const Placement &placement, const RepetendAssignment &assign,
              const RepetendSolveOptions &options)
{
    PeriodSearch search(placement, assign, options);
    return search.solve();
}

Time
evalPeriod(const Placement &placement, const RepetendAssignment &assign,
           const std::vector<Time> &start, bool tight)
{
    const int k = placement.numBlocks();
    panic_if(static_cast<int>(start.size()) != k, "start size mismatch");

    Time period = 0;
    // Per-device span E_d.
    for (DeviceId d = 0; d < placement.numDevices(); ++d) {
        Time lo = -1, hi = 0;
        for (int i : placement.blocksOnDevice(d)) {
            const Time s = start[i];
            const Time f = s + placement.block(i).span;
            lo = lo < 0 ? s : std::min(lo, s);
            hi = std::max(hi, f);
        }
        if (lo >= 0)
            period = std::max(period, hi - lo);
    }
    if (!tight) {
        // Simple compaction (Fig. 6a): next instance after the window.
        Time lo = -1, hi = 0;
        for (int i = 0; i < k; ++i) {
            lo = lo < 0 ? start[i] : std::min(lo, start[i]);
            hi = std::max(hi, start[i] + placement.block(i).span);
        }
        period = std::max(period, hi - lo);
    }
    // Cross-instance dependencies.
    for (int j = 0; j < k; ++j) {
        for (int i : placement.block(j).deps) {
            const int delta = assign.r[i] - assign.r[j];
            if (delta <= 0)
                continue;
            const Time gap =
                (start[i] + placement.block(i).span) - start[j];
            if (gap > 0)
                period = std::max(period, (gap + delta - 1) / delta);
        }
    }
    return period;
}

} // namespace tessel
