/**
 * @file
 * TesselPlan: the general schedule produced by the search (Sec. IV),
 * consisting of a solved warmup, a repetend window with its steady-state
 * period, and a solved cooldown. The plan generalizes to any micro-batch
 * count N >= NR (Sec. III-C "schedule generalization"): warmup first,
 * then N - NR + 1 repetend instances at stride P, then the cooldown
 * retimed behind the last instance.
 */

#ifndef TESSEL_CORE_PLAN_H
#define TESSEL_CORE_PLAN_H

#include <optional>
#include <string>
#include <vector>

#include "core/repetend.h"
#include "ir/schedule.h"

namespace tessel {

/**
 * A complete, generalizable Tessel schedule.
 *
 * Memory safety across N: per-device memory depends only on per-device
 * block order. The warmup prefix is checked by its own solve; each
 * steady-state window starts from entry usage sum_i r_i * m_i and was
 * checked by the repetend solve; instances only repeat when the
 * per-instance net memory is <= 0; and the cooldown was checked from the
 * post-window entry state. Concatenating phases therefore preserves
 * memory feasibility for every N (validated again in instantiate()).
 */
class TesselPlan
{
  public:
    TesselPlan() = default;

    /** Assembled by TesselSearch; all vectors are index-aligned. */
    TesselPlan(Placement placement, RepetendAssignment assign,
               std::vector<Time> window_start, Time period,
               Time window_span, std::vector<BlockRef> warmup_refs,
               std::vector<Time> warmup_start,
               std::vector<BlockRef> cooldown_refs,
               std::vector<Time> cooldown_start, Mem mem_limit,
               std::vector<Mem> initial_mem);

    const Placement &placement() const { return placement_; }
    const RepetendAssignment &assignment() const { return assign_; }

    /** Steady-state period P (= tR of Eq. 4). */
    Time period() const { return period_; }

    /** Window start time of each spec (normalized to min 0). */
    const std::vector<Time> &windowStart() const { return windowStart_; }

    /** Extent of one repetend window (may exceed the period). */
    Time windowSpan() const { return windowSpan_; }

    /** Smallest N this plan supports (= NR). */
    int minMicrobatches() const { return assign_.numMicrobatches; }

    /**
     * Steady-state bubble rate: mean over devices of the idle fraction
     * of one period (Table II, Figs. 11/12).
     */
    double steadyBubbleRate() const;

    /** Steady-state idle fraction of the most idle device. */
    double worstDeviceBubbleRate() const;

    /**
     * Materialize the schedule for @p n micro-batches using the periodic
     * layout. Panics when the result fails validation (internal bug).
     */
    Schedule instantiate(int n) const;

    /**
     * Non-panicking variant of instantiate() for plans of *untrusted
     * provenance* (deserialized from a plan-store file): any internal
     * inconsistency — n below NR, a cooldown dependency the plan never
     * schedules, or a layout that fails full Eq. 1 validation — returns
     * nullopt with @p error set instead of aborting the process.
     * instantiate() is this plus a panic on failure, so plans built by
     * the search keep their hard invariant.
     */
    std::optional<Schedule> tryInstantiate(int n,
                                           std::string *error = nullptr) const;

    /** The problem instance instantiate(n) schedules. */
    Problem problemFor(int n) const;

    /** Makespan of instantiate(n) (whole-run time for N micro-batches). */
    Time makespanFor(int n) const;

    /** Warmup block instances and their solved absolute start times. */
    const std::vector<BlockRef> &warmupRefs() const { return warmupRefs_; }
    const std::vector<Time> &warmupStarts() const { return warmupStart_; }

    /** Cooldown block instances and their solved start times. */
    const std::vector<BlockRef> &cooldownRefs() const { return cooldownRefs_; }
    const std::vector<Time> &cooldownStarts() const { return cooldownStart_; }

    /** Per-device memory capacity the plan was solved under. */
    Mem memLimit() const { return memLimit_; }

    /** Per-device initial memory the plan was solved under. */
    const std::vector<Mem> &initialMem() const { return initialMem_; }

    /** Field-wise equality (serialization round-trip exactness). */
    bool
    operator==(const TesselPlan &other) const
    {
        return placement_ == other.placement_ && assign_ == other.assign_ &&
               windowStart_ == other.windowStart_ &&
               period_ == other.period_ &&
               windowSpan_ == other.windowSpan_ &&
               refsEqual(warmupRefs_, other.warmupRefs_) &&
               warmupStart_ == other.warmupStart_ &&
               refsEqual(cooldownRefs_, other.cooldownRefs_) &&
               cooldownStart_ == other.cooldownStart_ &&
               memLimit_ == other.memLimit_ &&
               initialMem_ == other.initialMem_;
    }

    bool operator!=(const TesselPlan &other) const { return !(*this == other); }

  private:
    static bool
    refsEqual(const std::vector<BlockRef> &a,
                    const std::vector<BlockRef> &b)
    {
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i)
            if (!(a[i] == b[i]))
                return false;
        return true;
    }

    Placement placement_;
    RepetendAssignment assign_;
    std::vector<Time> windowStart_;
    Time period_ = 0;
    Time windowSpan_ = 0;
    std::vector<BlockRef> warmupRefs_;
    std::vector<Time> warmupStart_;
    std::vector<BlockRef> cooldownRefs_;
    std::vector<Time> cooldownStart_;
    Mem memLimit_ = kUnlimitedMem;
    std::vector<Mem> initialMem_;
};

} // namespace tessel

#endif // TESSEL_CORE_PLAN_H
