/**
 * @file
 * TesselSearch: Algorithm 1 of the paper. Sweeps the repetend micro-batch
 * count NR from 1 to the in-flight limit, enumerates pruned repetend
 * candidates, solves each for its minimal steady-state period, completes
 * the best candidate's warmup/cooldown time-optimally, and assembles a
 * generalizable TesselPlan. Supports the lazy-search optimization of
 * Sec. V (satisfiability-only completion checks inside the loop, one
 * final time-optimal completion at the end).
 */

#ifndef TESSEL_CORE_SEARCH_H
#define TESSEL_CORE_SEARCH_H

#include <map>
#include <optional>

#include "core/plan.h"
#include "core/repetend_solver.h"
#include "placement/comm.h"

namespace tessel {

/**
 * Warm-start seed distilled from a feasible plan of the *same* lowered
 * instance (typically a store neighbor adapted by store/adapt.h).
 *
 * Seed-only-prunes invariant: the seed never changes the search's
 * answer, only how fast it is reached. `period` acts as a virtual
 * incumbent at enumeration index +infinity — candidates with strictly
 * larger periods are pruned, equal-period candidates still run and win
 * every (period, index) tie-break — and `windowStart` merely reorders
 * the first dive of the satisfiability checks, whose results are
 * order-independent booleans. Final plans are therefore bit-identical
 * to an unseeded search. A seed that fails validation (period < 1, or
 * windowStart not aligned with the solve placement) is ignored.
 */
struct SearchSeed
{
    /** Feasible period achieved by the seed plan's repetend. */
    Time period = -1;
    /**
     * Window start per block spec of the *solve* placement (the
     * comm-expanded placement for comm-aware queries). Guides the BnB
     * first dive of phase satisfiability checks.
     */
    std::vector<Time> windowStart;
    /** Seed plan's makespan at NR + 1 (reporting only). */
    Time makespan = -1;
    /**
     * When true, `plan` holds a full TesselPlan whose warmup/cooldown
     * schedules were produced by the same deterministic completion
     * pipeline on the *identical* phase instances this query would
     * build (store/adapt.cc certifies this: the solve placements match
     * block for block — spans included — memory limits and initial
     * memory agree, and the stored and querying instances share a
     * phaseOptionsDigest). If the search winner's (assignment,
     * windowStart, period) equals the seed plan's, completion may
     * return `*plan` verbatim instead of re-running the per-phase
     * minimizes — the output is the same by determinism of the
     * pipeline, so final plans remain bit-identical to cold search.
     */
    bool phasesExact = false;
    /** The seed plan itself; only consulted when phasesExact. */
    std::optional<TesselPlan> plan;
};

/** Knobs for the end-to-end schedule search. */
struct TesselOptions
{
    /** Per-device memory capacity M. */
    Mem memLimit = kUnlimitedMem;
    /** Per-device baseline memory (parameters etc.); empty = zeros. */
    std::vector<Mem> initialMem;
    /** Hard cap on the NR sweep regardless of memory headroom. */
    int maxRepetendMicrobatches = 8;
    /** Lazy-search optimization (Sec. V): SAT-only completion checks in
     * the loop, one time-optimal completion at the end. */
    bool lazy = true;
    /** Wall budget for the whole search (<= 0: unlimited). */
    double totalBudgetSec = 0.0;
    /** Wall budget per repetend candidate solve. */
    double repetendBudgetSec = 2.0;
    /** Wall budget per warmup/cooldown solve. */
    double phaseBudgetSec = 10.0;
    /**
     * Worker threads for the per-NR candidate sweep. 0 picks
     * hardware_concurrency(); 1 runs the exact legacy serial path.
     * Any value returns the same plan: candidates carry their
     * enumeration index and ties are broken by (period, index).
     */
    int numThreads = 0;
    /** External cancellation for the whole search (optional). */
    CancelToken cancel;
    /**
     * Heterogeneous cluster model (per-device speed factors + link
     * latency/bandwidth). nullptr or a trivial model preserves the
     * homogeneous search path bit for bit; a non-trivial model lowers
     * cross-device dependency edges into comm blocks on link
     * pseudo-devices (placement/comm.h) and searches the expanded
     * placement. The pointee must outlive the call.
     */
    const ClusterModel *cluster = nullptr;
    /**
     * Activation volume (MB) per dependency edge (producer spec,
     * consumer spec), used to size comm blocks when `cluster` is set;
     * missing edges transfer 0 MB (latency only).
     */
    std::map<std::pair<int, int>, double> edgeMB;
    /** Comm lowering knobs (transfer granularity). */
    CommOptions comm;
    /**
     * Optional warm-start seed (see SearchSeed). Plan-invariant by the
     * seed-only-prunes invariant, so it is excluded from the instance
     * fingerprint exactly like numThreads. The pointee must outlive the
     * call; nullptr runs cold.
     */
    const SearchSeed *seed = nullptr;
    /**
     * Inner minimal-period solver for the repetend sweep (see McrMode).
     * Plan-invariant — both modes return bit-identical periods and
     * start vectors — so it is excluded from the instance fingerprint
     * exactly like numThreads and the warm-start seed. Defaults to
     * Howard, overridable process-wide via TESSEL_MCR=binary.
     */
    McrMode mcr = defaultMcrMode();
    /**
     * Precomputed comm lowering for this exact (placement, cluster,
     * edgeMB, comm) tuple: when set, comm-aware paths copy it instead
     * of re-running expandWithComm. The caller must guarantee it equals
     * what expandWithComm would produce (relowerWithComm does, by
     * construction) — it is a pure work-avoidance cache, plan-invariant
     * and excluded from the fingerprint exactly like `seed`. The
     * pointee must outlive the call; nullptr lowers from scratch.
     */
    const CommExpansion *lowered = nullptr;
};

/** Search diagnostics (feeds the Fig. 9/10 benches). */
struct SearchBreakdown
{
    double repetendSeconds = 0.0;
    double warmupSeconds = 0.0;
    double cooldownSeconds = 0.0;
    uint64_t candidatesEnumerated = 0;
    uint64_t candidatesSolved = 0;
    uint64_t candidatesCancelled = 0; ///< solves cut short mid-flight
    uint64_t satChecks = 0;
    /** Search nodes expanded across all inner solves (PeriodSearch +
     * BnB phase/completion solves). */
    uint64_t solverNodes = 0;
    /** Bellman-Ford relaxation passes across binary-mode repetend
     * solves; the PR 4 warm-start effort metric (zero in Howard mode). */
    uint64_t relaxations = 0;
    /** Howard policy-evaluation sweeps across repetend solves; the
     * probe-equivalent of `relaxations` under McrMode::Howard. */
    uint64_t valueSweeps = 0;
    /** Howard policy improvements (period raises) across repetend
     * solves. */
    uint64_t policyImprovements = 0;
    /** Cross-round dominance-memo reuses inside BnB solves. */
    uint64_t memoReused = 0;
    int threadsUsed = 1;          ///< sweep worker count actually used
    bool earlyExit = false;       ///< lower bound reached (Algorithm 1 L19)
    bool budgetExhausted = false; ///< totalBudgetSec tripped
    /** Makespan of the warm-start seed plan (-1: search ran unseeded);
     * merged by max so the provenance survives worker folds. */
    Time seedMakespan = -1;
    /** Repetend-solver bound prunes taken while the active cutoff was
     * still seed-derived (no candidate of this search had been accepted
     * yet) — the "nodes saved vs cold" estimate. */
    uint64_t seededNodesPruned = 0;

    /**
     * Fold @p other into this accumulator. Commutative and
     * associative (threadsUsed takes the max), so per-worker
     * breakdowns merge race-free in any order.
     */
    SearchBreakdown &
    merge(const SearchBreakdown &other)
    {
        repetendSeconds += other.repetendSeconds;
        warmupSeconds += other.warmupSeconds;
        cooldownSeconds += other.cooldownSeconds;
        candidatesEnumerated += other.candidatesEnumerated;
        candidatesSolved += other.candidatesSolved;
        candidatesCancelled += other.candidatesCancelled;
        satChecks += other.satChecks;
        solverNodes += other.solverNodes;
        relaxations += other.relaxations;
        valueSweeps += other.valueSweeps;
        policyImprovements += other.policyImprovements;
        memoReused += other.memoReused;
        threadsUsed = threadsUsed > other.threadsUsed ? threadsUsed
                                                      : other.threadsUsed;
        earlyExit |= other.earlyExit;
        budgetExhausted |= other.budgetExhausted;
        seedMakespan = seedMakespan > other.seedMakespan
                           ? seedMakespan
                           : other.seedMakespan;
        seededNodesPruned += other.seededNodesPruned;
        return *this;
    }
};

/** Result of the end-to-end search. */
struct TesselResult
{
    bool found = false;
    TesselPlan plan;
    Time period = -1;
    /** Algorithm 1's GetLowerBound: bottleneck per-device (or, for a
     * comm-aware search, per-link) work. */
    Time lowerBound = 0;
    int nrUsed = 0;
    SearchBreakdown breakdown;
    /**
     * Set when the search ran on a comm-expanded placement; the plan's
     * placement then includes comm blocks and link pseudo-devices, and
     * `expansion` maps them back to the caller's placement.
     */
    bool commAware = false;
    std::optional<CommExpansion> expansion;
};

/**
 * Run Algorithm 1 on @p placement.
 */
TesselResult tesselSearch(const Placement &placement,
                          const TesselOptions &options = {});

/**
 * Time-optimal completion of one repetend candidate (Algorithm 1 lines
 * 14-18): solve the warmup, anchor the window, solve the cooldown
 * against the window context, and assemble the plan. Returns nullopt
 * when a phase solve fails within its budget.
 *
 * @p placement must be the *solve* placement (the comm-expanded one for
 * comm-aware instances) and @p options must already be lowered
 * accordingly (initialMem padded to the expanded device count). Used by
 * the search itself and by the neighbor-adaptation path
 * (store/adapt.cc), which re-times a known-good assignment without
 * re-running the candidate sweep.
 */
std::optional<TesselPlan> completeRepetendPlan(
    const Placement &placement, const RepetendAssignment &assign,
    const RepetendSchedule &sched, const TesselOptions &options,
    SearchBreakdown &breakdown, const CancelToken &cancel);

/**
 * Everything prepareReplanSeed distills from a served plan for a
 * *drifted* re-query of the same placement: the warm-start seed for
 * the fresh search, the retimed old plan itself (the verified
 * conservative answer a budget-missed replan may serve while the
 * search finishes in the background), and the incremental lowering the
 * search can reuse.
 */
struct ReplanSeed
{
    /** Whether the served plan adapted into a verified seed. False
     * (see `reason`) means the replan must run as a plain cold/
     * neighbor-seeded search — never an error. */
    bool ok = false;
    /** Why adaptation failed (diagnostic; empty when ok). */
    std::string reason;
    /** Whether the comm lowering was patched incrementally from the
     * served plan's expansion (vs rebuilt from scratch). */
    bool incrementalLower = false;
    /** Whether retiming re-solved the repetend window (true) or the
     * served timing survived the drift verbatim (false). */
    bool retimed = false;
    /** Virtual-incumbent seed for the drifted search; valid when ok.
     * Seed-only-prunes: the replanned plan stays bit-identical to a
     * cold search on the drifted cluster. */
    SearchSeed seed;
    /** The served plan retimed under the drifted costs — verified
     * feasible against the drifted query (not necessarily optimal);
     * valid when ok. This is the `stale=true` fallback answer. */
    TesselResult retimedResult;
    /** Lowering of the drifted instance (set for comm-aware queries);
     * hand it to the search via TesselOptions::lowered. */
    std::optional<CommExpansion> lowered;
    /** Solver work the adaptation spent (merge into the breakdown). */
    SearchBreakdown work;
};

/**
 * Adapt @p served — the plan answered under the pre-drift cluster —
 * into a ReplanSeed for the same placement under @p drifted (the
 * options with the perturbed cluster bound). @p delta, when given,
 * enables the incremental comm re-lowering (relowerWithComm) off the
 * served plan's expansion; nullptr lowers from scratch. @p
 * exactPhasesAllowed is the caller's attestation that the served and
 * drifted instances share a phaseOptionsDigest (true for pure cluster
 * drift, where only the cluster knob moved).
 *
 * Drift-only: device removal changes the placement itself, so failure
 * replans go through fresh placements (placement/shapes.h
 * makeDegradedShape), not through this.
 */
ReplanSeed prepareReplanSeed(const Placement &placement,
                             const TesselOptions &drifted,
                             const TesselResult &served,
                             const ClusterDelta *delta = nullptr,
                             bool exactPhasesAllowed = false);

/**
 * Elastic replan: answer (@p placement, @p drifted) — the served
 * instance under a perturbed cluster — by seeding a full search with
 * the served plan retimed under the new costs (prepareReplanSeed).
 * The answer is bit-identical to tesselSearch(placement, drifted)
 * run cold (seed-only-prunes); only the wall clock changes. When the
 * served plan fails to adapt, this *is* that cold search. @p info,
 * when given, receives the seed details (including the verified
 * retimed fallback plan).
 */
TesselResult tesselReplan(const Placement &placement,
                          const TesselOptions &drifted,
                          const TesselResult &served,
                          const ClusterDelta *delta = nullptr,
                          bool exactPhasesAllowed = false,
                          ReplanSeed *info = nullptr);

} // namespace tessel

#endif // TESSEL_CORE_SEARCH_H
