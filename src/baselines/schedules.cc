#include "baselines/schedules.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/sequence.h"
#include "support/logging.h"

namespace tessel {

namespace {

/**
 * Classic 1F1B admission depths, generalized: a device may hold as many
 * in-flight micro-batches as the longest forward-only dependency chain
 * that starts at one of its forward blocks (D - s for stage s of a
 * V-Shape pipeline).
 */
std::vector<double>
admissionLimits(const Placement &p)
{
    const int k = p.numBlocks();
    // Longest forward-only chain from each forward spec (inclusive).
    std::vector<int> depth(k, 0);
    const auto &topo = p.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const int i = *it;
        if (p.block(i).kind != BlockKind::Forward)
            continue;
        int best = 0;
        for (int s : p.successors(i))
            if (p.block(s).kind == BlockKind::Forward)
                best = std::max(best, depth[s]);
        depth[i] = best + 1;
    }
    std::vector<double> limit(p.numDevices(), 0.0);
    for (DeviceId d = 0; d < p.numDevices(); ++d)
        for (int i : p.blocksOnDevice(d))
            if (p.block(i).kind == BlockKind::Forward)
                limit[d] = std::max(limit[d],
                                    static_cast<double>(depth[i]));
    return limit;
}

} // namespace

std::optional<Schedule>
baselineSchedule(const Problem &problem, const BaselineOptions &options)
{
    const Placement &p = problem.placement();
    const int n = problem.numMicrobatches();
    const int num_inst = problem.numInstances();

    // Topological position of each spec, for stable priorities.
    std::vector<int> topo_pos(p.numBlocks());
    for (size_t pos = 0; pos < p.topoOrder().size(); ++pos)
        topo_pos[p.topoOrder()[pos]] = static_cast<int>(pos);

    std::vector<double> limit = admissionLimits(p);
    if (options.maxInflight > 0)
        std::fill(limit.begin(), limit.end(),
                  static_cast<double>(options.maxInflight));

    std::vector<double> fwd_per_mb(p.numDevices(), 0.0);
    std::vector<double> bwd_per_mb(p.numDevices(), 0.0);
    for (DeviceId d = 0; d < p.numDevices(); ++d) {
        for (int i : p.blocksOnDevice(d)) {
            if (p.block(i).kind == BlockKind::Forward)
                fwd_per_mb[d] += 1.0;
            else if (p.block(i).kind == BlockKind::Backward)
                bwd_per_mb[d] += 1.0;
        }
    }

    Schedule sched(problem);
    std::vector<char> dispatched(num_inst, 0);
    std::vector<Time> finish(num_inst, 0);
    std::vector<Time> busy_until(problem.numDevices(), 0);
    std::vector<Mem> mem = problem.initialMem();
    std::vector<double> fwd_started(problem.numDevices(), 0.0);
    std::vector<double> bwd_started(problem.numDevices(), 0.0);
    int remaining = num_inst;
    Time t = 0;

    auto deps_done = [&](int id) {
        const BlockRef ref = problem.refOf(id);
        for (int dep : p.block(ref.spec).deps) {
            const int dep_id = problem.instanceId({dep, ref.mb});
            if (!dispatched[dep_id] || finish[dep_id] > t)
                return false;
        }
        return true;
    };

    auto admission_ok = [&](const BlockSpec &spec) {
        if (options.policy != BaselinePolicy::OneFOneB ||
            spec.kind != BlockKind::Forward)
            return true;
        for (DeviceId d = 0; d < problem.numDevices(); ++d) {
            if (!spec.devices.test(d) || bwd_per_mb[d] <= 0.0)
                continue;
            const double inflight =
                (fwd_started[d] + 1.0) / fwd_per_mb[d] -
                bwd_started[d] / bwd_per_mb[d];
            if (inflight > limit[d] + 1e-9)
                return false;
        }
        return true;
    };

    auto mem_ok = [&](const BlockSpec &spec) {
        if (!options.respectMemory || spec.memory <= 0)
            return true;
        for (DeviceId d = 0; d < problem.numDevices(); ++d)
            if (spec.devices.test(d) &&
                mem[d] + spec.memory > problem.memLimit()) {
                return false;
            }
        return true;
    };

    while (remaining > 0) {
        // Collect dispatchable candidates at time t.
        std::vector<int> cands;
        for (int id = 0; id < num_inst; ++id) {
            if (dispatched[id])
                continue;
            const BlockRef ref = problem.refOf(id);
            const BlockSpec &spec = p.block(ref.spec);
            bool devices_free = true;
            for (DeviceId d : spec.devices)
                if (busy_until[d] > t)
                    devices_free = false;
            if (!devices_free || !deps_done(id))
                continue;
            cands.push_back(id);
        }
        const bool backward_first =
            options.policy == BaselinePolicy::OneFOneB;
        std::sort(cands.begin(), cands.end(), [&](int a, int b) {
            const BlockRef ra = problem.refOf(a), rb = problem.refOf(b);
            const bool ba = p.block(ra.spec).kind == BlockKind::Backward;
            const bool bb = p.block(rb.spec).kind == BlockKind::Backward;
            if (ba != bb)
                return backward_first ? ba : bb;
            if (ra.mb != rb.mb)
                return ra.mb < rb.mb;
            return topo_pos[ra.spec] < topo_pos[rb.spec];
        });

        auto try_dispatch = [&](int id, bool relax_admission) {
            if (dispatched[id])
                return false;
            const BlockRef ref = problem.refOf(id);
            const BlockSpec &spec = p.block(ref.spec);
            bool devices_free = true;
            for (DeviceId d : spec.devices)
                if (busy_until[d] > t)
                    devices_free = false;
            if (!devices_free || !mem_ok(spec))
                return false;
            if (!relax_admission && !admission_ok(spec))
                return false;
            // Dispatch at t.
            dispatched[id] = 1;
            --remaining;
            sched.setStart(ref, t);
            finish[id] = t + spec.span;
            for (DeviceId d : spec.devices) {
                busy_until[d] = finish[id];
                mem[d] += spec.memory;
                if (spec.kind == BlockKind::Forward)
                    fwd_started[d] += 1.0;
                else if (spec.kind == BlockKind::Backward)
                    bwd_started[d] += 1.0;
            }
            return true;
        };

        for (int id : cands)
            try_dispatch(id, false);

        if (remaining == 0)
            break;
        // Advance to the next completion event.
        Time next = -1;
        auto next_event = [&]() {
            next = -1;
            for (DeviceId d = 0; d < problem.numDevices(); ++d)
                if (busy_until[d] > t)
                    next = next < 0 ? busy_until[d]
                                    : std::min(next, busy_until[d]);
        };
        next_event();
        if (next < 0) {
            // The admission heuristic wedged itself: a forward it holds
            // back is on the critical path of every releasing backward.
            // It is advisory, not a correctness constraint, so admit the
            // best candidate and continue.
            for (int id : cands)
                if (try_dispatch(id, true))
                    break;
            next_event();
        }
        if (next < 0) {
            // Deadlock: report the first few stuck blocks to aid
            // debugging of placements/limits, then give up.
            if (logVerbose()) {
                std::string stuck;
                int shown = 0;
                for (int id = 0; id < num_inst && shown < 4; ++id) {
                    if (dispatched[id])
                        continue;
                    const BlockRef ref = problem.refOf(id);
                    const BlockSpec &spec = p.block(ref.spec);
                    stuck += " " + spec.name + "@" +
                             std::to_string(ref.mb) + "(";
                    if (!deps_done(id))
                        stuck += "deps";
                    else if (!mem_ok(spec))
                        stuck += "mem";
                    else if (!admission_ok(spec))
                        stuck += "admission";
                    else
                        stuck += "device";
                    stuck += ")";
                    ++shown;
                }
                warn("baseline dispatch deadlock at t=", t, ", ",
                     remaining, " blocks left:", stuck);
            }
            return std::nullopt;
        }
        t = next;
    }

    const ValidationResult check = sched.validate();
    panic_if(!check.ok, "baseline schedule invalid: ", check.message);
    (void)n;
    return sched;
}

std::optional<Schedule>
schedule1F1B(const Problem &problem)
{
    BaselineOptions opts;
    opts.policy = BaselinePolicy::OneFOneB;
    return baselineSchedule(problem, opts);
}

std::optional<Schedule>
schedule1F1BPlus(const Problem &problem)
{
    const Placement &p = problem.placement();
    const int n = problem.numMicrobatches();
    const DeviceMask full = allDevices(problem.numDevices());

    // Split specs into the stage skeleton and the full-device
    // tensor-parallel blocks to be spliced back in.
    std::vector<int> skel_index(p.numBlocks(), -1);
    std::vector<int> skel_specs;
    std::vector<int> tp_specs;
    for (int i = 0; i < p.numBlocks(); ++i) {
        if (p.block(i).devices == full) {
            tp_specs.push_back(i);
        } else {
            skel_index[i] = static_cast<int>(skel_specs.size());
            skel_specs.push_back(i);
        }
    }
    if (tp_specs.empty() || skel_specs.empty())
        return schedule1F1B(problem);

    // Skeleton placement with dependencies contracted through TP blocks.
    std::vector<BlockSpec> skel_blocks;
    for (int i : skel_specs) {
        BlockSpec b = p.block(i);
        std::vector<int> contracted;
        std::vector<int> frontier = b.deps;
        std::vector<char> seen(p.numBlocks(), 0);
        while (!frontier.empty()) {
            const int dep = frontier.back();
            frontier.pop_back();
            if (seen[dep])
                continue;
            seen[dep] = 1;
            if (skel_index[dep] >= 0) {
                contracted.push_back(skel_index[dep]);
            } else {
                for (int dd : p.block(dep).deps)
                    frontier.push_back(dd);
            }
        }
        b.deps = std::move(contracted);
        skel_blocks.push_back(std::move(b));
    }
    Problem skel_problem(
        Placement(p.name() + "-skeleton", p.numDevices(),
                  std::move(skel_blocks)),
        n, problem.memLimit());
    skel_problem.setInitialMem(problem.initialMem());

    BaselineOptions opts;
    opts.policy = BaselinePolicy::OneFOneB;
    auto skel_sched = baselineSchedule(skel_problem, opts);
    if (!skel_sched) {
        warn("1F1B+: skeleton schedule failed");
        return schedule1F1B(problem);
    }

    // Global order of original instance ids, skeleton first.
    std::vector<int> list;
    for (int id : skel_sched->globalOrder()) {
        const BlockRef ref = skel_problem.refOf(id);
        list.push_back(problem.instanceId({skel_specs[ref.spec], ref.mb}));
    }

    // Splice TP instances next to their neighbors, in topological order
    // so TP-TP dependencies resolve against already-inserted blocks.
    auto position_of = [&](int inst) {
        for (size_t k = 0; k < list.size(); ++k)
            if (list[k] == inst)
                return static_cast<long>(k);
        return static_cast<long>(-1);
    };
    for (int spec : p.topoOrder()) {
        if (p.block(spec).devices != full)
            continue;
        for (int mb = 0; mb < n; ++mb) {
            const int inst = problem.instanceId({spec, mb});
            long before = -1;
            for (int c : p.successors(spec)) {
                const long pos =
                    position_of(problem.instanceId({c, mb}));
                if (pos >= 0 && (before < 0 || pos < before))
                    before = pos;
            }
            if (before >= 0) {
                list.insert(list.begin() + before, inst);
                continue;
            }
            long after = -1;
            for (int dep : p.block(spec).deps)
                after = std::max(after,
                                 position_of(problem.instanceId(
                                     {dep, mb})));
            list.insert(list.begin() + (after + 1), inst);
        }
    }

    // Project the global order onto per-device sequences.
    DeviceSequences seqs;
    seqs.order.resize(problem.numDevices());
    for (int inst : list) {
        const BlockRef ref = problem.refOf(inst);
        for (DeviceId d : p.block(ref.spec).devices)
            seqs.order[d].push_back(inst);
    }
    auto sched = scheduleFromSequences(problem, seqs);
    if (!sched) {
        warn("1F1B+: projected sequences deadlock");
        return schedule1F1B(problem);
    }
    if (const auto check = sched->validate(); !check.ok) {
        warn("1F1B+: projection invalid: ", check.message);
        return schedule1F1B(problem);
    }
    return sched;
}

std::optional<Schedule>
scheduleGPipe(const Problem &problem)
{
    BaselineOptions opts;
    opts.policy = BaselinePolicy::GPipe;
    return baselineSchedule(problem, opts);
}

std::optional<Schedule>
scheduleChimeraDirect(const Problem &problem)
{
    const Placement &p = problem.placement();
    const int n = problem.numMicrobatches();
    const int round_units = std::max(1, problem.numDevices() / 2);

    Schedule sched(problem);
    Time offset = 0;
    std::map<int, Schedule> base_cache; // units-in-round -> schedule
    for (int first = 0; first < n; first += round_units) {
        const int units = std::min(round_units, n - first);
        auto it = base_cache.find(units);
        if (it == base_cache.end()) {
            Problem base(p, units, problem.memLimit());
            base.setInitialMem(problem.initialMem());
            BaselineOptions opts;
            opts.policy = BaselinePolicy::OneFOneB;
            auto base_sched = baselineSchedule(base, opts);
            if (!base_sched)
                return std::nullopt;
            it = base_cache.emplace(units, std::move(*base_sched)).first;
        }
        const Schedule &base = it->second;
        for (int spec = 0; spec < p.numBlocks(); ++spec)
            for (int u = 0; u < units; ++u)
                sched.setStart({spec, first + u},
                               offset + base.start({spec, u}));
        offset += base.makespan(); // Synchronization barrier per round.
    }
    const ValidationResult check = sched.validate();
    panic_if(!check.ok, "chimera-direct schedule invalid: ",
             check.message);
    return sched;
}

Schedule
scheduleSequential(const Problem &problem)
{
    const Placement &p = problem.placement();
    DeviceSequences seqs;
    seqs.order.resize(problem.numDevices());
    for (int mb = 0; mb < problem.numMicrobatches(); ++mb)
        for (int spec : p.topoOrder())
            for (DeviceId d : p.block(spec).devices)
                seqs.order[d].push_back(
                    problem.instanceId({spec, mb}));
    auto sched = scheduleFromSequences(problem, seqs);
    panic_if(!sched, "sequential schedule construction failed");
    return *sched;
}

double
measuredSteadyBubble(const Schedule &schedule)
{
    const Problem &problem = schedule.problem();
    const Placement &p = problem.placement();
    const Time total = schedule.makespan();
    const Time lo = total / 3;
    const Time hi = 2 * total / 3;
    if (hi <= lo)
        return schedule.bubbleRate();

    double busy = 0.0;
    for (DeviceId d = 0; d < problem.numDevices(); ++d) {
        for (int id : schedule.deviceOrder(d)) {
            const BlockRef ref = problem.refOf(id);
            const Time s = schedule.start(ref);
            const Time f = s + p.block(ref.spec).span;
            busy += static_cast<double>(
                std::max<Time>(0, std::min(f, hi) - std::max(s, lo)));
        }
    }
    const double cap =
        static_cast<double>(hi - lo) * problem.numDevices();
    return 1.0 - busy / cap;
}

} // namespace tessel
