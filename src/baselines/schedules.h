/**
 * @file
 * Predefined baseline schedules (Sec. VI-A): 1F1B, GPipe, Chimera-direct,
 * and 1F1B+ (the paper's manual adaptation of 1F1B to advanced
 * placements).
 *
 * All baselines are realized by one priority-driven list scheduler. The
 * defining property of 1F1B — drain a backward as soon as it is ready,
 * admit new forwards otherwise — corresponds to backward-first priority;
 * GPipe's all-forwards-then-all-backwards corresponds to forward-first.
 * On a V-Shape placement, backward-first reproduces 1F1B exactly
 * (warmup of D-s forwards on stage s, then strict 1F1B alternation); on
 * M/NN shapes it is precisely the "insert the distributed operators next
 * to their neighbors" adaptation the paper calls 1F1B+, because the
 * tensor-parallel blocks inherit their neighbors' forward/backward kinds
 * and thus their slots in the 1F1B pattern. On the X-Shape it yields
 * Chimera's eager bidirectional schedule (Chimera-direct).
 */

#ifndef TESSEL_BASELINES_SCHEDULES_H
#define TESSEL_BASELINES_SCHEDULES_H

#include <optional>

#include "ir/schedule.h"

namespace tessel {

/** Dispatch priority of the baseline list scheduler. */
enum class BaselinePolicy {
    OneFOneB, ///< backward-first: 1F1B / 1F1B+ / Chimera-direct
    GPipe,    ///< forward-first: GPipe
};

/** Options for baseline schedule generation. */
struct BaselineOptions
{
    BaselinePolicy policy = BaselinePolicy::OneFOneB;
    /**
     * Limit of in-flight micro-batches per device (1F1B's implicit
     * admission control). <= 0 derives the classic per-stage depth
     * (pipeline depth minus stage index) automatically.
     */
    int maxInflight = 0;
    /** Enforce the problem's memory capacity during dispatch. */
    bool respectMemory = true;
};

/**
 * Generate a baseline schedule for @p problem.
 *
 * @return the schedule, or std::nullopt when dispatch deadlocks under
 *         the memory constraints (reported as OOM by the benches).
 */
std::optional<Schedule> baselineSchedule(const Problem &problem,
                                         const BaselineOptions &options);

/** Convenience: classic 1F1B (or 1F1B+ on non-V placements). */
std::optional<Schedule> schedule1F1B(const Problem &problem);

/**
 * 1F1B+ (Sec. VI-A): the paper's manual adaptation of 1F1B to advanced
 * placements. The full-device tensor-parallel blocks are removed, the
 * remaining stage skeleton is scheduled with classic 1F1B, and each
 * tensor-parallel block is then spliced back into the global order
 * immediately next to its neighboring stage block ("inserted the
 * distributed operators closely to their neighboring operators"). Falls
 * back to the greedy 1F1B dispatcher when the placement has no
 * full-device blocks or the spliced order violates memory.
 */
std::optional<Schedule> schedule1F1BPlus(const Problem &problem);

/** Convenience: GPipe. */
std::optional<Schedule> scheduleGPipe(const Problem &problem);

/**
 * Chimera-direct (Sec. VI-A): Chimera's predefined bidirectional
 * schedule, applied round by round. Each round executes D/2 scheduling
 * units (D samples: one per direction per unit) with Chimera's eager
 * bidirectional pattern and synchronizes before the next round — the
 * direct scaling Chimera prescribes for more micro-batches, which is
 * what leaves its characteristic ~(D-2)/(D-2+...) bubble (20% on the
 * paper's 4-device X-Shape, Table II).
 */
std::optional<Schedule> scheduleChimeraDirect(const Problem &problem);

/**
 * Convenience: sequential execution (micro-batches one after another) —
 * the minimal-memory / maximal-latency reference point.
 */
Schedule scheduleSequential(const Problem &problem);

/**
 * Steady-state bubble rate of a baseline schedule, measured over the
 * middle of the run to exclude warmup/cooldown (comparable with
 * TesselPlan::steadyBubbleRate for Table II).
 */
double measuredSteadyBubble(const Schedule &schedule);

} // namespace tessel

#endif // TESSEL_BASELINES_SCHEDULES_H
