/**
 * @file
 * Convenience wrapper: instantiate a schedule and simulate it in one
 * call (what every end-to-end bench does).
 */

#ifndef TESSEL_SIM_RUNNER_H
#define TESSEL_SIM_RUNNER_H

#include <map>

#include "ir/schedule.h"
#include "sim/cluster.h"

namespace tessel {

/**
 * Lower @p schedule to device programs and simulate them on @p cluster.
 *
 * @param edge_mb per-dependency-edge activation volume (MB).
 */
SimResult simulateSchedule(
    const Schedule &schedule,
    const std::map<std::pair<int, int>, double> &edge_mb,
    const ClusterSpec &cluster);

/**
 * Planner-fidelity simulation of a schedule over a *comm-expanded*
 * placement (placement/comm.h): comm blocks already carry their link
 * spans as ordinary blocks on link pseudo-devices, so the ordering
 * transfers the runtime inserts are free (zero latency, zero bytes).
 * With @p work_conserving false (the default) compute dispatches at its
 * planned start and the simulated makespan must equal the planned
 * makespan; with it true execution is free-running and may compact
 * slack, so the simulated makespan is at most the planned one.
 */
SimResult simulateExpandedSchedule(const Schedule &expanded_schedule,
                                   bool work_conserving = false);

/**
 * Comm-oblivious execution: run an *unexpanded* schedule under the same
 * heterogeneous model the comm-aware search plans with — compute spans
 * scaled at instantiation, transfers charged with the planner's integer
 * link spans. This is what a comm-blind plan actually costs on the
 * modeled cluster (bench_fig17's oblivious column).
 */
SimResult simulateWithModel(
    const Schedule &schedule,
    const std::map<std::pair<int, int>, double> &edge_mb,
    const ClusterModel &model, ClusterSpec cluster = {});

} // namespace tessel

#endif // TESSEL_SIM_RUNNER_H
