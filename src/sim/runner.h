/**
 * @file
 * Convenience wrapper: instantiate a schedule and simulate it in one
 * call (what every end-to-end bench does).
 */

#ifndef TESSEL_SIM_RUNNER_H
#define TESSEL_SIM_RUNNER_H

#include <map>

#include "ir/schedule.h"
#include "sim/cluster.h"

namespace tessel {

/**
 * Lower @p schedule to device programs and simulate them on @p cluster.
 *
 * @param edge_mb per-dependency-edge activation volume (MB).
 */
SimResult simulateSchedule(
    const Schedule &schedule,
    const std::map<std::pair<int, int>, double> &edge_mb,
    const ClusterSpec &cluster);

} // namespace tessel

#endif // TESSEL_SIM_RUNNER_H
