/**
 * @file
 * Discrete-event cluster simulator: the substitution for the paper's
 * 4-server x 8-GPU V100 testbed. Executes instantiated device programs
 * with per-device compute streams, per-device communication engines
 * (non-blocking mode runs them concurrently with compute; blocking mode
 * rendezvouses both compute streams, Fig. 7), an NVLink/InfiniBand link
 * model, and per-device memory accounting with OOM detection.
 */

#ifndef TESSEL_SIM_CLUSTER_H
#define TESSEL_SIM_CLUSTER_H

#include <vector>

#include "ir/cluster.h"
#include "runtime/program.h"

namespace tessel {

/** Cluster hardware for simulation. */
struct ClusterSpec
{
    /** GPUs per NVLink domain (server). */
    int gpusPerServer = 8;
    /** Intra-server bandwidth (GB/s). */
    double nvlinkGBs = 130.0;
    /** Inter-server bandwidth (GB/s). */
    double ibGBs = 10.0;
    /** Per-transfer latency (ms). */
    double linkLatencyMs = 0.03;
    /** Per-device memory capacity (MB); kUnlimitedMem disables. */
    Mem memCapacityMB = kUnlimitedMem;
    /** Per-device pre-allocated memory (parameters); empty = zeros. */
    std::vector<Mem> initialMemMB;
    /** Overlap communication with computation (Sec. IV-D / Fig. 17). */
    bool nonBlockingComm = true;
    /**
     * Dispatch compute no earlier than its planned start
     * (Instruction::notBefore), the way a real runtime replays a
     * schedule. With this set, simulated makespan equals the planned
     * makespan exactly when the plan is consistent with every execution
     * constraint — the planner/simulator agreement check. When false
     * (default) execution is work-conserving and may finish earlier than
     * planned.
     */
    bool honorPlannedStarts = false;
    /**
     * When set, transfers are charged with the *planner's* integer link
     * model (ClusterModel::transferSpan over the endpoint pair) instead
     * of the analog NVLink/InfiniBand formula above, so a comm-oblivious
     * schedule can be executed under exactly the costs the comm-aware
     * search plans with. Compute spans are not touched here; runtime
     * instantiation scales those (instantiate() with a model). The
     * pointee must outlive the simulate() call.
     */
    const ClusterModel *commModel = nullptr;
};

/** Result of simulating one iteration. */
struct SimResult
{
    bool ok = false;
    /** Mismatched or cyclic send/recv ordering: execution cannot make
     * progress. Instantiated programs must never set this. */
    bool deadlock = false;
    /** Out-of-memory: parameters or activations exceeded capacity. */
    bool oom = false;
    DeviceId oomDevice = -1;
    /** End-to-end iteration time (ms). */
    double makespanMs = 0.0;
    /** Per-device compute-busy ms. */
    std::vector<double> busyMs;
    /** Per-device wait ms (makespan - busy). */
    std::vector<double> waitMs;
    /** Per-device peak memory (MB, incl. parameters). */
    std::vector<Mem> peakMemMB;
    /** Total ms spent in transfers (all links). */
    double commMs = 0.0;

    /** Slowest device's compute time (Fig. 16a). */
    double slowestBusyMs() const;
    /** Wait-time occupation of the slowest device (Fig. 16b). */
    double slowestWaitFraction() const;
};

/**
 * Simulate the execution of @p program on @p cluster.
 *
 * Deadlock (mismatched send/recv ordering) is reported as !ok with
 * makespanMs = 0; the instantiation pipeline guarantees this cannot
 * happen for programs it produces (a property the tests assert).
 */
SimResult simulate(const Program &program, const ClusterSpec &cluster);

} // namespace tessel

#endif // TESSEL_SIM_CLUSTER_H
