#include "sim/runner.h"

#include "runtime/instantiate.h"

namespace tessel {

SimResult
simulateSchedule(const Schedule &schedule,
                 const std::map<std::pair<int, int>, double> &edge_mb,
                 const ClusterSpec &cluster)
{
    return simulate(instantiate(schedule, edge_mb), cluster);
}

SimResult
simulateExpandedSchedule(const Schedule &expanded_schedule,
                         bool work_conserving)
{
    ClusterSpec cs;
    cs.linkLatencyMs = 0.0; // Ordering transfers carry no cost.
    cs.honorPlannedStarts = !work_conserving;
    return simulateSchedule(expanded_schedule, {}, cs);
}

SimResult
simulateWithModel(const Schedule &schedule,
                  const std::map<std::pair<int, int>, double> &edge_mb,
                  const ClusterModel &model, ClusterSpec cluster)
{
    cluster.commModel = &model;
    return simulate(instantiate(schedule, edge_mb, &model), cluster);
}

} // namespace tessel
