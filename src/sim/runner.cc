#include "sim/runner.h"

#include "runtime/instantiate.h"

namespace tessel {

SimResult
simulateSchedule(const Schedule &schedule,
                 const std::map<std::pair<int, int>, double> &edge_mb,
                 const ClusterSpec &cluster)
{
    return simulate(instantiate(schedule, edge_mb), cluster);
}

} // namespace tessel
