#include "sim/cluster.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace tessel {

namespace {

/** Node of the simulation dependency graph. */
struct Node
{
    bool isTransfer = false;
    DeviceId device = -1; // Compute nodes only.
    double duration = 0.0;
    Mem memDelta = 0;
    int streamPos = -1; // Order within its device compute stream.
    std::vector<int> deps;
    double notBefore = 0.0; // Planned dispatch time (compute nodes).
    double start = 0.0;
    double finish = 0.0;
};

} // namespace

double
SimResult::slowestBusyMs() const
{
    double worst = 0.0;
    for (double b : busyMs)
        worst = std::max(worst, b);
    return worst;
}

double
SimResult::slowestWaitFraction() const
{
    if (makespanMs <= 0.0)
        return 0.0;
    // Wait fraction of the device with the largest compute time (the
    // bottleneck stage the paper profiles in Fig. 16).
    double worst_busy = -1.0;
    double wait = 0.0;
    for (size_t d = 0; d < busyMs.size(); ++d) {
        if (busyMs[d] > worst_busy) {
            worst_busy = busyMs[d];
            wait = waitMs[d];
        }
    }
    return wait / makespanMs;
}

SimResult
simulate(const Program &program, const ClusterSpec &cluster)
{
    SimResult result;
    const int nd = program.numDevices;
    result.busyMs.assign(nd, 0.0);
    result.waitMs.assign(nd, 0.0);
    result.peakMemMB.assign(nd, 0);

    auto link_ms = [&](DeviceId a, DeviceId b, double mb) {
        if (cluster.commModel) {
            // Planner-fidelity charging: the same integer transfer span
            // the comm-aware search reserves link time for.
            return static_cast<double>(
                cluster.commModel->transferSpan(a, b, mb));
        }
        const bool same_server = (a / cluster.gpusPerServer) ==
                                 (b / cluster.gpusPerServer);
        const double bw = same_server ? cluster.nvlinkGBs : cluster.ibGBs;
        return cluster.linkLatencyMs + mb / 1024.0 / bw * 1e3;
    };

    // Build nodes: computes per instruction, one transfer per tensor.
    std::vector<Node> nodes;
    std::map<int, int> transfer_node;            // tensor -> node
    std::map<int, std::pair<DeviceId, DeviceId>> endpoints; // src,dst

    // First pass: create transfer nodes (durations need both endpoints).
    for (DeviceId d = 0; d < nd; ++d) {
        for (const Instruction &op : program.code[d]) {
            if (op.kind == OpKind::Compute)
                continue;
            auto [it, inserted] =
                transfer_node.try_emplace(op.tensor, -1);
            if (inserted) {
                it->second = static_cast<int>(nodes.size());
                Node n;
                n.isTransfer = true;
                nodes.push_back(n);
                endpoints[op.tensor] = {-1, -1};
            }
            if (op.kind == OpKind::Send)
                endpoints[op.tensor].first = d;
            else
                endpoints[op.tensor].second = d;
            // Volume is carried on both sides; either sets it.
            nodes[transfer_node[op.tensor]].memDelta = 0;
            nodes[transfer_node[op.tensor]].duration =
                std::max(nodes[transfer_node[op.tensor]].duration,
                         op.sizeMB);
        }
    }
    for (auto &[tensor, node] : transfer_node) {
        const auto [src, dst] = endpoints[tensor];
        if (src < 0 || dst < 0) {
            result.deadlock = true; // Unmatched pair cannot rendezvous.
            return result;
        }
        nodes[node].duration = link_ms(src, dst, nodes[node].duration);
        result.commMs += nodes[node].duration;
    }

    // Second pass: compute nodes, stream chains, and engine chains.
    // A tensor-parallel block appears in several device programs but is
    // one gang-scheduled operation: all its devices synchronize on a
    // single node (collectives inside the block enforce this on real
    // hardware).
    std::vector<std::vector<int>> compute_stream(nd); // Node ids.
    std::vector<int> last_in_blocking_stream(nd, -1);
    std::vector<int> last_comm_engine(nd, -1);
    std::vector<int> last_compute(nd, -1);
    std::map<std::pair<int, int>, int> gang; // (spec, mb) -> node.

    for (DeviceId d = 0; d < nd; ++d) {
        for (const Instruction &op : program.code[d]) {
            if (op.kind == OpKind::Compute) {
                // Anonymous computes (no block ref) never gang-merge.
                const bool named = op.block.spec >= 0 && op.block.mb >= 0;
                const auto key = std::make_pair(
                    named ? op.block.spec : -1 - static_cast<int>(d),
                    named ? op.block.mb
                          : -1 - static_cast<int>(nodes.size()));
                auto it = gang.find(key);
                int id;
                if (it == gang.end()) {
                    id = static_cast<int>(nodes.size());
                    Node n;
                    n.device = d;
                    n.duration = static_cast<double>(op.spanMs);
                    n.memDelta = op.memDeltaMB;
                    n.notBefore = static_cast<double>(op.notBefore);
                    nodes.push_back(std::move(n));
                    gang.emplace(key, id);
                } else {
                    id = it->second;
                }
                Node &n = nodes[id];
                // Chain on this device's stream.
                const int prev = cluster.nonBlockingComm
                                     ? last_compute[d]
                                     : last_in_blocking_stream[d];
                if (prev >= 0 && prev != id)
                    n.deps.push_back(prev);
                // Await cross-device inputs (non-blocking mode; in
                // blocking mode the recv sits in the stream already).
                if (cluster.nonBlockingComm)
                    for (int tensor : op.waits)
                        n.deps.push_back(transfer_node.at(tensor));
                compute_stream[d].push_back(id);
                last_compute[d] = id;
                last_in_blocking_stream[d] = id;
                result.busyMs[d] += static_cast<double>(op.spanMs);
            } else {
                const int tnode = transfer_node.at(op.tensor);
                if (cluster.nonBlockingComm) {
                    // Comm engine chain + tensor availability (send side
                    // waits for the producing compute). Zero-duration
                    // transfers are pure ordering tokens — they carry
                    // their dependency but do not occupy the engine, so
                    // they never delay unrelated traffic.
                    const bool occupies = nodes[tnode].duration > 0.0;
                    if (occupies && last_comm_engine[d] >= 0)
                        nodes[tnode].deps.push_back(last_comm_engine[d]);
                    if (op.kind == OpKind::Send && last_compute[d] >= 0)
                        nodes[tnode].deps.push_back(last_compute[d]);
                    if (occupies)
                        last_comm_engine[d] = tnode;
                } else {
                    // Blocking: the transfer occupies the compute stream
                    // of both endpoints (rendezvous).
                    if (last_in_blocking_stream[d] >= 0)
                        nodes[tnode].deps.push_back(
                            last_in_blocking_stream[d]);
                    last_in_blocking_stream[d] = tnode;
                }
            }
        }
    }

    // Longest-path evaluation (Kahn) with cycle detection.
    const int num_nodes = static_cast<int>(nodes.size());
    std::vector<std::vector<int>> succs(num_nodes);
    std::vector<int> indeg(num_nodes, 0);
    for (int i = 0; i < num_nodes; ++i)
        for (int dep : nodes[i].deps) {
            succs[dep].push_back(i);
            ++indeg[i];
        }
    std::vector<int> ready;
    for (int i = 0; i < num_nodes; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    int processed = 0;
    double makespan = 0.0;
    while (!ready.empty()) {
        const int i = ready.back();
        ready.pop_back();
        ++processed;
        double start = 0.0;
        if (cluster.honorPlannedStarts && !nodes[i].isTransfer)
            start = nodes[i].notBefore;
        for (int dep : nodes[i].deps)
            start = std::max(start, nodes[dep].finish);
        nodes[i].start = start;
        nodes[i].finish = start + nodes[i].duration;
        makespan = std::max(makespan, nodes[i].finish);
        for (int s : succs[i])
            if (--indeg[s] == 0)
                ready.push_back(s);
    }
    if (processed != num_nodes) {
        result.deadlock = true; // Cycle: communication deadlock.
        return result;
    }

    result.makespanMs = makespan;
    for (DeviceId d = 0; d < nd; ++d)
        result.waitMs[d] = makespan - result.busyMs[d];

    // Memory accounting over the compute-stream order.
    for (DeviceId d = 0; d < nd; ++d) {
        Mem used = cluster.initialMemMB.empty()
                       ? 0
                       : cluster.initialMemMB[d];
        Mem peak = used;
        for (int id : compute_stream[d]) {
            used += nodes[id].memDelta;
            peak = std::max(peak, used);
        }
        result.peakMemMB[d] = peak;
        if (peak > cluster.memCapacityMB) {
            result.oom = true;
            if (result.oomDevice < 0)
                result.oomDevice = d;
        }
    }

    result.ok = !result.oom;
    return result;
}

} // namespace tessel
