/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (bugs in Tessel itself), fatal() for unrecoverable user errors (bad
 * configuration, infeasible inputs), warn()/inform() for status messages
 * that never stop execution.
 */

#ifndef TESSEL_SUPPORT_LOGGING_H
#define TESSEL_SUPPORT_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tessel {

namespace detail {

/** Append the remaining arguments of a log call to an output stream. */
inline void
logAppend(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
logAppend(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    logAppend(os, rest...);
}

/** Format a log message with source location prefix. */
template <typename... Args>
std::string
logFormat(const char *kind, const char *file, int line, const Args &...args)
{
    std::ostringstream os;
    os << kind << ": ";
    logAppend(os, args...);
    os << " [" << file << ":" << line << "]";
    return os.str();
}

[[noreturn]] inline void
logAbort(const std::string &msg)
{
    // Message + newline in ONE stdio call: stdio locks the stream per
    // call, so concurrent panics from pool workers cannot interleave
    // mid-message (the same rule logMessage() follows).
    std::fputs((msg + '\n').c_str(), stderr);
    std::abort();
}

[[noreturn]] inline void
logExit(const std::string &msg)
{
    std::fputs((msg + '\n').c_str(), stderr);
    std::exit(1);
}

} // namespace detail

/** Whether warn()/inform() output is enabled (tests may silence it). */
bool logVerbose();

/** Enable or disable warn()/inform() output; returns the previous value. */
bool setLogVerbose(bool enabled);

/** Print an informational message to stderr. */
void logMessage(const std::string &msg);

} // namespace tessel

/** Internal invariant violated: a Tessel bug. Aborts (may dump core). */
#define panic(...)                                                          \
    ::tessel::detail::logAbort(::tessel::detail::logFormat(                 \
        "panic", __FILE__, __LINE__, __VA_ARGS__))

/** Unrecoverable user-level error (bad config, infeasible input). */
#define fatal(...)                                                          \
    ::tessel::detail::logExit(::tessel::detail::logFormat(                  \
        "fatal", __FILE__, __LINE__, __VA_ARGS__))

/** Condition-checked panic, active in all build types. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** Condition-checked fatal, active in all build types. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** Non-fatal diagnostic about questionable behaviour. */
#define warn(...)                                                           \
    ::tessel::logMessage(::tessel::detail::logFormat(                       \
        "warn", __FILE__, __LINE__, __VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                         \
    ::tessel::logMessage(::tessel::detail::logFormat(                       \
        "info", __FILE__, __LINE__, __VA_ARGS__))

#endif // TESSEL_SUPPORT_LOGGING_H
