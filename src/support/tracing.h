/**
 * @file
 * Flight-recorder span tracing: a fixed-capacity ring buffer of
 * completed spans, recorded by RAII `TraceSpan` guards and exported as
 * Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * The recorder is a *flight recorder*: it always holds the most recent
 * `capacity` spans and silently overwrites the oldest, so it can stay
 * on for the life of a daemon without growing. Recording is wait-free
 * (one fetch_add to claim a slot, plain stores to fill it, one release
 * store to publish); each slot is seqlock-guarded so an exporter
 * running concurrently with writers drops torn slots instead of
 * emitting garbage.
 *
 * Tracing is off by default (a single relaxed load per span site);
 * `tessel_service --trace-out FILE` switches it on. Span names and arg
 * keys must be string literals (the recorder stores the pointers).
 *
 * Span taxonomy (see README "Observability"):
 *   query  -> lower / seed-adapt / repetend-sweep / phase-solve /
 *             verify / serialize / disk-io
 *   replan -> relower / retime / race
 */

#ifndef TESSEL_SUPPORT_TRACING_H
#define TESSEL_SUPPORT_TRACING_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace tessel {

/** One completed span. POD so slots can be copied out under a seqlock. */
struct SpanRecord
{
    static constexpr int kMaxArgs = 4;
    static constexpr size_t kLabelCap = 48;

    const char *name = nullptr; ///< static string
    uint64_t tsMicros = 0;      ///< start, relative to recorder epoch
    uint64_t durMicros = 0;
    uint32_t tid = 0; ///< small dense thread id (registration order)
    uint32_t nargs = 0;
    const char *argKey[kMaxArgs] = {nullptr, nullptr, nullptr, nullptr};
    uint64_t argValue[kMaxArgs] = {0, 0, 0, 0};
    char label[kLabelCap] = {0}; ///< optional, e.g. the query label
};

/** Thread-safe ring buffer of completed spans. */
class TraceRecorder
{
  public:
    /** @param capacity slots in the ring (rounded up to at least 2). */
    explicit TraceRecorder(size_t capacity = 1 << 16);

    /** The process-wide recorder (64 Ki spans). */
    static TraceRecorder &instance();

    /** Turn recording on or off (off: span sites cost one relaxed
     *  load). Enabling does not clear previously recorded spans. */
    void setEnabled(bool on);
    bool enabled() const;

    /** Commit one completed span (wait-free; overwrites oldest). */
    void record(const SpanRecord &rec);

    /** Copy out the currently held spans, oldest first. Safe to call
     *  while writers are active: slots being overwritten mid-copy are
     *  skipped. */
    std::vector<SpanRecord> collect() const;

    /** Total spans ever recorded (>= collect().size()). */
    uint64_t recorded() const;

    size_t capacity() const { return capacity_; }

    /** Microseconds since the recorder's epoch (steady clock). */
    uint64_t nowMicros() const;

    /** Dense per-thread id for trace rows (registration order). */
    static uint32_t threadId();

  private:
    struct Slot
    {
        // Seqlock: odd while a writer fills the slot, even when
        // published; 0 means never written.
        std::atomic<uint64_t> seq{0};
        SpanRecord rec;
    };

    size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> next_{0};
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII span guard. Measures from construction to destruction and
 * commits to the recorder iff recording was enabled at construction.
 *
 *     TraceSpan span("repetend-sweep");
 *     ...
 *     span.setArg("value_sweeps", breakdown.valueSweeps);
 *
 * @p name (and arg keys) must be string literals. Spans are
 * move-constructible so they can cross scope boundaries, but not
 * copyable.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name,
                       TraceRecorder &rec = TraceRecorder::instance());
    ~TraceSpan();

    TraceSpan(TraceSpan &&other) noexcept;
    TraceSpan &operator=(TraceSpan &&) = delete;
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric argument (up to SpanRecord::kMaxArgs; extras
     *  are dropped). No-op on a disabled span. */
    void setArg(const char *key, uint64_t value);

    /** Attach a short free-form label (truncated to kLabelCap-1). */
    void setLabel(const std::string &label);

    /** Whether this span will be committed on destruction. */
    bool active() const { return rec_ != nullptr; }

  private:
    TraceRecorder *rec_; ///< null when tracing was off at construction
    SpanRecord span_;
};

/**
 * Serialise @p spans as Chrome trace-event JSON
 * (`{"traceEvents": [...]}`, "X" complete events, ts/dur in
 * microseconds) — load the file in https://ui.perfetto.dev.
 */
std::string toChromeTrace(const std::vector<SpanRecord> &spans);

/** Collect from @p rec and write the Chrome trace JSON to @p path.
 *  @return false (with @p err set) on I/O failure. */
bool writeChromeTrace(const TraceRecorder &rec, const std::string &path,
                      std::string *err);

} // namespace tessel

#endif // TESSEL_SUPPORT_TRACING_H
