#include "support/threadpool.h"

#include <algorithm>

#include "support/logging.h"

namespace tessel {

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0)
        num_threads = hardwareThreads();
    shards_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i)
        shards_.push_back(std::make_unique<Shard>());
    threads_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    panic_if(!task, "threadpool: empty task");
    unsigned shard;
    {
        std::lock_guard<std::mutex> lock(mu_);
        panic_if(stop_, "threadpool: submit after shutdown began");
        shard = nextShard_++ % shards_.size();
        ++queued_;
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(shards_[shard]->mu);
        shards_[shard]->queue.push_back(std::move(task));
    }
    workCv_.notify_one();
    idleCv_.notify_all(); // A wait()er may be sleeping and can help.
}

bool
ThreadPool::tryRunOne(int self)
{
    const int n = static_cast<int>(shards_.size());
    Task task;
    for (int k = 0; k < n && !task; ++k) {
        // Own shard front first (FIFO), then steal from siblings' backs
        // so thieves and owners mostly touch opposite deque ends.
        Shard &shard = *shards_[(self + k) % n];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.queue.empty())
            continue;
        if (k == 0) {
            task = std::move(shard.queue.front());
            shard.queue.pop_front();
        } else {
            task = std::move(shard.queue.back());
            shard.queue.pop_back();
        }
    }
    if (!task)
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    task();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0)
            idleCv_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(int self)
{
    for (;;) {
        if (tryRunOne(self))
            continue;
        std::unique_lock<std::mutex> lock(mu_);
        if (queued_ > 0)
            continue; // Raced with a submit; rescan the shards.
        if (stop_)
            return;
        workCv_.wait(lock, [&] { return stop_ || queued_ > 0; });
        if (queued_ == 0 && stop_)
            return;
    }
}

void
ThreadPool::wait()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (pending_ == 0)
                return;
        }
        if (tryRunOne(0))
            continue;
        std::unique_lock<std::mutex> lock(mu_);
        idleCv_.wait(lock, [&] { return pending_ == 0 || queued_ > 0; });
        if (pending_ == 0)
            return;
    }
}

} // namespace tessel
