/**
 * @file
 * Cooperative cancellation and shared-incumbent primitives for the
 * parallel schedule search.
 *
 * A CancelSource owns a cancellation flag; CancelToken is a cheap,
 * copyable view that long-running solver loops poll. Tokens can be
 * linked so one token observes several sources (e.g. a per-task source
 * plus the search-wide one). SharedIncumbent wraps the live best
 * objective that concurrently running solves prune against and improve
 * via compare-exchange.
 */

#ifndef TESSEL_SUPPORT_CANCEL_H
#define TESSEL_SUPPORT_CANCEL_H

#include <atomic>
#include <memory>
#include <vector>

#include "ir/types.h"

namespace tessel {

/**
 * A view onto one or more cancellation flags. Default-constructed
 * tokens are never cancelled. Polling is wait-free; the flag count is
 * tiny (one or two) in every current use.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** @return true once any linked source has been cancelled. */
    bool
    cancelled() const
    {
        for (const auto &flag : flags_)
            if (flag->load(std::memory_order_relaxed))
                return true;
        return false;
    }

    /** @return a token that observes this token's sources and @p other's. */
    CancelToken
    linked(const CancelToken &other) const
    {
        CancelToken t(*this);
        t.flags_.insert(t.flags_.end(), other.flags_.begin(),
                        other.flags_.end());
        return t;
    }

  private:
    friend class CancelSource;
    std::vector<std::shared_ptr<const std::atomic<bool>>> flags_;
};

/** Owner side of a cancellation flag. */
class CancelSource
{
  public:
    CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    /** Request cancellation; idempotent and safe from any thread. */
    void cancel() { flag_->store(true, std::memory_order_relaxed); }

    /** @return whether cancel() has been called. */
    bool
    cancelled() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    /** @return a token observing this source. */
    CancelToken
    token() const
    {
        CancelToken t;
        t.flags_.push_back(flag_);
        return t;
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * Live best objective shared across concurrent solves.
 *
 * Workers read it as a prune cutoff (acquire) and publish improvements
 * with a compare-exchange loop so a stale store can never overwrite a
 * better value. Tie-breaking across equal objectives (the deterministic
 * (period, enumeration index) order of the search) is handled by the
 * caller; this type only tracks the scalar bound.
 */
class SharedIncumbent
{
  public:
    explicit SharedIncumbent(Time initial) : value_(initial) {}

    /** @return the current bound. */
    Time load() const { return value_.load(std::memory_order_acquire); }

    /**
     * Lower the bound to @p candidate if it improves.
     * @return true when this call changed the stored value.
     */
    bool
    tryImprove(Time candidate)
    {
        Time cur = value_.load(std::memory_order_relaxed);
        while (candidate < cur) {
            if (value_.compare_exchange_weak(cur, candidate,
                                             std::memory_order_acq_rel))
                return true;
        }
        return false;
    }

    /** Raw atomic, for solver options that hold a live-cutoff pointer. */
    const std::atomic<Time> *raw() const { return &value_; }

  private:
    std::atomic<Time> value_;
};

} // namespace tessel

#endif // TESSEL_SUPPORT_CANCEL_H
