#include "io.h"

#include <cerrno>
#include <cstdlib>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace tessel {

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
}

void
ByteWriter::raw(const void *data, size_t size)
{
    buf_.append(static_cast<const char *>(data), size);
}

bool
ByteReader::take(size_t n, const uint8_t **out)
{
    if (failed_ || remaining() < n) {
        failed_ = true;
        return false;
    }
    *out = p_;
    p_ += n;
    return true;
}

bool
ByteReader::u8(uint8_t *out)
{
    const uint8_t *p;
    if (!take(1, &p))
        return false;
    *out = p[0];
    return true;
}

bool
ByteReader::u32(uint32_t *out)
{
    const uint8_t *p;
    if (!take(4, &p))
        return false;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    *out = v;
    return true;
}

bool
ByteReader::u64(uint64_t *out)
{
    const uint8_t *p;
    if (!take(8, &p))
        return false;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    *out = v;
    return true;
}

bool
ByteReader::i32(int32_t *out)
{
    uint32_t v;
    if (!u32(&v))
        return false;
    *out = static_cast<int32_t>(v);
    return true;
}

bool
ByteReader::i64(int64_t *out)
{
    uint64_t v;
    if (!u64(&v))
        return false;
    *out = static_cast<int64_t>(v);
    return true;
}

bool
ByteReader::boolean(bool *out)
{
    uint8_t v;
    if (!u8(&v))
        return false;
    // Any non-canonical encoding is corruption, not a bool.
    if (v > 1) {
        failed_ = true;
        return false;
    }
    *out = v != 0;
    return true;
}

bool
ByteReader::f64(double *out)
{
    uint64_t bits;
    if (!u64(&bits))
        return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
}

bool
ByteReader::str(std::string *out)
{
    uint32_t len;
    if (!u32(&len))
        return false;
    const uint8_t *p;
    if (!take(len, &p))
        return false;
    out->assign(reinterpret_cast<const char *>(p), len);
    return true;
}

bool
ByteReader::raw(void *out, size_t size)
{
    const uint8_t *p;
    if (!take(size, &p))
        return false;
    std::memcpy(out, p, size);
    return true;
}

bool
ByteReader::count(uint32_t *out, size_t min_elem_bytes)
{
    uint32_t n;
    if (!u32(&n))
        return false;
    if (min_elem_bytes > 0 &&
        static_cast<uint64_t>(n) * min_elem_bytes > remaining()) {
        failed_ = true;
        return false;
    }
    *out = n;
    return true;
}

namespace {

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " '" + path + "': " + std::strerror(errno);
}

} // namespace

bool
readFile(const std::string &path, std::string *out, std::string *err)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (err)
            *err = errnoMessage("open", path);
        return false;
    }
    out->clear();
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = errnoMessage("read", path);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &data,
                std::string *err)
{
    // Unique temp name in the same directory (rename must not cross
    // filesystems). pid + address suffices: one writer per (process,
    // call site) pair at a time.
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%p",
                  static_cast<long>(::getpid()),
                  static_cast<const void *>(&data));
    const std::string tmp = path + suffix;

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (err)
            *err = errnoMessage("open", tmp);
        return false;
    }
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = errnoMessage("write", tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        if (err)
            *err = errnoMessage("fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        if (err)
            *err = errnoMessage("close", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = errnoMessage("rename", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
ensureDir(const std::string &path, std::string *err)
{
    if (path.empty()) {
        if (err)
            *err = "ensureDir: empty path";
        return false;
    }
    std::string partial;
    size_t pos = 0;
    while (pos <= path.size()) {
        const size_t slash = path.find('/', pos);
        const size_t end = slash == std::string::npos ? path.size() : slash;
        partial.assign(path, 0, end);
        pos = end + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
            if (err)
                *err = errnoMessage("mkdir", partial);
            return false;
        }
        if (slash == std::string::npos)
            break;
    }
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (err)
            *err = "ensureDir: '" + path + "' is not a directory";
        return false;
    }
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

bool
makeTempDir(const std::string &prefix, std::string *path)
{
    const char *tmpdir = ::getenv("TMPDIR");
    std::string name = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
                       "/" + prefix + "XXXXXX";
    std::vector<char> buf(name.begin(), name.end());
    buf.push_back('\0');
    if (!::mkdtemp(buf.data()))
        return false;
    path->assign(buf.data());
    return true;
}

std::vector<std::string>
listDirFiles(const std::string &dir, const std::string &suffix)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() < suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        if (fileExists(dir + "/" + name))
            out.push_back(name);
    }
    ::closedir(d);
    return out;
}

std::vector<std::string>
listDirSubdirs(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..")
            continue;
        struct stat st;
        if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
            S_ISDIR(st.st_mode))
            out.push_back(name);
    }
    ::closedir(d);
    return out;
}

} // namespace tessel
