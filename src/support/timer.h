/**
 * @file
 * Wall-clock stopwatch and a cooperative time budget used to cap the
 * exponential time-optimal baseline searches (Fig. 3 / Fig. 9).
 */

#ifndef TESSEL_SUPPORT_TIMER_H
#define TESSEL_SUPPORT_TIMER_H

#include <chrono>

namespace tessel {

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A deadline that long-running searches poll cooperatively.
 *
 * A non-positive budget means "unlimited". Polling is cheap enough to do
 * every few thousand search nodes.
 */
class TimeBudget
{
  public:
    /** @param seconds wall-clock allowance; <= 0 disables the limit. */
    explicit TimeBudget(double seconds = 0.0) : limit_(seconds) {}

    /** @return true once the budget is exhausted. */
    bool
    expired() const
    {
        return limit_ > 0.0 && watch_.seconds() >= limit_;
    }

    /** @return elapsed seconds since construction. */
    double elapsed() const { return watch_.seconds(); }

    /** @return the configured limit in seconds (<= 0: unlimited). */
    double limit() const { return limit_; }

  private:
    double limit_;
    Stopwatch watch_;
};

} // namespace tessel

#endif // TESSEL_SUPPORT_TIMER_H
