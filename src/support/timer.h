/**
 * @file
 * Wall-clock stopwatch and a cooperative time budget used to cap the
 * exponential time-optimal baseline searches (Fig. 3 / Fig. 9).
 */

#ifndef TESSEL_SUPPORT_TIMER_H
#define TESSEL_SUPPORT_TIMER_H

#include <chrono>

namespace tessel {

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A deadline that long-running searches poll cooperatively.
 *
 * A non-positive budget means "unlimited". Polling is cheap enough to do
 * every few thousand search nodes.
 *
 * Thread safety: all state is fixed at construction — the deadline is a
 * precomputed time point — so any number of threads may poll expired()
 * (and elapsed()/limit()) on a shared instance concurrently. Only
 * construction and assignment require exclusive access.
 */
class TimeBudget
{
  public:
    /** @param seconds wall-clock allowance; <= 0 disables the limit. */
    explicit TimeBudget(double seconds = 0.0)
        : limit_(seconds), start_(Clock::now()),
          deadline_(seconds > 0.0
                        ? start_ + std::chrono::duration_cast<
                                       Clock::duration>(
                              std::chrono::duration<double>(seconds))
                        : Clock::time_point::max())
    {
    }

    /** @return true once the budget is exhausted. */
    bool
    expired() const
    {
        return limit_ > 0.0 && Clock::now() >= deadline_;
    }

    /** @return elapsed seconds since construction. */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** @return the configured limit in seconds (<= 0: unlimited). */
    double limit() const { return limit_; }

  private:
    using Clock = std::chrono::steady_clock;
    double limit_;
    Clock::time_point start_;
    Clock::time_point deadline_;
};

} // namespace tessel

#endif // TESSEL_SUPPORT_TIMER_H
