/**
 * @file
 * Scheduled-block sets for the solver's dominance memo.
 *
 * BlockSet is the same width-generic bitset as the device masks
 * (support/resourceset.h): instances up to 64 blocks stay inline in one
 * word (cheap to copy, compare, and hash as an unordered_map key), and
 * larger instances — e.g. comm-expanded warmup/cooldown phases of
 * TP-grouped model lowerings, which reach several hundred block
 * instances — grow transparently with no compile-time cap. Hashing and
 * equality are canonical across capacities, so there is a single
 * hash/dominance-memo story regardless of instance size.
 */

#ifndef TESSEL_SUPPORT_BITSET_H
#define TESSEL_SUPPORT_BITSET_H

#include "resourceset.h"

namespace tessel {

using BlockSet = ResourceSet;

/** Hash functor so BlockSet can key std::unordered_map. */
using BlockSetHash = ResourceSetHash;

} // namespace tessel

#endif // TESSEL_SUPPORT_BITSET_H
