/**
 * @file
 * Fixed-capacity bitset used to track scheduled-block sets inside the
 * solver. Supports up to BlockSet::maxBits blocks, hashing (for the
 * dominance memo), and fast population/iteration primitives.
 */

#ifndef TESSEL_SUPPORT_BITSET_H
#define TESSEL_SUPPORT_BITSET_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "bits.h"
#include "logging.h"

namespace tessel {

/**
 * A small, value-type set of block indices.
 *
 * The solver's dominance memo keys on the set of already-scheduled blocks;
 * this type keeps that key cheap to copy, compare, and hash. Capacity is a
 * compile-time constant sized for the largest instances the benches build:
 * the time-optimal baseline of Fig. 3 peaks at 16 micro-batches x 8
 * blocks = 128 block instances, and the comm-aware warmup/cooldown
 * phases of TP-grouped model lowerings reach a few hundred (comm blocks
 * multiply the per-window spec count).
 */
class BlockSet
{
  public:
    static constexpr int maxBits = 512;
    static constexpr int numWords = maxBits / 64;

    constexpr BlockSet() : words_{} {}

    /** Set bit @p i. */
    void
    set(int i)
    {
        panic_if(i < 0 || i >= maxBits, "BlockSet index out of range: ", i);
        words_[i >> 6] |= (uint64_t{1} << (i & 63));
    }

    /** Clear bit @p i. */
    void
    reset(int i)
    {
        panic_if(i < 0 || i >= maxBits, "BlockSet index out of range: ", i);
        words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }

    /** @return whether bit @p i is set. */
    bool
    test(int i) const
    {
        panic_if(i < 0 || i >= maxBits, "BlockSet index out of range: ", i);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** @return the number of set bits. */
    int
    count() const
    {
        int n = 0;
        for (uint64_t w : words_)
            n += popcount64(w);
        return n;
    }

    /** @return true when no bit is set. */
    bool
    empty() const
    {
        for (uint64_t w : words_)
            if (w)
                return false;
        return true;
    }

    /** @return true when every bit of @p other is also set in *this. */
    bool
    contains(const BlockSet &other) const
    {
        for (int i = 0; i < numWords; ++i)
            if ((other.words_[i] & ~words_[i]) != 0)
                return false;
        return true;
    }

    bool
    operator==(const BlockSet &other) const
    {
        return words_ == other.words_;
    }

    bool
    operator!=(const BlockSet &other) const
    {
        return !(*this == other);
    }

    /** FNV-style hash over the words, for unordered_map keys. */
    size_t
    hash() const
    {
        uint64_t h = 1469598103934665603ull;
        for (uint64_t w : words_) {
            h ^= w;
            h *= 1099511628211ull;
        }
        return static_cast<size_t>(h);
    }

  private:
    std::array<uint64_t, numWords> words_;
};

/** Hash functor so BlockSet can key std::unordered_map. */
struct BlockSetHash
{
    size_t
    operator()(const BlockSet &s) const
    {
        return s.hash();
    }
};

} // namespace tessel

#endif // TESSEL_SUPPORT_BITSET_H
