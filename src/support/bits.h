/**
 * @file
 * C++17 replacements for the <bit> primitives the codebase needs.
 */

#ifndef TESSEL_SUPPORT_BITS_H
#define TESSEL_SUPPORT_BITS_H

#include <cstdint>

namespace tessel {

/** @return number of set bits (Kernighan's loop; constexpr-friendly). */
constexpr int
popcount64(uint64_t word)
{
    int n = 0;
    while (word) {
        word &= word - 1;
        ++n;
    }
    return n;
}

/** @return index of the lowest set bit (0 for an empty word). */
constexpr int
lowestBit64(uint64_t word)
{
    int i = 0;
    while (word > 1 && !(word & 1)) {
        word >>= 1;
        ++i;
    }
    return i;
}

} // namespace tessel

#endif // TESSEL_SUPPORT_BITS_H
