/**
 * @file
 * C++17 replacements for the <bit> primitives the codebase needs. On
 * GCC/Clang the word ops compile to single instructions via builtins;
 * the portable loops are kept as a fallback for other toolchains.
 */

#ifndef TESSEL_SUPPORT_BITS_H
#define TESSEL_SUPPORT_BITS_H

#include <cstdint>

namespace tessel {

/** @return number of set bits. */
constexpr int
popcount64(uint64_t word)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(word);
#else
    int n = 0;
    while (word) {
        word &= word - 1;
        ++n;
    }
    return n;
#endif
}

/** @return index of the lowest set bit (0 for an empty word). */
constexpr int
lowestBit64(uint64_t word)
{
#if defined(__GNUC__) || defined(__clang__)
    return word ? __builtin_ctzll(word) : 0;
#else
    int i = 0;
    while (word > 1 && !(word & 1)) {
        word >>= 1;
        ++i;
    }
    return i;
#endif
}

} // namespace tessel

#endif // TESSEL_SUPPORT_BITS_H
