#include "logging.h"

#include <atomic>

namespace tessel {

namespace {

std::atomic<bool> verbose{true};

} // namespace

bool
logVerbose()
{
    return verbose.load(std::memory_order_relaxed);
}

bool
setLogVerbose(bool enabled)
{
    return verbose.exchange(enabled, std::memory_order_relaxed);
}

void
logMessage(const std::string &msg)
{
    if (!logVerbose())
        return;
    // One fputs per message, newline included: POSIX stdio locks the
    // FILE for the duration of the call, so messages emitted
    // concurrently from ThreadPool workers (the planning service's
    // query fan-out) land whole, never interleaved mid-line. The old
    // fputs + fputc('\n') pair could interleave another worker's
    // message between the body and its newline.
    std::fputs((msg + '\n').c_str(), stderr);
}

} // namespace tessel
