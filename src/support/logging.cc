#include "logging.h"

#include <atomic>

namespace tessel {

namespace {

std::atomic<bool> verbose{true};

} // namespace

bool
logVerbose()
{
    return verbose.load(std::memory_order_relaxed);
}

bool
setLogVerbose(bool enabled)
{
    return verbose.exchange(enabled, std::memory_order_relaxed);
}

void
logMessage(const std::string &msg)
{
    if (!logVerbose())
        return;
    std::fputs(msg.c_str(), stderr);
    std::fputc('\n', stderr);
}

} // namespace tessel
