/**
 * @file
 * Binary serialization primitives and small-file helpers for the plan
 * store.
 *
 * ByteWriter/ByteReader implement a fixed-width little-endian wire
 * format: every multi-byte integer is written LSB first regardless of
 * host endianness, doubles travel by bit pattern (exact round trip),
 * and variable-length values are length-prefixed. The reader is fully
 * bounds-checked — any read past the end, oversized length prefix, or
 * malformed value latches a failure flag instead of touching memory, so
 * truncated or hostile store files are rejected, never crashed on.
 *
 * File helpers use POSIX primitives directly: atomic publication is a
 * write to a temporary name in the target directory followed by
 * rename(2), so concurrent readers of the plan store only ever observe
 * complete files.
 */

#ifndef TESSEL_SUPPORT_IO_H
#define TESSEL_SUPPORT_IO_H

#include <cstdint>
#include <string>
#include <vector>

namespace tessel {

/** Append-only little-endian binary writer. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Doubles travel by bit pattern: exact round trip, NaNs included. */
    void f64(double v);

    /** Length-prefixed byte string. */
    void str(const std::string &s);

    /** Raw bytes without a length prefix (headers, magic values). */
    void raw(const void *data, size_t size);

    const std::string &data() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian reader over a borrowed buffer. All
 * accessors return false (and latch failed()) instead of reading out of
 * bounds; once failed, every subsequent read also fails, so decoding
 * loops need only check failed() at their end.
 */
class ByteReader
{
  public:
    ByteReader(const void *data, size_t size)
        : p_(static_cast<const uint8_t *>(data)), end_(p_ + size)
    {
    }

    explicit ByteReader(const std::string &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    bool u8(uint8_t *out);
    bool u32(uint32_t *out);
    bool u64(uint64_t *out);
    bool i32(int32_t *out);
    bool i64(int64_t *out);
    bool boolean(bool *out);
    bool f64(double *out);

    /**
     * Length-prefixed string. The declared length is validated against
     * the bytes actually remaining, so a corrupt multi-gigabyte length
     * prefix fails cleanly instead of attempting the allocation.
     */
    bool str(std::string *out);

    /** Read exactly @p size raw bytes into @p out. */
    bool raw(void *out, size_t size);

    /**
     * Read a u32 element count for a sequence whose elements occupy at
     * least @p min_elem_bytes each; fails when the count could not
     * possibly fit in the remaining bytes. Decoders call this before
     * reserving vectors so corrupt counts cannot OOM.
     */
    bool count(uint32_t *out, size_t min_elem_bytes);

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }
    bool atEnd() const { return p_ == end_ && !failed_; }
    bool failed() const { return failed_; }

    /** Latch a failure from a caller-side validation check. */
    void
    markFailed()
    {
        failed_ = true;
    }

  private:
    bool take(size_t n, const uint8_t **out);

    const uint8_t *p_;
    const uint8_t *end_;
    bool failed_ = false;
};

/** Read a whole file; @return false with @p err set on any failure. */
bool readFile(const std::string &path, std::string *out, std::string *err);

/**
 * Atomically publish @p data at @p path: write to a unique temporary
 * name in the same directory, fsync, then rename(2) over the target.
 * Concurrent readers see either the old file or the complete new one.
 */
bool writeFileAtomic(const std::string &path, const std::string &data,
                     std::string *err);

/** mkdir -p equivalent; @return false with @p err set on failure. */
bool ensureDir(const std::string &path, std::string *err);

/** @return true when @p path names an existing regular file. */
bool fileExists(const std::string &path);

/** Remove a file; @return true when it no longer exists. */
bool removeFile(const std::string &path);

/** @return names (not paths) of regular files in @p dir with @p suffix. */
std::vector<std::string> listDirFiles(const std::string &dir,
                                      const std::string &suffix);

/** @return names (not paths) of subdirectories of @p dir, excluding
 * "." and ".." (empty when @p dir does not exist). */
std::vector<std::string> listDirSubdirs(const std::string &dir);

/**
 * Create a fresh uniquely-named directory under $TMPDIR (or /tmp) with
 * @p prefix; @return false on failure. Used by the service selftest and
 * the store tests; the caller owns cleanup.
 */
bool makeTempDir(const std::string &prefix, std::string *path);

} // namespace tessel

#endif // TESSEL_SUPPORT_IO_H
