/**
 * @file
 * Streaming 128-bit hash for canonical instance fingerprints and store
 * payload checksums.
 *
 * The plan store keys its on-disk entries by these digests and CI diffs
 * them across runs, so the function must be *stable*: the same input
 * words produce the same digest on every platform, build type, and
 * standard library. The implementation therefore avoids std::hash and
 * sticks to fixed 64-bit arithmetic (two accumulator lanes mixed with
 * splitmix64-style finalizers — the same constants as support/rng.h's
 * seeding). It is not cryptographic; it only needs to make accidental
 * collisions across distinct planning instances vanishingly unlikely
 * (2^-64 birthday regime at any realistic store size).
 *
 * Callers feed typed values (words, doubles, strings, resource sets);
 * every variable-length value is length-prefixed so concatenation
 * ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
 */

#ifndef TESSEL_SUPPORT_HASHING_H
#define TESSEL_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>

#include "resourceset.h"

namespace tessel {

/** A 128-bit digest, comparable and hex-printable (store file names). */
struct Hash128
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const Hash128 &other) const
    {
        return lo == other.lo && hi == other.hi;
    }

    bool operator!=(const Hash128 &other) const { return !(*this == other); }

    bool
    operator<(const Hash128 &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** @return 32 lowercase hex digits (hi word first). */
    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        uint64_t w = hi;
        for (int i = 15; i >= 0; --i, w >>= 4)
            out[i] = digits[w & 0xf];
        w = lo;
        for (int i = 31; i >= 16; --i, w >>= 4)
            out[i] = digits[w & 0xf];
        return out;
    }

    /** Parse hex() output; @return false on malformed input. */
    static bool
    fromHex(const std::string &text, Hash128 *out)
    {
        if (text.size() != 32)
            return false;
        uint64_t words[2] = {0, 0};
        for (int i = 0; i < 32; ++i) {
            const char c = text[i];
            uint64_t v;
            if (c >= '0' && c <= '9')
                v = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v = static_cast<uint64_t>(c - 'a') + 10;
            else
                return false;
            words[i / 16] = (words[i / 16] << 4) | v;
        }
        out->hi = words[0];
        out->lo = words[1];
        return true;
    }
};

/** Hash functor so Hash128 can key std::unordered_map (LRU index). */
struct Hash128Hasher
{
    size_t
    operator()(const Hash128 &h) const
    {
        // The digest is already well mixed; fold the lanes.
        return static_cast<size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ull));
    }
};

/** Streaming hasher producing a Hash128. */
class Hasher
{
  public:
    /** @param seed domain separator (fingerprints vs checksums). */
    explicit Hasher(uint64_t seed = 0)
        : a_(seed ^ 0x6a09e667f3bcc908ull), b_(~seed ^ 0xbb67ae8584caa73bull)
    {
    }

    /** Feed one 64-bit word. */
    void
    addU64(uint64_t w)
    {
        ++len_;
        a_ = mix(a_ ^ mix(w + len_ * 0x9e3779b97f4a7c15ull));
        b_ = mix(b_ + rotl(w, 29) + 0x2545f4914f6cdd1dull);
    }

    void addI64(int64_t v) { addU64(static_cast<uint64_t>(v)); }
    void addI32(int32_t v) { addI64(v); }
    void addBool(bool v) { addU64(v ? 1 : 0); }

    /**
     * Feed a double by bit pattern, canonicalizing -0.0 to +0.0 (they
     * compare equal and behave identically in every cost model here).
     */
    void
    addDouble(double v)
    {
        if (v == 0.0)
            v = 0.0; // Collapses -0.0.
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double width");
        std::memcpy(&bits, &v, sizeof(bits));
        addU64(bits);
    }

    /** Feed a length-prefixed byte string. */
    void
    addString(const std::string &s)
    {
        addU64(s.size());
        uint64_t w = 0;
        int fill = 0;
        for (unsigned char c : s) {
            w = (w << 8) | c;
            if (++fill == 8) {
                addU64(w);
                w = 0;
                fill = 0;
            }
        }
        if (fill)
            addU64(w);
    }

    /**
     * Feed a resource set *canonically*: the popcount followed by the
     * ascending set-bit indices. Capacity history (grown-and-shrunk vs
     * never grown, inline vs heap representation) cannot influence the
     * digest, which is the fingerprint-stability guarantee device masks
     * need past 64 resources.
     */
    void
    addResourceSet(const ResourceSet &s)
    {
        addU64(static_cast<uint64_t>(s.count()));
        for (int bit : s)
            addU64(static_cast<uint64_t>(bit));
    }

    /** Feed raw bytes (payload checksums), length-prefixed. */
    void
    addBytes(const void *data, size_t size)
    {
        addU64(size);
        const unsigned char *p = static_cast<const unsigned char *>(data);
        size_t i = 0;
        for (; i + 8 <= size; i += 8) {
            uint64_t w;
            std::memcpy(&w, p + i, 8);
            addU64(w);
        }
        uint64_t tail = 0;
        for (; i < size; ++i)
            tail = (tail << 8) | p[i];
        if (size % 8)
            addU64(tail);
    }

    /** @return the digest of everything fed so far (non-destructive). */
    Hash128
    digest() const
    {
        Hash128 h;
        h.lo = mix(a_ ^ rotl(b_, 23) ^ len_);
        h.hi = mix(b_ ^ rotl(a_, 41) ^ (len_ * 0xff51afd7ed558ccdull));
        return h;
    }

  private:
    static uint64_t
    rotl(uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    /** splitmix64 finalizer: full avalanche per ingested word. */
    static uint64_t
    mix(uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t a_;
    uint64_t b_;
    uint64_t len_ = 0;
};

/** One-shot convenience: digest of a byte buffer. */
inline Hash128
hashBytes(const std::string &bytes, uint64_t seed = 0)
{
    Hasher h(seed);
    h.addBytes(bytes.data(), bytes.size());
    return h.digest();
}

} // namespace tessel

#endif // TESSEL_SUPPORT_HASHING_H
