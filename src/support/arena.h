/**
 * @file
 * Per-depth scratch storage for recursive solvers.
 *
 * Both exact solvers (PeriodSearch and the BnB makespan solver) are deep
 * depth-first recursions whose per-node temporaries used to be freshly
 * heap-allocated vectors. These helpers give every recursion depth its
 * own reusable frame, so steady-state search performs zero heap
 * allocation: a frame is allocated the first time its depth is reached
 * and reused on every later visit of that depth.
 */

#ifndef TESSEL_SUPPORT_ARENA_H
#define TESSEL_SUPPORT_ARENA_H

#include <cstddef>
#include <deque>
#include <vector>

#include "support/logging.h"

namespace tessel {

/**
 * Fixed-width per-depth rows backed by one flat allocation.
 *
 * reset(rows, width) sizes the arena once per solve; row(depth) then
 * hands out raw pointers into the flat buffer. Because reset() is the
 * only growth point, a pointer obtained at depth d stays valid across
 * deeper recursion — which is exactly the save/restore pattern of the
 * BnB dispatch loop, whose depth is bounded by the block count.
 */
template <typename T>
class DepthArena
{
  public:
    /** Size the arena for @p rows rows of @p width elements each. */
    void
    reset(size_t rows, size_t width)
    {
        rows_ = rows;
        width_ = width;
        if (buf_.size() < rows * width)
            buf_.resize(rows * width);
    }

    /** Row for @p depth; contents persist from the previous visit. */
    T *
    row(size_t depth)
    {
        panic_if(depth >= rows_, "DepthArena: depth ", depth,
                 " out of range (rows ", rows_, ")");
        return buf_.data() + depth * width_;
    }

  private:
    size_t rows_ = 0;
    size_t width_ = 0;
    std::vector<T> buf_;
};

/**
 * Pool of per-depth scratch frames with reference stability.
 *
 * Frames are default-constructed (and optionally initialized) on the
 * first visit of a depth and reused afterwards, retaining whatever
 * capacity their members grew to. The deque backing guarantees that
 * growing the pool for a deeper recursion never moves frames already
 * handed out to callers up the stack, so a `Frame &` held across a
 * recursive call stays valid even on unbounded-depth recursions.
 */
template <typename Frame>
class FramePool
{
  public:
    /** Frame for @p depth; @p init runs once when it is first created. */
    template <typename Init>
    Frame &
    at(size_t depth, Init &&init)
    {
        while (frames_.size() <= depth) {
            frames_.emplace_back();
            init(frames_.back());
        }
        return frames_[depth];
    }

    /** Frame for @p depth with default initialization. */
    Frame &
    at(size_t depth)
    {
        return at(depth, [](Frame &) {});
    }

  private:
    std::deque<Frame> frames_;
};

} // namespace tessel

#endif // TESSEL_SUPPORT_ARENA_H
