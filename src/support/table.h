/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style rows (and optional CSV for post-processing).
 */

#ifndef TESSEL_SUPPORT_TABLE_H
#define TESSEL_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace tessel {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 *
 * Each bench binary builds one Table per reproduced paper table/figure and
 * prints it to stdout, so `bench_output.txt` reads like the paper's
 * evaluation section.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row (may be ragged; missing cells print empty). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (header first) to @p os. */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }
    size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. 0.25 -> "25.0%". */
std::string fmtPercent(double v, int digits = 1);

} // namespace tessel

#endif // TESSEL_SUPPORT_TABLE_H
