#include "support/tracing.h"

#include <algorithm>
#include <cstdio>

#include "support/io.h"

namespace tessel {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 2)),
      slots_(new Slot[capacity_]),
      epoch_(std::chrono::steady_clock::now())
{
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder *rec = new TraceRecorder; // never destroyed
    return *rec;
}

void
TraceRecorder::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

bool
TraceRecorder::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

uint64_t
TraceRecorder::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint32_t
TraceRecorder::threadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return mine;
}

void
TraceRecorder::record(const SpanRecord &rec)
{
    const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[idx % capacity_];
    // Seqlock write: mark the slot dirty (odd), fill, publish (even).
    // Generation 2*idx+2 is unique per claim, so a reader that observes
    // a changed seq knows its copy was torn.
    slot.seq.store(2 * idx + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    slot.rec = rec;
    slot.seq.store(2 * idx + 2, std::memory_order_release);
}

std::vector<SpanRecord>
TraceRecorder::collect() const
{
    // Oldest-first sweep: start at the slot the next write would claim.
    const uint64_t head = next_.load(std::memory_order_acquire);
    std::vector<SpanRecord> out;
    out.reserve(std::min<uint64_t>(head, capacity_));
    for (size_t off = 0; off < capacity_; ++off) {
        const Slot &slot = slots_[(head + off) % capacity_];
        const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0 || (s1 & 1) != 0)
            continue; // never written, or a writer is mid-fill
        SpanRecord copy = slot.rec;
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
        if (s1 != s2)
            continue; // overwritten while copying: drop the torn slot
        out.push_back(copy);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         return a.tsMicros < b.tsMicros;
                     });
    return out;
}

uint64_t
TraceRecorder::recorded() const
{
    return next_.load(std::memory_order_relaxed);
}

// --------------------------------------------------------------------
// TraceSpan
// --------------------------------------------------------------------

TraceSpan::TraceSpan(const char *name, TraceRecorder &rec)
    : rec_(rec.enabled() ? &rec : nullptr)
{
    if (rec_ == nullptr)
        return;
    span_.name = name;
    span_.tsMicros = rec_->nowMicros();
    span_.tid = TraceRecorder::threadId();
}

TraceSpan::TraceSpan(TraceSpan &&other) noexcept
    : rec_(other.rec_), span_(other.span_)
{
    other.rec_ = nullptr;
}

TraceSpan::~TraceSpan()
{
    if (rec_ == nullptr)
        return;
    const uint64_t end = rec_->nowMicros();
    span_.durMicros = end > span_.tsMicros ? end - span_.tsMicros : 0;
    rec_->record(span_);
}

void
TraceSpan::setArg(const char *key, uint64_t value)
{
    if (rec_ == nullptr || span_.nargs >= SpanRecord::kMaxArgs)
        return;
    span_.argKey[span_.nargs] = key;
    span_.argValue[span_.nargs] = value;
    ++span_.nargs;
}

void
TraceSpan::setLabel(const std::string &label)
{
    if (rec_ == nullptr)
        return;
    const size_t n = std::min(label.size(), SpanRecord::kLabelCap - 1);
    std::memcpy(span_.label, label.data(), n);
    span_.label[n] = '\0';
}

// --------------------------------------------------------------------
// Chrome trace-event export
// --------------------------------------------------------------------

namespace {

std::string
jsonEscape(const char *s, size_t maxLen)
{
    std::string out;
    for (size_t i = 0; i < maxLen && s[i] != '\0'; ++i) {
        const char c = s[i];
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::string
toChromeTrace(const std::vector<SpanRecord> &spans)
{
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    for (const SpanRecord &s : spans) {
        if (s.name == nullptr)
            continue;
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\": \"";
        out += jsonEscape(s.name, 256);
        out += "\", \"cat\": \"tessel\", \"ph\": \"X\", \"pid\": 1";
        out += ", \"tid\": " + std::to_string(s.tid);
        out += ", \"ts\": " + std::to_string(s.tsMicros);
        out += ", \"dur\": " + std::to_string(s.durMicros);
        const bool haveLabel = s.label[0] != '\0';
        if (s.nargs > 0 || haveLabel) {
            out += ", \"args\": {";
            bool firstArg = true;
            if (haveLabel) {
                out += "\"label\": \"";
                out += jsonEscape(s.label, SpanRecord::kLabelCap);
                out += '"';
                firstArg = false;
            }
            for (uint32_t i = 0; i < s.nargs; ++i) {
                if (s.argKey[i] == nullptr)
                    continue;
                if (!firstArg)
                    out += ", ";
                firstArg = false;
                out += '"';
                out += jsonEscape(s.argKey[i], 256);
                out += "\": " + std::to_string(s.argValue[i]);
            }
            out += '}';
        }
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const TraceRecorder &rec, const std::string &path,
                 std::string *err)
{
    return writeFileAtomic(path, toChromeTrace(rec.collect()), err);
}

} // namespace tessel
