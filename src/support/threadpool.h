/**
 * @file
 * Fixed-size work-stealing thread pool for the parallel candidate
 * search.
 *
 * Each worker owns a deque; submit() distributes tasks round-robin and
 * an idle worker steals from its siblings before sleeping. Tasks are
 * coarse (one repetend or phase solve each, milliseconds and up), so
 * the per-deque locks are never contended enough to matter. wait()
 * lets the submitting thread help drain the queues instead of idling,
 * which keeps a pool of size N worth N+1 solving threads during a
 * sweep and makes single-core runs no slower than the serial path.
 */

#ifndef TESSEL_SUPPORT_THREADPOOL_H
#define TESSEL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tessel {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param num_threads worker count; <= 0 uses hardwareThreads().
     */
    explicit ThreadPool(int num_threads = 0);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    int size() const { return static_cast<int>(threads_.size()); }

    /** Enqueue a task; callable from any thread. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished. The calling
     * thread steals and runs queued tasks while it waits.
     */
    void wait();

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static int hardwareThreads();

  private:
    struct Shard
    {
        std::mutex mu;
        std::deque<Task> queue;
    };

    /** Pop and run one task (own shard first, then steal). */
    bool tryRunOne(int self);
    void workerLoop(int self);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> threads_;

    // Global coordination: `queued_` counts tasks sitting in a deque,
    // `pending_` counts tasks submitted but not yet finished. Both are
    // guarded by `mu_` so sleep/wake checks cannot miss a submission.
    std::mutex mu_;
    std::condition_variable workCv_; ///< signalled on submit / stop
    std::condition_variable idleCv_; ///< signalled when pending_ hits 0
    size_t queued_ = 0;
    size_t pending_ = 0;
    bool stop_ = false;
    unsigned nextShard_ = 0;
};

} // namespace tessel

#endif // TESSEL_SUPPORT_THREADPOOL_H
