#include "table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace tessel {

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> width(cols, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << cell;
            if (c + 1 < cols)
                os << std::string(width[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t c = 0; c < cols; ++c)
            total += width[c] + (c + 1 < cols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os << "\n";
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace tessel
