/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) so tests and
 * benches are reproducible across platforms and standard libraries.
 */

#ifndef TESSEL_SUPPORT_RNG_H
#define TESSEL_SUPPORT_RNG_H

#include <cstdint>

#include "logging.h"

namespace tessel {

/**
 * xoshiro256** PRNG with splitmix64 seeding.
 *
 * std::mt19937 would work, but its distributions are not specified to be
 * identical across standard libraries; this keeps property tests stable.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &word : s_) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        panic_if(lo > hi, "Rng::range: lo > hi");
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(next() % span);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s_[4];
};

} // namespace tessel

#endif // TESSEL_SUPPORT_RNG_H
