#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/logging.h"

namespace tessel {

namespace {

std::atomic<bool> g_metricsEnabled{[] {
    const char *env = std::getenv("TESSEL_METRICS");
    if (env == nullptr)
        return true;
    return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
             std::strcmp(env, "false") == 0);
}()};

/** Distributes threads across counter shards; the exact spread only
 *  affects contention, not correctness. */
unsigned
shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return mine % Counter::kShards;
}

std::string
seriesId(const std::string &name, const std::string &labelKey,
         const std::string &labelValue)
{
    if (labelKey.empty())
        return name;
    return name + '{' + labelKey + '=' + labelValue + '}';
}

const char *
kindName(MetricSample::Kind k)
{
    switch (k) {
    case MetricSample::Kind::Counter: return "counter";
    case MetricSample::Kind::Gauge: return "gauge";
    case MetricSample::Kind::Histogram: return "histogram";
    }
    return "?";
}

/** Prometheus metric-name mangling: dots (and anything else outside
 *  [a-zA-Z0-9_:]) become underscores. */
std::string
promName(const std::string &dotted)
{
    std::string out = dotted;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
promLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

/** Format a double the way both exporters want it: integers without a
 *  trailing ".0", everything else with enough digits to round-trip the
 *  values we record (fixed-point micro-units). */
std::string
numberText(double v)
{
    char buf[64];
    if (std::isfinite(v) && v == static_cast<double>(
                                     static_cast<long long>(v)))
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

} // namespace

// --------------------------------------------------------------------
// Counter / Gauge / Histogram hot paths
// --------------------------------------------------------------------

void
Counter::inc(uint64_t n)
{
    if (!g_metricsEnabled.load(std::memory_order_relaxed))
        return;
    cells_[shardIndex()].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const Cell &c : cells_)
        total += c.v.load(std::memory_order_relaxed);
    return total;
}

void
Gauge::set(int64_t v)
{
    if (!g_metricsEnabled.load(std::memory_order_relaxed))
        return;
    v_.store(v, std::memory_order_relaxed);
}

void
Gauge::setMax(int64_t v)
{
    if (!g_metricsEnabled.load(std::memory_order_relaxed))
        return;
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

void
Gauge::add(int64_t delta)
{
    if (!g_metricsEnabled.load(std::memory_order_relaxed))
        return;
    v_.fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    if (!g_metricsEnabled.load(std::memory_order_relaxed))
        return;
    // Buckets follow the Prometheus le-convention: bucket i holds
    // observations <= bounds_[i]; the final cell is the +Inf overflow.
    size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
    if (i > 0 && v == bounds_[i - 1])
        --i; // upper_bound is strict; le-buckets are inclusive
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumMicro_.fetch_add(static_cast<int64_t>(std::llround(v * 1e6)),
                        std::memory_order_relaxed);
}

const std::vector<double> &
defaultLatencyBoundsMs()
{
    static const std::vector<double> bounds = {
        0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
        250, 500, 1000, 2500, 5000, 10000, 30000};
    return bounds;
}

double
histogramQuantile(const MetricSample &hist, double q)
{
    if (hist.count == 0 || hist.counts.empty())
        return 0.0;
    const double rank = q * static_cast<double>(hist.count);
    uint64_t cum = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
        const uint64_t prev = cum;
        cum += hist.counts[i];
        if (static_cast<double>(cum) < rank)
            continue;
        if (i >= hist.bounds.size()) // overflow bucket: no upper bound
            return hist.bounds.empty() ? 0.0 : hist.bounds.back();
        const double lo = i == 0 ? 0.0 : hist.bounds[i - 1];
        const double hi = hist.bounds[i];
        if (hist.counts[i] == 0)
            return hi;
        const double frac =
            (rank - static_cast<double>(prev)) /
            static_cast<double>(hist.counts[i]);
        return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    return hist.bounds.empty() ? 0.0 : hist.bounds.back();
}

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry *reg = new MetricsRegistry; // never destroyed
    return *reg;
}

void
MetricsRegistry::setEnabled(bool on)
{
    g_metricsEnabled.store(on, std::memory_order_relaxed);
}

bool
MetricsRegistry::enabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

MetricsRegistry::Entry *
MetricsRegistry::findOrCreate(const std::string &name,
                              const std::string &labelKey,
                              const std::string &labelValue,
                              MetricSample::Kind kind,
                              const std::vector<double> *bounds)
{
    const std::string id = seriesId(name, labelKey, labelValue);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = series_.find(id);
    if (it != series_.end()) {
        Entry &e = it->second;
        if (e.kind != kind)
            panic("metric \"", id, "\" re-registered as ", kindName(kind),
                  " (was ", kindName(e.kind), ")");
        if (kind == MetricSample::Kind::Histogram && bounds != nullptr &&
            e.histogram->bounds() != *bounds)
            panic("histogram \"", id,
                  "\" re-registered with different bounds");
        return &e;
    }
    Entry e;
    e.kind = kind;
    e.name = name;
    e.labelKey = labelKey;
    e.labelValue = labelValue;
    switch (kind) {
    case MetricSample::Kind::Counter:
        e.counter.reset(new Counter);
        break;
    case MetricSample::Kind::Gauge:
        e.gauge.reset(new Gauge);
        break;
    case MetricSample::Kind::Histogram:
        e.histogram.reset(new Histogram(
            bounds != nullptr ? *bounds : defaultLatencyBoundsMs()));
        break;
    }
    return &series_.emplace(id, std::move(e)).first->second;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    return counter(name, "", "");
}

Counter *
MetricsRegistry::counter(const std::string &name,
                         const std::string &labelKey,
                         const std::string &labelValue)
{
    return findOrCreate(name, labelKey, labelValue,
                        MetricSample::Kind::Counter, nullptr)
        ->counter.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    return gauge(name, "", "");
}

Gauge *
MetricsRegistry::gauge(const std::string &name, const std::string &labelKey,
                       const std::string &labelValue)
{
    return findOrCreate(name, labelKey, labelValue,
                        MetricSample::Kind::Gauge, nullptr)
        ->gauge.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    return histogram(name, "", "", bounds);
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &labelKey,
                           const std::string &labelValue,
                           const std::vector<double> &bounds)
{
    return findOrCreate(name, labelKey, labelValue,
                        MetricSample::Kind::Histogram, &bounds)
        ->histogram.get();
}

int
MetricsRegistry::addCollector(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(collectorMu_);
    const int id = nextCollectorId_++;
    collectors_[id] = std::move(fn);
    return id;
}

void
MetricsRegistry::removeCollector(int id)
{
    std::lock_guard<std::mutex> lock(collectorMu_);
    collectors_.erase(id);
}

MetricsSnapshot
MetricsRegistry::snapshot()
{
    {
        // Collectors mirror external stats structs into pre-registered
        // handles. Holding collectorMu_ for the whole sweep makes
        // removeCollector() (e.g. a PlanCache destructor) block until
        // no collector is mid-flight.
        std::lock_guard<std::mutex> lock(collectorMu_);
        for (auto &kv : collectors_)
            kv.second();
    }
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(series_.size());
    for (const auto &kv : series_) {
        const Entry &e = kv.second;
        MetricSample s;
        s.name = e.name;
        s.labelKey = e.labelKey;
        s.labelValue = e.labelValue;
        s.kind = e.kind;
        switch (e.kind) {
        case MetricSample::Kind::Counter:
            s.counterValue = e.counter->value();
            break;
        case MetricSample::Kind::Gauge:
            s.gaugeValue = e.gauge->value();
            break;
        case MetricSample::Kind::Histogram: {
            const Histogram &h = *e.histogram;
            s.bounds = h.bounds_;
            s.counts.resize(h.bounds_.size() + 1);
            for (size_t i = 0; i <= h.bounds_.size(); ++i)
                s.counts[i] =
                    h.counts_[i].load(std::memory_order_relaxed);
            s.count = h.count_.load(std::memory_order_relaxed);
            s.sum = static_cast<double>(
                        h.sumMicro_.load(std::memory_order_relaxed)) *
                    1e-6;
            break;
        }
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

// --------------------------------------------------------------------
// Exporters
// --------------------------------------------------------------------

std::string
toPrometheus(const MetricsSnapshot &snap)
{
    std::string out;
    std::string lastFamily;
    for (const MetricSample &s : snap.samples) {
        const std::string base = promName(s.name);
        const bool newFamily = base != lastFamily;
        lastFamily = base;
        std::string label;
        if (!s.labelKey.empty())
            label = promName(s.labelKey) + "=\"" +
                    promLabelValue(s.labelValue) + "\"";
        switch (s.kind) {
        case MetricSample::Kind::Counter: {
            if (newFamily)
                out += "# TYPE " + base + "_total counter\n";
            out += base + "_total";
            if (!label.empty())
                out += '{' + label + '}';
            out += ' ' + std::to_string(s.counterValue) + '\n';
            break;
        }
        case MetricSample::Kind::Gauge: {
            if (newFamily)
                out += "# TYPE " + base + " gauge\n";
            out += base;
            if (!label.empty())
                out += '{' + label + '}';
            out += ' ' + std::to_string(s.gaugeValue) + '\n';
            break;
        }
        case MetricSample::Kind::Histogram: {
            if (newFamily)
                out += "# TYPE " + base + " histogram\n";
            uint64_t cum = 0;
            for (size_t i = 0; i < s.counts.size(); ++i) {
                cum += s.counts[i];
                const std::string le =
                    i < s.bounds.size() ? numberText(s.bounds[i])
                                        : "+Inf";
                out += base + "_bucket{";
                if (!label.empty())
                    out += label + ',';
                out += "le=\"" + le + "\"} " + std::to_string(cum) +
                       '\n';
            }
            out += base + "_sum";
            if (!label.empty())
                out += '{' + label + '}';
            out += ' ' + numberText(s.sum) + '\n';
            out += base + "_count";
            if (!label.empty())
                out += '{' + label + '}';
            out += ' ' + std::to_string(s.count) + '\n';
            break;
        }
        }
    }
    return out;
}

std::string
toJson(const MetricsSnapshot &snap)
{
    std::string out = "{\"metrics\": [";
    bool first = true;
    for (const MetricSample &s : snap.samples) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": \"" + jsonEscape(s.name) + "\"";
        if (!s.labelKey.empty())
            out += ", \"label\": {\"" + jsonEscape(s.labelKey) +
                   "\": \"" + jsonEscape(s.labelValue) + "\"}";
        switch (s.kind) {
        case MetricSample::Kind::Counter:
            out += ", \"type\": \"counter\", \"value\": " +
                   std::to_string(s.counterValue);
            break;
        case MetricSample::Kind::Gauge:
            out += ", \"type\": \"gauge\", \"value\": " +
                   std::to_string(s.gaugeValue);
            break;
        case MetricSample::Kind::Histogram: {
            out += ", \"type\": \"histogram\", \"bounds\": [";
            for (size_t i = 0; i < s.bounds.size(); ++i) {
                if (i)
                    out += ", ";
                out += numberText(s.bounds[i]);
            }
            out += "], \"counts\": [";
            for (size_t i = 0; i < s.counts.size(); ++i) {
                if (i)
                    out += ", ";
                out += std::to_string(s.counts[i]);
            }
            out += "], \"count\": " + std::to_string(s.count) +
                   ", \"sum\": " + numberText(s.sum);
            break;
        }
        }
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace tessel
