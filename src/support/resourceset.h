/**
 * @file
 * Width-generic resource set: the one bitset implementation behind both
 * device masks (devices + link pseudo-devices) and the solver's
 * scheduled-block sets.
 *
 * A ResourceSet is a value type holding an unbounded set of small
 * non-negative integers. Sets whose members all fit in one 64-bit word
 * (the overwhelmingly common case: clusters up to 64 resources, solver
 * instances up to 64 blocks) live entirely inline — no heap allocation,
 * and every operation reduces to the same single-word shift/mask/popcount
 * the old raw uint64_t masks compiled to. Setting a bit at index >= the
 * current capacity transparently grows the set onto a heap word block, so
 * wide clusters (32+ GPUs with per-device comm lowering) and large solver
 * instances need no compile-time cap and no saturation.
 *
 * The value is two machine words (the inline word and a pointer whose
 * heap block self-describes its capacity), so the narrow fast path adds
 * only 8 bytes to every struct that embeds a mask and copies stay cheap.
 *
 * Equality, hashing, and containment are canonical: trailing zero words
 * never influence them, so a set that grew and shrank compares and hashes
 * identically to one that never grew. That keeps one hash/dominance-memo
 * story for solver block sets regardless of instance size.
 */

#ifndef TESSEL_SUPPORT_RESOURCESET_H
#define TESSEL_SUPPORT_RESOURCESET_H

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <utility>

#include "bits.h"
#include "logging.h"

namespace tessel {

class ResourceSet
{
  public:
    ResourceSet() noexcept = default;

    ~ResourceSet() { delete[] heap_; }

    ResourceSet(const ResourceSet &other) : inline_(other.inline_)
    {
        if (other.heap_)
            heap_ = cloneHeap(other.heap_);
    }

    ResourceSet(ResourceSet &&other) noexcept
        : inline_(other.inline_), heap_(other.heap_)
    {
        other.heap_ = nullptr;
        other.inline_ = 0;
    }

    ResourceSet &
    operator=(const ResourceSet &other)
    {
        if (this == &other)
            return *this;
        // Clone first so *this stays intact if new throws.
        uint64_t *copy = other.heap_ ? cloneHeap(other.heap_) : nullptr;
        delete[] heap_;
        heap_ = copy;
        inline_ = other.inline_;
        return *this;
    }

    ResourceSet &
    operator=(ResourceSet &&other) noexcept
    {
        if (this == &other)
            return *this;
        delete[] heap_;
        inline_ = other.inline_;
        heap_ = other.heap_;
        other.heap_ = nullptr;
        other.inline_ = 0;
        return *this;
    }

    /** @return a set containing only bit @p i. */
    static ResourceSet
    ofBit(int i)
    {
        ResourceSet s;
        s.set(i);
        return s;
    }

    /** @return a set of the bits set in @p word (indices 0..63). */
    static ResourceSet
    fromWord(uint64_t word)
    {
        ResourceSet s;
        s.inline_ = word;
        return s;
    }

    /** @return a set of exactly the @p count low bits (no saturation). */
    static ResourceSet
    firstN(int count)
    {
        if (count < 0)
            negativeIndexPanic(count);
        ResourceSet s;
        if (count == 0)
            return s;
        if (count <= 64) {
            s.inline_ = count == 64 ? ~uint64_t{0}
                                    : (uint64_t{1} << count) - 1;
            return s;
        }
        uint64_t *w = s.ensureBit(count - 1);
        for (int full = 0; full < count / 64; ++full)
            w[full] = ~uint64_t{0};
        if (count & 63)
            w[count / 64] = (uint64_t{1} << (count & 63)) - 1;
        return s;
    }

    /** Add bit @p i, growing the set as needed. */
    void
    set(int i)
    {
        checkIndex(i);
        const int32_t w = static_cast<int32_t>(i >> 6);
        if (!heap_ && w == 0) {
            inline_ |= uint64_t{1} << (i & 63);
            return;
        }
        uint64_t *words = w < numWords() ? heap_ + 1 : ensureBit(i);
        words[w] |= uint64_t{1} << (i & 63);
    }

    /** Remove bit @p i (no-op past the current capacity). */
    void
    reset(int i)
    {
        checkIndex(i);
        const int32_t w = static_cast<int32_t>(i >> 6);
        if (!heap_) {
            if (w == 0)
                inline_ &= ~(uint64_t{1} << (i & 63));
            return;
        }
        if (w < numWords())
            heap_[1 + w] &= ~(uint64_t{1} << (i & 63));
    }

    /** @return whether bit @p i is set (false past the capacity). */
    bool
    test(int i) const
    {
        checkIndex(i);
        const int32_t w = static_cast<int32_t>(i >> 6);
        if (!heap_)
            return w == 0 && ((inline_ >> (i & 63)) & 1);
        return w < numWords() && ((heap_[1 + w] >> (i & 63)) & 1);
    }

    /** @return the number of set bits. */
    int
    count() const
    {
        if (!heap_)
            return popcount64(inline_);
        int n = 0;
        for (int32_t w = 0, e = numWords(); w < e; ++w)
            n += popcount64(heap_[1 + w]);
        return n;
    }

    /** @return true when no bit is set. */
    bool
    empty() const
    {
        if (!heap_)
            return inline_ == 0;
        for (int32_t w = 0, e = numWords(); w < e; ++w)
            if (heap_[1 + w])
                return false;
        return true;
    }

    /** @return index of the lowest set bit (0 for an empty set). */
    int
    lowest() const
    {
        const uint64_t *w = words();
        for (int32_t k = 0, e = numWords(); k < e; ++k)
            if (w[k])
                return k * 64 + lowestBit64(w[k]);
        return 0;
    }

    /** @return true when any bit at index >= @p n is set. */
    bool
    anyAtOrAbove(int n) const
    {
        checkIndex(n);
        const uint64_t *w = words();
        const int32_t e = numWords();
        const int32_t first = static_cast<int32_t>(n >> 6);
        if (first >= e)
            return false;
        if (w[first] >> (n & 63))
            return true;
        for (int32_t k = first + 1; k < e; ++k)
            if (w[k])
                return true;
        return false;
    }

    /** @return true when *this and @p other share a set bit. */
    bool
    intersects(const ResourceSet &other) const
    {
        const uint64_t *a = words();
        const uint64_t *b = other.words();
        const int32_t na = numWords(), nb = other.numWords();
        const int32_t common = na < nb ? na : nb;
        for (int32_t w = 0; w < common; ++w)
            if (a[w] & b[w])
                return true;
        return false;
    }

    /** @return true when every bit of @p other is also set in *this. */
    bool
    contains(const ResourceSet &other) const
    {
        const uint64_t *a = words();
        const uint64_t *b = other.words();
        const int32_t na = numWords(), nb = other.numWords();
        const int32_t common = na < nb ? na : nb;
        for (int32_t w = 0; w < common; ++w)
            if (b[w] & ~a[w])
                return false;
        for (int32_t w = common; w < nb; ++w)
            if (b[w])
                return false;
        return true;
    }

    bool
    operator==(const ResourceSet &other) const
    {
        const uint64_t *a = words();
        const uint64_t *b = other.words();
        const int32_t na = numWords(), nb = other.numWords();
        const int32_t common = na < nb ? na : nb;
        for (int32_t w = 0; w < common; ++w)
            if (a[w] != b[w])
                return false;
        for (int32_t w = common; w < na; ++w)
            if (a[w])
                return false;
        for (int32_t w = common; w < nb; ++w)
            if (b[w])
                return false;
        return true;
    }

    bool
    operator!=(const ResourceSet &other) const
    {
        return !(*this == other);
    }

    /**
     * FNV-style hash over the words up to the last nonzero one, so equal
     * sets hash equal regardless of how much capacity they ever grew.
     */
    size_t
    hash() const
    {
        const uint64_t *w = words();
        int32_t used = numWords();
        while (used > 0 && w[used - 1] == 0)
            --used;
        uint64_t h = 1469598103934665603ull;
        for (int32_t k = 0; k < used; ++k) {
            h ^= w[k];
            h *= 1099511628211ull;
        }
        return static_cast<size_t>(h);
    }

    /** Forward iterator over the set bit indices, in ascending order. */
    class const_iterator
    {
      public:
        int operator*() const { return word_ * 64 + lowestBit64(cur_); }

        const_iterator &
        operator++()
        {
            cur_ &= cur_ - 1;
            advance();
            return *this;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return word_ != other.word_ || cur_ != other.cur_;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return !(*this != other);
        }

      private:
        friend class ResourceSet;

        const_iterator(const uint64_t *words, int32_t num_words,
                       int32_t word, uint64_t cur)
            : words_(words), numWords_(num_words), word_(word), cur_(cur)
        {
            advance();
        }

        void
        advance()
        {
            while (cur_ == 0 && ++word_ < numWords_)
                cur_ = words_[word_];
            if (word_ >= numWords_) {
                word_ = numWords_;
                cur_ = 0;
            }
        }

        const uint64_t *words_;
        int32_t numWords_;
        int32_t word_;
        uint64_t cur_;
    };

    const_iterator
    begin() const
    {
        return const_iterator(words(), numWords(), 0, words()[0]);
    }

    const_iterator
    end() const
    {
        return const_iterator(words(), numWords(), numWords(), 0);
    }

  private:
    /** Heap layout: heap_[0] = word count, heap_[1..count] = the words. */
    const uint64_t *words() const { return heap_ ? heap_ + 1 : &inline_; }
    int32_t
    numWords() const
    {
        return heap_ ? static_cast<int32_t>(heap_[0]) : 1;
    }

    static uint64_t *
    cloneHeap(const uint64_t *src)
    {
        const int32_t total = static_cast<int32_t>(src[0]) + 1;
        uint64_t *copy = new uint64_t[total];
        for (int32_t w = 0; w < total; ++w)
            copy[w] = src[w];
        return copy;
    }

    /** Keep the panic formatting machinery out of the inlined hot
     * accessors: the check is one predictable compare, the report is a
     * cold out-of-line call. */
    static void
    checkIndex(int i)
    {
        if (__builtin_expect(i < 0, 0))
            negativeIndexPanic(i);
    }

    [[noreturn]] __attribute__((noinline, cold)) static void
    negativeIndexPanic(int i)
    {
        panic("ResourceSet: negative index ", i);
    }

    /** Grow capacity (geometrically) so bit @p i is addressable;
     * @return the word array of the grown block. */
    __attribute__((noinline)) uint64_t *
    ensureBit(int i)
    {
        const int32_t cur = numWords();
        const int32_t needed = static_cast<int32_t>(i >> 6) + 1;
        if (needed <= cur)
            return heap_ + 1;
        int32_t cap = cur * 2;
        if (cap < needed)
            cap = needed;
        uint64_t *grown = new uint64_t[cap + 1];
        grown[0] = static_cast<uint64_t>(cap);
        const uint64_t *old = words();
        for (int32_t w = 0; w < cur; ++w)
            grown[1 + w] = old[w];
        for (int32_t w = cur; w < cap; ++w)
            grown[1 + w] = 0;
        delete[] heap_;
        heap_ = grown;
        return heap_ + 1;
    }

    uint64_t inline_ = 0;     ///< The single word while heap_ is null.
    uint64_t *heap_ = nullptr; ///< Self-describing word block, or null.
};

/** Hash functor so ResourceSet can key std::unordered_map. */
struct ResourceSetHash
{
    size_t
    operator()(const ResourceSet &s) const
    {
        return s.hash();
    }
};

/** Render as "{0,3,17}" (test failure messages, debug dumps). */
inline std::ostream &
operator<<(std::ostream &os, const ResourceSet &s)
{
    os << '{';
    bool first = true;
    for (int i : s) {
        if (!first)
            os << ',';
        os << i;
        first = false;
    }
    return os << '}';
}

} // namespace tessel

#endif // TESSEL_SUPPORT_RESOURCESET_H
