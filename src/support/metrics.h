/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms addressed by dotted names plus an optional single label
 * (e.g. `store.memory_hits`, `service.answer_ms{source=memory}`).
 *
 * Design constraints (see README "Observability"):
 *  - The hot path is wait-free for both readers and writers. Counter
 *    increments are relaxed fetch_adds on per-shard cache-line-padded
 *    atomics, gauge updates are single relaxed stores / CAS-free maxes,
 *    and histogram observations are two relaxed fetch_adds. No hot-path
 *    operation ever takes a lock, so instrumenting the RCU plan-cache
 *    hit path cannot break the `lockContended == 0` read-only-trace
 *    invariant.
 *  - Registration (`counter()`/`gauge()`/`histogram()`) is the only
 *    locked operation. Returned handles are stable for the life of the
 *    registry; instrument sites register once and cache the pointer.
 *  - A process-global enabled flag (`MetricsRegistry::setEnabled`,
 *    initialised from the `TESSEL_METRICS` environment variable, where
 *    `off`/`0`/`false` disables) turns every hot-path operation into a
 *    single relaxed load + branch, which is what `bench_service_load`
 *    measures the instrumented path against.
 *  - Existing stats structs (`StoreStats`, `LoopStats`, ...) remain the
 *    tested source of truth. Layers that already aggregate their own
 *    stats mirror them into the registry with snapshot-time collector
 *    callbacks (`addCollector`), publishing monotone *deltas* so that
 *    several instances of a layer sum naturally into one series.
 */

#ifndef TESSEL_SUPPORT_METRICS_H
#define TESSEL_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tessel {

/** Monotone counter; wait-free sharded increments. */
class Counter
{
  public:
    /** Add @p n (relaxed, wait-free). No-op while metrics are disabled. */
    void inc(uint64_t n = 1);

    /** @return the summed value across all shards (relaxed reads). */
    uint64_t value() const;

    static constexpr unsigned kShards = 16;

  private:
    friend class MetricsRegistry;
    Counter() = default;

    struct alignas(64) Cell
    {
        std::atomic<uint64_t> v{0};
    };
    Cell cells_[kShards];
};

/** Last-value gauge with an optional monotone high-water companion. */
class Gauge
{
  public:
    /** Store @p v (relaxed). No-op while metrics are disabled. */
    void set(int64_t v);

    /** Raise the stored value to at least @p v (CAS-free on x86 via
     *  fetch_max-style loop over relaxed loads; still wait-free in
     *  practice because contention on a monotone max converges). */
    void setMax(int64_t v);

    /** Add @p delta (relaxed fetch_add). */
    void add(int64_t delta);

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    Gauge() = default;
    std::atomic<int64_t> v_{0};
};

/**
 * Fixed-bucket histogram. Bucket upper bounds are set at registration
 * and never change; observations are two relaxed fetch_adds (bucket
 * cell + fixed-point sum). The sum is accumulated in micro-units
 * (value * 1e6, rounded) to stay a single atomic integer add instead of
 * a CAS loop on a double.
 */
class Histogram
{
  public:
    /** Record one observation. No-op while metrics are disabled. */
    void observe(double v);

    /** @return bucket upper bounds (exclusive of the implicit +Inf). */
    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_; // bounds_+1 cells
    std::atomic<uint64_t> count_{0};
    std::atomic<int64_t> sumMicro_{0};
};

/** Default latency bucket bounds in milliseconds (sub-ms to 30 s). */
const std::vector<double> &defaultLatencyBoundsMs();

/** One exported series in a point-in-time snapshot. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;       ///< dotted name, e.g. "store.memory_hits"
    std::string labelKey;   ///< empty when unlabelled
    std::string labelValue; ///< empty when unlabelled
    Kind kind = Kind::Counter;

    uint64_t counterValue = 0; ///< Kind::Counter
    int64_t gaugeValue = 0;    ///< Kind::Gauge

    // Kind::Histogram: per-bucket (non-cumulative) counts; counts.size()
    // == bounds.size() + 1, the last cell being the +Inf overflow.
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;
};

/** Point-in-time snapshot, samples sorted by series id. */
struct MetricsSnapshot
{
    std::vector<MetricSample> samples;
};

/**
 * Estimate the q-quantile (0 < q < 1) of a histogram sample by linear
 * interpolation inside the bucket that crosses the target rank. Returns
 * the last finite bound for ranks landing in the overflow bucket and
 * 0.0 for an empty histogram.
 */
double histogramQuantile(const MetricSample &hist, double q);

/** The registry. One process-wide instance(); tests may construct their
 *  own isolated registries. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    ~MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry. */
    static MetricsRegistry &instance();

    /**
     * Register (or look up) a series. Dotted @p name; the labelled
     * overloads attach one `key=value` label. Handles are stable and
     * owned by the registry. Registering the same series id with a
     * different kind (or different histogram bounds) is fatal — series
     * identity is process-global.
     */
    Counter *counter(const std::string &name);
    Counter *counter(const std::string &name, const std::string &labelKey,
                     const std::string &labelValue);
    Gauge *gauge(const std::string &name);
    Gauge *gauge(const std::string &name, const std::string &labelKey,
                 const std::string &labelValue);
    Histogram *histogram(const std::string &name,
                         const std::vector<double> &bounds =
                             defaultLatencyBoundsMs());
    Histogram *histogram(const std::string &name,
                         const std::string &labelKey,
                         const std::string &labelValue,
                         const std::vector<double> &bounds =
                             defaultLatencyBoundsMs());

    /**
     * Register a snapshot-time collector. Collectors run at the start of
     * every snapshot() and mirror externally-aggregated stats into
     * pre-registered handles (they must NOT register new series — call
     * the registration functions up front). @return an id for
     * removeCollector(); removal blocks until any in-flight snapshot
     * finishes, so a collector may safely capture `this`.
     */
    int addCollector(std::function<void()> fn);
    void removeCollector(int id);

    /** Run collectors, then read every series (relaxed). */
    MetricsSnapshot snapshot();

    /** Process-global enable switch (initialised from TESSEL_METRICS;
     *  `off`/`0`/`false` disables). Affects hot-path writes only —
     *  snapshots always read whatever has been recorded. */
    static void setEnabled(bool on);
    static bool enabled();

  private:
    struct Entry
    {
        MetricSample::Kind kind;
        std::string name, labelKey, labelValue;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry *findOrCreate(const std::string &name,
                        const std::string &labelKey,
                        const std::string &labelValue,
                        MetricSample::Kind kind,
                        const std::vector<double> *bounds);

    mutable std::mutex mu_;                 // registration + snapshot read
    std::map<std::string, Entry> series_;   // keyed by series id
    std::mutex collectorMu_;                // collector list + execution
    std::map<int, std::function<void()>> collectors_;
    int nextCollectorId_ = 1;
};

/** Render a snapshot in the Prometheus text exposition format
 *  (dots mangled to underscores, `_total` on counters, cumulative
 *  `_bucket{le=...}` / `_sum` / `_count` on histograms). */
std::string toPrometheus(const MetricsSnapshot &snap);

/** Render a snapshot as a single JSON object (dotted names preserved;
 *  see README "Observability" for the schema). */
std::string toJson(const MetricsSnapshot &snap);

} // namespace tessel

#endif // TESSEL_SUPPORT_METRICS_H
