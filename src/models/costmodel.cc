#include "models/costmodel.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace tessel {

double
CostModel::layerFwdFlops(int hidden, int seq_len) const
{
    const double h = hidden;
    const double s = seq_len;
    const double b = batch_;
    // 24 b s h^2 for the GEMMs plus 4 b s^2 h for attention scores.
    return 24.0 * b * s * h * h + 4.0 * b * s * s * h;
}

double
CostModel::headFwdFlops(int hidden, int seq_len, int64_t vocab) const
{
    return 2.0 * batch_ * static_cast<double>(seq_len) * hidden *
           static_cast<double>(vocab);
}

double
CostModel::msFor(double flops, int devices) const
{
    panic_if(devices < 1, "msFor: bad device count");
    // Sub-linear tensor-parallel scaling: each doubling of the group
    // pays one efficiency factor (TP-8 ~= 5.4x at 0.88), matching the
    // observed scaling of Megatron-style tensor parallelism.
    const double speedup =
        devices * std::pow(hw_.tpEfficiency, std::log2(devices));
    return flops / (hw_.effFlops * speedup) * 1e3;
}

Time
CostModel::spanFor(double flops, int devices) const
{
    return quantizeMs(msFor(flops, devices));
}

double
CostModel::boundaryMB(int hidden, int seq_len) const
{
    // fp16 activations.
    return 2.0 * batch_ * seq_len * hidden / 1e6;
}

Mem
CostModel::stageActivationMB(int layers_in_stage, int hidden, int seq_len,
                             int devices) const
{
    const double per_layer = boundaryMB(hidden, seq_len);
    const double total = per_layer * (layers_in_stage + 1) / devices;
    return std::max<Mem>(1, static_cast<Mem>(std::ceil(total)));
}

Mem
CostModel::paramMB(double params, bool training, int devices) const
{
    const double bytes = params * (training ? hw_.trainBytesPerParam
                                            : hw_.inferBytesPerParam);
    return static_cast<Mem>(std::ceil(bytes / devices / 1e6));
}

Time
CostModel::quantizeMs(double ms)
{
    return std::max<Time>(1, static_cast<Time>(std::llround(ms)));
}

LinkParams
nvlinkParams(const HardwareSpec &hw)
{
    LinkParams lp;
    lp.latency = hw.linkLatencyMs;
    lp.timePerMB = 1e3 / (hw.nvlinkGBs * 1024.0);
    return lp;
}

LinkParams
infinibandParams(const HardwareSpec &hw)
{
    LinkParams lp;
    lp.latency = hw.linkLatencyMs;
    lp.timePerMB = 1e3 / (hw.ibGBs * 1024.0);
    return lp;
}

ClusterModel
clusterModelFrom(const HardwareSpec &hw, int num_devices,
                 int gpus_per_stage)
{
    panic_if(num_devices < 1 || gpus_per_stage < 1,
             "clusterModelFrom: bad arguments");
    ClusterModel model;
    model.speedFactor.assign(num_devices, 1.0);
    model.defaultLink = nvlinkParams(hw);
    for (DeviceId a = 0; a < num_devices; ++a) {
        for (DeviceId b = a + 1; b < num_devices; ++b) {
            const int server_a = a * gpus_per_stage / hw.gpusPerServer;
            const int server_b = b * gpus_per_stage / hw.gpusPerServer;
            if (server_a != server_b)
                model.linkOverride[{a, b}] = infinibandParams(hw);
        }
    }
    return model;
}

} // namespace tessel
