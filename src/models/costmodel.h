/**
 * @file
 * Analytic hardware + model cost model. Substitutes for profiling on the
 * paper's 32x V100 testbed: standard transformer FLOPs/bytes formulas are
 * lowered to integer block spans (milliseconds) and memory (MB), which is
 * all the schedule search and the cluster simulator consume.
 */

#ifndef TESSEL_MODELS_COSTMODEL_H
#define TESSEL_MODELS_COSTMODEL_H

#include "ir/cluster.h"
#include "ir/types.h"

namespace tessel {

/** Cluster hardware description (defaults model V100-32GB servers). */
struct HardwareSpec
{
    /** Effective per-GPU throughput (FLOPs/s, post-efficiency). */
    double effFlops = 45e12;
    /** Multiplicative per-device efficiency when tensor-parallel over k
     * devices: speedup = k * tpEfficiency^log2(k)). */
    double tpEfficiency = 0.88;
    /** Intra-server bandwidth (GB/s, NVLink). */
    double nvlinkGBs = 130.0;
    /** Inter-server bandwidth (GB/s, 100 Gb InfiniBand). */
    double ibGBs = 10.0;
    /** Per-transfer latency (ms). */
    double linkLatencyMs = 0.03;
    /** GPUs per server (NVLink domain). */
    int gpusPerServer = 8;
    /** Device memory (GB). */
    double memGB = 32.0;
    /** Fraction reserved for runtime/fragmentation. */
    double memReserveFraction = 0.2;
    /** Training bytes per parameter (fp16 + grads + sharded states). */
    double trainBytesPerParam = 8.0;
    /** Inference bytes per parameter (fp16 weights only). */
    double inferBytesPerParam = 2.0;

    /** Usable per-device memory in MB. */
    Mem
    usableMemMB() const
    {
        return static_cast<Mem>(memGB * (1.0 - memReserveFraction) *
                                1024.0);
    }
};

/** Transformer cost helper: all times in ms, memory in MB. */
class CostModel
{
  public:
    /**
     * @param hw hardware description.
     * @param batch micro-batch size (samples).
     */
    CostModel(HardwareSpec hw, int batch) : hw_(hw), batch_(batch) {}

    const HardwareSpec &hw() const { return hw_; }
    int batch() const { return batch_; }

    /** Forward FLOPs of one transformer layer for one micro-batch. */
    double layerFwdFlops(int hidden, int seq_len) const;

    /** Forward FLOPs of the vocabulary projection (LM head). */
    double headFwdFlops(int hidden, int seq_len, int64_t vocab) const;

    /** ms to execute @p flops on @p devices tensor-parallel GPUs. */
    double msFor(double flops, int devices = 1) const;

    /** Quantized span: ms rounded to an integer Time, at least 1. */
    Time spanFor(double flops, int devices = 1) const;

    /** Activation bytes at a stage boundary (MB, per micro-batch). */
    double boundaryMB(int hidden, int seq_len) const;

    /**
     * Activation memory a stage holds per in-flight micro-batch with
     * recompute enabled: one checkpoint per layer plus the boundary.
     */
    Mem stageActivationMB(int layers_in_stage, int hidden, int seq_len,
                          int devices = 1) const;

    /** Parameter storage of @p params parameters on one device (MB). */
    Mem paramMB(double params, bool training, int devices = 1) const;

    /** Quantize a raw ms value to a span (>= 1). */
    static Time quantizeMs(double ms);

  private:
    HardwareSpec hw_;
    int batch_;
};

/** Link parameters of an intra-server NVLink hop of @p hw (ms units). */
LinkParams nvlinkParams(const HardwareSpec &hw);

/** Link parameters of an inter-server InfiniBand hop of @p hw. */
LinkParams infinibandParams(const HardwareSpec &hw);

/**
 * Cluster model derived from @p hw for @p num_devices pipeline stages:
 * stage pairs whose GPU groups share a server use NVLink parameters,
 * pairs crossing servers use InfiniBand. @p gpus_per_stage maps logical
 * stage devices onto physical GPU ranges.
 */
ClusterModel clusterModelFrom(const HardwareSpec &hw, int num_devices,
                              int gpus_per_stage);

} // namespace tessel

#endif // TESSEL_MODELS_COSTMODEL_H
