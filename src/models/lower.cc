#include "models/lower.h"

#include <algorithm>
#include <cmath>

#include "placement/shapes.h"
#include "support/logging.h"

namespace tessel {

namespace {

/** Shared lowering machinery. */
class Lowering
{
  public:
    Lowering(const HardwareSpec &hw, int gpus, int batch)
        : cm_(hw, batch), gpus_(gpus)
    {
        fatal_if(gpus < 1, "lowering: bad GPU count");
        mem_.assign(gpus, 0);
    }

    const CostModel &cm() const { return cm_; }

    /** True when @p mask spans more than one NVLink domain. */
    bool
    crossesServer(const DeviceMask &mask) const
    {
        int first = -1;
        for (int d : mask) {
            const int server = d / cm_.hw().gpusPerServer;
            if (first < 0)
                first = server;
            else if (server != first)
                return true;
        }
        return false;
    }

    /**
     * Span of a tensor-parallel block: compute plus the all-reduce cost,
     * paid over IB when the group spans servers (the effect that makes
     * cross-server tensor parallelism expensive in Fig. 13).
     */
    Time
    tpSpan(double flops, const DeviceMask &mask,
           double allreduce_mb) const
    {
        const int k = popcountMask(mask);
        double ms = cm_.msFor(flops, k);
        if (k > 1) {
            const double bw = crossesServer(mask) ? cm_.hw().ibGBs
                                                  : cm_.hw().nvlinkGBs;
            ms += 2.0 * allreduce_mb / 1024.0 / bw * 1e3;
        }
        return CostModel::quantizeMs(ms);
    }

    /** Contiguous device group [first, first+count). */
    DeviceMask
    group(int first, int count) const
    {
        DeviceMask mask;
        for (int d = first; d < first + count; ++d)
            mask.set(d);
        return mask;
    }

    int
    addBlock(std::string name, BlockKind kind, const DeviceMask &devices,
             Time span, Mem memory, std::vector<int> deps)
    {
        BlockSpec b;
        b.name = std::move(name);
        b.kind = kind;
        b.devices = devices;
        b.span = span;
        b.memory = memory;
        b.deps = std::move(deps);
        specs_.push_back(std::move(b));
        return static_cast<int>(specs_.size()) - 1;
    }

    /** Charge parameter storage on every device in @p mask. */
    void
    chargeParams(const DeviceMask &mask, double params, bool training)
    {
        const int k = popcountMask(mask);
        const Mem mb = cm_.paramMB(params, training, k);
        for (int d : mask)
            mem_[d] += mb;
    }

    void
    edge(LoweredModel &out, int producer, int consumer, double mb) const
    {
        out.edgeMB[{producer, consumer}] = mb;
    }

    LoweredModel
    finish(std::string name, bool training)
    {
        LoweredModel out;
        out.placement = Placement(std::move(name), gpus_, specs_);
        out.initialMemMB = mem_;
        out.memCapacityMB = cm_.hw().usableMemMB();
        out.microBatch = cm_.batch();
        out.fits = true;
        for (Mem m : mem_)
            if (m > out.memCapacityMB)
                out.fits = false;
        (void)training;
        return out;
    }

    /** Split @p total layers into @p parts nearly-even groups. */
    static std::vector<int>
    splitLayers(int total, int parts)
    {
        std::vector<int> out(parts, total / parts);
        for (int i = 0; i < total % parts; ++i)
            ++out[parts - 1 - i]; // Heavier groups later (head side).
        return out;
    }

  private:
    CostModel cm_;
    int gpus_;
    std::vector<BlockSpec> specs_;
    std::vector<Mem> mem_;
};

/** Backward-to-forward hardware ratio with recompute (Sec. VI-B). */
constexpr double kBwdFactor = 3.0;

} // namespace

std::vector<LayerCost>
gptLayerCosts(const GptConfig &cfg, const CostModel &cm)
{
    std::vector<LayerCost> layers;
    const bool training = true;
    // Embedding: negligible compute, huge parameter memory.
    LayerCost emb;
    emb.name = "embedding";
    emb.fwdTime = cm.msFor(128.0 * cm.batch() * cfg.seqLen * cfg.hidden);
    emb.bwdTime = 2.0 * emb.fwdTime;
    emb.memory = static_cast<double>(cm.paramMB(
        static_cast<double>(cfg.vocab) * cfg.hidden, training));
    layers.push_back(emb);

    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    for (int l = 0; l < cfg.layers; ++l) {
        LayerCost lc;
        lc.name = "layer" + std::to_string(l);
        lc.fwdTime = cm.msFor(layer_flops);
        lc.bwdTime = kBwdFactor * lc.fwdTime;
        lc.memory = static_cast<double>(
            cm.paramMB(12.0 * cfg.hidden * cfg.hidden, training));
        layers.push_back(lc);
    }

    // LM head (tied to the embedding; the optimizer state stays with
    // the embedding stage, so the head carries little extra storage).
    LayerCost head;
    head.name = "head";
    head.fwdTime =
        cm.msFor(cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab));
    head.bwdTime = 2.0 * head.fwdTime;
    head.memory = 64.0;
    layers.push_back(head);
    return layers;
}

LoweredModel
lowerGptMShape(const GptConfig &cfg, int gpus, int batch,
               const HardwareSpec &hw, int pipeline_stages)
{
    const int num_stages = std::min(gpus, pipeline_stages);
    fatal_if(gpus % num_stages != 0,
             "GPT M-Shape: gpus must divide into pipeline stages");
    const int group = gpus / num_stages; // TP degree per stage.

    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const DeviceMask all = allDevices(gpus);
    const double boundary = cm.boundaryMB(cfg.hidden, cfg.seqLen);
    const std::vector<int> stages =
        Lowering::splitLayers(cfg.layers, num_stages);
    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    const double head_flops =
        cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab);
    const double emb_flops = 128.0 * batch * cfg.seqLen * cfg.hidden;

    LoweredModel out;
    const Mem emb_act = std::max<Mem>(
        1, static_cast<Mem>(std::ceil(boundary / gpus)));

    // Forward pass.
    const int emb_f =
        lw.addBlock("embF", BlockKind::Forward, all,
                    lw.tpSpan(emb_flops, all, boundary), emb_act, {});
    std::vector<int> fwd(num_stages);
    std::vector<Mem> stage_act(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        const DeviceMask mask = lw.group(s * group, group);
        stage_act[s] = cm.stageActivationMB(stages[s], cfg.hidden,
                                            cfg.seqLen, group);
        fwd[s] = lw.addBlock(
            "f" + std::to_string(s), BlockKind::Forward, mask,
            lw.tpSpan(stages[s] * layer_flops, mask,
                      stages[s] * boundary),
            stage_act[s], {s == 0 ? emb_f : fwd[s - 1]});
        lw.edge(out, s == 0 ? emb_f : fwd[s - 1], fwd[s], boundary);
    }

    // LM head fwd + loss + head bwd fused, tensor parallel.
    const int head = lw.addBlock(
        "headFB", BlockKind::Forward, all,
        lw.tpSpan(3.0 * head_flops, all, 2.0 * boundary), 0,
        {fwd[num_stages - 1]});
    lw.edge(out, fwd[num_stages - 1], head, boundary);

    // Backward sweep with recompute.
    int prev = head;
    for (int s = num_stages - 1; s >= 0; --s) {
        const DeviceMask mask = lw.group(s * group, group);
        const int b = lw.addBlock(
            "b" + std::to_string(s), BlockKind::Backward, mask,
            lw.tpSpan(kBwdFactor * stages[s] * layer_flops, mask,
                      stages[s] * boundary),
            -stage_act[s], {prev});
        lw.edge(out, prev, b, boundary);
        prev = b;
    }
    const int emb_b = lw.addBlock(
        "embB", BlockKind::Backward, all,
        lw.tpSpan(2.0 * emb_flops, all, boundary), -emb_act, {prev});
    lw.edge(out, prev, emb_b, boundary);

    // Parameter storage: embedding tensor-parallel, stages per group.
    lw.chargeParams(all, static_cast<double>(cfg.vocab) * cfg.hidden,
                    true);
    for (int s = 0; s < num_stages; ++s)
        lw.chargeParams(lw.group(s * group, group),
                        stages[s] * 12.0 * cfg.hidden * cfg.hidden, true);

    LoweredModel lowered = lw.finish("GPT-M-Shape", true);
    lowered.edgeMB = out.edgeMB;
    lowered.flopsPerMicrobatch =
        4.0 * (cfg.layers * layer_flops + head_flops);
    return lowered;
}

LoweredModel
lowerGptVShapePiper(const GptConfig &cfg, int gpus, int batch,
                    const HardwareSpec &hw)
{
    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const double boundary = cm.boundaryMB(cfg.hidden, cfg.seqLen);

    const std::vector<LayerCost> layers = gptLayerCosts(cfg, cm);
    // Reserve activation headroom when partitioning (Piper plans under
    // the usable capacity minus in-flight activations).
    const double act_reserve =
        boundary * gpus * 2.0; // ~D in-flight boundaries.
    const double plan_cap =
        static_cast<double>(cm.hw().usableMemMB()) - act_reserve;
    // Bound the per-stage tensor-parallel degree: at least what the
    // heaviest single layer (the embedding) needs to fit, but no wider —
    // Piper keeps a pipeline structure rather than collapsing into
    // whole-model tensor parallelism (Sec. II / Fig. 2).
    double heaviest = 0.0;
    for (const LayerCost &lc : layers)
        heaviest = std::max(heaviest, lc.memory);
    const int k_min = std::max(
        1, static_cast<int>(std::ceil(heaviest / plan_cap)));
    const int max_tp = std::min(gpus, std::max(2, k_min));
    const PiperResult part = piperPartition(layers, gpus, plan_cap,
                                            cm.hw().tpEfficiency, max_tp);

    LoweredModel out;
    if (!part.feasible) {
        // Parameters cannot be placed at all: report an OOM model.
        out.placement = makeShapeByName("V", std::max(2, gpus));
        out.fits = false;
        out.note = "piper: no feasible partition (OOM)";
        out.memCapacityMB = cm.hw().usableMemMB();
        out.initialMemMB.assign(gpus, out.memCapacityMB + 1);
        return out;
    }

    const int num_stages = static_cast<int>(part.stages.size());
    std::vector<DeviceMask> masks(num_stages);
    std::vector<Mem> acts(num_stages);
    int base = 0;
    for (int s = 0; s < num_stages; ++s) {
        masks[s] = lw.group(base, part.stages[s].numDevices);
        base += part.stages[s].numDevices;
        const int n_layers =
            part.stages[s].lastLayer - part.stages[s].firstLayer + 1;
        acts[s] = cm.stageActivationMB(n_layers, cfg.hidden, cfg.seqLen,
                                       part.stages[s].numDevices);
    }

    // Cross-server tensor parallelism pays IB all-reduce costs on top of
    // the Piper stage time (the effect that slows 1F1B at 16/32 GPUs).
    auto stage_span = [&](int s, double base_ms) {
        double ms = base_ms;
        const int k = part.stages[s].numDevices;
        if (k > 1) {
            const int n_layers =
                part.stages[s].lastLayer - part.stages[s].firstLayer + 1;
            const double bw = lw.crossesServer(masks[s])
                                  ? cm.hw().ibGBs
                                  : cm.hw().nvlinkGBs;
            ms += 2.0 * n_layers * boundary / 1024.0 / bw * 1e3;
        }
        return CostModel::quantizeMs(ms);
    };

    std::vector<int> fwd(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        fwd[s] = lw.addBlock("sF" + std::to_string(s), BlockKind::Forward,
                             masks[s],
                             stage_span(s, part.stages[s].fwdTime),
                             acts[s],
                             s == 0 ? std::vector<int>{}
                                    : std::vector<int>{fwd[s - 1]});
        if (s > 0)
            lw.edge(out, fwd[s - 1], fwd[s], boundary);
    }
    int prev = fwd[num_stages - 1];
    for (int s = num_stages - 1; s >= 0; --s) {
        const int b =
            lw.addBlock("sB" + std::to_string(s), BlockKind::Backward,
                        masks[s],
                        stage_span(s, part.stages[s].bwdTime), -acts[s],
                        {prev});
        lw.edge(out, prev, b, boundary);
        prev = b;
    }

    // Parameter storage per stage group.
    for (int s = 0; s < num_stages; ++s) {
        double params = 0.0;
        for (int l = part.stages[s].firstLayer;
             l <= part.stages[s].lastLayer; ++l) {
            params += layers[l].memory * 1e6 / cm.hw().trainBytesPerParam;
        }
        lw.chargeParams(masks[s], params, true);
    }

    LoweredModel lowered = lw.finish("GPT-Piper-V", true);
    lowered.edgeMB = out.edgeMB;
    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    lowered.flopsPerMicrobatch =
        4.0 * (cfg.layers * layer_flops +
               cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab));
    lowered.note = "stages=" + std::to_string(num_stages);
    return lowered;
}

namespace {

/** Shared Chimera X-shape lowering: two replicas, even layer split. */
LoweredModel
lowerChimeraCommon(const std::string &name, int gpus, int batch,
                   const HardwareSpec &hw, double total_layer_flops,
                   double head_flops, double total_params, double boundary,
                   int hidden, int seq_len, double flops_per_mb)
{
    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    LoweredModel edges;

    // Pipelines of depth min(gpus, 4) with tensor-parallel stage groups;
    // embedding + head costs fold into the stages, as Chimera replicates
    // the whole model per pipeline.
    const int depth = std::min(gpus, 4);
    const int group = gpus / depth;
    const double stage_flops =
        (total_layer_flops + head_flops) / gpus * group;
    const double stage_params = total_params / depth;
    const Mem act = cm.stageActivationMB(
        std::max(1, static_cast<int>(std::round(
                        total_layer_flops / gpus /
                        cm.layerFwdFlops(hidden, seq_len)))),
        hidden, seq_len);

    auto build_pipeline = [&](const std::string &prefix, bool reversed) {
        std::vector<int> fwd(depth);
        for (int i = 0; i < depth; ++i) {
            const int slot = reversed ? depth - 1 - i : i;
            const DeviceMask mask = lw.group(slot * group, group);
            fwd[i] = lw.addBlock(
                prefix + "F" + std::to_string(i), BlockKind::Forward,
                mask, lw.tpSpan(stage_flops, mask, boundary), act,
                i == 0 ? std::vector<int>{} : std::vector<int>{fwd[i - 1]});
            if (i > 0)
                lw.edge(edges, fwd[i - 1], fwd[i], boundary);
            lw.chargeParams(mask, stage_params, true);
        }
        int prev = fwd[depth - 1];
        for (int i = depth - 1; i >= 0; --i) {
            const int slot = reversed ? depth - 1 - i : i;
            const DeviceMask mask = lw.group(slot * group, group);
            const int b = lw.addBlock(
                prefix + "B" + std::to_string(i), BlockKind::Backward,
                mask,
                lw.tpSpan(kBwdFactor * stage_flops, mask, boundary),
                -act, {prev});
            lw.edge(edges, prev, b, boundary);
            prev = b;
        }
    };
    build_pipeline("d", false);
    build_pipeline("u", true);

    LoweredModel out = lw.finish(name, true);
    out.edgeMB = edges.edgeMB;
    // One X-shape scheduling unit carries two micro-batches (one per
    // direction), hence 2x the per-micro-batch FLOPs.
    out.flopsPerMicrobatch = 2.0 * flops_per_mb;
    return out;
}

} // namespace

LoweredModel
lowerGptXShapeChimera(const GptConfig &cfg, int gpus, int batch,
                      const HardwareSpec &hw)
{
    CostModel cm(hw, batch);
    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    const double head_flops =
        cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab);
    return lowerChimeraCommon(
        "GPT-X-Chimera", gpus, batch, hw, cfg.layers * layer_flops,
        head_flops, cfg.params(), cm.boundaryMB(cfg.hidden, cfg.seqLen),
        cfg.hidden, cfg.seqLen,
        4.0 * (cfg.layers * layer_flops + head_flops));
}

LoweredModel
lowerMt5XShapeChimera(const Mt5Config &cfg, int gpus, int batch,
                      const HardwareSpec &hw)
{
    CostModel cm(hw, batch);
    const double enc_flops =
        cfg.encLayers * cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    const double dec_flops = cfg.decLayers * (16.0 / 12.0) *
                             cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    const double head_flops =
        cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab);
    return lowerChimeraCommon(
        "mT5-X-Chimera", gpus, batch, hw, enc_flops + dec_flops,
        head_flops, cfg.params(), cm.boundaryMB(cfg.hidden, cfg.seqLen),
        cfg.hidden, cfg.seqLen,
        4.0 * (enc_flops + dec_flops + head_flops));
}

LoweredModel
lowerMt5NnShape(const Mt5Config &cfg, int gpus, int batch,
                const HardwareSpec &hw, int pipeline_stages)
{
    const int num_stages = std::min(gpus, pipeline_stages);
    fatal_if(gpus % num_stages != 0,
             "mT5 NN-Shape: gpus must divide into pipeline stages");
    const int group = gpus / num_stages;

    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const DeviceMask all = allDevices(gpus);
    const double boundary = cm.boundaryMB(cfg.hidden, cfg.seqLen);
    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    const double dec_layer_flops = (16.0 / 12.0) * layer_flops;
    const double head_flops =
        cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab);
    const double emb_flops = 128.0 * batch * cfg.seqLen * cfg.hidden;
    const std::vector<int> enc_stages =
        Lowering::splitLayers(cfg.encLayers, num_stages);
    const std::vector<int> dec_stages =
        Lowering::splitLayers(cfg.decLayers, num_stages);

    LoweredModel edges;
    const Mem emb_act = std::max<Mem>(
        1, static_cast<Mem>(std::ceil(boundary / gpus)));

    const int emb_f =
        lw.addBlock("embF", BlockKind::Forward, all,
                    lw.tpSpan(emb_flops, all, boundary), emb_act, {});
    // Encoder sweep.
    std::vector<int> enc(num_stages);
    std::vector<Mem> enc_act(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        const DeviceMask mask = lw.group(s * group, group);
        enc_act[s] = cm.stageActivationMB(enc_stages[s], cfg.hidden,
                                          cfg.seqLen, group);
        enc[s] = lw.addBlock(
            "eF" + std::to_string(s), BlockKind::Forward, mask,
            lw.tpSpan(enc_stages[s] * layer_flops, mask,
                      enc_stages[s] * boundary),
            enc_act[s], {s == 0 ? emb_f : enc[s - 1]});
        lw.edge(edges, s == 0 ? emb_f : enc[s - 1], enc[s], boundary);
    }
    // Decoder sweep (cross-attends the encoder output; shares embF).
    std::vector<int> dec(num_stages);
    std::vector<Mem> dec_act(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        const DeviceMask mask = lw.group(s * group, group);
        dec_act[s] = cm.stageActivationMB(dec_stages[s], cfg.hidden,
                                          cfg.seqLen, group);
        std::vector<int> deps;
        if (s == 0)
            deps = {enc[num_stages - 1], emb_f};
        else
            deps = {dec[s - 1]};
        dec[s] = lw.addBlock(
            "dF" + std::to_string(s), BlockKind::Forward, mask,
            lw.tpSpan(dec_stages[s] * dec_layer_flops, mask,
                      dec_stages[s] * boundary),
            dec_act[s], std::move(deps));
        lw.edge(edges, s == 0 ? enc[num_stages - 1] : dec[s - 1], dec[s],
                boundary);
    }
    // Shared-vocabulary head, tensor parallel.
    const int head = lw.addBlock(
        "headFB", BlockKind::Forward, all,
        lw.tpSpan(3.0 * head_flops, all, 2.0 * boundary), 0,
        {dec[num_stages - 1]});
    lw.edge(edges, dec[num_stages - 1], head, boundary);

    // Decoder backward sweep.
    int prev = head;
    std::vector<int> decb(num_stages);
    for (int s = num_stages - 1; s >= 0; --s) {
        const DeviceMask mask = lw.group(s * group, group);
        const int dep = prev;
        prev = lw.addBlock(
            "dB" + std::to_string(s), BlockKind::Backward, mask,
            lw.tpSpan(kBwdFactor * dec_stages[s] * dec_layer_flops, mask,
                      dec_stages[s] * boundary),
            -dec_act[s], {dep});
        decb[s] = prev;
        lw.edge(edges, dep, prev, boundary);
    }
    // Encoder backward sweep.
    for (int s = num_stages - 1; s >= 0; --s) {
        const DeviceMask mask = lw.group(s * group, group);
        const int dep = s == num_stages - 1 ? decb[0] : prev;
        const int b = lw.addBlock(
            "eB" + std::to_string(s), BlockKind::Backward, mask,
            lw.tpSpan(kBwdFactor * enc_stages[s] * layer_flops, mask,
                      enc_stages[s] * boundary),
            -enc_act[s], {dep});
        lw.edge(edges, dep, b, boundary);
        prev = b;
    }
    const int emb_b = lw.addBlock(
        "embB", BlockKind::Backward, all,
        lw.tpSpan(2.0 * emb_flops, all, boundary), -emb_act,
        {prev, decb[0]});
    lw.edge(edges, prev, emb_b, boundary);

    lw.chargeParams(all, static_cast<double>(cfg.vocab) * cfg.hidden,
                    true);
    for (int s = 0; s < num_stages; ++s) {
        const DeviceMask mask = lw.group(s * group, group);
        lw.chargeParams(mask,
                        enc_stages[s] * 12.0 * cfg.hidden * cfg.hidden,
                        true);
        lw.chargeParams(mask,
                        dec_stages[s] * 16.0 * cfg.hidden * cfg.hidden,
                        true);
    }

    LoweredModel out = lw.finish("mT5-NN-Shape", true);
    out.edgeMB = edges.edgeMB;
    out.flopsPerMicrobatch =
        4.0 * (cfg.encLayers * layer_flops +
               cfg.decLayers * dec_layer_flops + head_flops);
    return out;
}

LoweredModel
lowerMt5VShapePiper(const Mt5Config &cfg, int gpus, int batch,
                    const HardwareSpec &hw)
{
    // Reuse the GPT Piper path on an equivalent layer table.
    GptConfig as_gpt;
    as_gpt.name = cfg.name + "-as-chain";
    as_gpt.layers = cfg.encLayers + cfg.decLayers;
    as_gpt.hidden = cfg.hidden;
    as_gpt.heads = cfg.heads;
    as_gpt.vocab = cfg.vocab;
    as_gpt.seqLen = cfg.seqLen;
    LoweredModel out = lowerGptVShapePiper(as_gpt, gpus, batch, hw);
    CostModel cm(hw, batch);
    const double layer_flops = cm.layerFwdFlops(cfg.hidden, cfg.seqLen);
    out.flopsPerMicrobatch =
        4.0 * (cfg.encLayers * layer_flops +
               cfg.decLayers * (16.0 / 12.0) * layer_flops +
               cm.headFwdFlops(cfg.hidden, cfg.seqLen, cfg.vocab));
    return out;
}

LoweredModel
lowerFlavaKShape(const FlavaConfig &cfg, int gpus, int batch,
                 const HardwareSpec &hw, bool training)
{
    fatal_if(gpus % 2 != 0, "Flava K-Shape needs an even GPU count");
    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const int half = gpus / 2;
    const DeviceMask all = allDevices(gpus);
    const double text_layer = cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen);
    const double vis_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.visionSeqLen);
    const double cross_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen + cfg.visionSeqLen);
    const double t_boundary = cm.boundaryMB(cfg.hidden, cfg.textSeqLen);
    const double v_boundary = cm.boundaryMB(cfg.hidden, cfg.visionSeqLen);
    const std::vector<int> t_stages =
        Lowering::splitLayers(cfg.textLayers, half);
    const std::vector<int> v_stages =
        Lowering::splitLayers(cfg.visionLayers, half);

    LoweredModel edges;
    const Mem t_act = training ? cm.stageActivationMB(
                                     t_stages[0], cfg.hidden,
                                     cfg.textSeqLen)
                               : 0;
    const Mem v_act = training ? cm.stageActivationMB(
                                     v_stages[0], cfg.hidden,
                                     cfg.visionSeqLen)
                               : 0;

    std::vector<int> text(half), vision(half);
    for (int i = 0; i < half; ++i) {
        text[i] = lw.addBlock(
            "tF" + std::to_string(i), BlockKind::Forward, oneDevice(i),
            cm.spanFor(t_stages[i] * text_layer), t_act,
            i == 0 ? std::vector<int>{} : std::vector<int>{text[i - 1]});
        vision[i] = lw.addBlock(
            "vF" + std::to_string(i), BlockKind::Forward,
            oneDevice(half + i), cm.spanFor(v_stages[i] * vis_layer),
            v_act,
            i == 0 ? std::vector<int>{} : std::vector<int>{vision[i - 1]});
        if (i > 0) {
            lw.edge(edges, text[i - 1], text[i], t_boundary);
            lw.edge(edges, vision[i - 1], vision[i], v_boundary);
        }
    }
    const int cross_f = lw.addBlock(
        "xF", BlockKind::Forward, all,
        lw.tpSpan(cfg.crossLayers * cross_layer, all,
                  cfg.crossLayers * (t_boundary + v_boundary)),
        0, {text[half - 1], vision[half - 1]});
    lw.edge(edges, text[half - 1], cross_f, t_boundary);
    lw.edge(edges, vision[half - 1], cross_f, v_boundary);

    if (training) {
        const int cross_b = lw.addBlock(
            "xB", BlockKind::Backward, all,
            lw.tpSpan(kBwdFactor * cfg.crossLayers * cross_layer, all,
                      cfg.crossLayers * (t_boundary + v_boundary)),
            0, {cross_f});
        int tprev = cross_b, vprev = cross_b;
        for (int i = half - 1; i >= 0; --i) {
            const int tb = lw.addBlock(
                "tB" + std::to_string(i), BlockKind::Backward,
                oneDevice(i),
                cm.spanFor(kBwdFactor * t_stages[i] * text_layer), -t_act,
                {tprev});
            lw.edge(edges, tprev, tb, t_boundary);
            tprev = tb;
            const int vb = lw.addBlock(
                "vB" + std::to_string(i), BlockKind::Backward,
                oneDevice(half + i),
                cm.spanFor(kBwdFactor * v_stages[i] * vis_layer), -v_act,
                {vprev});
            lw.edge(edges, vprev, vb, v_boundary);
            vprev = vb;
        }
    }

    const double layer_params = 12.0 * cfg.hidden * cfg.hidden;
    for (int i = 0; i < half; ++i) {
        lw.chargeParams(oneDevice(i), t_stages[i] * layer_params,
                        training);
        lw.chargeParams(oneDevice(half + i), v_stages[i] * layer_params,
                        training);
    }
    lw.chargeParams(all, cfg.crossLayers * layer_params, training);
    lw.chargeParams(lw.group(0, 1),
                    static_cast<double>(cfg.vocab) * cfg.hidden, training);

    LoweredModel out = lw.finish(
        training ? "Flava-K-Shape" : "Flava-K-Shape-infer", training);
    out.edgeMB = edges.edgeMB;
    const double fwd = cfg.textLayers * text_layer +
                       cfg.visionLayers * vis_layer +
                       cfg.crossLayers * cross_layer;
    out.flopsPerMicrobatch = training ? 4.0 * fwd : fwd;
    return out;
}

LoweredModel
lowerFlavaTensorParallel(const FlavaConfig &cfg, int gpus, int batch,
                         const HardwareSpec &hw)
{
    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const DeviceMask all = allDevices(gpus);
    const double text_layer = cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen);
    const double vis_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.visionSeqLen);
    const double cross_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen + cfg.visionSeqLen);
    const double t_boundary = cm.boundaryMB(cfg.hidden, cfg.textSeqLen);
    const double v_boundary = cm.boundaryMB(cfg.hidden, cfg.visionSeqLen);

    LoweredModel edges;
    const int text = lw.addBlock(
        "textF", BlockKind::Forward, all,
        lw.tpSpan(cfg.textLayers * text_layer, all,
                  cfg.textLayers * t_boundary),
        0, {});
    const int vision = lw.addBlock(
        "visionF", BlockKind::Forward, all,
        lw.tpSpan(cfg.visionLayers * vis_layer, all,
                  cfg.visionLayers * v_boundary),
        0, {text});
    const int cross = lw.addBlock(
        "crossF", BlockKind::Forward, all,
        lw.tpSpan(cfg.crossLayers * cross_layer, all,
                  cfg.crossLayers * (t_boundary + v_boundary)),
        0, {vision});
    lw.edge(edges, text, vision, 0.0);
    lw.edge(edges, vision, cross, 0.0);

    lw.chargeParams(all, cfg.params(), false);

    LoweredModel out = lw.finish("Flava-TP", false);
    out.edgeMB = edges.edgeMB;
    out.flopsPerMicrobatch = cfg.textLayers * text_layer +
                             cfg.visionLayers * vis_layer +
                             cfg.crossLayers * cross_layer;
    return out;
}

LoweredModel
lowerFlavaVShape(const FlavaConfig &cfg, int gpus, int batch,
                 const HardwareSpec &hw)
{
    // 1F1B baseline: branches serialized into one chain, split evenly by
    // compute across the devices.
    Lowering lw(hw, gpus, batch);
    const CostModel &cm = lw.cm();
    const double text_layer = cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen);
    const double vis_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.visionSeqLen);
    const double cross_layer =
        cm.layerFwdFlops(cfg.hidden, cfg.textSeqLen + cfg.visionSeqLen);
    const double boundary =
        cm.boundaryMB(cfg.hidden, cfg.textSeqLen + cfg.visionSeqLen);

    const double total = cfg.textLayers * text_layer +
                         cfg.visionLayers * vis_layer +
                         cfg.crossLayers * cross_layer;
    LoweredModel edges;
    std::vector<int> fwd(gpus);
    for (int d = 0; d < gpus; ++d) {
        fwd[d] = lw.addBlock(
            "sF" + std::to_string(d), BlockKind::Forward, oneDevice(d),
            cm.spanFor(total / gpus), 0,
            d == 0 ? std::vector<int>{} : std::vector<int>{fwd[d - 1]});
        if (d > 0)
            lw.edge(edges, fwd[d - 1], fwd[d], boundary);
        lw.chargeParams(oneDevice(d), cfg.params() / gpus, false);
    }

    LoweredModel out = lw.finish("Flava-V-Shape-infer", false);
    out.edgeMB = edges.edgeMB;
    out.flopsPerMicrobatch = total;
    return out;
}

} // namespace tessel
