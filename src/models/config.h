/**
 * @file
 * Model configurations from the paper's evaluation (Table III and
 * Sec. VI-A/VI-D): GPT and mT5 scaled with the GPU count, and Flava for
 * the inference study. Vocabulary sizes follow the multilingual trend the
 * paper targets (512K - 1.5M tokens).
 */

#ifndef TESSEL_MODELS_CONFIG_H
#define TESSEL_MODELS_CONFIG_H

#include <cstdint>
#include <string>

namespace tessel {

/** Decoder-only transformer configuration (GPT family). */
struct GptConfig
{
    std::string name;
    int layers = 0;
    int hidden = 0;
    int heads = 0;
    int64_t vocab = 0;
    int seqLen = 1024;

    /** Approximate parameter count (embedding + transformer blocks). */
    double params() const;
};

/** Encoder-decoder transformer configuration (mT5 family). */
struct Mt5Config
{
    std::string name;
    int encLayers = 0;
    int decLayers = 0;
    int hidden = 0;
    int heads = 0;
    int64_t vocab = 0;
    int seqLen = 512;

    double params() const;
};

/** Two-branch multimodal configuration (Flava family). */
struct FlavaConfig
{
    std::string name;
    int textLayers = 0;
    int visionLayers = 0;
    int crossLayers = 0;
    int hidden = 0;
    int heads = 0;
    int64_t vocab = 0;
    int textSeqLen = 196;
    int visionSeqLen = 196;

    double params() const;
};

/** Table III GPT row for a GPU count in {4, 8, 16, 32}. */
GptConfig gptConfigForGpus(int gpus);

/** Table III mT5 row for a GPU count in {4, 8, 16, 32}. */
Mt5Config mt5ConfigForGpus(int gpus);

/** Flava configuration of Fig. 15 (24 layers, 4096 hidden, 32 heads). */
FlavaConfig flavaConfig();

/** GPT-6.7B layer geometry with a 768K vocabulary (Fig. 2). */
GptConfig gptFig2Config(int layers);

} // namespace tessel

#endif // TESSEL_MODELS_CONFIG_H
