#include "models/config.h"

#include "support/logging.h"

namespace tessel {

namespace {

/** Parameters of one transformer layer: attention + MLP (~12 h^2). */
double
layerParams(double h)
{
    return 12.0 * h * h;
}

} // namespace

double
GptConfig::params() const
{
    return static_cast<double>(vocab) * hidden +
           layers * layerParams(hidden);
}

double
Mt5Config::params() const
{
    // Decoder layers carry an extra cross-attention block (~16 h^2).
    return static_cast<double>(vocab) * hidden +
           encLayers * layerParams(hidden) +
           decLayers * (16.0 / 12.0) * layerParams(hidden);
}

double
FlavaConfig::params() const
{
    return static_cast<double>(vocab) * hidden +
           (textLayers + visionLayers + crossLayers) *
               layerParams(hidden);
}

GptConfig
gptConfigForGpus(int gpus)
{
    // Table III: {11B, 24B, 47B, 77B} for {4, 8, 16, 32} GPUs.
    switch (gpus) {
      case 4:
        return {"GPT-11B", 32, 4096, 32, 1000000, 1024};
      case 8:
        return {"GPT-24B", 40, 6144, 48, 1000000, 1024};
      case 16:
        return {"GPT-47B", 48, 8192, 64, 1000000, 1024};
      case 32:
        return {"GPT-77B", 80, 8192, 64, 1500000, 1024};
      default:
        fatal("no Table III GPT entry for ", gpus, " GPUs");
    }
}

Mt5Config
mt5ConfigForGpus(int gpus)
{
    // Table III: {1.8B, 9.5B, 43B, 88B} for {4, 8, 16, 32} GPUs; layer
    // counts split evenly between encoder and decoder.
    switch (gpus) {
      case 4:
        return {"mT5-1.8B", 24, 24, 1024, 16, 512000, 512};
      case 8:
        return {"mT5-9.5B", 24, 24, 3072, 24, 1000000, 512};
      case 16:
        return {"mT5-43B", 32, 32, 6144, 48, 1500000, 512};
      case 32:
        return {"mT5-88B", 40, 40, 8192, 64, 1500000, 512};
      default:
        fatal("no Table III mT5 entry for ", gpus, " GPUs");
    }
}

FlavaConfig
flavaConfig()
{
    FlavaConfig cfg;
    cfg.name = "Flava-24L";
    cfg.textLayers = 8;
    cfg.visionLayers = 8;
    cfg.crossLayers = 8;
    cfg.hidden = 4096;
    cfg.heads = 32;
    cfg.vocab = 50000;
    return cfg;
}

GptConfig
gptFig2Config(int layers)
{
    // GPT-6.7B geometry (h = 4096) with a 768K embedding vocabulary.
    GptConfig cfg;
    cfg.name = "GPT-6.7B-layers" + std::to_string(layers);
    cfg.layers = layers;
    cfg.hidden = 4096;
    cfg.heads = 32;
    cfg.vocab = 768000;
    cfg.seqLen = 1024;
    return cfg;
}

} // namespace tessel
