/**
 * @file
 * Lowering of concrete models (GPT / mT5 / Flava) under each placement
 * strategy into schedulable Placements with realistic integer costs,
 * per-device parameter memory, and per-edge communication volumes. These
 * feed both the schedule searches and the cluster simulator for the
 * end-to-end experiments (Figs. 2, 13-17).
 */

#ifndef TESSEL_MODELS_LOWER_H
#define TESSEL_MODELS_LOWER_H

#include <map>
#include <string>
#include <vector>

#include "ir/placement.h"
#include "models/config.h"
#include "models/costmodel.h"
#include "placement/piper.h"

namespace tessel {

/** A model lowered onto devices: placement + memory + comm volumes. */
struct LoweredModel
{
    Placement placement;
    /** Per-device parameter/optimizer storage (MB). */
    std::vector<Mem> initialMemMB;
    /** Usable per-device capacity (MB). */
    Mem memCapacityMB = kUnlimitedMem;
    /** Activation bytes (MB) carried by each dependency edge
     * (producer spec, consumer spec). */
    std::map<std::pair<int, int>, double> edgeMB;
    /** Hardware FLOPs per micro-batch (incl. recompute), for PFLOPS. */
    double flopsPerMicrobatch = 0.0;
    /** Micro-batch size used for the cost model. */
    int microBatch = 1;
    /** Whether parameters alone fit the per-device capacity. */
    bool fits = true;
    std::string note;
};

/**
 * GPT with the M-Shape placement Tessel uses (Sec. VI-A).
 *
 * @param pipeline_stages number of pipeline groups; each stage block is
 *        tensor-parallel over gpus/pipeline_stages devices (the paper
 *        combines tensor/data parallelism within blocks, Sec. III-A),
 *        keeping the schedule problem small as the cluster grows.
 */
LoweredModel lowerGptMShape(const GptConfig &cfg, int gpus, int batch,
                            const HardwareSpec &hw,
                            int pipeline_stages = 4);

/** GPT with the Piper-partitioned V-Shape used by the 1F1B baseline. */
LoweredModel lowerGptVShapePiper(const GptConfig &cfg, int gpus, int batch,
                                 const HardwareSpec &hw);

/** GPT with Chimera's X-Shape (two model replicas, Sec. VI-D). */
LoweredModel lowerGptXShapeChimera(const GptConfig &cfg, int gpus,
                                   int batch, const HardwareSpec &hw);

/** mT5 with the NN-Shape placement (shared embedding + enc/dec sweeps). */
LoweredModel lowerMt5NnShape(const Mt5Config &cfg, int gpus, int batch,
                             const HardwareSpec &hw,
                             int pipeline_stages = 4);

/** mT5 with the Piper-partitioned V-Shape (1F1B baseline). */
LoweredModel lowerMt5VShapePiper(const Mt5Config &cfg, int gpus, int batch,
                                 const HardwareSpec &hw);

/** mT5 with Chimera's X-Shape. */
LoweredModel lowerMt5XShapeChimera(const Mt5Config &cfg, int gpus,
                                   int batch, const HardwareSpec &hw);

/**
 * Flava with the K-Shape placement (branches on device halves, cross
 * encoder tensor-parallel).
 * @param training include backward blocks when true.
 */
LoweredModel lowerFlavaKShape(const FlavaConfig &cfg, int gpus, int batch,
                              const HardwareSpec &hw, bool training);

/** Flava inference with pure tensor parallelism (Fig. 15 baseline). */
LoweredModel lowerFlavaTensorParallel(const FlavaConfig &cfg, int gpus,
                                      int batch, const HardwareSpec &hw);

/** Flava inference with a V-Shape pipeline (Fig. 15's 1F1B baseline). */
LoweredModel lowerFlavaVShape(const FlavaConfig &cfg, int gpus, int batch,
                              const HardwareSpec &hw);

/**
 * Piper layer-cost table for a GPT model (embedding + layers + head),
 * exposed for the Fig. 2 imbalance study.
 */
std::vector<LayerCost> gptLayerCosts(const GptConfig &cfg,
                                     const CostModel &cm);

} // namespace tessel

#endif // TESSEL_MODELS_LOWER_H
